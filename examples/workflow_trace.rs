//! A Fig.-4-style walkthrough of RSP + ATP, printed step by step.
//!
//! Three workers share a tiny 8-row model. Worker 2's "link" only
//! admits a couple of rows per round (its speculative transmissions get
//! cut), so it pushes partial, importance-ranked row sets while the
//! others push everything — and the RSP gate keeps the divergence
//! bounded. The printout shows, per round: which rows each worker
//! pushed, each worker's per-row staleness, and the server's global
//! minimum version.
//!
//! ```text
//! cargo run --example workflow_trace
//! ```

use rog::core::{mta, RogServer, RogWorker, RogWorkerConfig};
use rog::tensor::rng::DetRng;
use rog::tensor::Matrix;

fn main() {
    let threshold = 3u32;
    let params = vec![Matrix::zeros(6, 5), Matrix::zeros(2, 4)];
    let n_workers = 3;
    let cfg = RogWorkerConfig::new(threshold, 0.1);
    let mut workers: Vec<RogWorker> = (0..n_workers)
        .map(|_| RogWorker::new(&params, cfg))
        .collect();
    let mut models: Vec<Vec<Matrix>> = (0..n_workers).map(|_| params.clone()).collect();
    let mut server = RogServer::new(&params, n_workers, threshold, cfg.importance);
    let n_rows = workers[0].partition().n_rows();
    let mta_rows = mta::mta_rows(n_rows, threshold);
    println!(
        "model: {n_rows} rows | RSP threshold {threshold} | MTA {:.0}% = {mta_rows} rows\n",
        100.0 * mta::mta_fraction(threshold)
    );

    let mut rng = DetRng::new(42);
    for round in 1..=5u64 {
        println!("— iteration {round} —");
        for w in 0..n_workers {
            // "Compute": random gradients, bigger on rows 0-2 so the
            // importance metric has something to chew on.
            let grads: Vec<Matrix> = params
                .iter()
                .enumerate()
                .map(|(mi, m)| {
                    Matrix::from_fn(m.rows(), m.cols(), |r, _| {
                        let boost = if mi == 0 && r < 3 { 3.0 } else { 1.0 };
                        rng.normal() as f32 * boost
                    })
                })
                .collect();
            workers[w].accumulate(&grads);

            // "Transmit": worker 2's link admits only the MTA floor.
            let plan = workers[w].plan_push(round);
            let admitted = if w == 2 { mta_rows } else { plan.len() };
            let sent = workers[w].commit_push(&plan[..admitted], round);
            server.on_push(w, round, &sent);

            let pushed: Vec<String> = plan[..admitted].iter().map(|r| r.0.to_string()).collect();
            println!(
                "  worker {w}: pushed {:>2}/{} rows [{}], stalest own row {} iters behind",
                admitted,
                n_rows,
                pushed.join(","),
                workers[w].max_row_staleness(round),
            );

            // RSP gate, then pull.
            let gate = server.gate_ok(round);
            if gate {
                let pull = server.plan_pull(w);
                let take = pull.len().min(mta_rows.max(1));
                let payload = server.commit_pull(w, &pull[..take]);
                workers[w].apply_pulled(&mut models[w], &payload);
                println!("           gate open → pulled {take} rows");
            } else {
                println!(
                    "           gate CLOSED (a straggler is {threshold} iterations behind) → stall"
                );
            }
        }
        println!(
            "  server: min(V) = {} (stalest row anywhere in the cluster)\n",
            server.versions_mut().global_min()
        );
    }
    println!(
        "worker 2 never pushed everything, yet no row anywhere fell more than \
         {threshold} iterations behind — that is RSP's guarantee, and the \
         importance metric spent worker 2's few rows on the largest gradients."
    );
}
