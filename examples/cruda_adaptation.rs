//! CRUDA scenario: a robot team's recognition model is degraded by a
//! domain shift (fog); the team adapts it online over an unstable
//! outdoor wireless network. Compares BSP against ROG under identical
//! conditions — the paper's headline experiment at example scale.
//!
//! ```text
//! cargo run --release --example cruda_adaptation
//! ```

use rog::models::{CrudaSpec, Workload};
use rog::tensor::rng::DetRng;
use rog::trainer::report;
use rog::trainer::{Environment, ExperimentConfig, ModelScale, Strategy, WorkloadKind};

fn main() {
    // Show the domain shift itself: pretrained accuracy before/after.
    let workload = CrudaSpec::small().build(4, &mut DetRng::new(1));
    let pretrained = workload.make_model(&mut DetRng::new(0));
    println!(
        "pretrained model: {:.1}% on the clean domain, {:.1}% after the shift",
        workload.source_accuracy(&pretrained),
        workload.test_metric(&pretrained)
    );

    // Adapt with BSP vs ROG on the same outdoor channel.
    println!("\nadapting online for 10 simulated minutes, outdoors...");
    let mut runs = Vec::new();
    for strategy in [Strategy::Bsp, Strategy::Rog { threshold: 4 }] {
        let m = ExperimentConfig {
            workload: WorkloadKind::Cruda,
            environment: Environment::Outdoor,
            strategy,
            model_scale: ModelScale::Small,
            n_workers: 4,
            duration_secs: 600.0,
            eval_every: 10,
            ..ExperimentConfig::default()
        }
        .options()
        .run()
        .metrics;
        println!(
            "  {:<8} {:>5.0} iterations, stall {:>5.2}s/iter, final accuracy {:>5.1}%, {:>7.0} J",
            strategy.name(),
            m.mean_iterations,
            m.composition.stall,
            m.checkpoints.last().map(|c| c.metric).unwrap_or(f64::NAN),
            m.total_energy_j,
        );
        runs.push(m);
    }

    // Head-to-head at fixed wall-clock times.
    println!("\naccuracy over wall-clock time:");
    println!("{:>8} {:>8} {:>8}", "time_s", "BSP", "ROG-4");
    for k in 1..=6 {
        let t = 100.0 * k as f64;
        let b = report::metric_at_time(&runs[0], t).unwrap_or(f64::NAN);
        let r = report::metric_at_time(&runs[1], t).unwrap_or(f64::NAN);
        println!("{t:>8.0} {b:>8.1} {r:>8.1}");
    }
}
