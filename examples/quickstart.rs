//! Quickstart: train a model with ROG on a simulated robot team.
//!
//! Mirrors the paper's "tens of lines of code" claim: pick a workload,
//! an environment and a strategy, and run. Prints the accuracy curve
//! and the time/energy breakdown.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rog::trainer::{Environment, ExperimentConfig, ModelScale, Strategy, WorkloadKind};

fn main() {
    let outcome = ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Outdoor,
        strategy: Strategy::Rog { threshold: 4 },
        model_scale: ModelScale::Small,
        n_workers: 4,
        duration_secs: 300.0,
        eval_every: 10,
        ..ExperimentConfig::default()
    }
    .options()
    .run();
    let metrics = &outcome.metrics;

    println!("run: {}", metrics.name);
    println!("iterations per worker: {:.0}", metrics.mean_iterations);
    println!(
        "per-iteration time: {:.2}s compute + {:.2}s communication + {:.2}s stall",
        metrics.composition.compute, metrics.composition.communicate, metrics.composition.stall
    );
    println!("total energy: {:.0} J", metrics.total_energy_j);
    println!("\n{} over time:", metrics.metric_name);
    for c in &metrics.checkpoints {
        println!(
            "  iter {:>4}  t={:>6.1}s  {}={:>6.2}  energy={:>7.0} J",
            c.iter, c.time, metrics.metric_name, c.metric, c.energy_j
        );
    }
}
