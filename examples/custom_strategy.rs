//! Using the ROG building blocks directly — the library layer below the
//! simulation harness.
//!
//! This drives one RSP/ATP round trip by hand: two workers accumulate
//! real gradients, rank rows with the importance metric, push a
//! bandwidth-limited subset (as a cut deadline would), and the
//! parameter server enforces the RSP gate before serving pulls. Useful
//! as a template for embedding ROG in a different transport.
//!
//! ```text
//! cargo run --example custom_strategy
//! ```

use rog::core::{mta, RogServer, RogWorker, RogWorkerConfig};
use rog::models::{CrudaSpec, Workload};
use rog::tensor::rng::DetRng;

fn main() {
    let threshold = 4u32;
    let workload = CrudaSpec::small().build(2, &mut DetRng::new(7));
    let mut models = [
        workload.make_model(&mut DetRng::new(0)),
        workload.make_model(&mut DetRng::new(0)),
    ];
    let cfg = RogWorkerConfig::new(threshold, workload.learning_rate());
    let mut workers: Vec<RogWorker> = models
        .iter()
        .map(|m| RogWorker::new(m.params(), cfg))
        .collect();
    let mut server = RogServer::new(models[0].params(), 2, threshold, cfg.importance);
    let n_rows = workers[0].partition().n_rows();
    let mta_rows = mta::mta_rows(n_rows, threshold);
    println!("model has {n_rows} rows; MTA at threshold {threshold} is {mta_rows} rows");

    let mut rng = DetRng::new(9);
    for iter in 1..=6u64 {
        for w in 0..2 {
            // Compute a real gradient on this worker's shard.
            let shard = &workload.shards()[w];
            let batch = shard.sample_batch(16, &mut rng);
            let (_, grads, _) = models[w].loss_and_grad(shard, &batch);
            workers[w].accumulate(&grads);

            // Rank rows; pretend the channel only let a prefix through.
            // Worker 1 has the worse link and only fits the MTA minimum.
            let plan = workers[w].plan_push(iter);
            let delivered = if w == 0 { plan.len() } else { mta_rows };
            let sent = workers[w].commit_push(&plan[..delivered], iter);
            server.on_push(w, iter, &sent);
            println!(
                "iter {iter}: worker {w} pushed {delivered}/{} rows (stalest row now {} iters old)",
                plan.len(),
                workers[w].max_row_staleness(iter)
            );

            // RSP gate, then pull whatever the server has pending. A
            // closed gate is the protocol working: this worker leads the
            // stalest row by the threshold and must stall.
            if server.gate_ok(iter) {
                let pull_plan = server.plan_pull(w);
                let take = pull_plan.len().min(mta_rows.max(1));
                let payload = server.commit_pull(w, &pull_plan[..take]);
                workers[w].apply_pulled(models[w].params_mut(), &payload);
            } else {
                println!("  worker {w}: RSP gate closed -> stall (a straggler is {threshold} iterations behind)");
            }
        }
    }

    println!(
        "\nafter 6 rounds: worker models differ by at most the staleness bound; \
         accuracy w0 = {:.1}%, w1 = {:.1}%",
        workload.test_metric(&models[0]),
        workload.test_metric(&models[1])
    );
}
