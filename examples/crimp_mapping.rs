//! CRIMP scenario: a robot team cooperatively fits an implicit map of a
//! synthetic scene and localizes against it; trajectory error falls as
//! the shared map improves. Runs ROG over the unstable outdoor channel.
//!
//! ```text
//! cargo run --release --example crimp_mapping
//! ```

use rog::models::{CrimpSpec, Workload};
use rog::tensor::rng::DetRng;
use rog::trainer::{Environment, ExperimentConfig, ModelScale, Strategy, WorkloadKind};

fn main() {
    // Peek at the scene + untrained localization quality.
    let workload = CrimpSpec::small().build(4, &mut DetRng::new(1));
    let fresh = workload.make_model(&mut DetRng::new(2));
    println!(
        "untrained implicit map localizes with {:.2} m mean trajectory error",
        workload.trajectory_error(&fresh)
    );
    println!(
        "scene field at a few probes: {:.2} {:.2} {:.2}",
        workload.scene().field(0.3, 0.3),
        workload.scene().field(0.5, 0.7),
        workload.scene().field(0.8, 0.2)
    );

    // Cooperative mapping over the wireless network.
    println!("\ncooperatively mapping for 10 simulated minutes, outdoors, ROG-4...");
    let m = ExperimentConfig {
        workload: WorkloadKind::Crimp,
        environment: Environment::Outdoor,
        strategy: Strategy::Rog { threshold: 4 },
        model_scale: ModelScale::Small,
        n_workers: 4,
        duration_secs: 600.0,
        eval_every: 10,
        ..ExperimentConfig::default()
    }
    .options()
    .run()
    .metrics;

    println!("trajectory error over time (lower is better):");
    for c in &m.checkpoints {
        println!(
            "  iter {:>4}  t={:>6.1}s  error={:>5.2} m  energy={:>7.0} J",
            c.iter, c.time, c.metric, c.energy_j
        );
    }
    println!(
        "\niterations per worker: {:.0}; stall {:.2}s per iteration",
        m.mean_iterations, m.composition.stall
    );
}
