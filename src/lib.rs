//! ROG — Row-Granulated distributed training for robotic IoT.
//!
//! A full-system Rust reproduction of *ROG: A High Performance and
//! Robust Distributed Training System for Robotic IoT* (MICRO 2022):
//! row-granulated gradient synchronization (RSP) with adaptive
//! speculative transmission (ATP), evaluated against BSP / SSP / ASP /
//! FLOWN baselines on a deterministic simulated robot team with a
//! calibrated unstable wireless channel.
//!
//! Facade crate re-exporting the whole workspace:
//!
//! * [`core`] — the contribution: RSP, ATP, the `RogOptimizer` API.
//! * [`trainer`] — end-to-end simulated experiments ([`prelude`] has a
//!   quickstart).
//! * [`net`] / [`sim`] / [`energy`] — wireless channel, discrete-event
//!   engine, Table III power model.
//! * [`transport`] — the pluggable transport plane: the deterministic
//!   sim backend and the UDP/TCP socket backend behind
//!   `rogctl serve` / `rogctl join`.
//! * [`models`] / [`tensor`] / [`compress`] — training substrate.
//! * [`sync`] — model-granularity baselines.
//! * [`fault`] — deterministic fault injection (worker churn, link
//!   blackouts, server restarts) for robustness experiments.
//! * [`fuzz`] — seeded scenario fuzzer and differential invariant
//!   harness behind `rogctl fuzz` and the regression corpus.
//! * [`obs`] — deterministic event journal, trace summaries and the
//!   JSONL/gzip plumbing behind `rogctl trace`.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! paper-to-code map, `EXPERIMENTS.md` for paper-vs-measured results,
//! and `examples/` for runnable entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod facade;

pub use facade::prelude;

pub use rog_compress as compress;
pub use rog_core as core;
pub use rog_energy as energy;
pub use rog_fault as fault;
pub use rog_fuzz as fuzz;
pub use rog_models as models;
pub use rog_net as net;
pub use rog_obs as obs;
pub use rog_sim as sim;
pub use rog_sync as sync;
pub use rog_tensor as tensor;
pub use rog_trainer as trainer;
pub use rog_transport as transport;
