//! High-level convenience re-exports for the most common entry points.
//!
//! Everything here is also reachable through the per-crate modules; this
//! flat surface exists so quickstart code can write `rog::prelude::*`.
//!
//! # Stable-surface policy
//!
//! The prelude is the *stable* API of the workspace: it carries only
//! the types a user needs to configure, launch and inspect an
//! experiment — the [`ExperimentConfig`](rog_trainer::ExperimentConfig)
//! family, the [`RunOptions`](rog_trainer::RunOptions) /
//! [`RunOutcome`](rog_trainer::RunOutcome) launch API, fault/loss
//! scenario inputs, the row-shard map, and the journal types a traced
//! run returns. Engine internals (workers, servers, channels, tensors,
//! RNGs) are deliberately *not* re-exported here: they remain reachable
//! through the per-crate modules (`rog::core`, `rog::net`,
//! `rog::tensor`, …) for tests and power users, but carry no stability
//! promise and may be reshaped by any release. Additions to the prelude
//! are fine; removals or signature changes of prelude items require a
//! deprecation cycle (see the `run()`/`run_traced()` shims on
//! `ExperimentConfig` for the pattern).

/// The "just train something" prelude.
///
/// # Example
///
/// ```
/// use rog::prelude::*;
///
/// let outcome = ExperimentConfig {
///     workload: WorkloadKind::Cruda,
///     environment: Environment::Stable,
///     strategy: Strategy::Rog { threshold: 4 },
///     model_scale: ModelScale::Small,
///     n_workers: 2,
///     duration_secs: 40.0,
///     eval_every: 5,
///     ..ExperimentConfig::default()
/// }
/// .options()
/// .run();
/// assert!(outcome.metrics.mean_iterations > 0.0);
/// assert!(outcome.journal.is_none());
/// ```
pub mod prelude {
    pub use rog_compress::{CodecChoice, RowCodec};
    pub use rog_core::ShardMap;
    pub use rog_fault::FaultPlan;
    pub use rog_net::LossConfig;
    pub use rog_obs::{Journal, TraceSummary};
    pub use rog_trainer::{
        report, run_with, run_with_result, Environment, ExperimentConfig, FleetStats, JoinOptions,
        ModelScale, RunMetrics, RunOptions, RunOutcome, ServeOptions, Strategy, TransportChoice,
        WorkloadKind,
    };
    pub use rog_transport::{SocketTransport, Transport};
}
