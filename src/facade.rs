//! High-level convenience re-exports for the most common entry points.
//!
//! Everything here is also reachable through the per-crate modules; this
//! flat surface exists so quickstart code can write `rog::prelude::*`.

/// The "just train something" prelude.
///
/// # Example
///
/// ```
/// use rog::prelude::*;
///
/// let metrics = ExperimentConfig {
///     workload: WorkloadKind::Cruda,
///     environment: Environment::Stable,
///     strategy: Strategy::Rog { threshold: 4 },
///     model_scale: ModelScale::Small,
///     n_workers: 2,
///     duration_secs: 40.0,
///     eval_every: 5,
///     ..ExperimentConfig::default()
/// }
/// .run();
/// assert!(metrics.mean_iterations > 0.0);
/// ```
pub mod prelude {
    pub use rog_core::{RogOptimizer, RogServer, RogSession, RogWorker, RogWorkerConfig, RowId};
    pub use rog_fault::{ChurnProfile, FaultPlan};
    pub use rog_models::{CrimpSpec, CrudaSpec, Workload};
    pub use rog_net::{Channel, ChannelProfile, LossConfig, SharingMode, Trace};
    pub use rog_obs::{Journal, TraceSummary};
    pub use rog_tensor::rng::DetRng;
    pub use rog_tensor::Matrix;
    pub use rog_trainer::{
        report, Environment, ExperimentConfig, ModelScale, RunMetrics, Strategy, WorkloadKind,
    };
}
