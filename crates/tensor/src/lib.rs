//! Minimal dense-matrix math substrate for the ROG reproduction.
//!
//! ROG (Guan et al., MICRO 2022) schedules gradient transmission at the
//! granularity of *rows* of each layer's parameter matrix. Everything above
//! this crate therefore needs a matrix type whose rows are first-class:
//! cheap to view, cheap to copy out, individually updatable, and stably
//! addressable across the whole model.
//!
//! This crate deliberately implements only what the rest of the workspace
//! needs — row-major [`Matrix`], a handful of BLAS-1/2 kernels, the
//! [`ops`] SGD/momentum update rules, and deterministic random
//! initialization ([`rng`]) — rather than binding to an external BLAS.
//! Determinism is a hard requirement: every simulated experiment must be
//! bit-reproducible from a seed, so all randomness flows through
//! [`rng::DetRng`] and no kernel is allowed to reorder floating-point
//! reductions nondeterministically.
//!
//! # Example
//!
//! ```
//! use rog_tensor::{Matrix, rng::DetRng};
//!
//! let mut rng = DetRng::new(42);
//! let w = Matrix::randn(4, 3, 0.1, &mut rng);
//! let x = vec![1.0, 2.0, 3.0];
//! let y = w.matvec(&x);
//! assert_eq!(y.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
pub mod ops;
pub mod rng;

pub use matrix::{Matrix, ShapeError};
