//! Element-wise kernels used by the training stack.
//!
//! The row-granulated optimizer applies updates to individual parameter
//! rows as their averaged gradients arrive, so the update rules here all
//! operate on plain `&mut [f32]` row slices.

/// Dot product with eight independent accumulators.
///
/// The strict left-to-right `sum()` fold is a serial dependency chain
/// the autovectorizer cannot break; eight parallel accumulators over
/// `chunks_exact` give it straight-line code it turns into SIMD.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = [0.0f32; 8];
    let ca = a.chunks_exact(8);
    let cb = b.chunks_exact(8);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for i in 0..8 {
            acc[i] += xa[i] * xb[i];
        }
    }
    let mut tail = 0.0;
    for (x, y) in ra.iter().zip(rb) {
        tail += x * y;
    }
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail
}

/// Four simultaneous dot products of `a` against four rows.
///
/// Streams `a` through registers once for four outputs — the register
/// block of the transposed-B matmul kernel.
///
/// # Panics
///
/// Panics if any row's length differs from `a`'s.
pub fn dot4(a: &[f32], b: [&[f32]; 4]) -> [f32; 4] {
    let n = a.len();
    for row in b {
        assert_eq!(row.len(), n, "dot4 length mismatch");
    }
    let mut acc = [[0.0f32; 4]; 4];
    let mut t = 0;
    while t + 4 <= n {
        for u in 0..4 {
            let av = a[t + u];
            for l in 0..4 {
                acc[l][u] += av * b[l][t + u];
            }
        }
        t += 4;
    }
    let mut out = [0.0f32; 4];
    for l in 0..4 {
        let mut s = (acc[l][0] + acc[l][2]) + (acc[l][1] + acc[l][3]);
        for u in t..n {
            s += a[u] * b[l][u];
        }
        out[l] = s;
    }
    out
}

/// `y += s * x` (scaled accumulate); the inner loop of `matmul` and the
/// outer-product accumulate.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(y: &mut [f32], x: &[f32], s: f32) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += s * xv;
    }
}

/// Sum of absolute values with four independent accumulators.
pub fn sum_abs(xs: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = xs.chunks_exact(4);
    let rest = chunks.remainder();
    for c in chunks {
        for i in 0..4 {
            acc[i] += c[i].abs();
        }
    }
    let mut tail = 0.0;
    for x in rest {
        tail += x.abs();
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// Sum of squares with four independent accumulators.
pub fn sum_sq(xs: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = xs.chunks_exact(4);
    let rest = chunks.remainder();
    for c in chunks {
        for i in 0..4 {
            acc[i] += c[i] * c[i];
        }
    }
    let mut tail = 0.0;
    for x in rest {
        tail += x * x;
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// Plain SGD on one row: `w -= lr * g`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sgd_row(w: &mut [f32], g: &[f32], lr: f32) {
    assert_eq!(w.len(), g.len(), "sgd_row length mismatch");
    for (wv, gv) in w.iter_mut().zip(g) {
        *wv -= lr * gv;
    }
}

/// SGD with momentum on one row:
/// `v = momentum * v + g; w -= lr * v`.
///
/// This is the block-wise (per-row) variant of distributed SGD-momentum the
/// paper implements from Sun et al. (LAQ), where each row keeps its own
/// velocity so rows can be updated independently as they arrive.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sgd_momentum_row(w: &mut [f32], v: &mut [f32], g: &[f32], lr: f32, momentum: f32) {
    assert_eq!(w.len(), g.len(), "sgd_momentum_row length mismatch");
    assert_eq!(w.len(), v.len(), "sgd_momentum_row velocity mismatch");
    for ((wv, vv), gv) in w.iter_mut().zip(v.iter_mut()).zip(g) {
        *vv = momentum * *vv + gv;
        *wv -= lr * *vv;
    }
}

/// Adam on one row (per-row timestep for bias correction):
/// `m = β1·m + (1-β1)·g; v = β2·v + (1-β2)·g²;`
/// `w -= lr · m̂ / (√v̂ + ε)`.
///
/// ROG applies updates per row as averaged gradients arrive, so each
/// row carries its own step counter `t` (already incremented for this
/// call).
///
/// # Panics
///
/// Panics if slice lengths differ or `t == 0`.
#[allow(clippy::too_many_arguments)]
pub fn adam_row(
    w: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
) {
    assert_eq!(w.len(), g.len(), "adam_row length mismatch");
    assert_eq!(w.len(), m.len(), "adam_row m mismatch");
    assert_eq!(w.len(), v.len(), "adam_row v mismatch");
    assert!(t > 0, "adam timestep starts at 1");
    let bc1 = 1.0 - beta1.powi(t as i32);
    let bc2 = 1.0 - beta2.powi(t as i32);
    for i in 0..w.len() {
        m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
        v[i] = beta2 * v[i] + (1.0 - beta2) * g[i] * g[i];
        let mhat = m[i] / bc1;
        let vhat = v[i] / bc2;
        w[i] -= lr * mhat / (vhat.sqrt() + eps);
    }
}

/// ReLU applied in place.
pub fn relu(xs: &mut [f32]) {
    for x in xs {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

/// Gradient mask of ReLU: `dx[i] = if pre[i] > 0 { dy[i] } else { 0 }`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn relu_backward(pre: &[f32], dy: &mut [f32]) {
    assert_eq!(pre.len(), dy.len(), "relu_backward length mismatch");
    for (p, d) in pre.iter().zip(dy.iter_mut()) {
        if *p <= 0.0 {
            *d = 0.0;
        }
    }
}

/// Numerically-stable in-place softmax.
pub fn softmax(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

/// Fused softmax + cross-entropy backward.
///
/// Turns raw logits into the output gradient *in place* — `d = softmax(x);
/// d[label] -= 1` — and returns the cross-entropy loss, avoiding the
/// separate probability buffer and extra passes of calling [`softmax`]
/// then [`cross_entropy`].
///
/// # Panics
///
/// Panics if `label >= xs.len()`.
pub fn softmax_ce_grad(xs: &mut [f32], label: usize) -> f32 {
    assert!(label < xs.len(), "label out of range");
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    // max-shifting guarantees one term is exp(0) = 1, so sum >= 1.
    for x in xs.iter_mut() {
        *x /= sum;
    }
    let loss = -xs[label].max(1e-12).ln();
    xs[label] -= 1.0;
    loss
}

/// Cross-entropy loss of a softmax distribution against a class label.
///
/// # Panics
///
/// Panics if `label >= probs.len()`.
pub fn cross_entropy(probs: &[f32], label: usize) -> f32 {
    assert!(label < probs.len(), "label out of range");
    -probs[label].max(1e-12).ln()
}

/// Mean of absolute values of a slice (0 for empty input).
pub fn mean_abs(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    sum_abs(xs) / xs.len() as f32
}

/// Squared L2 distance between two slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
    let mut acc = [0.0f32; 4];
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for i in 0..4 {
            let d = xa[i] - xb[i];
            acc[i] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in ra.iter().zip(rb) {
        tail += (x - y) * (x - y);
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_row_moves_against_gradient() {
        let mut w = vec![1.0, 1.0];
        sgd_row(&mut w, &[0.5, -0.5], 0.1);
        assert_eq!(w, vec![0.95, 1.05]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut w = vec![0.0];
        let mut v = vec![0.0];
        sgd_momentum_row(&mut w, &mut v, &[1.0], 1.0, 0.9);
        assert_eq!(v, vec![1.0]);
        assert_eq!(w, vec![-1.0]);
        sgd_momentum_row(&mut w, &mut v, &[1.0], 1.0, 0.9);
        assert!((v[0] - 1.9).abs() < 1e-6);
        assert!((w[0] + 2.9).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_is_signed_unit_step() {
        // With bias correction, the first Adam step is ≈ lr·sign(g).
        let mut w = vec![0.0f32, 0.0];
        let mut m = vec![0.0f32; 2];
        let mut v = vec![0.0f32; 2];
        adam_row(
            &mut w,
            &mut m,
            &mut v,
            &[0.5, -2.0],
            0.1,
            0.9,
            0.999,
            1e-8,
            1,
        );
        assert!((w[0] + 0.1).abs() < 1e-3, "{}", w[0]);
        assert!((w[1] - 0.1).abs() < 1e-3, "{}", w[1]);
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        // Minimize (x - 3)^2 with per-row Adam.
        let mut w = vec![0.0f32];
        let mut m = vec![0.0f32];
        let mut v = vec![0.0f32];
        for t in 1..=500u64 {
            let g = vec![2.0 * (w[0] - 3.0)];
            adam_row(&mut w, &mut m, &mut v, &g, 0.05, 0.9, 0.999, 1e-8, t);
        }
        assert!((w[0] - 3.0).abs() < 0.2, "{}", w[0]);
    }

    #[test]
    fn relu_and_backward_agree_on_mask() {
        let pre = vec![-1.0, 0.0, 2.0];
        let mut act = pre.clone();
        relu(&mut act);
        assert_eq!(act, vec![0.0, 0.0, 2.0]);
        let mut dy = vec![1.0, 1.0, 1.0];
        relu_backward(&pre, &mut dy);
        assert_eq!(dy, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax(&mut xs);
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut xs = vec![1000.0, 1001.0];
        softmax(&mut xs);
        assert!(xs.iter().all(|v| v.is_finite()));
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        assert!(cross_entropy(&[0.01, 0.99], 1) < 0.02);
        assert!(cross_entropy(&[0.01, 0.99], 0) > 4.0);
    }

    #[test]
    fn mean_abs_empty_is_zero() {
        assert_eq!(mean_abs(&[]), 0.0);
        assert_eq!(mean_abs(&[-2.0, 2.0]), 2.0);
    }

    #[test]
    fn dot_matches_naive_for_odd_lengths() {
        for n in [0usize, 1, 3, 7, 8, 9, 16, 31] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.21).cos()).collect();
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(
                (dot(&a, &b) - naive).abs() < 1e-4 * (1.0 + naive.abs()),
                "n={n}: {} vs {naive}",
                dot(&a, &b)
            );
        }
    }

    #[test]
    fn dot4_matches_four_dots() {
        let n = 13;
        let a: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 - 3.0).collect();
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|r| (0..n).map(|i| ((r * n + i) as f32 * 0.11).sin()).collect())
            .collect();
        let got = dot4(&a, [&rows[0], &rows[1], &rows[2], &rows[3]]);
        for (l, row) in rows.iter().enumerate() {
            assert!(
                (got[l] - dot(&a, row)).abs() < 1e-4,
                "lane {l}: {} vs {}",
                got[l],
                dot(&a, row)
            );
        }
    }

    #[test]
    fn axpy_accumulates_scaled() {
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(&mut y, &[1.0, 0.0, -1.0], 2.0);
        assert_eq!(y, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn chunked_reductions_match_naive() {
        let xs: Vec<f32> = (0..27).map(|i| (i as f32 - 13.0) * 0.3).collect();
        let abs_naive: f32 = xs.iter().map(|v| v.abs()).sum();
        let sq_naive: f32 = xs.iter().map(|v| v * v).sum();
        assert!((sum_abs(&xs) - abs_naive).abs() < 1e-4);
        assert!((sum_sq(&xs) - sq_naive).abs() < 1e-4);
    }

    #[test]
    fn fused_softmax_ce_matches_split_path() {
        let logits = vec![0.5f32, -1.0, 2.0, 0.0];
        for label in 0..logits.len() {
            let mut probs = logits.clone();
            softmax(&mut probs);
            let want_loss = cross_entropy(&probs, label);
            let mut want_grad = probs.clone();
            want_grad[label] -= 1.0;

            let mut fused = logits.clone();
            let loss = softmax_ce_grad(&mut fused, label);
            assert!((loss - want_loss).abs() < 1e-6);
            for (a, b) in fused.iter().zip(&want_grad) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
