//! Deterministic random-number utilities.
//!
//! Every stochastic component of the simulation (dataset synthesis, weight
//! init, bandwidth traces, compute jitter) draws from a [`DetRng`] stream
//! derived from one experiment root seed. Independent streams are derived
//! with [`DetRng::fork`], so adding a consumer never perturbs the draws
//! seen by existing consumers — a property the reproducibility tests rely
//! on.

/// SplitMix64 step, used to derive fork seeds from `(seed, stream-id)`
/// and to expand the root seed into the xoshiro state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Self-contained xoshiro256** core (the `rand` crate is unavailable in
/// this build environment). Seeded by iterating splitmix64 from the
/// root seed, per the generator authors' recommendation.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64(x);
        }
        Self { s }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// A deterministic, forkable random-number generator.
///
/// # Example
///
/// ```
/// use rog_tensor::rng::DetRng;
///
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forks with distinct stream ids are independent of the parent and of
/// // each other, but reproducible.
/// let x = a.fork(1).next_u64();
/// assert_eq!(x, b.fork(1).next_u64());
/// assert_ne!(x, b.fork(2).next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: Xoshiro256,
    /// Cached second Box-Muller sample.
    spare_normal: Option<f64>,
}

impl DetRng {
    /// Creates a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            inner: Xoshiro256::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent stream keyed by `stream`.
    ///
    /// Forking does not consume state from `self`, so the order in which
    /// forks are taken does not matter.
    pub fn fork(&self, stream: u64) -> DetRng {
        DetRng::new(splitmix64(
            self.seed ^ splitmix64(stream.wrapping_add(0x5851_f42d)),
        ))
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform sample in `[0, 1)` (53 mantissa bits).
    pub fn uniform(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_range requires lo < hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a non-empty range");
        // Debiased via rejection: retry while the draw falls in the
        // truncated final partial block of the u64 space.
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.inner.next_u64();
            if v <= zone {
                return (v % n) as usize;
            }
        }
    }

    /// Standard normal sample (Box-Muller; `rand_distr` is intentionally
    /// not a dependency).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Reject u1 == 0 to avoid ln(0).
        let mut u1 = self.uniform();
        while u1 <= f64::EPSILON {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        self.spare_normal = Some(r * s);
        r * c
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples from a symmetric Dirichlet distribution with concentration
    /// `alpha`, via normalized Gamma draws (Marsaglia-Tsang for shape < 1
    /// handled by boosting).
    ///
    /// Used for non-IID dataset sharding across workers.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `alpha <= 0`.
    pub fn dirichlet(&mut self, k: usize, alpha: f64) -> Vec<f64> {
        assert!(k > 0, "dirichlet requires k > 0");
        assert!(alpha > 0.0, "dirichlet requires alpha > 0");
        let mut g: Vec<f64> = (0..k).map(|_| self.gamma(alpha)).collect();
        let sum: f64 = g.iter().sum();
        if sum <= 0.0 {
            // All draws underflowed; fall back to uniform.
            return vec![1.0 / k as f64; k];
        }
        g.iter_mut().for_each(|v| *v /= sum);
        g
    }

    /// Gamma(shape, 1) sample via Marsaglia-Tsang.
    fn gamma(&mut self, shape: f64) -> f64 {
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
            let u = self.uniform().max(f64::MIN_POSITIVE);
            return self.gamma(shape + 1.0) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.uniform().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = DetRng::new(9);
        let mut consumed = parent.clone();
        let _ = consumed.next_u64();
        assert_eq!(parent.fork(3).next_u64(), consumed.fork(3).next_u64());
    }

    #[test]
    fn distinct_fork_streams_differ() {
        let parent = DetRng::new(9);
        assert_ne!(parent.fork(1).next_u64(), parent.fork(2).next_u64());
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = DetRng::new(1234);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn dirichlet_sums_to_one_and_is_positive() {
        let mut rng = DetRng::new(5);
        for &alpha in &[0.1, 0.5, 1.0, 10.0] {
            let p = rng.dirichlet(8, alpha);
            assert_eq!(p.len(), 8);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn small_alpha_is_skewed_large_alpha_is_flat() {
        let mut rng = DetRng::new(6);
        let max_small: f64 = (0..50)
            .map(|_| rng.dirichlet(10, 0.05).into_iter().fold(0.0f64, f64::max))
            .sum::<f64>()
            / 50.0;
        let max_large: f64 = (0..50)
            .map(|_| rng.dirichlet(10, 100.0).into_iter().fold(0.0f64, f64::max))
            .sum::<f64>()
            / 50.0;
        assert!(
            max_small > max_large + 0.2,
            "small alpha should concentrate mass: {max_small} vs {max_large}"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(7);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
