//! Row-major dense matrix with first-class row access.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;

/// Error returned when two matrices (or a matrix and a vector) have
/// incompatible shapes for the requested operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    msg: String,
}

impl ShapeError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// A row-major dense `f32` matrix.
///
/// Rows are the unit ROG schedules, so row views ([`Matrix::row`],
/// [`Matrix::row_mut`]) are guaranteed to be contiguous slices.
///
/// # Example
///
/// ```
/// use rog_tensor::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
/// assert_eq!(m.get(1, 2), 3.0);
/// assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix from a closure called as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "expected {rows}x{cols}={} elements, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix of i.i.d. normal samples with standard deviation `std`.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut DetRng) -> Self {
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.normal() as f32 * std;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Contiguous view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable contiguous view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Flat row-major view of all elements.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable row-major view of all elements.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `y = self * x` (matrix-vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        self.iter_rows()
            .map(|row| crate::ops::dot(row, x))
            .collect()
    }

    /// `y = self^T * x` (transposed matrix-vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, row) in self.iter_rows().enumerate() {
            let s = x[r];
            if s != 0.0 {
                for (yc, a) in y.iter_mut().zip(row) {
                    *yc += s * a;
                }
            }
        }
        y
    }

    /// Accumulates the outer product: `self += scale * a * b^T`.
    ///
    /// Used for gradient accumulation in backprop (`dW += dy ⊗ x`).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.rows()` or `b.len() != self.cols()`.
    pub fn add_outer(&mut self, a: &[f32], b: &[f32], scale: f32) {
        assert_eq!(a.len(), self.rows, "add_outer row mismatch");
        assert_eq!(b.len(), self.cols, "add_outer col mismatch");
        for (r, &av) in a.iter().enumerate() {
            let s = av * scale;
            if s != 0.0 {
                let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
                for (w, &bv) in row.iter_mut().zip(b) {
                    *w += s * bv;
                }
            }
        }
    }

    /// `self += scale * other`, element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(format!(
                "add_scaled {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Multiplies every element by `scale`.
    pub fn scale(&mut self, scale: f32) {
        self.data.iter_mut().for_each(|v| *v *= scale);
    }

    /// Mean of absolute values over the whole matrix (0 for empty).
    pub fn mean_abs(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        crate::ops::sum_abs(&self.data) / self.data.len() as f32
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        crate::ops::sum_sq(&self.data).sqrt()
    }

    /// `out = self * other^T` (both operands row-major).
    ///
    /// This is the cache-friendly layout for dense layers: with
    /// activations `A` (batch x in) and weights `W` (out x in), the
    /// pre-activations are `A * W^T` (batch x out) and every dot product
    /// walks two contiguous rows. Output rows are register-blocked four
    /// at a time so the autovectorizer can keep four accumulator lanes
    /// live per pass over `self.row(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transb(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transb inner dimension mismatch"
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        let n = other.rows;
        for (i, a) in self.iter_rows().enumerate() {
            let orow = &mut out.data[i * n..(i + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                let d = crate::ops::dot4(
                    a,
                    [
                        other.row(j),
                        other.row(j + 1),
                        other.row(j + 2),
                        other.row(j + 3),
                    ],
                );
                orow[j..j + 4].copy_from_slice(&d);
                j += 4;
            }
            for (o, brow) in orow[j..].iter_mut().zip(j..n) {
                *o = crate::ops::dot(a, other.row(brow));
            }
        }
        out
    }

    /// `out = self * other` (row-major matrix product).
    ///
    /// Uses the i-k-j loop order: each scalar of a row of `self` streams
    /// a contiguous row of `other` into a contiguous row of the output
    /// (an `axpy` per inner step), so no operand is ever walked with a
    /// stride. Zero scalars are skipped, which makes the ReLU-sparse
    /// backward pass (`dA = dZ * W`) cheaper for free.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for (i, a) in self.iter_rows().enumerate() {
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (k, &av) in a.iter().enumerate() {
                if av != 0.0 {
                    crate::ops::axpy(orow, other.row(k), av);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn row_views_are_contiguous() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.row(0), &[0.0, 1.0]);
        assert_eq!(m.row(2), &[20.0, 21.0]);
    }

    #[test]
    fn row_mut_writes_back() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.get(1, 0), 7.0);
    }

    #[test]
    fn matvec_identity() {
        let eye = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(eye.matvec(&x), x);
    }

    #[test]
    fn matvec_t_matches_manual_transpose() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let x = vec![1.0, 10.0];
        // m^T x = [1+40, 2+50, 3+60]
        assert_eq!(m.matvec_t(&x), vec![41.0, 52.0, 63.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0], 1.0);
        assert_eq!(m.as_slice(), &[3.0, 4.0, 6.0, 8.0]);
        m.add_outer(&[1.0, 1.0], &[1.0, 1.0], -1.0);
        assert_eq!(m.as_slice(), &[2.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn add_scaled_rejects_shape_mismatch() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.add_scaled(&b, 1.0).is_err());
    }

    #[test]
    fn mean_abs_and_norm() {
        let m = Matrix::from_vec(1, 4, vec![1.0, -1.0, 2.0, -2.0]).unwrap();
        assert!((m.mean_abs() - 1.5).abs() < 1e-6);
        assert!((m.frobenius_norm() - 10.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_matrix_edge_cases() {
        let m = Matrix::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.mean_abs(), 0.0);
        assert_eq!(m.iter_rows().count(), 0);
    }

    #[test]
    #[should_panic(expected = "row index out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = Matrix::zeros(1, 1);
        let _ = m.row(1);
    }

    #[test]
    fn matmul_transb_matches_per_element_reference() {
        // 3x7 times (6x7)^T exercises both the 4-wide block and the
        // remainder columns.
        let a = Matrix::from_fn(3, 7, |r, c| ((r * 7 + c) as f32 * 0.13).sin());
        let b = Matrix::from_fn(6, 7, |r, c| ((r * 7 + c) as f32 * 0.29).cos());
        let out = a.matmul_transb(&b);
        assert_eq!(out.shape(), (3, 6));
        for i in 0..3 {
            for j in 0..6 {
                let want: f32 = a.row(i).iter().zip(b.row(j)).map(|(x, y)| x * y).sum();
                assert!(
                    (out.get(i, j) - want).abs() < 1e-4,
                    "({i},{j}): {} vs {want}",
                    out.get(i, j)
                );
            }
        }
    }

    #[test]
    fn matmul_matches_per_element_reference() {
        let a = Matrix::from_fn(4, 5, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(5, 3, |r, c| ((r + 2 * c) as f32 * 0.17).sin());
        let out = a.matmul(&b);
        assert_eq!(out.shape(), (4, 3));
        for i in 0..4 {
            for j in 0..3 {
                let want: f32 = (0..5).map(|k| a.get(i, k) * b.get(k, j)).sum();
                assert!(
                    (out.get(i, j) - want).abs() < 1e-4,
                    "({i},{j}): {} vs {want}",
                    out.get(i, j)
                );
            }
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let eye = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&eye).as_slice(), a.as_slice());
        assert_eq!(a.matmul_transb(&eye).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rows_agree_with_matvec() {
        // Row i of A*W^T must equal W * (row i of A): the batched
        // forward pass is the per-sample one stacked.
        let a = Matrix::from_fn(5, 9, |r, c| ((r * 9 + c) as f32 * 0.07).sin());
        let w = Matrix::from_fn(6, 9, |r, c| ((r * 9 + c) as f32 * 0.11).cos());
        let z = a.matmul_transb(&w);
        for i in 0..5 {
            let per_sample = w.matvec(a.row(i));
            for (got, want) in z.row(i).iter().zip(&per_sample) {
                // dot4 and dot use different accumulator widths, so the
                // sums agree only up to rounding.
                assert!((got - want).abs() < 1e-4, "row {i}: {got} vs {want}");
            }
        }
    }
}
