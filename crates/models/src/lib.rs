//! Workloads and models for the ROG reproduction.
//!
//! The paper evaluates two online-training application paradigms:
//!
//! * **CRUDA** — coordinated robotic unsupervised domain adaptation: a
//!   team of robots adapts a pretrained object-recognition model
//!   (ConvMLP on Fed-CIFAR100 with synthetic fog noise) to a shifted
//!   domain; metric = classification accuracy.
//! * **CRIMP** — coordinated robotic implicit mapping and positioning:
//!   robots cooperatively fit an ML model representing a 3-D map
//!   (nice-slam on ScanNet) and localize in it; metric = trajectory
//!   error.
//!
//! Neither Fed-CIFAR100 + ConvMLP nor ScanNet + nice-slam is available in
//! this environment, so this crate provides faithful *synthetic*
//! stand-ins that exercise the same code paths (see `DESIGN.md`):
//! [`CrudaWorkload`] is a real multi-class classification problem with a
//! controllable domain shift, pretrained on the source domain; and
//! [`CrimpWorkload`] fits an implicit occupancy field of a synthetic
//! scene from posed observations and measures pose-estimation error
//! against the learned field. Both train a from-scratch [`Mlp`] with real
//! forward/backward passes — staleness introduced by the synchronization
//! strategies therefore has a genuine effect on statistical efficiency.
//!
//! # Example
//!
//! ```
//! use rog_models::{CrudaSpec, Workload};
//! use rog_tensor::rng::DetRng;
//!
//! let spec = CrudaSpec::small();
//! let workload = spec.build(4, &mut DetRng::new(1));
//! let model = workload.make_model(&mut DetRng::new(2));
//! let acc = workload.test_metric(&model);
//! assert!(acc > 20.0, "pretrained model should beat chance, got {acc}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batching;
mod crimp;
mod cruda;
mod data;
mod mlp;
mod workload;

pub use crimp::{CrimpSpec, CrimpWorkload, Scene};
pub use cruda::{CrudaArch, CrudaSpec, CrudaWorkload};
pub use data::{Dataset, Targets};
pub use mlp::{ConvSpec, GradSet, Mlp, Task};
pub use workload::Workload;
