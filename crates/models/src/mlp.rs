//! From-scratch neural networks with real backpropagation.
//!
//! Two architectures share one parameter layout:
//!
//! * **Dense** — a fully-connected ReLU MLP.
//! * **ConvMLP** — convolutional stages (valid 2-D convolution + ReLU +
//!   average pooling) followed by dense layers, the shape of the paper's
//!   ConvMLP recognition model (Li et al.).
//!
//! All parameters are stored as a flat list of matrices so the rest of
//! the system can address *rows* uniformly: a row of a dense weight
//! matrix is one output neuron's fan-in; a row of a convolution kernel
//! matrix is one output channel's filter bank — both natural units for
//! ROG's row-granulated scheduling.

use rog_tensor::rng::DetRng;
use rog_tensor::{ops, Matrix};
use serde::{Deserialize, Serialize};

use crate::data::{Dataset, Targets};

/// Gradients (or any parameter-shaped quantity) for a whole model.
pub type GradSet = Vec<Matrix>;

/// Output-head objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Task {
    /// Softmax + cross-entropy over class logits.
    Classification,
    /// Mean-squared-error regression.
    Regression,
}

/// One convolutional stage: valid convolution (stride 1), ReLU, then
/// non-overlapping average pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Number of output channels (= rows of the kernel matrix).
    pub out_channels: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Pooling window (1 disables pooling).
    pub pool: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Arch {
    Dense {
        dims: Vec<usize>,
    },
    ConvMlp {
        /// Input shape `(channels, height, width)`.
        input: (usize, usize, usize),
        convs: Vec<ConvSpec>,
        /// Dense widths including the flattened conv output and the
        /// model output.
        dense_dims: Vec<usize>,
    },
}

/// A feed-forward network (dense MLP or ConvMLP).
///
/// # Example
///
/// ```
/// use rog_models::{Mlp, Task};
/// use rog_tensor::rng::DetRng;
///
/// let mlp = Mlp::new(&[4, 8, 3], Task::Classification, &mut DetRng::new(0));
/// assert_eq!(mlp.total_rows(), 8 + 1 + 3 + 1);
/// let logits = mlp.forward(&[0.1, 0.2, 0.3, 0.4]);
/// assert_eq!(logits.len(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    arch: Arch,
    /// Weight/bias pairs per layer: `[W1, b1, W2, b2, ...]` (conv stages
    /// first for ConvMLP).
    params: Vec<Matrix>,
    task: Task,
}

/// Output shape after one conv stage.
fn conv_out_shape(input: (usize, usize, usize), spec: ConvSpec) -> (usize, usize, usize) {
    let (_, h, w) = input;
    assert!(
        h >= spec.kernel && w >= spec.kernel,
        "kernel larger than input"
    );
    let (ch, cw) = (h - spec.kernel + 1, w - spec.kernel + 1);
    let p = spec.pool.max(1);
    (spec.out_channels, ch / p, cw / p)
}

impl Mlp {
    /// Creates a dense network with He-initialized weights.
    ///
    /// `dims` lists layer widths including input and output, e.g.
    /// `[in, hidden..., out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new(dims: &[usize], task: Task, rng: &mut DetRng) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut params = Vec::new();
        for w in dims.windows(2) {
            push_dense(&mut params, w[0], w[1], rng);
        }
        Self {
            arch: Arch::Dense {
                dims: dims.to_vec(),
            },
            params,
            task,
        }
    }

    /// Creates a ConvMLP: `convs` stages over an `input`-shaped image,
    /// then dense layers of the given `hidden` widths down to `out`.
    ///
    /// # Panics
    ///
    /// Panics if a kernel exceeds its input or a pooled dimension
    /// reaches zero.
    pub fn conv_mlp(
        input: (usize, usize, usize),
        convs: &[ConvSpec],
        hidden: &[usize],
        out: usize,
        task: Task,
        rng: &mut DetRng,
    ) -> Self {
        let mut params = Vec::new();
        let mut shape = input;
        for &spec in convs {
            let fan_in = shape.0 * spec.kernel * spec.kernel;
            let std = (2.0 / fan_in as f32).sqrt();
            params.push(Matrix::randn(spec.out_channels, fan_in, std, rng));
            params.push(Matrix::zeros(1, spec.out_channels));
            shape = conv_out_shape(shape, spec);
            assert!(shape.1 > 0 && shape.2 > 0, "pooled dimension collapsed");
        }
        let flat = shape.0 * shape.1 * shape.2;
        let mut dense_dims = vec![flat];
        dense_dims.extend_from_slice(hidden);
        dense_dims.push(out);
        for w in dense_dims.windows(2) {
            push_dense(&mut params, w[0], w[1], rng);
        }
        Self {
            arch: Arch::ConvMlp {
                input,
                convs: convs.to_vec(),
                dense_dims,
            },
            params,
            task,
        }
    }

    /// Layer widths of the dense part (for dense networks, all layers).
    pub fn dims(&self) -> &[usize] {
        match &self.arch {
            Arch::Dense { dims } => dims,
            Arch::ConvMlp { dense_dims, .. } => dense_dims,
        }
    }

    /// Whether the network has convolutional stages.
    pub fn is_conv(&self) -> bool {
        matches!(self.arch, Arch::ConvMlp { .. })
    }

    /// The output-head objective.
    pub fn task(&self) -> Task {
        self.task
    }

    /// The parameter matrices, `[W1, b1, W2, b2, ...]`.
    pub fn params(&self) -> &[Matrix] {
        &self.params
    }

    /// Mutable access to the parameter matrices.
    pub fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    /// Number of scalar parameters.
    pub fn total_params(&self) -> usize {
        self.params.iter().map(Matrix::len).sum()
    }

    /// Number of parameter rows across all matrices — the granularity
    /// ROG schedules at.
    pub fn total_rows(&self) -> usize {
        self.params.iter().map(Matrix::rows).sum()
    }

    /// Width (column count) of every row, in global row order.
    pub fn row_widths(&self) -> Vec<usize> {
        let mut widths = Vec::with_capacity(self.total_rows());
        for m in &self.params {
            widths.extend(std::iter::repeat_n(m.cols(), m.rows()));
        }
        widths
    }

    /// A zeroed gradient set shaped like the parameters.
    pub fn zero_grads(&self) -> GradSet {
        self.params
            .iter()
            .map(|m| Matrix::zeros(m.rows(), m.cols()))
            .collect()
    }

    /// Forward pass for one input; returns raw output (logits or
    /// regression values).
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the input size.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        match &self.arch {
            Arch::Dense { .. } => {
                let n_layers = self.params.len() / 2;
                let mut a = x.to_vec();
                for l in 0..n_layers {
                    a = self.dense_forward_one(l, &a, l + 1 < n_layers);
                }
                a
            }
            Arch::ConvMlp { input, convs, .. } => {
                let mut a = x.to_vec();
                let mut shape = *input;
                for (s, &spec) in convs.iter().enumerate() {
                    let (z, _) = conv_forward(
                        &self.params[2 * s],
                        &self.params[2 * s + 1],
                        &a,
                        shape,
                        spec,
                    );
                    let mut act = z;
                    ops::relu(&mut act);
                    let out_shape = conv_out_shape(shape, spec);
                    a = avg_pool(
                        &act,
                        (
                            spec.out_channels,
                            shape.1 - spec.kernel + 1,
                            shape.2 - spec.kernel + 1,
                        ),
                        spec.pool,
                    );
                    shape = out_shape;
                }
                let first_dense = convs.len();
                let n_dense = self.params.len() / 2 - first_dense;
                for l in 0..n_dense {
                    let li = first_dense + l;
                    a = self.dense_forward_one(li, &a, l + 1 < n_dense);
                }
                a
            }
        }
    }

    fn dense_forward_one(&self, layer: usize, a: &[f32], relu: bool) -> Vec<f32> {
        let w = &self.params[2 * layer];
        let b = &self.params[2 * layer + 1];
        let mut z = w.matvec(a);
        for (zv, bv) in z.iter_mut().zip(b.row(0)) {
            *zv += bv;
        }
        if relu {
            ops::relu(&mut z);
        }
        z
    }

    /// Computes mean loss and mean gradients over the dataset rows
    /// selected by `idxs`, plus the number of correct predictions
    /// (classification only).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or the dataset's target kind
    /// does not match the model task.
    pub fn loss_and_grad(&self, data: &Dataset, idxs: &[usize]) -> (f32, GradSet, usize) {
        let mut grads = self.zero_grads();
        let (loss, correct) = self.loss_and_grad_into(data, idxs, &mut grads);
        (loss, grads, correct)
    }

    /// Like [`Mlp::loss_and_grad`], but writes the gradients into a
    /// caller-provided parameter-shaped buffer (zeroed first), so hot
    /// loops can recycle gradient sets instead of allocating one per
    /// draw. Returns the mean loss and correct-prediction count.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Mlp::loss_and_grad`], or if
    /// `grads` is not shaped like the parameters.
    pub fn loss_and_grad_into(
        &self,
        data: &Dataset,
        idxs: &[usize],
        grads: &mut GradSet,
    ) -> (f32, usize) {
        assert!(!idxs.is_empty(), "empty batch");
        assert_eq!(grads.len(), self.params.len(), "gradient set mismatch");
        for g in grads.iter_mut() {
            g.fill_zero();
        }
        let inv_n = 1.0 / idxs.len() as f32;
        match &self.arch {
            Arch::Dense { .. } => {
                let (total_loss, correct) = self.backward_dense_batch(data, idxs, inv_n, grads);
                (total_loss * inv_n, correct)
            }
            Arch::ConvMlp { .. } => {
                let mut total_loss = 0.0f32;
                let mut correct = 0usize;
                for &i in idxs {
                    let (loss, ok) = self.backward_conv(data, i, inv_n, grads);
                    total_loss += loss;
                    correct += usize::from(ok);
                }
                (total_loss * inv_n, correct)
            }
        }
    }

    /// Loss and dL/d(output) for one sample's raw output.
    fn output_grad(&self, data: &Dataset, i: usize, out: &[f32]) -> (f32, Vec<f32>, bool) {
        match (&data.targets, self.task) {
            (Targets::Labels(ys), Task::Classification) => {
                let label = ys[i];
                let ok = argmax(out) == label;
                let mut d = out.to_vec();
                let loss = ops::softmax_ce_grad(&mut d, label);
                (loss, d, ok)
            }
            (Targets::Values(ys), Task::Regression) => {
                let y = &ys[i];
                assert_eq!(y.len(), out.len(), "target width mismatch");
                let k = out.len() as f32;
                let loss = ops::sq_dist(out, y) / k;
                let d = out.iter().zip(y).map(|(o, t)| 2.0 * (o - t) / k).collect();
                (loss, d, false)
            }
            _ => panic!("dataset target kind does not match model task"),
        }
    }

    /// Batched dense backward pass: the whole batch flows through every
    /// layer as one `batch x width` matrix, so the hot loops are the
    /// blocked [`Matrix::matmul_transb`] / [`Matrix::matmul`] kernels
    /// instead of per-sample matvecs. Weight and bias gradients still
    /// accumulate sample-by-sample (`dW += dz_r ⊗ a_r`), preserving the
    /// element-wise accumulation order of a per-sample sweep.
    fn backward_dense_batch(
        &self,
        data: &Dataset,
        idxs: &[usize],
        scale: f32,
        grads: &mut GradSet,
    ) -> (f32, usize) {
        let n_layers = self.params.len() / 2;
        let b = idxs.len();
        let mut x = Matrix::zeros(b, self.dims()[0]);
        for (r, &i) in idxs.iter().enumerate() {
            x.row_mut(r).copy_from_slice(data.input(i));
        }
        // acts[l] is the input to layer l (post-ReLU for l > 0);
        // pres[l] the pre-activation of hidden layer l.
        let mut acts: Vec<Matrix> = vec![x];
        let mut pres: Vec<Matrix> = Vec::with_capacity(n_layers.saturating_sub(1));
        for l in 0..n_layers {
            let w = &self.params[2 * l];
            let bias = &self.params[2 * l + 1];
            let mut z = acts[l].matmul_transb(w);
            for r in 0..b {
                for (zv, bv) in z.row_mut(r).iter_mut().zip(bias.row(0)) {
                    *zv += bv;
                }
            }
            if l + 1 < n_layers {
                pres.push(z.clone());
                ops::relu(z.as_mut_slice());
            }
            acts.push(z);
        }
        // The logits become dL/dz of the output layer in place.
        let mut dz = acts.pop().expect("non-empty");
        let mut total_loss = 0.0f32;
        let mut correct = 0usize;
        match (&data.targets, self.task) {
            (Targets::Labels(ys), Task::Classification) => {
                for (r, &i) in idxs.iter().enumerate() {
                    let row = dz.row_mut(r);
                    correct += usize::from(argmax(row) == ys[i]);
                    total_loss += ops::softmax_ce_grad(row, ys[i]);
                }
            }
            (Targets::Values(ys), Task::Regression) => {
                for (r, &i) in idxs.iter().enumerate() {
                    let y = &ys[i];
                    let row = dz.row_mut(r);
                    assert_eq!(y.len(), row.len(), "target width mismatch");
                    let k = row.len() as f32;
                    total_loss += ops::sq_dist(row, y) / k;
                    for (o, t) in row.iter_mut().zip(y) {
                        *o = 2.0 * (*o - t) / k;
                    }
                }
            }
            _ => panic!("dataset target kind does not match model task"),
        }
        for l in (0..n_layers).rev() {
            let (left, right) = grads.split_at_mut(2 * l + 1);
            let gw = &mut left[2 * l];
            let gb = &mut right[0];
            for r in 0..b {
                gw.add_outer(dz.row(r), acts[l].row(r), scale);
                for (g, d) in gb.row_mut(0).iter_mut().zip(dz.row(r)) {
                    *g += d * scale;
                }
            }
            if l > 0 {
                let w = &self.params[2 * l];
                let mut da = dz.matmul(w);
                for r in 0..b {
                    ops::relu_backward(pres[l - 1].row(r), da.row_mut(r));
                }
                dz = da;
            }
        }
        (total_loss, correct)
    }

    fn backward_conv(
        &self,
        data: &Dataset,
        i: usize,
        scale: f32,
        grads: &mut GradSet,
    ) -> (f32, bool) {
        let Arch::ConvMlp { input, convs, .. } = &self.arch else {
            unreachable!("dense handled separately");
        };
        let x = data.input(i);
        // Forward with caches.
        let mut shape = *input;
        let mut stage_in: Vec<Vec<f32>> = vec![x.to_vec()];
        let mut stage_pre: Vec<Vec<f32>> = Vec::new(); // pre-ReLU conv maps
        let mut stage_conv_shape: Vec<(usize, usize, usize)> = Vec::new();
        let mut in_shapes: Vec<(usize, usize, usize)> = vec![shape];
        for (s, &spec) in convs.iter().enumerate() {
            let (z, conv_shape) = conv_forward(
                &self.params[2 * s],
                &self.params[2 * s + 1],
                stage_in.last().expect("non-empty"),
                shape,
                spec,
            );
            stage_pre.push(z.clone());
            stage_conv_shape.push(conv_shape);
            let mut act = z;
            ops::relu(&mut act);
            let pooled = avg_pool(&act, conv_shape, spec.pool);
            shape = conv_out_shape(shape, spec);
            in_shapes.push(shape);
            stage_in.push(pooled);
        }
        // Dense part forward.
        let first_dense = convs.len();
        let n_dense = self.params.len() / 2 - first_dense;
        let mut acts: Vec<Vec<f32>> = vec![stage_in.last().expect("non-empty").clone()];
        let mut pres: Vec<Vec<f32>> = Vec::with_capacity(n_dense);
        for l in 0..n_dense {
            let w = &self.params[2 * (first_dense + l)];
            let b = &self.params[2 * (first_dense + l) + 1];
            let mut z = w.matvec(acts.last().expect("non-empty"));
            for (zv, bv) in z.iter_mut().zip(b.row(0)) {
                *zv += bv;
            }
            pres.push(z.clone());
            if l + 1 < n_dense {
                ops::relu(&mut z);
            }
            acts.push(z);
        }
        let out = acts.last().expect("non-empty");
        let (loss, mut dz, ok) = self.output_grad(data, i, out);
        // Dense backward.
        for l in (0..n_dense).rev() {
            let li = first_dense + l;
            grads[2 * li].add_outer(&dz, &acts[l], scale);
            for (g, d) in grads[2 * li + 1].row_mut(0).iter_mut().zip(&dz) {
                *g += d * scale;
            }
            let w = &self.params[2 * li];
            let mut da = w.matvec_t(&dz);
            if l > 0 {
                ops::relu_backward(&pres[l - 1], &mut da);
            }
            dz = da;
        }
        // Conv backward (dz is now the gradient w.r.t. the last pooled
        // map).
        let mut dpool = dz;
        for s in (0..convs.len()).rev() {
            let spec = convs[s];
            let conv_shape = stage_conv_shape[s];
            // Un-pool: spread gradient evenly over the window.
            let mut dact = unpool_grad(&dpool, conv_shape, spec.pool);
            // ReLU mask on the pre-activation.
            ops::relu_backward(&stage_pre[s], &mut dact);
            // Kernel/bias/input gradients.
            let (gk, gb) = grads.split_at_mut(2 * s + 1);
            let din = conv_backward(
                &self.params[2 * s],
                &stage_in[s],
                in_shapes[s],
                spec,
                &dact,
                conv_shape,
                scale,
                &mut gk[2 * s],
                &mut gb[0],
            );
            dpool = din;
        }
        (loss, ok)
    }

    /// Classification accuracy in percent over a labeled dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is unlabeled or empty.
    pub fn accuracy_percent(&self, data: &Dataset) -> f64 {
        let Targets::Labels(ys) = &data.targets else {
            panic!("accuracy requires labels");
        };
        assert!(!ys.is_empty(), "empty dataset");
        let correct = (0..ys.len())
            .filter(|&i| argmax(&self.forward(data.input(i))) == ys[i])
            .count();
        100.0 * correct as f64 / ys.len() as f64
    }

    /// Serializes the full model (architecture + weights) to JSON —
    /// the checkpoint format the paper's evaluation uses ("checkpointing
    /// and validating the training model every 50 iterations").
    ///
    /// # Panics
    ///
    /// Panics only if serialization fails, which cannot happen for
    /// these plain data types.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Restores a model from [`Mlp::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Mean squared error over a regression dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has labels instead of values, or is empty.
    pub fn mse(&self, data: &Dataset) -> f64 {
        let Targets::Values(ys) = &data.targets else {
            panic!("mse requires value targets");
        };
        assert!(!ys.is_empty(), "empty dataset");
        let total: f64 = (0..ys.len())
            .map(|i| {
                let out = self.forward(data.input(i));
                ops::sq_dist(&out, &ys[i]) as f64 / out.len() as f64
            })
            .sum();
        total / ys.len() as f64
    }
}

fn push_dense(params: &mut Vec<Matrix>, fan_in: usize, fan_out: usize, rng: &mut DetRng) {
    let std = (2.0 / fan_in as f32).sqrt();
    params.push(Matrix::randn(fan_out, fan_in, std, rng));
    params.push(Matrix::zeros(1, fan_out));
}

/// Valid 2-D convolution, stride 1. Input is `(c, h, w)` flattened
/// row-major; kernels are `(out_ch, c*k*k)`. Returns the flattened
/// pre-activation map and its shape.
fn conv_forward(
    kernels: &Matrix,
    bias: &Matrix,
    input: &[f32],
    in_shape: (usize, usize, usize),
    spec: ConvSpec,
) -> (Vec<f32>, (usize, usize, usize)) {
    let (c, h, w) = in_shape;
    assert_eq!(input.len(), c * h * w, "input shape mismatch");
    let k = spec.kernel;
    let (oh, ow) = (h - k + 1, w - k + 1);
    let mut out = vec![0.0f32; spec.out_channels * oh * ow];
    for o in 0..spec.out_channels {
        let kern = kernels.row(o);
        let b = bias.get(0, o);
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = b;
                for ci in 0..c {
                    let base = ci * h * w;
                    let kbase = ci * k * k;
                    for dy in 0..k {
                        let row = base + (y + dy) * w + x;
                        let krow = kbase + dy * k;
                        for dx in 0..k {
                            acc += kern[krow + dx] * input[row + dx];
                        }
                    }
                }
                out[o * oh * ow + y * ow + x] = acc;
            }
        }
    }
    (out, (spec.out_channels, oh, ow))
}

/// Non-overlapping average pooling over `(c, h, w)`; truncates ragged
/// edges.
fn avg_pool(input: &[f32], shape: (usize, usize, usize), pool: usize) -> Vec<f32> {
    let p = pool.max(1);
    if p == 1 {
        return input.to_vec();
    }
    let (c, h, w) = shape;
    let (oh, ow) = (h / p, w / p);
    let inv = 1.0 / (p * p) as f32;
    let mut out = vec![0.0f32; c * oh * ow];
    for ci in 0..c {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0.0;
                for dy in 0..p {
                    for dx in 0..p {
                        acc += input[ci * h * w + (y * p + dy) * w + x * p + dx];
                    }
                }
                out[ci * oh * ow + y * ow + x] = acc * inv;
            }
        }
    }
    out
}

/// Gradient of average pooling: spread each pooled gradient evenly.
fn unpool_grad(dpool: &[f32], conv_shape: (usize, usize, usize), pool: usize) -> Vec<f32> {
    let p = pool.max(1);
    let (c, h, w) = conv_shape;
    if p == 1 {
        return dpool.to_vec();
    }
    let (oh, ow) = (h / p, w / p);
    let inv = 1.0 / (p * p) as f32;
    let mut out = vec![0.0f32; c * h * w];
    for ci in 0..c {
        for y in 0..oh {
            for x in 0..ow {
                let g = dpool[ci * oh * ow + y * ow + x] * inv;
                for dy in 0..p {
                    for dx in 0..p {
                        out[ci * h * w + (y * p + dy) * w + x * p + dx] = g;
                    }
                }
            }
        }
    }
    out
}

/// Backward pass of the valid convolution: accumulates kernel and bias
/// gradients (scaled) and returns the input gradient.
#[allow(clippy::too_many_arguments)]
fn conv_backward(
    kernels: &Matrix,
    input: &[f32],
    in_shape: (usize, usize, usize),
    spec: ConvSpec,
    dz: &[f32],
    conv_shape: (usize, usize, usize),
    scale: f32,
    dkern: &mut Matrix,
    dbias: &mut Matrix,
) -> Vec<f32> {
    let (c, h, w) = in_shape;
    let (_, oh, ow) = conv_shape;
    let k = spec.kernel;
    let mut din = vec![0.0f32; c * h * w];
    for o in 0..spec.out_channels {
        let kern = kernels.row(o);
        let dk = dkern.row_mut(o);
        let mut db = 0.0f32;
        for y in 0..oh {
            for x in 0..ow {
                let g = dz[o * oh * ow + y * ow + x];
                if g == 0.0 {
                    continue;
                }
                db += g;
                let gs = g * scale;
                for ci in 0..c {
                    let base = ci * h * w;
                    let kbase = ci * k * k;
                    for dy in 0..k {
                        let row = base + (y + dy) * w + x;
                        let krow = kbase + dy * k;
                        for dx in 0..k {
                            dk[krow + dx] += gs * input[row + dx];
                            din[row + dx] += g * kern[krow + dx];
                        }
                    }
                }
            }
        }
        let cur = dbias.get(0, o);
        dbias.set(0, o, cur + db * scale);
    }
    din
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        // Two linearly separable classes in 2-D.
        let xs = vec![
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 1.0],
            vec![0.1, 0.9],
        ];
        Dataset::labeled(xs, vec![0, 0, 1, 1])
    }

    #[test]
    fn shapes_and_row_counts() {
        let mlp = Mlp::new(&[4, 8, 3], Task::Classification, &mut DetRng::new(0));
        assert_eq!(mlp.params().len(), 4);
        assert_eq!(mlp.total_params(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(mlp.total_rows(), 8 + 1 + 3 + 1);
        assert_eq!(mlp.row_widths().len(), mlp.total_rows());
        assert_eq!(mlp.row_widths()[0], 4);
        assert!(!mlp.is_conv());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = DetRng::new(5);
        let mlp = Mlp::new(&[2, 5, 2], Task::Classification, &mut rng);
        let data = tiny_dataset();
        let idxs = [0, 2];
        let (_, grads, _) = mlp.loss_and_grad(&data, &idxs);
        let eps = 1e-3f32;
        // Check several parameters across all matrices.
        for (mi, probe) in [
            (0usize, (1usize, 1usize)),
            (1, (0, 2)),
            (2, (1, 3)),
            (3, (0, 0)),
        ] {
            let mut plus = mlp.clone();
            plus.params_mut()[mi].set(
                probe.0,
                probe.1,
                mlp.params()[mi].get(probe.0, probe.1) + eps,
            );
            let mut minus = mlp.clone();
            minus.params_mut()[mi].set(
                probe.0,
                probe.1,
                mlp.params()[mi].get(probe.0, probe.1) - eps,
            );
            let (lp, _, _) = plus.loss_and_grad(&data, &idxs);
            let (lm, _, _) = minus.loss_and_grad(&data, &idxs);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads[mi].get(probe.0, probe.1);
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                "matrix {mi} {probe:?}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn regression_gradient_matches_finite_differences() {
        let mut rng = DetRng::new(6);
        let mlp = Mlp::new(&[2, 4, 1], Task::Regression, &mut rng);
        let data = Dataset::regression(
            vec![vec![0.5, -0.5], vec![1.0, 1.0]],
            vec![vec![1.0], vec![-1.0]],
        );
        let (_, grads, _) = mlp.loss_and_grad(&data, &[0, 1]);
        let eps = 1e-3f32;
        let base = mlp.params()[0].get(2, 1);
        let mut plus = mlp.clone();
        plus.params_mut()[0].set(2, 1, base + eps);
        let mut minus = mlp.clone();
        minus.params_mut()[0].set(2, 1, base - eps);
        let (lp, _, _) = plus.loss_and_grad(&data, &[0, 1]);
        let (lm, _, _) = minus.loss_and_grad(&data, &[0, 1]);
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = grads[0].get(2, 1);
        assert!(
            (numeric - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn sgd_training_learns_separable_problem() {
        let mut rng = DetRng::new(7);
        let mut mlp = Mlp::new(&[2, 8, 2], Task::Classification, &mut rng);
        let data = tiny_dataset();
        let idxs: Vec<usize> = (0..4).collect();
        for _ in 0..200 {
            let (_, grads, _) = mlp.loss_and_grad(&data, &idxs);
            for (p, g) in mlp.params_mut().iter_mut().zip(&grads) {
                p.add_scaled(g, -0.5).expect("shapes match");
            }
        }
        assert_eq!(mlp.accuracy_percent(&data), 100.0);
    }

    #[test]
    fn loss_decreases_under_regression_training() {
        let mut rng = DetRng::new(8);
        let mut mlp = Mlp::new(&[1, 8, 1], Task::Regression, &mut rng);
        let xs: Vec<Vec<f32>> = (0..16).map(|i| vec![i as f32 / 8.0 - 1.0]).collect();
        let ys: Vec<Vec<f32>> = xs.iter().map(|x| vec![x[0] * x[0]]).collect();
        let data = Dataset::regression(xs, ys);
        let idxs: Vec<usize> = (0..16).collect();
        let before = mlp.mse(&data);
        for _ in 0..300 {
            let (_, grads, _) = mlp.loss_and_grad(&data, &idxs);
            for (p, g) in mlp.params_mut().iter_mut().zip(&grads) {
                p.add_scaled(g, -0.3).expect("shapes match");
            }
        }
        assert!(
            mlp.mse(&data) < before / 4.0,
            "mse {} -> {}",
            before,
            mlp.mse(&data)
        );
    }

    #[test]
    fn forward_is_deterministic_for_fixed_seed() {
        let a = Mlp::new(&[3, 4, 2], Task::Classification, &mut DetRng::new(11));
        let b = Mlp::new(&[3, 4, 2], Task::Classification, &mut DetRng::new(11));
        assert_eq!(a.forward(&[0.1, 0.2, 0.3]), b.forward(&[0.1, 0.2, 0.3]));
    }

    #[test]
    #[should_panic(expected = "does not match model task")]
    fn task_mismatch_panics() {
        let mlp = Mlp::new(&[2, 2], Task::Regression, &mut DetRng::new(0));
        let data = tiny_dataset();
        let _ = mlp.loss_and_grad(&data, &[0]);
    }

    // ---- ConvMLP ----

    fn conv_net(rng: &mut DetRng) -> Mlp {
        Mlp::conv_mlp(
            (1, 6, 6),
            &[ConvSpec {
                out_channels: 3,
                kernel: 3,
                pool: 2,
            }],
            &[10],
            2,
            Task::Classification,
            rng,
        )
    }

    fn image_dataset(rng: &mut DetRng) -> Dataset {
        // Class 0: bright top half; class 1: bright bottom half.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..12 {
            let class = i % 2;
            let img: Vec<f32> = (0..36)
                .map(|p| {
                    let row = p / 6;
                    let bright = if class == 0 { row < 3 } else { row >= 3 };
                    (if bright { 1.0 } else { 0.0 }) + 0.1 * rng.normal() as f32
                })
                .collect();
            xs.push(img);
            ys.push(class);
        }
        Dataset::labeled(xs, ys)
    }

    #[test]
    fn conv_shapes_are_consistent() {
        let net = conv_net(&mut DetRng::new(1));
        assert!(net.is_conv());
        // conv (1,6,6) -k3-> (3,4,4) -pool2-> (3,2,2) = 12 flat.
        assert_eq!(net.params()[0].shape(), (3, 9));
        assert_eq!(net.params()[1].shape(), (1, 3));
        assert_eq!(net.params()[2].shape(), (10, 12));
        assert_eq!(net.params()[4].shape(), (2, 10));
        let out = net.forward(&[0.5; 36]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn conv_gradient_matches_finite_differences() {
        let mut rng = DetRng::new(2);
        let net = conv_net(&mut rng);
        let data = image_dataset(&mut rng);
        let idxs = [0, 1, 2];
        let (_, grads, _) = net.loss_and_grad(&data, &idxs);
        let eps = 1e-2f32;
        // Probe kernel, conv bias, dense weight, dense bias, output
        // layer.
        for (mi, r, c) in [
            (0usize, 1usize, 4usize),
            (1, 0, 2),
            (2, 3, 7),
            (3, 0, 5),
            (4, 1, 1),
        ] {
            let base = net.params()[mi].get(r, c);
            let mut plus = net.clone();
            plus.params_mut()[mi].set(r, c, base + eps);
            let mut minus = net.clone();
            minus.params_mut()[mi].set(r, c, base - eps);
            let (lp, _, _) = plus.loss_and_grad(&data, &idxs);
            let (lm, _, _) = minus.loss_and_grad(&data, &idxs);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads[mi].get(r, c);
            assert!(
                (numeric - analytic).abs() < 5e-2 * (1.0 + analytic.abs()),
                "matrix {mi} ({r},{c}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn conv_net_learns_spatial_pattern() {
        let mut rng = DetRng::new(3);
        let mut net = conv_net(&mut rng);
        let data = image_dataset(&mut rng);
        let idxs: Vec<usize> = (0..data.len()).collect();
        for _ in 0..150 {
            let (_, grads, _) = net.loss_and_grad(&data, &idxs);
            for (p, g) in net.params_mut().iter_mut().zip(&grads) {
                p.add_scaled(g, -0.2).expect("shapes match");
            }
        }
        assert!(
            net.accuracy_percent(&data) >= 90.0,
            "accuracy {}",
            net.accuracy_percent(&data)
        );
    }

    #[test]
    fn pooling_averages_windows() {
        // 1 channel, 4x4 input, pool 2.
        let input: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let out = avg_pool(&input, (1, 4, 4), 2);
        assert_eq!(out, vec![2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn unpool_spreads_evenly_and_is_adjoint() {
        let g = vec![4.0, 8.0, 12.0, 16.0];
        let spread = unpool_grad(&g, (1, 4, 4), 2);
        assert_eq!(spread.len(), 16);
        assert_eq!(spread[0], 1.0);
        assert_eq!(spread[5], 1.0);
        // <pool(x), g> == <x, unpool(g)> for any x (adjoint property).
        let x: Vec<f32> = (0..16).map(|v| (v as f32).sin()).collect();
        let px = avg_pool(&x, (1, 4, 4), 2);
        let lhs: f32 = px.iter().zip(&g).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&spread).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn checkpoint_round_trip_preserves_behaviour() {
        let mut rng = DetRng::new(21);
        let net = conv_net(&mut rng);
        let restored = Mlp::from_json(&net.to_json()).expect("parses");
        let x = vec![0.25f32; 36];
        assert_eq!(net.forward(&x), restored.forward(&x));
        assert_eq!(net.total_rows(), restored.total_rows());
        assert!(Mlp::from_json("not json").is_err());
    }

    #[test]
    #[should_panic(expected = "kernel larger than input")]
    fn oversized_kernel_panics() {
        let _ = Mlp::conv_mlp(
            (1, 2, 2),
            &[ConvSpec {
                out_channels: 1,
                kernel: 3,
                pool: 1,
            }],
            &[],
            2,
            Task::Classification,
            &mut DetRng::new(0),
        );
    }
}
