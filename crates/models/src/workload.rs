//! Common interface the training harness drives workloads through.

use rog_tensor::rng::DetRng;

use crate::{Dataset, Mlp};

/// A distributed-training workload: a model template, per-worker data
/// shards, and an evaluation metric.
///
/// Implemented by [`crate::CrudaWorkload`] (metric: accuracy %, higher is
/// better) and [`crate::CrimpWorkload`] (metric: trajectory error, lower
/// is better).
pub trait Workload {
    /// Short name ("cruda", "crimp").
    fn name(&self) -> &'static str;

    /// Creates the initial shared model every worker starts from (for
    /// CRUDA this is the *pretrained* model the robots adapt).
    fn make_model(&self, rng: &mut DetRng) -> Mlp;

    /// Per-worker training shards; `shards().len()` is the worker count
    /// the workload was built for.
    fn shards(&self) -> &[Dataset];

    /// Evaluates the metric on the test set.
    fn test_metric(&self, model: &Mlp) -> f64;

    /// Display name of the metric ("accuracy %" / "trajectory error").
    fn metric_name(&self) -> &'static str;

    /// Whether larger metric values are better.
    fn metric_higher_better(&self) -> bool;

    /// Reference batch size on a robot (Table II: 24 for CRUDA).
    fn base_batch_size(&self) -> usize;

    /// Suggested learning rate for the default setup.
    fn learning_rate(&self) -> f32;
}
