//! CRUDA — coordinated robotic unsupervised domain adaptation.
//!
//! Paper setup (Sec. VI): a ConvMLP pretrained on Fed-CIFAR100 reaches
//! 89.13 % accuracy; DeepTest-style fog/brightness noise drops it to
//! 52.88 %, and the robot team adapts the model online on noised data to
//! recover accuracy. The data is non-IID across robots (Pachinko
//! allocation shards).
//!
//! Stand-in here: a multi-class Gaussian-mixture classification problem.
//! The *source* domain is the clean mixture; the *shifted* domain applies
//! a random linear distortion plus a fog-like blend toward a constant
//! vector plus extra noise. A model is pretrained on the source domain at
//! workload build time (real SGD), after which its accuracy on the
//! shifted test set is substantially degraded — the distributed training
//! run then adapts it on shifted, Dirichlet-sharded training data,
//! exactly mirroring the paper's accuracy-recovery curves.

use rog_tensor::rng::DetRng;
use rog_tensor::Matrix;

use crate::{ConvSpec, Dataset, Mlp, Task, Workload};

/// Model architecture for the CRUDA workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrudaArch {
    /// Fully-connected MLP on feature vectors (the calibrated default).
    Dense,
    /// ConvMLP on `side x side` single-channel images — the shape of the
    /// paper's actual recognition model. Implies `dim == side * side`
    /// and spatially structured class templates.
    ConvMlp {
        /// Image side length.
        side: usize,
        /// Convolutional stages.
        convs: Vec<ConvSpec>,
    },
}

/// Parameters of the synthetic CRUDA workload.
#[derive(Debug, Clone, PartialEq)]
pub struct CrudaSpec {
    /// Number of classes.
    pub classes: usize,
    /// Input feature dimension.
    pub dim: usize,
    /// Hidden-layer widths of the model.
    pub hidden: Vec<usize>,
    /// Training samples per class (shifted domain).
    pub train_per_class: usize,
    /// Test samples per class (shifted domain).
    pub test_per_class: usize,
    /// Distance scale between class means.
    pub class_sep: f32,
    /// Within-class standard deviation.
    pub within_std: f32,
    /// Severity of the domain shift in `[0, 1]`.
    pub shift_strength: f32,
    /// Dirichlet concentration for non-IID sharding (lower = more skew).
    pub dirichlet_alpha: f64,
    /// Pretraining SGD steps on the source domain.
    pub pretrain_steps: usize,
    /// Pretraining batch size.
    pub pretrain_batch: usize,
    /// Pretraining learning rate.
    pub pretrain_lr: f32,
    /// Learning rate suggested for the adaptation phase.
    pub adapt_lr: f32,
    /// Model architecture.
    pub arch: CrudaArch,
}

impl CrudaSpec {
    /// Default evaluation-scale spec (used by the experiment binaries).
    pub fn paper() -> Self {
        Self {
            classes: 24,
            dim: 40,
            hidden: vec![112, 80],
            train_per_class: 250,
            test_per_class: 40,
            class_sep: 1.5,
            within_std: 1.0,
            shift_strength: 0.9,
            dirichlet_alpha: 0.1,
            pretrain_steps: 900,
            pretrain_batch: 48,
            pretrain_lr: 0.08,
            adapt_lr: 0.015,
            arch: CrudaArch::Dense,
        }
    }

    /// The evaluation-scale ConvMLP variant: 12x12 single-channel
    /// "images" with smooth class templates, recognized by a two-stage
    /// ConvMLP — the architecture family of the paper's model.
    pub fn conv_paper() -> Self {
        Self {
            classes: 16,
            dim: 144,
            hidden: vec![64],
            train_per_class: 250,
            test_per_class: 40,
            class_sep: 0.75,
            within_std: 1.1,
            shift_strength: 1.0,
            dirichlet_alpha: 0.1,
            pretrain_steps: 900,
            pretrain_batch: 48,
            pretrain_lr: 0.08,
            adapt_lr: 0.015,
            arch: CrudaArch::ConvMlp {
                side: 12,
                convs: vec![
                    ConvSpec {
                        out_channels: 8,
                        kernel: 3,
                        pool: 2,
                    },
                    ConvSpec {
                        out_channels: 12,
                        kernel: 3,
                        pool: 1,
                    },
                ],
            },
        }
    }

    /// A tiny spec for unit tests (builds in milliseconds).
    pub fn small() -> Self {
        Self {
            classes: 5,
            dim: 8,
            hidden: vec![16],
            train_per_class: 30,
            test_per_class: 10,
            class_sep: 1.2,
            within_std: 1.0,
            shift_strength: 1.0,
            dirichlet_alpha: 0.5,
            pretrain_steps: 150,
            pretrain_batch: 16,
            pretrain_lr: 0.1,
            adapt_lr: 0.05,
            arch: CrudaArch::Dense,
        }
    }

    /// A tiny ConvMLP spec for unit tests.
    pub fn conv_small() -> Self {
        Self {
            classes: 4,
            dim: 36,
            hidden: vec![12],
            train_per_class: 25,
            test_per_class: 10,
            class_sep: 1.3,
            within_std: 0.5,
            shift_strength: 0.9,
            dirichlet_alpha: 0.5,
            pretrain_steps: 150,
            pretrain_batch: 16,
            pretrain_lr: 0.1,
            adapt_lr: 0.05,
            arch: CrudaArch::ConvMlp {
                side: 6,
                convs: vec![ConvSpec {
                    out_channels: 4,
                    kernel: 3,
                    pool: 2,
                }],
            },
        }
    }

    /// Builds the workload for `n_workers`, deterministically from `rng`.
    ///
    /// This synthesizes both domains, pretrains the model on the source
    /// domain, and shards the shifted training data non-IID.
    ///
    /// # Panics
    ///
    /// Panics if `n_workers == 0`.
    pub fn build(&self, n_workers: usize, rng: &mut DetRng) -> CrudaWorkload {
        assert!(n_workers > 0, "need at least one worker");
        let mut data_rng = rng.fork(0xDA7A);
        let mut model_rng = rng.fork(0x0DE1);

        // Class means: a scaled Gaussian cloud for dense inputs, or
        // smooth (box-blurred) random templates for image inputs so the
        // classes carry spatial structure a convolution can exploit.
        let means: Vec<Vec<f32>> = match &self.arch {
            CrudaArch::Dense => (0..self.classes)
                .map(|_| {
                    (0..self.dim)
                        .map(|_| {
                            data_rng.normal() as f32 * self.class_sep / (self.dim as f32).sqrt()
                                * 2.0
                        })
                        .collect()
                })
                .collect(),
            CrudaArch::ConvMlp { side, .. } => {
                assert_eq!(
                    self.dim,
                    side * side,
                    "ConvMlp arch requires dim == side * side"
                );
                (0..self.classes)
                    .map(|_| {
                        let raw: Vec<f32> = (0..self.dim)
                            .map(|_| data_rng.normal() as f32 * self.class_sep * 1.8)
                            .collect();
                        box_blur(&box_blur(&raw, *side), *side)
                    })
                    .collect()
            }
        };

        // Domain-shift transform: x' = (1-fog)(Mx + b) + fog*c + noise.
        let shift = self.shift_strength;
        let distort = Matrix::from_fn(self.dim, self.dim, |r, c| {
            let eye = if r == c { 1.0 } else { 0.0 };
            eye + shift * 0.7 * data_rng.normal() as f32 / (self.dim as f32).sqrt()
        });
        let offset: Vec<f32> = (0..self.dim)
            .map(|_| shift * 0.8 * data_rng.normal() as f32)
            .collect();
        let fog_target: Vec<f32> = (0..self.dim)
            .map(|_| data_rng.normal() as f32 * 0.5)
            .collect();
        let fog = shift * 0.45;

        let mut draw = |rng: &mut DetRng, class: usize, shifted: bool| -> Vec<f32> {
            let mean = &means[class];
            let clean: Vec<f32> = mean
                .iter()
                .map(|m| m + self.within_std * rng.normal() as f32)
                .collect();
            if !shifted {
                return clean;
            }
            let mut x = distort.matvec(&clean);
            for ((xv, o), f) in x.iter_mut().zip(&offset).zip(&fog_target) {
                *xv = (1.0 - fog) * (*xv + o) + fog * f + shift * 0.3 * rng.normal() as f32;
            }
            x
        };

        let make_set = |rng: &mut DetRng,
                        per_class: usize,
                        shifted: bool,
                        draw: &mut dyn FnMut(&mut DetRng, usize, bool) -> Vec<f32>|
         -> Dataset {
            let mut xs = Vec::with_capacity(per_class * self.classes);
            let mut ys = Vec::with_capacity(per_class * self.classes);
            for class in 0..self.classes {
                for _ in 0..per_class {
                    xs.push(draw(rng, class, shifted));
                    ys.push(class);
                }
            }
            Dataset::labeled(xs, ys)
        };

        let source_train = make_set(
            &mut data_rng.fork(1),
            self.train_per_class,
            false,
            &mut draw,
        );
        let source_test = make_set(&mut data_rng.fork(2), self.test_per_class, false, &mut draw);
        let target_train = make_set(&mut data_rng.fork(3), self.train_per_class, true, &mut draw);
        let target_test = make_set(&mut data_rng.fork(4), self.test_per_class, true, &mut draw);

        // Pretrain on the source domain.
        let mut model = match &self.arch {
            CrudaArch::Dense => {
                let mut dims = vec![self.dim];
                dims.extend_from_slice(&self.hidden);
                dims.push(self.classes);
                Mlp::new(&dims, Task::Classification, &mut model_rng)
            }
            CrudaArch::ConvMlp { side, convs } => Mlp::conv_mlp(
                (1, *side, *side),
                convs,
                &self.hidden,
                self.classes,
                Task::Classification,
                &mut model_rng,
            ),
        };
        let mut pre_rng = rng.fork(0x9E7);
        for _ in 0..self.pretrain_steps {
            let batch = source_train.sample_batch(self.pretrain_batch, &mut pre_rng);
            let (_, grads, _) = model.loss_and_grad(&source_train, &batch);
            for (p, g) in model.params_mut().iter_mut().zip(&grads) {
                p.add_scaled(g, -self.pretrain_lr).expect("shapes match");
            }
        }

        let shards =
            target_train.dirichlet_shards(n_workers, self.dirichlet_alpha, &mut rng.fork(0x5A));

        CrudaWorkload {
            spec: self.clone(),
            pretrained: model,
            shards,
            source_test,
            target_test,
        }
    }
}

/// 3x3 box blur on a `side x side` image (edge-clamped).
fn box_blur(img: &[f32], side: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; img.len()];
    let s = side as isize;
    for y in 0..s {
        for x in 0..s {
            let mut acc = 0.0;
            let mut n = 0.0;
            for dy in -1..=1 {
                for dx in -1..=1 {
                    let (yy, xx) = (y + dy, x + dx);
                    if yy >= 0 && yy < s && xx >= 0 && xx < s {
                        acc += img[(yy * s + xx) as usize];
                        n += 1.0;
                    }
                }
            }
            out[(y * s + x) as usize] = acc / n;
        }
    }
    out
}

/// The built CRUDA workload (see module docs).
#[derive(Debug, Clone)]
pub struct CrudaWorkload {
    spec: CrudaSpec,
    pretrained: Mlp,
    shards: Vec<Dataset>,
    source_test: Dataset,
    target_test: Dataset,
}

impl CrudaWorkload {
    /// The spec the workload was built from.
    pub fn spec(&self) -> &CrudaSpec {
        &self.spec
    }

    /// Accuracy (%) of a model on the clean source-domain test set.
    pub fn source_accuracy(&self, model: &Mlp) -> f64 {
        model.accuracy_percent(&self.source_test)
    }

    /// The shifted-domain test set.
    pub fn target_test(&self) -> &Dataset {
        &self.target_test
    }
}

impl Workload for CrudaWorkload {
    fn name(&self) -> &'static str {
        "cruda"
    }

    fn make_model(&self, _rng: &mut DetRng) -> Mlp {
        // Every robot starts from the same pretrained parameters.
        self.pretrained.clone()
    }

    fn shards(&self) -> &[Dataset] {
        &self.shards
    }

    fn test_metric(&self, model: &Mlp) -> f64 {
        model.accuracy_percent(&self.target_test)
    }

    fn metric_name(&self) -> &'static str {
        "accuracy %"
    }

    fn metric_higher_better(&self) -> bool {
        true
    }

    fn base_batch_size(&self) -> usize {
        24
    }

    fn learning_rate(&self) -> f32 {
        self.spec.adapt_lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretraining_learns_source_domain() {
        let wl = CrudaSpec::small().build(2, &mut DetRng::new(1));
        let model = wl.make_model(&mut DetRng::new(0));
        let src = wl.source_accuracy(&model);
        assert!(src > 70.0, "source accuracy after pretraining: {src}");
    }

    #[test]
    fn domain_shift_degrades_accuracy() {
        let wl = CrudaSpec::small().build(2, &mut DetRng::new(1));
        let model = wl.make_model(&mut DetRng::new(0));
        let src = wl.source_accuracy(&model);
        let tgt = wl.test_metric(&model);
        assert!(
            tgt < src - 10.0,
            "shift should visibly degrade accuracy: source {src} vs target {tgt}"
        );
        assert!(
            tgt > 100.0 / 5.0 * 0.6,
            "should still beat random-ish: {tgt}"
        );
    }

    #[test]
    fn adaptation_on_shifted_data_recovers_accuracy() {
        let wl = CrudaSpec::small().build(1, &mut DetRng::new(2));
        let mut model = wl.make_model(&mut DetRng::new(0));
        let before = wl.test_metric(&model);
        let shard = &wl.shards()[0];
        let mut rng = DetRng::new(3);
        for _ in 0..250 {
            let batch = shard.sample_batch(16, &mut rng);
            let (_, grads, _) = model.loss_and_grad(shard, &batch);
            for (p, g) in model.params_mut().iter_mut().zip(&grads) {
                p.add_scaled(g, -wl.learning_rate()).expect("shapes match");
            }
        }
        let after = wl.test_metric(&model);
        assert!(
            after > before + 5.0,
            "adaptation should recover accuracy: {before} -> {after}"
        );
    }

    #[test]
    fn build_is_deterministic() {
        let a = CrudaSpec::small().build(3, &mut DetRng::new(7));
        let b = CrudaSpec::small().build(3, &mut DetRng::new(7));
        assert_eq!(a.shards()[1], b.shards()[1]);
        let ma = a.make_model(&mut DetRng::new(0));
        let mb = b.make_model(&mut DetRng::new(0));
        assert_eq!(ma.params()[0], mb.params()[0]);
    }

    #[test]
    fn conv_workload_builds_and_adapts() {
        let wl = CrudaSpec::conv_small().build(2, &mut DetRng::new(4));
        let mut model = wl.make_model(&mut DetRng::new(0));
        assert!(model.is_conv());
        let src = wl.source_accuracy(&model);
        let before = wl.test_metric(&model);
        assert!(src > 60.0, "conv pretraining should work: {src}");
        assert!(before < src, "shift should degrade: {src} -> {before}");
        // Adapt briefly on the full shifted pool.
        let full = CrudaSpec::conv_small().build(1, &mut DetRng::new(4));
        let shard = &full.shards()[0];
        let mut rng = DetRng::new(5);
        for _ in 0..150 {
            let batch = shard.sample_batch(16, &mut rng);
            let (_, grads, _) = model.loss_and_grad(shard, &batch);
            for (p, g) in model.params_mut().iter_mut().zip(&grads) {
                p.add_scaled(g, -full.learning_rate())
                    .expect("shapes match");
            }
        }
        let after = wl.test_metric(&model);
        assert!(
            after > before,
            "conv adaptation should improve accuracy: {before} -> {after}"
        );
    }

    #[test]
    fn conv_templates_are_spatially_smooth() {
        // The blurred class templates must have lower neighbor-difference
        // energy than white noise of the same variance.
        let wl = CrudaSpec::conv_small().build(1, &mut DetRng::new(6));
        let model = wl.make_model(&mut DetRng::new(0));
        // Indirect check: the conv model must beat chance on the source
        // domain, which requires spatial structure.
        assert!(wl.source_accuracy(&model) > 2.0 * 100.0 / 4.0);
    }

    #[test]
    fn shards_match_worker_count() {
        let wl = CrudaSpec::small().build(4, &mut DetRng::new(9));
        assert_eq!(wl.shards().len(), 4);
        assert!(wl.shards().iter().all(|s| !s.is_empty()));
    }
}
