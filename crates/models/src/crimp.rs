//! CRIMP — coordinated robotic implicit mapping and positioning.
//!
//! Paper setup (Sec. VI): a team of robots cooperatively trains
//! nice-slam, an implicit neural representation of a 3-D scene, from a
//! continuous ScanNet image sequence split among the robots; the metric
//! is *trajectory error* — the distance between ground-truth robot poses
//! and the poses estimated against the learned map.
//!
//! Stand-in here: a synthetic 2-D scene — an occupancy/appearance field
//! built from Gaussian blobs over a `SCENE_METERS`-sized area. Robots
//! traverse a smooth trajectory; each pose contributes observation
//! samples (world point → field value) to the training set, split
//! *contiguously* among robots like the paper splits the image sequence.
//! The trained [`Mlp`] is an implicit map: localization re-estimates each
//! test pose by sliding a window of observed field values over the
//! model's predictions and picking the offset with the lowest error —
//! the error of that estimate, averaged over poses, is the trajectory
//! error. An untrained map localizes no better than chance within the
//! search window; a well-trained map pins poses down to the lattice
//! resolution, reproducing the paper's decreasing error curves.

use rog_tensor::rng::DetRng;
use rog_tensor::Matrix;

use crate::{Dataset, Mlp, Task, Workload};

/// Side length of the synthetic scene in meters (unit square scaled).
pub const SCENE_METERS: f64 = 10.0;

/// A synthetic occupancy field: a sum of Gaussian blobs on the unit
/// square, clamped to `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    centers: Vec<(f64, f64)>,
    amps: Vec<f64>,
    inv_two_sigma_sq: Vec<f64>,
}

impl Scene {
    /// Generates a scene of `blobs` random Gaussian features.
    ///
    /// # Panics
    ///
    /// Panics if `blobs == 0`.
    pub fn generate(blobs: usize, rng: &mut DetRng) -> Self {
        assert!(blobs > 0, "scene needs at least one feature");
        let mut centers = Vec::with_capacity(blobs);
        let mut amps = Vec::with_capacity(blobs);
        let mut inv = Vec::with_capacity(blobs);
        for _ in 0..blobs {
            centers.push((rng.uniform(), rng.uniform()));
            amps.push(rng.uniform_range(0.4, 1.0));
            let sigma = rng.uniform_range(0.03, 0.12);
            inv.push(1.0 / (2.0 * sigma * sigma));
        }
        Self {
            centers,
            amps,
            inv_two_sigma_sq: inv,
        }
    }

    /// Field value at unit-square coordinates `(x, y)`, in `[0, 1]`.
    pub fn field(&self, x: f64, y: f64) -> f64 {
        let mut v = 0.0;
        for i in 0..self.centers.len() {
            let (cx, cy) = self.centers[i];
            let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
            v += self.amps[i] * (-d2 * self.inv_two_sigma_sq[i]).exp();
        }
        v.clamp(0.0, 1.0)
    }
}

/// Parameters of the synthetic CRIMP workload.
#[derive(Debug, Clone, PartialEq)]
pub struct CrimpSpec {
    /// Number of Gaussian features in the scene.
    pub blobs: usize,
    /// Number of random Fourier feature frequencies (input dim is
    /// `2 + 2 * fourier`).
    pub fourier: usize,
    /// Hidden-layer widths of the implicit-map model.
    pub hidden: Vec<usize>,
    /// Number of trajectory poses contributing training observations.
    pub poses: usize,
    /// Random observation samples per pose.
    pub samples_per_pose: usize,
    /// Observation sampling radius around a pose (unit-square units).
    pub obs_radius: f64,
    /// Localization lattice step (unit-square units).
    pub lattice_step: f64,
    /// Localization search radius, in lattice steps.
    pub search_steps: usize,
    /// Test poses used for trajectory-error evaluation.
    pub eval_poses: usize,
    /// Learning rate suggested for training.
    pub lr: f32,
}

impl CrimpSpec {
    /// Default evaluation-scale spec.
    pub fn paper() -> Self {
        Self {
            blobs: 24,
            fourier: 12,
            hidden: vec![72, 56],
            poses: 160,
            samples_per_pose: 14,
            obs_radius: 0.05,
            lattice_step: 0.015,
            search_steps: 14,
            eval_poses: 12,
            lr: 0.05,
        }
    }

    /// A tiny spec for unit tests.
    pub fn small() -> Self {
        Self {
            blobs: 8,
            fourier: 6,
            hidden: vec![24],
            poses: 40,
            samples_per_pose: 8,
            obs_radius: 0.05,
            lattice_step: 0.02,
            search_steps: 5,
            eval_poses: 6,
            lr: 0.08,
        }
    }

    /// Builds the workload for `n_workers`.
    ///
    /// # Panics
    ///
    /// Panics if `n_workers == 0` or there are fewer poses than workers.
    pub fn build(&self, n_workers: usize, rng: &mut DetRng) -> CrimpWorkload {
        assert!(n_workers > 0, "need at least one worker");
        assert!(self.poses >= n_workers, "fewer poses than workers");
        let mut scene_rng = rng.fork(0x5CE);
        let scene = Scene::generate(self.blobs, &mut scene_rng);

        // Random Fourier frequencies, fixed for the workload.
        let mut feat_rng = rng.fork(0xFEA7);
        let freqs: Vec<(f64, f64)> = (0..self.fourier)
            .map(|_| (feat_rng.normal() * 3.0, feat_rng.normal() * 3.0))
            .collect();

        // Smooth Lissajous-like trajectory inside the unit square.
        let trajectory: Vec<(f64, f64)> = (0..self.poses)
            .map(|i| {
                let t = i as f64 / self.poses as f64 * std::f64::consts::TAU;
                (
                    0.5 + 0.34 * (1.0 * t).sin() + 0.08 * (3.0 * t).cos(),
                    0.5 + 0.34 * (2.0 * t).cos() + 0.08 * (5.0 * t).sin(),
                )
            })
            .collect();

        // Observation samples along the trajectory, in pose order so the
        // contiguous split mirrors the paper's sequence split.
        let mut obs_rng = rng.fork(0x0B5);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &(px, py) in &trajectory {
            for _ in 0..self.samples_per_pose {
                let dx = obs_rng.uniform_range(-self.obs_radius, self.obs_radius);
                let dy = obs_rng.uniform_range(-self.obs_radius, self.obs_radius);
                let (wx, wy) = (px + dx, py + dy);
                xs.push(featurize(wx, wy, &freqs));
                ys.push(vec![scene.field(wx, wy) as f32]);
            }
        }
        let train = Dataset::regression(xs, ys);
        let shards = train.contiguous_shards(n_workers);

        // Evenly spaced test poses for localization.
        let eval_poses: Vec<(f64, f64)> = (0..self.eval_poses)
            .map(|i| trajectory[i * self.poses / self.eval_poses])
            .collect();

        CrimpWorkload {
            spec: self.clone(),
            scene,
            freqs,
            shards,
            eval_poses,
        }
    }
}

/// Random-Fourier featurization of a world point.
fn featurize(x: f64, y: f64, freqs: &[(f64, f64)]) -> Vec<f32> {
    let mut f = Vec::with_capacity(2 + 2 * freqs.len());
    f.push(x as f32);
    f.push(y as f32);
    for &(fx, fy) in freqs {
        let phase = std::f64::consts::TAU * (fx * x + fy * y);
        f.push(phase.sin() as f32);
        f.push(phase.cos() as f32);
    }
    f
}

/// The built CRIMP workload (see module docs).
#[derive(Debug, Clone)]
pub struct CrimpWorkload {
    spec: CrimpSpec,
    scene: Scene,
    freqs: Vec<(f64, f64)>,
    shards: Vec<Dataset>,
    eval_poses: Vec<(f64, f64)>,
}

impl CrimpWorkload {
    /// The spec the workload was built from.
    pub fn spec(&self) -> &CrimpSpec {
        &self.spec
    }

    /// The ground-truth scene.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Mean localization error in meters over the evaluation poses.
    ///
    /// For each test pose the robot "observes" the true field on a 3×3
    /// patch (2-lattice-step spacing) and slides that patch over the
    /// model's predicted field within `search_steps` lattice steps; the
    /// best-matching offset is the pose estimate.
    pub fn trajectory_error(&self, model: &Mlp) -> f64 {
        let h = self.spec.lattice_step;
        let r = self.spec.search_steps as isize;
        // Patch: 3x3 lattice points with spacing 2h.
        let patch: Vec<(isize, isize)> = [-2isize, 0, 2]
            .iter()
            .flat_map(|&dx| [-2isize, 0, 2].iter().map(move |&dy| (dx, dy)))
            .collect();
        let mut total_err = 0.0;
        for &(px, py) in &self.eval_poses {
            // Model predictions on the lattice covering search + patch.
            let lo = -(r + 2);
            let hi = r + 2;
            let side = (hi - lo + 1) as usize;
            let mut pred = vec![0.0f32; side * side];
            for ix in lo..=hi {
                for iy in lo..=hi {
                    let (wx, wy) = (px + ix as f64 * h, py + iy as f64 * h);
                    let out = model.forward(&featurize(wx, wy, &self.freqs));
                    pred[((ix - lo) as usize) * side + (iy - lo) as usize] = out[0];
                }
            }
            // Observed true values at the patch around the true pose.
            let observed: Vec<f64> = patch
                .iter()
                .map(|&(dx, dy)| self.scene.field(px + dx as f64 * h, py + dy as f64 * h))
                .collect();
            // Slide the patch.
            let (mut best_d2, mut best_off) = (f64::INFINITY, (0isize, 0isize));
            for ox in -r..=r {
                for oy in -r..=r {
                    let mut d2 = 0.0;
                    for (k, &(dx, dy)) in patch.iter().enumerate() {
                        let ix = (ox + dx - lo) as usize;
                        let iy = (oy + dy - lo) as usize;
                        let diff = pred[ix * side + iy] as f64 - observed[k];
                        d2 += diff * diff;
                    }
                    if d2 < best_d2 {
                        best_d2 = d2;
                        best_off = (ox, oy);
                    }
                }
            }
            let (ox, oy) = best_off;
            let err_units = ((ox * ox + oy * oy) as f64).sqrt() * h;
            total_err += err_units * SCENE_METERS;
        }
        total_err / self.eval_poses.len() as f64
    }

    /// Input feature dimension of the implicit-map model.
    pub fn input_dim(&self) -> usize {
        2 + 2 * self.freqs.len()
    }
}

impl Workload for CrimpWorkload {
    fn name(&self) -> &'static str {
        "crimp"
    }

    fn make_model(&self, rng: &mut DetRng) -> Mlp {
        let mut dims = vec![self.input_dim()];
        dims.extend_from_slice(&self.spec.hidden);
        dims.push(1);
        Mlp::new(&dims, Task::Regression, rng)
    }

    fn shards(&self) -> &[Dataset] {
        &self.shards
    }

    fn test_metric(&self, model: &Mlp) -> f64 {
        self.trajectory_error(model)
    }

    fn metric_name(&self) -> &'static str {
        "trajectory error (m)"
    }

    fn metric_higher_better(&self) -> bool {
        false
    }

    fn base_batch_size(&self) -> usize {
        24
    }

    fn learning_rate(&self) -> f32 {
        self.spec.lr
    }

    // Reuse `Matrix` so the import is exercised even if specs change.
}

// Silence an unused-import lint path: Matrix is used in doc position only
// when specs change; keep a compile-time reference.
const _: fn() = || {
    let _ = std::mem::size_of::<Matrix>;
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_field_is_bounded_and_smooth() {
        let scene = Scene::generate(10, &mut DetRng::new(1));
        for i in 0..50 {
            let x = i as f64 / 50.0;
            let v = scene.field(x, 0.5);
            assert!((0.0..=1.0).contains(&v));
        }
        // Smoothness: tiny moves change the field a little.
        let a = scene.field(0.3, 0.3);
        let b = scene.field(0.3005, 0.3);
        assert!((a - b).abs() < 0.05);
    }

    #[test]
    fn build_shards_and_dims() {
        let wl = CrimpSpec::small().build(4, &mut DetRng::new(2));
        assert_eq!(wl.shards().len(), 4);
        let total: usize = wl.shards().iter().map(Dataset::len).sum();
        assert_eq!(total, 40 * 8);
        let model = wl.make_model(&mut DetRng::new(3));
        assert_eq!(model.dims()[0], wl.input_dim());
    }

    #[test]
    fn untrained_map_localizes_poorly_trained_map_well() {
        let wl = CrimpSpec::small().build(1, &mut DetRng::new(24));
        let mut model = wl.make_model(&mut DetRng::new(15));
        let before = wl.trajectory_error(&model);
        // Train on the single shard.
        let shard = &wl.shards()[0];
        let mut rng = DetRng::new(6);
        for _ in 0..400 {
            let batch = shard.sample_batch(24, &mut rng);
            let (_, grads, _) = model.loss_and_grad(shard, &batch);
            for (p, g) in model.params_mut().iter_mut().zip(&grads) {
                p.add_scaled(g, -wl.learning_rate()).expect("shapes match");
            }
        }
        let after = wl.trajectory_error(&model);
        assert!(
            after < before * 0.7,
            "training should reduce trajectory error: {before} -> {after}"
        );
        assert!(after < 0.8, "trained error should be sub-meter: {after}");
    }

    #[test]
    fn error_metric_is_deterministic() {
        let wl = CrimpSpec::small().build(2, &mut DetRng::new(8));
        let model = wl.make_model(&mut DetRng::new(9));
        assert_eq!(wl.trajectory_error(&model), wl.trajectory_error(&model));
    }
}
