//! Dynamic batching across heterogeneous devices.
//!
//! The paper sidesteps compute heterogeneity (out of scope) by adopting
//! dynamic batching (Tyagi & Sharma): each device's batch size is scaled
//! with its compute power so all devices spend equal time computing
//! gradients per iteration. Table II: batch 24 on a Jetson robot, 16 on
//! the slower laptops.

/// Assigns per-device batch sizes proportional to compute power so each
/// device's compute time (`batch / power`) is equal, anchored so the
/// *most powerful* device gets `base_batch`.
///
/// Every device gets at least 1 sample.
///
/// # Panics
///
/// Panics if `powers` is empty, any power is non-positive, or
/// `base_batch == 0`.
///
/// # Example
///
/// ```
/// use rog_models::batching::dynamic_batches;
///
/// // A Jetson (1.0) and a weaker laptop (2/3 of the compute power):
/// assert_eq!(dynamic_batches(&[1.0, 0.6667], 24), vec![24, 16]);
/// ```
pub fn dynamic_batches(powers: &[f64], base_batch: usize) -> Vec<usize> {
    assert!(!powers.is_empty(), "need at least one device");
    assert!(base_batch > 0, "base batch must be positive");
    let max_power = powers.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        powers.iter().all(|&p| p > 0.0),
        "compute powers must be positive"
    );
    powers
        .iter()
        .map(|&p| ((base_batch as f64 * p / max_power).round() as usize).max(1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_devices_get_equal_batches() {
        assert_eq!(dynamic_batches(&[1.0, 1.0, 1.0], 24), vec![24, 24, 24]);
    }

    #[test]
    fn table2_jetson_laptop_split() {
        // Paper Table II: robots (Jetson NX) run batch 24, laptops 16.
        let batches = dynamic_batches(&[1.0, 1.0, 1.0, 0.6667], 24);
        assert_eq!(batches, vec![24, 24, 24, 16]);
    }

    #[test]
    fn weak_devices_never_drop_to_zero() {
        assert_eq!(dynamic_batches(&[1.0, 0.001], 8), vec![8, 1]);
    }

    #[test]
    fn equal_compute_time_property() {
        let powers = [1.0, 0.5, 0.25];
        let batches = dynamic_batches(&powers, 64);
        let times: Vec<f64> = batches
            .iter()
            .zip(&powers)
            .map(|(&b, &p)| b as f64 / p)
            .collect();
        for t in &times {
            assert!((t - times[0]).abs() / times[0] < 0.05, "times {times:?}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_power_panics() {
        let _ = dynamic_batches(&[1.0, 0.0], 8);
    }
}
