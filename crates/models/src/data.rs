//! Dataset container and non-IID sharding.

use rog_tensor::rng::DetRng;

/// Supervision targets: class labels or regression values.
#[derive(Debug, Clone, PartialEq)]
pub enum Targets {
    /// One class index per sample.
    Labels(Vec<usize>),
    /// One value vector per sample.
    Values(Vec<Vec<f32>>),
}

impl Targets {
    fn len(&self) -> usize {
        match self {
            Targets::Labels(v) => v.len(),
            Targets::Values(v) => v.len(),
        }
    }
}

/// An in-memory dataset of feature vectors plus targets.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    xs: Vec<Vec<f32>>,
    /// The supervision targets (public for loss dispatch).
    pub targets: Targets,
}

impl Dataset {
    /// Creates a labeled (classification) dataset.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn labeled(xs: Vec<Vec<f32>>, ys: Vec<usize>) -> Self {
        let targets = Targets::Labels(ys);
        assert_eq!(xs.len(), targets.len(), "inputs/labels length mismatch");
        Self { xs, targets }
    }

    /// Creates a regression dataset.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn regression(xs: Vec<Vec<f32>>, ys: Vec<Vec<f32>>) -> Self {
        let targets = Targets::Values(ys);
        assert_eq!(xs.len(), targets.len(), "inputs/values length mismatch");
        Self { xs, targets }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Feature vector of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn input(&self, i: usize) -> &[f32] {
        &self.xs[i]
    }

    /// Label of sample `i` for labeled datasets.
    pub fn label(&self, i: usize) -> Option<usize> {
        match &self.targets {
            Targets::Labels(v) => v.get(i).copied(),
            Targets::Values(_) => None,
        }
    }

    /// Draws a batch of `size` sample indices uniformly with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `size == 0`.
    pub fn sample_batch(&self, size: usize, rng: &mut DetRng) -> Vec<usize> {
        assert!(!self.is_empty(), "cannot sample from an empty dataset");
        assert!(size > 0, "batch size must be positive");
        (0..size).map(|_| rng.index(self.xs.len())).collect()
    }

    /// Splits a labeled dataset into `n_shards` non-IID shards using a
    /// symmetric Dirichlet(`alpha`) allocation per class — the stand-in
    /// for the paper's Pachinko Allocation Method partition of
    /// Fed-CIFAR100. Lower `alpha` = more skewed shards.
    ///
    /// Every shard is guaranteed non-empty (samples are round-robined if
    /// the draw left a shard empty).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is unlabeled, `n_shards == 0`, or there are
    /// fewer samples than shards.
    pub fn dirichlet_shards(&self, n_shards: usize, alpha: f64, rng: &mut DetRng) -> Vec<Dataset> {
        let Targets::Labels(ys) = &self.targets else {
            panic!("dirichlet sharding requires labels");
        };
        assert!(n_shards > 0, "need at least one shard");
        assert!(
            self.len() >= n_shards,
            "fewer samples than shards: {} < {n_shards}",
            self.len()
        );
        let n_classes = ys.iter().copied().max().map_or(0, |m| m + 1);
        let mut shard_idxs: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        for class in 0..n_classes {
            let members: Vec<usize> = (0..ys.len()).filter(|&i| ys[i] == class).collect();
            if members.is_empty() {
                continue;
            }
            let probs = rng.dirichlet(n_shards, alpha);
            // Convert proportions to cumulative boundaries over members.
            let mut cum = 0.0;
            let mut boundaries = Vec::with_capacity(n_shards);
            for p in &probs {
                cum += p;
                boundaries.push((cum * members.len() as f64).round() as usize);
            }
            *boundaries.last_mut().expect("non-empty") = members.len();
            let mut start = 0;
            for (s, &end) in boundaries.iter().enumerate() {
                let end = end.max(start);
                shard_idxs[s].extend(&members[start..end]);
                start = end;
            }
        }
        // Backfill empty shards.
        let mut donor = 0usize;
        for s in 0..n_shards {
            while shard_idxs[s].is_empty() {
                if shard_idxs[donor].len() > 1 {
                    let moved = shard_idxs[donor].pop().expect("non-empty donor");
                    shard_idxs[s].push(moved);
                } else {
                    donor = (donor + 1) % n_shards;
                }
            }
        }
        shard_idxs
            .into_iter()
            .map(|idxs| {
                Dataset::labeled(
                    idxs.iter().map(|&i| self.xs[i].clone()).collect(),
                    idxs.iter().map(|&i| ys[i]).collect(),
                )
            })
            .collect()
    }

    /// Splits any dataset into `n_shards` contiguous, near-equal shards
    /// (used by CRIMP: each robot observes a contiguous trajectory
    /// segment, like the paper's split of the ScanNet image sequence).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards == 0` or there are fewer samples than shards.
    pub fn contiguous_shards(&self, n_shards: usize) -> Vec<Dataset> {
        assert!(n_shards > 0, "need at least one shard");
        assert!(
            self.len() >= n_shards,
            "fewer samples than shards: {} < {n_shards}",
            self.len()
        );
        let n = self.len();
        (0..n_shards)
            .map(|s| {
                let start = s * n / n_shards;
                let end = (s + 1) * n / n_shards;
                let xs = self.xs[start..end].to_vec();
                let targets = match &self.targets {
                    Targets::Labels(v) => Targets::Labels(v[start..end].to_vec()),
                    Targets::Values(v) => Targets::Values(v[start..end].to_vec()),
                };
                Dataset { xs, targets }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize, classes: usize) -> Dataset {
        Dataset::labeled(
            (0..n).map(|i| vec![i as f32]).collect(),
            (0..n).map(|i| i % classes).collect(),
        )
    }

    #[test]
    fn batch_sampling_is_in_range_and_deterministic() {
        let d = dataset(10, 2);
        let mut r1 = DetRng::new(3);
        let mut r2 = DetRng::new(3);
        let b1 = d.sample_batch(6, &mut r1);
        let b2 = d.sample_batch(6, &mut r2);
        assert_eq!(b1, b2);
        assert!(b1.iter().all(|&i| i < 10));
    }

    #[test]
    fn dirichlet_shards_partition_everything() {
        let d = dataset(200, 10);
        let shards = d.dirichlet_shards(4, 0.5, &mut DetRng::new(1));
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, 200);
        assert!(shards.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn low_alpha_shards_are_skewed() {
        let d = dataset(1000, 10);
        let skewed = d.dirichlet_shards(4, 0.05, &mut DetRng::new(2));
        // At alpha=0.05 most classes land in one shard: per-shard class
        // diversity should be visibly below the 10 classes of the pool.
        let diversity: f64 = skewed
            .iter()
            .map(|s| {
                let Targets::Labels(ys) = &s.targets else {
                    unreachable!()
                };
                // Count classes with a meaningful share (>10% of shard).
                (0..10)
                    .filter(|&c| {
                        ys.iter().filter(|&&y| y == c).count() as f64 > 0.1 * ys.len() as f64
                    })
                    .count() as f64
            })
            .sum::<f64>()
            / 4.0;
        assert!(diversity < 6.0, "shards too uniform: {diversity}");
    }

    #[test]
    fn contiguous_shards_cover_in_order() {
        let d = dataset(10, 3);
        let shards = d.contiguous_shards(3);
        assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), 10);
        assert_eq!(shards[0].input(0), &[0.0]);
        assert_eq!(shards[2].input(shards[2].len() - 1), &[9.0]);
    }

    #[test]
    #[should_panic(expected = "requires labels")]
    fn dirichlet_on_regression_panics() {
        let d = Dataset::regression(vec![vec![0.0]], vec![vec![0.0]]);
        let _ = d.dirichlet_shards(1, 1.0, &mut DetRng::new(0));
    }
}
