//! Deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Time;

/// A pending event.
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Times are finite by the `push` contract, so total order is
        // safe.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of `(time, event)` pairs with FIFO tie-breaking.
///
/// The FIFO tie-break makes event delivery deterministic, which the
/// reproducibility guarantees of the whole simulator rest on.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    ///
    /// A fleet-scale engine schedules O(workers) timers up front; the
    /// hint avoids the doubling reallocations of a cold heap on the
    /// first simulated seconds.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Total events ever scheduled on this queue (the FIFO sequence
    /// counter). A deterministic progress measure: unlike wall-clock
    /// rates it is identical across hosts and thread counts.
    pub fn scheduled(&self) -> u64 {
        self.seq
    }

    /// Schedules `event` at virtual time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite (NaN would corrupt heap order).
    pub fn push(&mut self, time: Time, event: E) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Visits pending events without removing them, in unspecified
    /// (but deterministic) order.
    ///
    /// Lets an engine see which events are already scheduled — e.g. to
    /// prefetch work for them — without disturbing the `(time, seq)`
    /// pop order that determinism rests on.
    pub fn iter(&self) -> impl Iterator<Item = (Time, &E)> {
        self.heap.iter().map(|e| (e.time, &e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EventQueue(len={})", self.heap.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, 5);
        q.push(1.0, 1);
        q.push(3.0, 3);
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), Some((5.0, 5)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(1.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((1.0, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(2.0, "b");
        q.push(1.0, "a");
        assert_eq!(q.pop(), Some((1.0, "a")));
        q.push(1.5, "mid");
        assert_eq!(q.pop(), Some((1.5, "mid")));
        assert_eq!(q.pop(), Some((2.0, "b")));
    }

    #[test]
    fn peek_time_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(4.0, ());
        q.push(2.0, ());
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn iter_sees_all_events_without_removing() {
        let mut q = EventQueue::new();
        q.push(2.0, "b");
        q.push(1.0, "a");
        q.push(3.0, "c");
        let mut seen: Vec<(Time, &str)> = q.iter().map(|(t, &e)| (t, e)).collect();
        seen.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert_eq!(seen, vec![(1.0, "a"), (2.0, "b"), (3.0, "c")]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((1.0, "a")));
    }

    #[test]
    fn with_capacity_behaves_like_new_and_counts_scheduled() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        assert_eq!(q.scheduled(), 0);
        q.push(2.0, "b");
        q.push(1.0, "a");
        assert_eq!(q.scheduled(), 2);
        assert_eq!(q.pop(), Some((1.0, "a")));
        // `scheduled` counts pushes, not pending events.
        assert_eq!(q.scheduled(), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_pops_are_time_sorted_and_fifo_within_ties(
                times in proptest::collection::vec(0u32..50, 1..200),
            ) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(f64::from(t), i);
                }
                let mut last_time = f64::NEG_INFINITY;
                let mut last_seq_at_time = None::<usize>;
                while let Some((t, i)) = q.pop() {
                    prop_assert!(t >= last_time);
                    if t == last_time {
                        // FIFO among ties: insertion index increases.
                        if let Some(prev) = last_seq_at_time {
                            prop_assert!(i > prev, "tie order violated");
                        }
                    }
                    last_time = t;
                    last_seq_at_time = Some(i);
                }
            }

            #[test]
            fn prop_interleaved_pop_never_loses_events(
                ops in proptest::collection::vec((0u32..100, proptest::bool::ANY), 1..100),
            ) {
                let mut q = EventQueue::new();
                let mut pushed = 0usize;
                let mut popped = 0usize;
                for (t, do_pop) in ops {
                    if do_pop {
                        if q.pop().is_some() {
                            popped += 1;
                        }
                    } else {
                        q.push(f64::from(t), ());
                        pushed += 1;
                    }
                }
                while q.pop().is_some() {
                    popped += 1;
                }
                prop_assert_eq!(pushed, popped);
            }

            /// FIFO tie-break against a reference model under interleaved
            /// push/pop: every pop must return exactly the pending event
            /// with the least `(time, insertion-sequence)`, even when
            /// pushes at an already-popped time arrive later.
            #[test]
            fn prop_interleaved_pop_matches_reference_model(
                ops in proptest::collection::vec((0u32..20, proptest::bool::ANY), 1..200),
            ) {
                let mut q = EventQueue::new();
                let mut reference: Vec<(u32, usize)> = Vec::new();
                let mut next_id = 0usize;
                for (t, do_pop) in ops {
                    if do_pop {
                        let expected = reference
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &(rt, id))| (rt, id))
                            .map(|(pos, &(rt, id))| (pos, rt, id));
                        match (q.pop(), expected) {
                            (Some((qt, qid)), Some((pos, rt, rid))) => {
                                prop_assert_eq!(qt, f64::from(rt));
                                prop_assert_eq!(qid, rid, "tie-break diverged from model");
                                reference.remove(pos);
                            }
                            (None, None) => {}
                            (got, want) => {
                                return Err(TestCaseError::fail(format!(
                                    "queue {got:?} vs model {want:?}"
                                )));
                            }
                        }
                    } else {
                        q.push(f64::from(t), next_id);
                        reference.push((t, next_id));
                        next_id += 1;
                    }
                }
                prop_assert_eq!(q.len(), reference.len());
            }
        }
    }
}
