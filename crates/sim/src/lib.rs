//! Deterministic discrete-event simulation engine.
//!
//! The ROG reproduction evaluates distributed-training *time* behaviour —
//! straggler stalls, transmission durations, energy — without the paper's
//! physical robot testbed. This crate provides the substrate: a virtual
//! clock, a deterministic [`EventQueue`], and per-device state
//! [`Timeline`]s that record when each simulated device was computing,
//! communicating, stalling, or idle (the three-state decomposition of the
//! paper's Figs. 1a/6a/7a, plus idle).
//!
//! Determinism contract: events that are scheduled for the same virtual
//! time are delivered in insertion order (FIFO tie-break by sequence
//! number), so a simulation driven purely by queue pops and seeded RNG is
//! bit-reproducible.
//!
//! # Example
//!
//! ```
//! use rog_sim::{EventQueue, Timeline, DeviceState};
//!
//! let mut q = EventQueue::new();
//! q.push(2.0, "b");
//! q.push(1.0, "a");
//! q.push(1.0, "a2"); // same time: FIFO order
//! assert_eq!(q.pop(), Some((1.0, "a")));
//! assert_eq!(q.pop(), Some((1.0, "a2")));
//! assert_eq!(q.pop(), Some((2.0, "b")));
//!
//! let mut tl = Timeline::new();
//! tl.set_state(0.0, DeviceState::Compute);
//! tl.set_state(2.5, DeviceState::Stall);
//! tl.close(4.0);
//! assert_eq!(tl.time_in(DeviceState::Compute), 2.5);
//! assert_eq!(tl.time_in(DeviceState::Stall), 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod timeline;

pub use queue::EventQueue;
pub use timeline::{DeviceState, Span, Timeline};

/// Virtual time in seconds since simulation start.
pub type Time = f64;
