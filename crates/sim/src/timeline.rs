//! Per-device state timelines.
//!
//! The paper decomposes every training iteration into computation,
//! communication, and stall time (Figs. 1a, 6a, 7a) and integrates
//! state-specific power over these residencies for the energy results
//! (Table III, Figs. 1d, 6d, 7d). [`Timeline`] is the recorder both are
//! derived from.

use crate::Time;

/// What a simulated device is doing at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceState {
    /// Computing gradients (includes compression/decompression cost, as in
    /// the paper's Table II accounting).
    Compute,
    /// Actively transmitting or receiving on the wireless channel.
    Communicate,
    /// Blocked on a synchronization barrier / staleness gate.
    Stall,
    /// Not participating (before start / after finish).
    Idle,
    /// Powered off or out of range (fault injection): the device holds
    /// no state and draws no power until it rejoins.
    Offline,
}

impl DeviceState {
    /// All states, in display order.
    pub const ALL: [DeviceState; 5] = [
        DeviceState::Compute,
        DeviceState::Communicate,
        DeviceState::Stall,
        DeviceState::Idle,
        DeviceState::Offline,
    ];

    /// Stable lowercase name (journal wire format).
    pub fn name(self) -> &'static str {
        match self {
            DeviceState::Compute => "compute",
            DeviceState::Communicate => "communicate",
            DeviceState::Stall => "stall",
            DeviceState::Idle => "idle",
            DeviceState::Offline => "offline",
        }
    }
}

/// A half-open span `[start, end)` spent in one state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// State during the span.
    pub state: DeviceState,
    /// Span start (inclusive).
    pub start: Time,
    /// Span end (exclusive).
    pub end: Time,
}

impl Span {
    /// Span duration in seconds.
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

/// Append-only state history of one device.
///
/// Transitions are recorded with [`Timeline::set_state`]; the final open
/// span is closed with [`Timeline::close`]. Time must be non-decreasing.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    spans: Vec<Span>,
    open: Option<(DeviceState, Time)>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the device enters `state` at time `t`, closing any
    /// previous open span. Zero-length spans are dropped; re-entering the
    /// current state is a no-op.
    ///
    /// Returns `true` iff the device's state actually changed (journal
    /// emitters use this to record only real transitions).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the start of the currently open span.
    pub fn set_state(&mut self, t: Time, state: DeviceState) -> bool {
        if let Some((cur, start)) = self.open {
            assert!(
                t >= start - 1e-9,
                "timeline must be monotonic: {t} < {start}"
            );
            if cur == state {
                return false;
            }
            if t > start {
                self.spans.push(Span {
                    state: cur,
                    start,
                    end: t,
                });
            }
        }
        self.open = Some((state, t));
        true
    }

    /// Closes the open span at time `t` (idempotent if nothing is open).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the start of the open span.
    pub fn close(&mut self, t: Time) {
        if let Some((cur, start)) = self.open.take() {
            assert!(t >= start - 1e-9, "close before span start");
            if t > start {
                self.spans.push(Span {
                    state: cur,
                    start,
                    end: t,
                });
            }
        }
    }

    /// The closed spans recorded so far.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The state the device is currently in, if a span is open.
    pub fn current_state(&self) -> Option<DeviceState> {
        self.open.map(|(s, _)| s)
    }

    /// Total closed time spent in `state`.
    pub fn time_in(&self, state: DeviceState) -> Time {
        self.spans
            .iter()
            .filter(|s| s.state == state)
            .map(|s| {
                debug_assert!(s.duration() >= 0.0, "negative span {s:?}");
                s.duration()
            })
            .sum()
    }

    /// Time spent in `state` within the window `[t0, t1)` (closed spans
    /// only).
    pub fn time_in_between(&self, state: DeviceState, t0: Time, t1: Time) -> Time {
        self.spans
            .iter()
            .filter(|s| s.state == state)
            .map(|s| (s.end.min(t1) - s.start.max(t0)).max(0.0))
            .sum()
    }

    /// End of the last closed span (0 if none).
    pub fn end_time(&self) -> Time {
        self.spans.last().map_or(0.0, |s| s.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_accumulate_durations() {
        let mut tl = Timeline::new();
        tl.set_state(0.0, DeviceState::Compute);
        tl.set_state(2.0, DeviceState::Communicate);
        tl.set_state(3.0, DeviceState::Stall);
        tl.set_state(3.5, DeviceState::Compute);
        tl.close(5.0);
        assert_eq!(tl.time_in(DeviceState::Compute), 3.5);
        assert_eq!(tl.time_in(DeviceState::Communicate), 1.0);
        assert_eq!(tl.time_in(DeviceState::Stall), 0.5);
        assert_eq!(tl.time_in(DeviceState::Idle), 0.0);
        assert_eq!(tl.end_time(), 5.0);
    }

    #[test]
    fn reentering_same_state_is_merged() {
        let mut tl = Timeline::new();
        tl.set_state(0.0, DeviceState::Compute);
        tl.set_state(1.0, DeviceState::Compute);
        tl.close(2.0);
        assert_eq!(tl.spans().len(), 1);
        assert_eq!(tl.time_in(DeviceState::Compute), 2.0);
    }

    #[test]
    fn zero_length_spans_are_dropped() {
        let mut tl = Timeline::new();
        tl.set_state(1.0, DeviceState::Compute);
        tl.set_state(1.0, DeviceState::Stall);
        tl.close(2.0);
        assert_eq!(tl.spans().len(), 1);
        assert_eq!(tl.spans()[0].state, DeviceState::Stall);
    }

    #[test]
    fn windowed_query_clips_spans() {
        let mut tl = Timeline::new();
        tl.set_state(0.0, DeviceState::Compute);
        tl.close(10.0);
        assert_eq!(tl.time_in_between(DeviceState::Compute, 2.0, 4.0), 2.0);
        assert_eq!(tl.time_in_between(DeviceState::Compute, -5.0, 3.0), 3.0);
        assert_eq!(tl.time_in_between(DeviceState::Compute, 9.0, 99.0), 1.0);
        assert_eq!(tl.time_in_between(DeviceState::Stall, 0.0, 10.0), 0.0);
    }

    #[test]
    fn close_is_idempotent() {
        let mut tl = Timeline::new();
        tl.set_state(0.0, DeviceState::Idle);
        tl.close(1.0);
        tl.close(1.0);
        assert_eq!(tl.spans().len(), 1);
        assert_eq!(tl.current_state(), None);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn going_backwards_panics() {
        let mut tl = Timeline::new();
        tl.set_state(5.0, DeviceState::Compute);
        tl.set_state(1.0, DeviceState::Stall);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_state_times_partition_the_run(
                steps in proptest::collection::vec((0u32..100, 0usize..DeviceState::ALL.len()), 1..100),
            ) {
                let mut tl = Timeline::new();
                let mut t = 0.0f64;
                tl.set_state(0.0, DeviceState::Compute);
                for (dt, s) in steps {
                    t += f64::from(dt) * 0.01;
                    tl.set_state(t, DeviceState::ALL[s]);
                }
                t += 1.0;
                tl.close(t);
                let total: f64 = DeviceState::ALL.iter().map(|&s| tl.time_in(s)).sum();
                prop_assert!((total - t).abs() < 1e-6, "partition {total} vs {t}");
                // Windowed queries also partition any window.
                let mid = t / 2.0;
                let w: f64 = DeviceState::ALL
                    .iter()
                    .map(|&s| tl.time_in_between(s, 0.0, mid))
                    .sum();
                prop_assert!((w - mid).abs() < 1e-6, "window {w} vs {mid}");
            }

            /// Residency invariants: every recorded span has a strictly
            /// positive length, spans tile `[first_start, close)` without
            /// gaps or overlap, and the per-state residencies sum to the
            /// `close()` horizon.
            #[test]
            fn prop_spans_are_positive_contiguous_and_sum_to_horizon(
                start in 0u32..50,
                steps in proptest::collection::vec((0u32..100, 0usize..DeviceState::ALL.len()), 1..100),
                tail in 0u32..100,
            ) {
                let t0 = f64::from(start) * 0.01;
                let mut tl = Timeline::new();
                let mut t = t0;
                tl.set_state(t0, DeviceState::ALL[steps[0].1]);
                for &(dt, s) in &steps {
                    t += f64::from(dt) * 0.01;
                    tl.set_state(t, DeviceState::ALL[s]);
                }
                t += f64::from(tail) * 0.01;
                tl.close(t);
                let mut cursor = t0;
                for s in tl.spans() {
                    prop_assert!(s.duration() > 0.0, "non-positive span {s:?}");
                    prop_assert!((s.start - cursor).abs() < 1e-9, "gap/overlap at {cursor}");
                    cursor = s.end;
                }
                if t > t0 {
                    prop_assert!((cursor - t).abs() < 1e-9, "last span ends at {cursor}, not {t}");
                }
                let total: f64 = DeviceState::ALL.iter().map(|&s| tl.time_in(s)).sum();
                prop_assert!((total - (t - t0)).abs() < 1e-6, "residencies {total} vs horizon {}", t - t0);
            }
        }
    }
}
