//! The event journal: an allocation-light ring buffer with
//! per-category counters and gauges, and a JSONL sink.
//!
//! ## Determinism contract
//!
//! Recording happens only on the simulator's single event-loop thread,
//! at points fully ordered by the virtual clock and the event queue's
//! FIFO tie-break. The journal never feeds back into the simulation:
//! `record` reads its arguments and mutates only journal-private state.
//! A journal for a fixed (config, seed) is therefore byte-identical
//! across runs and compute-thread counts.
//!
//! ## `obs-off`
//!
//! With the `obs-off` feature, [`Journal::enabled`] is a const `false`
//! and [`Journal::record`] an empty inline stub, so every emission
//! site guarded by [`crate::obs!`] is dead-code eliminated and hot
//! paths are bit-identical to a build without the journal.

use std::collections::VecDeque;

use crate::event::{Category, Event, EventKind};

/// Default ring-buffer capacity (events). Large enough that the small
/// golden scenarios never drop; bounded so tracing a long run cannot
/// exhaust memory.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// Derived gauges maintained incrementally as events are recorded.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauges {
    /// Total seconds spent waiting at staleness gates.
    pub gate_wait_total: f64,
    /// Longest single gate wait (s).
    pub gate_wait_max: f64,
    /// Payload bytes reported by `push_end` events.
    pub bytes_pushed: u64,
    /// Payload bytes reported by `pull_start` events.
    pub bytes_pulled: u64,
    /// Rows re-sent by retransmit events.
    pub rows_retransmitted: u64,
    /// Chunks the loss model dropped in flight.
    pub chunks_lost: u64,
    /// Chunks delivered but damaged.
    pub chunks_corrupt: u64,
}

/// A bounded, deterministic event journal.
#[derive(Debug, Clone)]
pub struct Journal {
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    enabled: bool,
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    capacity: usize,
    events: VecDeque<Event>,
    seq: u64,
    dropped: u64,
    counts: [u64; Category::COUNT],
    gauges: Gauges,
}

impl Default for Journal {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Journal {
    /// A journal that records nothing (`enabled() == false`).
    pub fn disabled() -> Self {
        Self::with_capacity(false, DEFAULT_CAPACITY)
    }

    /// An enabled journal with the default ring capacity.
    pub fn enabled_default() -> Self {
        Self::with_capacity(true, DEFAULT_CAPACITY)
    }

    /// A journal that records iff `trace`.
    pub fn new(trace: bool) -> Self {
        Self::with_capacity(trace, DEFAULT_CAPACITY)
    }

    /// Full-control constructor.
    pub fn with_capacity(trace: bool, capacity: usize) -> Self {
        Self {
            enabled: trace,
            capacity: capacity.max(1),
            events: VecDeque::new(),
            seq: 0,
            dropped: 0,
            counts: [0; Category::COUNT],
            gauges: Gauges::default(),
        }
    }

    /// Whether emission sites should construct and record events.
    ///
    /// Guard any non-trivial event construction with this (the
    /// [`crate::obs!`] macro does it for you); under `obs-off` it is a
    /// const `false` so guarded sites compile out entirely.
    #[cfg(not(feature = "obs-off"))]
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Compile-out stub: always `false`.
    #[cfg(feature = "obs-off")]
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        false
    }

    /// Records an event stamped at virtual time `t` with unsharded
    /// scope (no `shard` field on the wire).
    ///
    /// No-op when the journal is disabled.
    #[cfg(not(feature = "obs-off"))]
    pub fn record(&mut self, t: f64, kind: EventKind) {
        self.record_shard(t, Event::NO_SHARD, kind);
    }

    /// Records an event stamped at virtual time `t`, scoped to a
    /// parameter-server shard (`shard >= 0`; [`Event::NO_SHARD`] for
    /// unsharded scope).
    ///
    /// No-op when the journal is disabled.
    #[cfg(not(feature = "obs-off"))]
    pub fn record_shard(&mut self, t: f64, shard: i64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        self.counts[kind.category().index()] += 1;
        match &kind {
            EventKind::GateExit { waited, .. } => {
                self.gauges.gate_wait_total += waited;
                if *waited > self.gauges.gate_wait_max {
                    self.gauges.gate_wait_max = *waited;
                }
            }
            EventKind::PushEnd { bytes, .. } => self.gauges.bytes_pushed += bytes,
            EventKind::PullStart { bytes, .. } => self.gauges.bytes_pulled += bytes,
            EventKind::Retransmit { rows, .. } => {
                self.gauges.rows_retransmitted += u64::from(*rows);
            }
            EventKind::Loss { lost, corrupt, .. } => {
                self.gauges.chunks_lost += u64::from(*lost);
                self.gauges.chunks_corrupt += u64::from(*corrupt);
            }
            _ => {}
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            t,
            seq: self.seq,
            shard,
            kind,
        });
        self.seq += 1;
    }

    /// Compile-out stub: does nothing.
    #[cfg(feature = "obs-off")]
    #[inline(always)]
    pub fn record(&mut self, _t: f64, _kind: EventKind) {}

    /// Compile-out stub: does nothing.
    #[cfg(feature = "obs-off")]
    #[inline(always)]
    pub fn record_shard(&mut self, _t: f64, _shard: i64, _kind: EventKind) {}

    /// Events currently retained in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Count of events recorded in `cat` (includes evicted events).
    pub fn count(&self, cat: Category) -> u64 {
        self.counts[cat.index()]
    }

    /// Derived gauges.
    pub fn gauges(&self) -> &Gauges {
        &self.gauges
    }

    /// Serializes the retained events as JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for ev in &self.events {
            ev.write_jsonl(&mut out);
        }
        out
    }
}

/// Records an event only when the journal is enabled, keeping event
/// construction off the hot path (and compiling it out entirely under
/// `obs-off`).
///
/// ```
/// use rog_obs::{obs, EventKind, Journal};
/// let mut j = Journal::new(true);
/// obs!(j, 1.0, EventKind::IterBegin { w: 0, iter: 1 });
/// ```
#[macro_export]
macro_rules! obs {
    ($journal:expr, $t:expr, $kind:expr) => {
        if $journal.enabled() {
            $journal.record($t, $kind);
        }
    };
}

/// Shard-scoped variant of [`crate::obs!`]: records with a `shard`
/// field when the scope is a real shard (`shard >= 0`).
///
/// ```
/// use rog_obs::{obs_shard, EventKind, Journal};
/// let mut j = Journal::new(true);
/// obs_shard!(j, 1.0, 2, EventKind::PullEnd { w: 0, iter: 1 });
/// ```
#[macro_export]
macro_rules! obs_shard {
    ($journal:expr, $t:expr, $shard:expr, $kind:expr) => {
        if $journal.enabled() {
            $journal.record_shard($t, $shard, $kind);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_records_nothing() {
        let mut j = Journal::disabled();
        j.record(1.0, EventKind::IterBegin { w: 0, iter: 1 });
        assert!(j.is_empty());
        assert_eq!(j.recorded(), 0);
        assert_eq!(j.count(Category::Iteration), 0);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn counters_and_gauges_accumulate() {
        let mut j = Journal::new(true);
        j.record(0.0, EventKind::IterBegin { w: 0, iter: 1 });
        j.record(
            1.0,
            EventKind::GateExit {
                w: 0,
                iter: 1,
                waited: 0.5,
            },
        );
        j.record(
            2.0,
            EventKind::GateExit {
                w: 1,
                iter: 1,
                waited: 1.5,
            },
        );
        j.record(
            3.0,
            EventKind::PushEnd {
                w: 0,
                iter: 1,
                rows: 4,
                bytes: 100,
            },
        );
        j.record(
            3.5,
            EventKind::Loss {
                w: 0,
                lost: 2,
                corrupt: 1,
                chunks: 10,
            },
        );
        assert_eq!(j.count(Category::Gate), 2);
        assert_eq!(j.count(Category::Iteration), 1);
        assert_eq!(j.count(Category::Transfer), 1);
        let g = j.gauges();
        assert!((g.gate_wait_total - 2.0).abs() < 1e-12);
        assert!((g.gate_wait_max - 1.5).abs() < 1e-12);
        assert_eq!(g.bytes_pushed, 100);
        assert_eq!(g.chunks_lost, 2);
        assert_eq!(g.chunks_corrupt, 1);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut j = Journal::with_capacity(true, 2);
        for i in 0..5 {
            j.record(i as f64, EventKind::IterBegin { w: 0, iter: i });
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
        assert_eq!(j.recorded(), 5);
        let seqs: Vec<u64> = j.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4], "oldest evicted first");
        // Counters survive eviction.
        assert_eq!(j.count(Category::Iteration), 5);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn record_shard_stamps_the_envelope() {
        let mut j = Journal::new(true);
        j.record_shard(1.0, 1, EventKind::PullEnd { w: 0, iter: 2 });
        j.record(2.0, EventKind::PullEnd { w: 0, iter: 3 });
        let shards: Vec<i64> = j.events().map(|e| e.shard).collect();
        assert_eq!(shards, vec![1, Event::NO_SHARD]);
        let out = j.to_jsonl();
        let mut lines = out.lines();
        assert!(lines.next().unwrap().contains("\"shard\":1"));
        assert!(!lines.next().unwrap().contains("shard"));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn jsonl_lines_match_event_count() {
        let mut j = Journal::new(true);
        j.record(
            0.0,
            EventKind::Meta {
                name: "test".into(),
                seed: 1,
            },
        );
        j.record(1.0, EventKind::Close { w: 0 });
        let out = j.to_jsonl();
        assert_eq!(out.lines().count(), 2);
        assert!(out.ends_with('\n'));
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn obs_off_is_always_disabled() {
        let mut j = Journal::new(true);
        assert!(!j.enabled());
        j.record(0.0, EventKind::Close { w: 0 });
        assert!(j.is_empty());
    }

    #[test]
    fn obs_macro_guards_recording() {
        let mut j = Journal::new(true);
        obs!(j, 0.5, EventKind::IterBegin { w: 1, iter: 2 });
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(j.len(), 1);
        #[cfg(feature = "obs-off")]
        assert!(j.is_empty());
    }
}
