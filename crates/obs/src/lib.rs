//! `rog-obs`: deterministic event-journal observability for the ROG
//! simulator.
//!
//! ROG's claims are about *where time and bytes go* — gate stalls, row
//! retransmits, MTA floors, fault recovery (paper Secs. IV–VI, Fig. 8).
//! This crate turns the deterministic simulation into its own test
//! oracle: engines record typed [`EventKind`]s into a [`Journal`]
//! stamped on the virtual clock, the journal serializes to a canonical
//! JSONL byte stream, and [`TraceSummary`] replays a journal back into
//! the per-iteration composition `RunMetrics` reports.
//!
//! Because every emission site runs on the single event-loop thread at
//! points totally ordered by (virtual time, queue sequence), a journal
//! for a fixed (config, seed) is byte-identical across runs and
//! compute-thread counts — golden journals are byte-diffable
//! regression artifacts (see `tests/golden_trace.rs` at the workspace
//! root).
//!
//! Build with the `obs-off` feature to compile the journal out
//! entirely: [`Journal::enabled`] becomes a const `false`, so every
//! [`obs!`]-guarded site is dead-code eliminated and engine output is
//! bit-identical to a build without instrumentation.

pub mod event;
pub mod gz;
pub mod journal;
pub mod summary;

pub use event::{Category, Event, EventKind, Record, Val};
pub use gz::{crc32, gzip_compress, gzip_decompress};
pub use journal::{Gauges, Journal, DEFAULT_CAPACITY};
pub use summary::{TraceSummary, STATE_NAMES};
