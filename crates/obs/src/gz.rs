//! Dependency-free gzip (RFC 1951/1952) for golden journals.
//!
//! The encoder emits a single DEFLATE block with the *fixed* Huffman
//! tables and a greedy LZ77 matcher (32 KiB window, hash chains) —
//! plenty for highly repetitive JSONL journals, and fully
//! deterministic: the same input always yields the same bytes (the
//! gzip MTIME field is pinned to zero). The decoder handles stored and
//! fixed-Huffman blocks, which covers everything the encoder produces.

/// IEEE CRC-32 (reflected polynomial `0xEDB88320`), as used by gzip.
pub fn crc32(data: &[u8]) -> u32 {
    let mut table = [0u32; 256];
    for (n, entry) in table.iter_mut().enumerate() {
        let mut c = n as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *entry = c;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------- encode

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const MAX_CHAIN: usize = 64;
const HASH_BITS: u32 = 15;

/// Length-code bases for DEFLATE codes 257..=285.
const LEN_BASE: [u32; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// Distance-code bases for DEFLATE codes 0..=29.
const DIST_BASE: [u32; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

struct BitWriter {
    out: Vec<u8>,
    bitbuf: u32,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        Self {
            out: Vec::new(),
            bitbuf: 0,
            nbits: 0,
        }
    }

    /// Writes `n` bits of `v`, LSB first (DEFLATE's natural order for
    /// headers and extra bits).
    fn bits(&mut self, v: u32, n: u32) {
        self.bitbuf |= (v & ((1 << n) - 1)) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.bitbuf & 0xFF) as u8);
            self.bitbuf >>= 8;
            self.nbits -= 8;
        }
    }

    /// Writes an `n`-bit Huffman code MSB first.
    fn huff(&mut self, code: u32, n: u32) {
        let mut rev = 0u32;
        for i in 0..n {
            rev |= ((code >> i) & 1) << (n - 1 - i);
        }
        self.bits(rev, n);
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.bitbuf & 0xFF) as u8);
        }
        self.out
    }
}

/// Fixed-table code for a literal/length symbol.
fn fixed_lit_code(sym: u32) -> (u32, u32) {
    match sym {
        0..=143 => (0x30 + sym, 8),
        144..=255 => (0x190 + (sym - 144), 9),
        256..=279 => (sym - 256, 7),
        _ => (0xC0 + (sym - 280), 8),
    }
}

/// Largest code index whose base is `<= v`.
fn code_for(bases: &[u32], v: u32) -> usize {
    match bases.binary_search(&v) {
        Ok(i) => i,
        Err(i) => i - 1,
    }
}

fn hash3(b: &[u8]) -> usize {
    ((usize::from(b[0]) << 10) ^ (usize::from(b[1]) << 5) ^ usize::from(b[2]))
        & ((1 << HASH_BITS) - 1)
}

fn deflate_fixed(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.bits(1, 1); // BFINAL
    w.bits(1, 2); // BTYPE = 01: fixed Huffman

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];
    let insert = |head: &mut [usize], prev: &mut [usize], i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(&data[i..]);
            prev[i] = head[h];
            head[h] = i;
        }
    };

    let mut i = 0usize;
    while i < data.len() {
        // Greedy best match at i over the hash chain.
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let limit = (data.len() - i).min(MAX_MATCH);
            let mut cand = head[hash3(&data[i..])];
            let mut chain = 0usize;
            while cand != usize::MAX && chain < MAX_CHAIN {
                let dist = i - cand;
                if dist > WINDOW {
                    break;
                }
                let mut l = 0usize;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            let lc = code_for(&LEN_BASE, best_len as u32);
            let (code, n) = fixed_lit_code(257 + lc as u32);
            w.huff(code, n);
            w.bits(best_len as u32 - LEN_BASE[lc], LEN_EXTRA[lc]);
            let dc = code_for(&DIST_BASE, best_dist as u32);
            w.huff(dc as u32, 5);
            w.bits(best_dist as u32 - DIST_BASE[dc], DIST_EXTRA[dc]);
            for k in i..i + best_len {
                insert(&mut head, &mut prev, k);
            }
            i += best_len;
        } else {
            let (code, n) = fixed_lit_code(u32::from(data[i]));
            w.huff(code, n);
            insert(&mut head, &mut prev, i);
            i += 1;
        }
    }
    let (eob, n) = fixed_lit_code(256);
    w.huff(eob, n);
    w.finish()
}

/// Compresses `data` into a deterministic gzip member (MTIME = 0).
pub fn gzip_compress(data: &[u8]) -> Vec<u8> {
    let mut out = vec![
        0x1F, 0x8B, // magic
        0x08, // CM = deflate
        0x00, // FLG
        0x00, 0x00, 0x00, 0x00, // MTIME = 0 for determinism
        0x00, // XFL
        0xFF, // OS = unknown
    ];
    out.extend_from_slice(&deflate_fixed(data));
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

// ---------------------------------------------------------------- decode

struct BitReader<'a> {
    b: &'a [u8],
    i: usize,
    bitbuf: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self {
            b,
            i: 0,
            bitbuf: 0,
            nbits: 0,
        }
    }

    fn bits(&mut self, n: u32) -> Result<u32, String> {
        while self.nbits < n {
            let byte = *self.b.get(self.i).ok_or("unexpected end of deflate data")?;
            self.i += 1;
            self.bitbuf |= u32::from(byte) << self.nbits;
            self.nbits += 8;
        }
        let v = self.bitbuf & ((1u32 << n) - 1);
        self.bitbuf >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Reads one bit and appends it MSB-first to a growing code.
    fn code_bit(&mut self, code: u32) -> Result<u32, String> {
        Ok((code << 1) | self.bits(1)?)
    }

    fn align_byte(&mut self) {
        self.bitbuf = 0;
        self.nbits = 0;
    }

    /// Decodes a fixed-table literal/length symbol.
    fn fixed_lit(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..7 {
            code = self.code_bit(code)?;
        }
        if code <= 0x17 {
            return Ok(256 + code);
        }
        code = self.code_bit(code)?; // 8 bits
        if (0x30..=0xBF).contains(&code) {
            return Ok(code - 0x30);
        }
        if (0xC0..=0xC7).contains(&code) {
            return Ok(280 + (code - 0xC0));
        }
        code = self.code_bit(code)?; // 9 bits
        if (0x190..=0x1FF).contains(&code) {
            return Ok(144 + (code - 0x190));
        }
        Err(format!("invalid fixed literal code {code:#x}"))
    }
}

fn inflate(data: &[u8]) -> Result<Vec<u8>, String> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.bits(1)?;
        let btype = r.bits(2)?;
        match btype {
            0 => {
                r.align_byte();
                if r.i + 4 > r.b.len() {
                    return Err("truncated stored block header".into());
                }
                let len = usize::from(r.b[r.i]) | (usize::from(r.b[r.i + 1]) << 8);
                let nlen = usize::from(r.b[r.i + 2]) | (usize::from(r.b[r.i + 3]) << 8);
                if len != !nlen & 0xFFFF {
                    return Err("stored block LEN/NLEN mismatch".into());
                }
                r.i += 4;
                if r.i + len > r.b.len() {
                    return Err("truncated stored block".into());
                }
                out.extend_from_slice(&r.b[r.i..r.i + len]);
                r.i += len;
            }
            1 => loop {
                let sym = r.fixed_lit()?;
                if sym == 256 {
                    break;
                }
                if sym < 256 {
                    out.push(sym as u8);
                    continue;
                }
                let lc = (sym - 257) as usize;
                if lc >= LEN_BASE.len() {
                    return Err(format!("invalid length code {sym}"));
                }
                let len = (LEN_BASE[lc] + r.bits(LEN_EXTRA[lc])?) as usize;
                let mut dcode = 0u32;
                for _ in 0..5 {
                    dcode = r.code_bit(dcode)?;
                }
                let dc = dcode as usize;
                if dc >= DIST_BASE.len() {
                    return Err(format!("invalid distance code {dc}"));
                }
                let dist = (DIST_BASE[dc] + r.bits(DIST_EXTRA[dc])?) as usize;
                if dist == 0 || dist > out.len() {
                    return Err("distance beyond output".into());
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            },
            2 => return Err("dynamic Huffman blocks unsupported".into()),
            _ => return Err("reserved block type".into()),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

/// Decompresses one gzip member produced by [`gzip_compress`] (or any
/// gzip whose deflate stream uses stored / fixed-Huffman blocks).
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, String> {
    if data.len() < 18 {
        return Err("gzip data too short".into());
    }
    if data[0] != 0x1F || data[1] != 0x8B {
        return Err("bad gzip magic".into());
    }
    if data[2] != 0x08 {
        return Err(format!("unsupported compression method {}", data[2]));
    }
    let flg = data[3];
    let mut i = 10usize;
    if flg & 0x04 != 0 {
        // FEXTRA
        if i + 2 > data.len() {
            return Err("truncated FEXTRA".into());
        }
        let xlen = usize::from(data[i]) | (usize::from(data[i + 1]) << 8);
        i += 2 + xlen;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings.
        if flg & flag != 0 {
            while *data.get(i).ok_or("truncated header string")? != 0 {
                i += 1;
            }
            i += 1;
        }
    }
    if flg & 0x02 != 0 {
        i += 2; // FHCRC
    }
    if i + 8 > data.len() {
        return Err("gzip body too short".into());
    }
    let body = &data[i..data.len() - 8];
    let out = inflate(body)?;
    let tail = &data[data.len() - 8..];
    let want_crc = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    let want_len = u32::from_le_bytes([tail[4], tail[5], tail[6], tail[7]]);
    if crc32(&out) != want_crc {
        return Err("gzip CRC mismatch".into());
    }
    if out.len() as u32 != want_len {
        return Err("gzip ISIZE mismatch".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn roundtrip_empty_and_small() {
        for data in [&b""[..], b"a", b"abc", b"hello world"] {
            let gz = gzip_compress(data);
            assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }
    }

    #[test]
    fn repetitive_input_actually_compresses() {
        let line = "{\"t\":1.5,\"seq\":10,\"ev\":\"iter_begin\",\"w\":0,\"iter\":3}\n";
        let data: String = line.repeat(500);
        let gz = gzip_compress(data.as_bytes());
        assert!(
            gz.len() * 10 < data.len(),
            "expected >10x compression, got {} -> {}",
            data.len(),
            gz.len()
        );
        assert_eq!(gzip_decompress(&gz).unwrap(), data.as_bytes());
    }

    #[test]
    fn compression_is_deterministic() {
        let data = b"the quick brown fox jumps over the lazy dog".repeat(10);
        assert_eq!(gzip_compress(&data), gzip_compress(&data));
    }

    #[test]
    fn stored_block_decodes() {
        // Hand-built gzip with one stored block: "hi".
        let mut gz = vec![0x1F, 0x8B, 0x08, 0x00, 0, 0, 0, 0, 0x00, 0xFF];
        gz.push(0x01); // BFINAL=1, BTYPE=00
        gz.extend_from_slice(&[0x02, 0x00, 0xFD, 0xFF]); // LEN=2, NLEN
        gz.extend_from_slice(b"hi");
        gz.extend_from_slice(&crc32(b"hi").to_le_bytes());
        gz.extend_from_slice(&2u32.to_le_bytes());
        assert_eq!(gzip_decompress(&gz).unwrap(), b"hi");
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let mut gz = gzip_compress(b"payload payload payload");
        let n = gz.len();
        gz[n - 5] ^= 0xFF; // flip a CRC byte
        assert!(gzip_decompress(&gz).unwrap_err().contains("CRC"));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(0u8..=255, 0..4096)) {
            let gz = gzip_compress(&data);
            prop_assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }

        #[test]
        fn prop_roundtrip_repetitive(
            unit in proptest::collection::vec(0u8..=255, 1..32),
            reps in 1usize..200,
        ) {
            let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
            let gz = gzip_compress(&data);
            prop_assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }
    }
}
