//! Typed journal events and their deterministic JSONL encoding.
//!
//! Every event is stamped on the virtual clock (`t`) and carries a
//! monotone sequence number (`seq`). The wire format is a flat JSON
//! object per line with a fixed field order, so a journal for a given
//! (config, seed) is byte-identical across runs, platforms, and
//! compute-thread counts. Floats are formatted with Rust's shortest
//! round-trip `Display`, which is deterministic.

use std::fmt::Write as _;

/// Coarse event family used for the journal's per-category counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Run bookkeeping: meta header, state changes, close, run end.
    Control,
    /// Iteration begin/end markers.
    Iteration,
    /// Staleness-gate waits (enter/exit).
    Gate,
    /// Push/pull transfer lifecycle.
    Transfer,
    /// Per-row plan contents (importance-ranked row ids).
    Row,
    /// Reliability machinery: retransmits and backoff timers.
    Reliability,
    /// Loss-model fates observed on delivery reports.
    Loss,
    /// Fault-clock transitions.
    Fault,
    /// Rejoin resynchronisation transfers.
    Resync,
    /// ATP minimum-transmission-amount decisions.
    Mta,
    /// Live-transport membership and wire hygiene (socket backend
    /// only; sim engines never emit these).
    Transport,
}

impl Category {
    /// Number of categories (array-counter width).
    pub const COUNT: usize = 11;

    /// All categories in display order.
    pub const ALL: [Category; Category::COUNT] = [
        Category::Control,
        Category::Iteration,
        Category::Gate,
        Category::Transfer,
        Category::Row,
        Category::Reliability,
        Category::Loss,
        Category::Fault,
        Category::Resync,
        Category::Mta,
        Category::Transport,
    ];

    /// Stable index into counter arrays.
    pub fn index(self) -> usize {
        match self {
            Category::Control => 0,
            Category::Iteration => 1,
            Category::Gate => 2,
            Category::Transfer => 3,
            Category::Row => 4,
            Category::Reliability => 5,
            Category::Loss => 6,
            Category::Fault => 7,
            Category::Resync => 8,
            Category::Mta => 9,
            Category::Transport => 10,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Category::Control => "control",
            Category::Iteration => "iteration",
            Category::Gate => "gate",
            Category::Transfer => "transfer",
            Category::Row => "row",
            Category::Reliability => "reliability",
            Category::Loss => "loss",
            Category::Fault => "fault",
            Category::Resync => "resync",
            Category::Mta => "mta",
            Category::Transport => "transport",
        }
    }
}

/// One typed journal event.
///
/// Variants map 1:1 to JSONL records; field names below match the wire
/// keys. `&'static str` is used for enumerated strings so recording an
/// event allocates only when a plan row list is attached.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Journal header: run display name and RNG seed.
    Meta { name: String, seed: u64 },
    /// Worker `w` starts computing iteration `iter`.
    IterBegin { w: u32, iter: u64 },
    /// Worker `w` finished iteration `iter` (update applied).
    IterEnd { w: u32, iter: u64 },
    /// Device `w`'s timeline actually changed state (dedup'd against
    /// re-entry, mirroring `Timeline::set_state`).
    State { w: u32, state: &'static str },
    /// Device `w`'s timeline was closed at `t` (end of run).
    Close { w: u32 },
    /// Worker `w` blocked at the staleness gate before iteration
    /// `iter`: global min version `min`, staleness distance `lead`
    /// (how far ahead of the slowest row this worker is), and the
    /// blocking row id (`row`, `-1` when unknown / not row-granular).
    GateEnter {
        w: u32,
        iter: u64,
        min: u64,
        lead: u64,
        row: i64,
    },
    /// Worker `w` released from the gate after waiting `waited` s.
    GateExit { w: u32, iter: u64, waited: f64 },
    /// Worker `w` starts pushing iteration `iter`: `rows` planned of
    /// which `mand` are mandatory (same-row bound), `mta` forced by
    /// the MTA floor, against a time `budget` (s; `-1` = no deadline).
    PushStart {
        w: u32,
        iter: u64,
        rows: u32,
        mand: u32,
        mta: u32,
        budget: f64,
    },
    /// Worker `w` finished pushing iteration `iter`: `rows` rows in
    /// `bytes` payload bytes.
    PushEnd {
        w: u32,
        iter: u64,
        rows: u32,
        bytes: u64,
    },
    /// Worker `w` starts pulling `bytes` of fresh rows for `iter`.
    PullStart { w: u32, iter: u64, bytes: u64 },
    /// Worker `w` finished its pull for iteration `iter`.
    PullEnd { w: u32, iter: u64 },
    /// Importance-ranked rows worker `w` pushes for `iter`
    /// (position in `rows` = importance rank, most important first).
    RowPush { w: u32, iter: u64, rows: Vec<u32> },
    /// Importance-ranked rows worker `w` pulls for `iter`.
    RowPull { w: u32, iter: u64, rows: Vec<u32> },
    /// Worker `w` retransmits `rows` rows of class `class`
    /// ("mandatory" or "reliable").
    Retransmit {
        w: u32,
        rows: u32,
        class: &'static str,
    },
    /// Worker `w` backs off until virtual time `until` (link outage).
    Backoff { w: u32, until: f64 },
    /// A delivery report for worker `w`'s flow observed damage:
    /// `lost` dropped and `corrupt` damaged out of `chunks` chunks.
    Loss {
        w: u32,
        lost: u32,
        corrupt: u32,
        chunks: u32,
    },
    /// Fault-clock transition `kind` for device `w` (`-1` = cluster
    /// or server scope).
    Fault { kind: &'static str, w: i64 },
    /// Worker `w` begins rejoin resync (`bytes` of model to fetch).
    ResyncStart { w: u32, bytes: u64 },
    /// Worker `w` finished resync and resumes at iteration `iter`.
    ResyncEnd { w: u32, iter: u64 },
    /// MTA budget update for worker `w`: measured push time `secs`
    /// feeding the tracker, new per-push `budget` (s).
    Mta { w: u32, secs: f64, budget: f64 },
    /// Edge aggregator `agg` flushed a merge window upstream: `rows`
    /// distinct rows forwarded out of `raw` raw member rows absorbed
    /// across `pushes` member pushes, carrying max row version `ver`.
    AggMerge {
        agg: u32,
        rows: u32,
        raw: u32,
        pushes: u32,
        ver: u64,
    },
    /// Auto-threshold controller changed the staleness threshold.
    AutoThreshold { threshold: u32 },
    /// An adaptive threshold policy (DSSP/ABS) changed worker `w`'s
    /// staleness threshold. The sequence of these events per worker is
    /// the instantaneous gate bound in force at any virtual time, so
    /// the adapted bound is observable and replayable from the journal.
    ThresholdAdapt { w: u32, threshold: u32 },
    /// The per-link codec selector (`--codec auto`) switched worker
    /// `w`'s row codec. The per-worker sequence of these events is the
    /// codec in force on that link at any virtual time, so the selection
    /// is observable and replayable from the journal.
    CodecSelect { w: u32, codec: &'static str },
    /// End of run: total iterations across workers and run duration.
    RunEnd { iters: u64, duration: f64 },
    /// Live cluster: peer `w` completed the join handshake.
    PeerUp { w: u32 },
    /// Live cluster: peer `w` left (Bye) or its reliable lane closed.
    PeerDown { w: u32 },
    /// Live cluster: a datagram from peer `w` was dropped at the wire
    /// (`kind` is "crc" or "dup").
    WireDrop { w: u32, kind: &'static str },
}

impl EventKind {
    /// Stable wire name of the event.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Meta { .. } => "meta",
            EventKind::IterBegin { .. } => "iter_begin",
            EventKind::IterEnd { .. } => "iter_end",
            EventKind::State { .. } => "state",
            EventKind::Close { .. } => "close",
            EventKind::GateEnter { .. } => "gate_enter",
            EventKind::GateExit { .. } => "gate_exit",
            EventKind::PushStart { .. } => "push_start",
            EventKind::PushEnd { .. } => "push_end",
            EventKind::PullStart { .. } => "pull_start",
            EventKind::PullEnd { .. } => "pull_end",
            EventKind::RowPush { .. } => "row_push",
            EventKind::RowPull { .. } => "row_pull",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::Backoff { .. } => "backoff",
            EventKind::Loss { .. } => "loss",
            EventKind::Fault { .. } => "fault",
            EventKind::ResyncStart { .. } => "resync_start",
            EventKind::ResyncEnd { .. } => "resync_end",
            EventKind::Mta { .. } => "mta",
            EventKind::AggMerge { .. } => "agg_merge",
            EventKind::AutoThreshold { .. } => "auto_threshold",
            EventKind::ThresholdAdapt { .. } => "threshold_adapt",
            EventKind::CodecSelect { .. } => "codec_select",
            EventKind::RunEnd { .. } => "run_end",
            EventKind::PeerUp { .. } => "peer_up",
            EventKind::PeerDown { .. } => "peer_down",
            EventKind::WireDrop { .. } => "wire_drop",
        }
    }

    /// Counter category of the event.
    pub fn category(&self) -> Category {
        match self {
            EventKind::Meta { .. }
            | EventKind::State { .. }
            | EventKind::Close { .. }
            | EventKind::AutoThreshold { .. }
            | EventKind::ThresholdAdapt { .. }
            | EventKind::CodecSelect { .. }
            | EventKind::RunEnd { .. } => Category::Control,
            EventKind::IterBegin { .. } | EventKind::IterEnd { .. } => Category::Iteration,
            EventKind::GateEnter { .. } | EventKind::GateExit { .. } => Category::Gate,
            EventKind::PushStart { .. }
            | EventKind::PushEnd { .. }
            | EventKind::PullStart { .. }
            | EventKind::PullEnd { .. }
            | EventKind::AggMerge { .. } => Category::Transfer,
            EventKind::RowPush { .. } | EventKind::RowPull { .. } => Category::Row,
            EventKind::Retransmit { .. } | EventKind::Backoff { .. } => Category::Reliability,
            EventKind::Loss { .. } => Category::Loss,
            EventKind::Fault { .. } => Category::Fault,
            EventKind::ResyncStart { .. } | EventKind::ResyncEnd { .. } => Category::Resync,
            EventKind::Mta { .. } => Category::Mta,
            EventKind::PeerUp { .. } | EventKind::PeerDown { .. } | EventKind::WireDrop { .. } => {
                Category::Transport
            }
        }
    }
}

/// A journal event: virtual time, sequence number, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual-clock timestamp (seconds).
    pub t: f64,
    /// Monotone per-journal sequence number.
    pub seq: u64,
    /// Parameter-server shard this event is scoped to, or
    /// [`Event::NO_SHARD`] for unsharded scope. Only non-negative
    /// values appear on the wire, so single-server journals are
    /// byte-identical to the pre-shard format.
    pub shard: i64,
    /// Typed payload.
    pub kind: EventKind,
}

fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_rows(out: &mut String, rows: &[u32]) {
    out.push('[');
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{r}");
    }
    out.push(']');
}

impl Event {
    /// Sentinel `shard` value for events with unsharded scope: no
    /// `shard` field is written.
    pub const NO_SHARD: i64 = -1;

    /// Appends the event as one JSONL line (including the trailing
    /// newline) with a fixed, deterministic field order.
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"t\":{},\"seq\":{},\"ev\":\"{}\"",
            self.t,
            self.seq,
            self.kind.name()
        );
        if self.shard >= 0 {
            let _ = write!(out, ",\"shard\":{}", self.shard);
        }
        match &self.kind {
            EventKind::Meta { name, seed } => {
                out.push_str(",\"name\":");
                push_str_escaped(out, name);
                let _ = write!(out, ",\"seed\":{seed}");
            }
            EventKind::IterBegin { w, iter } | EventKind::IterEnd { w, iter } => {
                let _ = write!(out, ",\"w\":{w},\"iter\":{iter}");
            }
            EventKind::State { w, state } => {
                let _ = write!(out, ",\"w\":{w},\"state\":\"{state}\"");
            }
            EventKind::Close { w } => {
                let _ = write!(out, ",\"w\":{w}");
            }
            EventKind::GateEnter {
                w,
                iter,
                min,
                lead,
                row,
            } => {
                let _ = write!(
                    out,
                    ",\"w\":{w},\"iter\":{iter},\"min\":{min},\"lead\":{lead},\"row\":{row}"
                );
            }
            EventKind::GateExit { w, iter, waited } => {
                let _ = write!(out, ",\"w\":{w},\"iter\":{iter},\"waited\":{waited}");
            }
            EventKind::PushStart {
                w,
                iter,
                rows,
                mand,
                mta,
                budget,
            } => {
                let _ = write!(
                    out,
                    ",\"w\":{w},\"iter\":{iter},\"rows\":{rows},\"mand\":{mand},\"mta\":{mta},\"budget\":{budget}"
                );
            }
            EventKind::PushEnd {
                w,
                iter,
                rows,
                bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"w\":{w},\"iter\":{iter},\"rows\":{rows},\"bytes\":{bytes}"
                );
            }
            EventKind::PullStart { w, iter, bytes } => {
                let _ = write!(out, ",\"w\":{w},\"iter\":{iter},\"bytes\":{bytes}");
            }
            EventKind::PullEnd { w, iter } => {
                let _ = write!(out, ",\"w\":{w},\"iter\":{iter}");
            }
            EventKind::RowPush { w, iter, rows } | EventKind::RowPull { w, iter, rows } => {
                let _ = write!(out, ",\"w\":{w},\"iter\":{iter},\"rows\":");
                push_rows(out, rows);
            }
            EventKind::Retransmit { w, rows, class } => {
                let _ = write!(out, ",\"w\":{w},\"rows\":{rows},\"class\":\"{class}\"");
            }
            EventKind::Backoff { w, until } => {
                let _ = write!(out, ",\"w\":{w},\"until\":{until}");
            }
            EventKind::Loss {
                w,
                lost,
                corrupt,
                chunks,
            } => {
                let _ = write!(
                    out,
                    ",\"w\":{w},\"lost\":{lost},\"corrupt\":{corrupt},\"chunks\":{chunks}"
                );
            }
            EventKind::Fault { kind, w } => {
                let _ = write!(out, ",\"kind\":\"{kind}\",\"w\":{w}");
            }
            EventKind::ResyncStart { w, bytes } => {
                let _ = write!(out, ",\"w\":{w},\"bytes\":{bytes}");
            }
            EventKind::ResyncEnd { w, iter } => {
                let _ = write!(out, ",\"w\":{w},\"iter\":{iter}");
            }
            EventKind::Mta { w, secs, budget } => {
                let _ = write!(out, ",\"w\":{w},\"secs\":{secs},\"budget\":{budget}");
            }
            EventKind::AggMerge {
                agg,
                rows,
                raw,
                pushes,
                ver,
            } => {
                let _ = write!(
                    out,
                    ",\"agg\":{agg},\"rows\":{rows},\"raw\":{raw},\"pushes\":{pushes},\"ver\":{ver}"
                );
            }
            EventKind::AutoThreshold { threshold } => {
                let _ = write!(out, ",\"threshold\":{threshold}");
            }
            EventKind::ThresholdAdapt { w, threshold } => {
                let _ = write!(out, ",\"w\":{w},\"threshold\":{threshold}");
            }
            EventKind::CodecSelect { w, codec } => {
                let _ = write!(out, ",\"w\":{w},\"codec\":\"{codec}\"");
            }
            EventKind::RunEnd { iters, duration } => {
                let _ = write!(out, ",\"iters\":{iters},\"duration\":{duration}");
            }
            EventKind::PeerUp { w } | EventKind::PeerDown { w } => {
                let _ = write!(out, ",\"w\":{w}");
            }
            EventKind::WireDrop { w, kind } => {
                let _ = write!(out, ",\"w\":{w},\"kind\":\"{kind}\"");
            }
        }
        out.push_str("}\n");
    }
}

/// A parsed JSONL field value (numbers, strings, and flat number
/// arrays are all the journal format contains).
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// A JSON number, kept as its exact source text plus parsed value.
    Num(f64),
    /// A JSON string (unescaped).
    Str(String),
    /// A flat array of numbers.
    Arr(Vec<f64>),
}

impl Val {
    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One parsed journal line: flat key → value map in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Fields in their order of appearance (`t`, `seq`, `ev`, …).
    pub fields: Vec<(String, Val)>,
}

impl Record {
    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Val> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric field by key.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Val::as_f64)
    }

    /// String field by key.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Val::as_str)
    }

    /// The `ev` event name.
    pub fn ev(&self) -> &str {
        self.str("ev").unwrap_or("")
    }

    /// The `t` timestamp.
    pub fn t(&self) -> f64 {
        self.num("t").unwrap_or(0.0)
    }

    /// Parses one JSONL journal line (a flat JSON object).
    pub fn parse(line: &str) -> Result<Record, String> {
        let mut p = Parser {
            b: line.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut fields = Vec::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            return Ok(Record { fields });
        }
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let val = p.value()?;
            fields.push((key, val));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
        Ok(Record { fields })
    }
}

/// Minimal parser for the journal's flat JSON subset.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.next() {
            Some(g) if g == c => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", c as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.next() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or("bad hex digit in \\u escape")?;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if c < 0x80 => s.push(c as char),
                Some(c) => {
                    // Multi-byte UTF-8: copy the raw bytes of the scalar.
                    let start = self.i - 1;
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.b.len());
                    s.push_str(
                        std::str::from_utf8(&self.b[start..end]).map_err(|e| e.to_string())?,
                    );
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number: {e}"))
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut arr = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Val::Arr(arr));
                }
                loop {
                    self.skip_ws();
                    arr.push(self.number()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => break,
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
                Ok(Val::Arr(arr))
            }
            Some(b'0'..=b'9' | b'-') => Ok(Val::Num(self.number()?)),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(kind: EventKind) -> Record {
        let ev = Event {
            t: 1.25,
            seq: 7,
            shard: Event::NO_SHARD,
            kind,
        };
        let mut s = String::new();
        ev.write_jsonl(&mut s);
        assert!(s.ends_with('\n'));
        Record::parse(s.trim_end()).expect("parse")
    }

    #[test]
    fn encode_and_parse_push_start() {
        let r = roundtrip(EventKind::PushStart {
            w: 2,
            iter: 5,
            rows: 11,
            mand: 3,
            mta: 2,
            budget: 0.5,
        });
        assert_eq!(r.ev(), "push_start");
        assert_eq!(r.t(), 1.25);
        assert_eq!(r.num("seq"), Some(7.0));
        assert_eq!(r.num("rows"), Some(11.0));
        assert_eq!(r.num("budget"), Some(0.5));
    }

    #[test]
    fn encode_and_parse_row_plan() {
        let r = roundtrip(EventKind::RowPush {
            w: 0,
            iter: 3,
            rows: vec![4, 0, 9],
        });
        assert_eq!(
            r.get("rows"),
            Some(&Val::Arr(vec![4.0, 0.0, 9.0])),
            "rank order preserved"
        );
    }

    #[test]
    fn encode_and_parse_agg_merge() {
        let r = roundtrip(EventKind::AggMerge {
            agg: 3,
            rows: 8,
            raw: 20,
            pushes: 4,
            ver: 17,
        });
        assert_eq!(r.ev(), "agg_merge");
        assert_eq!(r.num("agg"), Some(3.0));
        assert_eq!(r.num("rows"), Some(8.0));
        assert_eq!(r.num("raw"), Some(20.0));
        assert_eq!(r.num("pushes"), Some(4.0));
        assert_eq!(r.num("ver"), Some(17.0));
    }

    #[test]
    fn meta_name_is_escaped() {
        let r = roundtrip(EventKind::Meta {
            name: "a \"b\"\nc".into(),
            seed: 42,
        });
        assert_eq!(r.str("name"), Some("a \"b\"\nc"));
        assert_eq!(r.num("seed"), Some(42.0));
    }

    #[test]
    fn float_formatting_is_shortest_roundtrip() {
        let ev = Event {
            t: 0.1 + 0.2,
            seq: 0,
            shard: Event::NO_SHARD,
            kind: EventKind::Close { w: 0 },
        };
        let mut s = String::new();
        ev.write_jsonl(&mut s);
        assert!(s.starts_with("{\"t\":0.30000000000000004,"), "{s}");
        let r = Record::parse(s.trim_end()).unwrap();
        assert_eq!(r.t(), 0.1 + 0.2);
    }

    #[test]
    fn shard_field_appears_only_when_scoped() {
        let mut unsharded = String::new();
        Event {
            t: 1.0,
            seq: 0,
            shard: Event::NO_SHARD,
            kind: EventKind::PullEnd { w: 0, iter: 3 },
        }
        .write_jsonl(&mut unsharded);
        assert!(!unsharded.contains("shard"), "{unsharded}");

        let mut sharded = String::new();
        Event {
            t: 1.0,
            seq: 0,
            shard: 2,
            kind: EventKind::PullEnd { w: 0, iter: 3 },
        }
        .write_jsonl(&mut sharded);
        assert!(
            sharded.starts_with("{\"t\":1,\"seq\":0,\"ev\":\"pull_end\",\"shard\":2,"),
            "{sharded}"
        );
        let r = Record::parse(sharded.trim_end()).unwrap();
        assert_eq!(r.num("shard"), Some(2.0));
    }

    #[test]
    fn every_kind_has_distinct_name_and_category() {
        let kinds = vec![
            EventKind::Meta {
                name: String::new(),
                seed: 0,
            },
            EventKind::IterBegin { w: 0, iter: 0 },
            EventKind::IterEnd { w: 0, iter: 0 },
            EventKind::State {
                w: 0,
                state: "compute",
            },
            EventKind::Close { w: 0 },
            EventKind::GateEnter {
                w: 0,
                iter: 0,
                min: 0,
                lead: 0,
                row: -1,
            },
            EventKind::GateExit {
                w: 0,
                iter: 0,
                waited: 0.0,
            },
            EventKind::PushStart {
                w: 0,
                iter: 0,
                rows: 0,
                mand: 0,
                mta: 0,
                budget: -1.0,
            },
            EventKind::PushEnd {
                w: 0,
                iter: 0,
                rows: 0,
                bytes: 0,
            },
            EventKind::PullStart {
                w: 0,
                iter: 0,
                bytes: 0,
            },
            EventKind::PullEnd { w: 0, iter: 0 },
            EventKind::RowPush {
                w: 0,
                iter: 0,
                rows: vec![],
            },
            EventKind::RowPull {
                w: 0,
                iter: 0,
                rows: vec![],
            },
            EventKind::Retransmit {
                w: 0,
                rows: 0,
                class: "mandatory",
            },
            EventKind::Backoff { w: 0, until: 0.0 },
            EventKind::Loss {
                w: 0,
                lost: 0,
                corrupt: 0,
                chunks: 0,
            },
            EventKind::Fault {
                kind: "worker_down",
                w: 0,
            },
            EventKind::ResyncStart { w: 0, bytes: 0 },
            EventKind::ResyncEnd { w: 0, iter: 0 },
            EventKind::Mta {
                w: 0,
                secs: 0.0,
                budget: 0.0,
            },
            EventKind::AggMerge {
                agg: 0,
                rows: 0,
                raw: 0,
                pushes: 0,
                ver: 0,
            },
            EventKind::AutoThreshold { threshold: 0 },
            EventKind::ThresholdAdapt { w: 0, threshold: 0 },
            EventKind::CodecSelect {
                w: 0,
                codec: "onebit",
            },
            EventKind::RunEnd {
                iters: 0,
                duration: 0.0,
            },
            EventKind::PeerUp { w: 0 },
            EventKind::PeerDown { w: 0 },
            EventKind::WireDrop { w: 0, kind: "crc" },
        ];
        let mut names: Vec<&str> = kinds.iter().map(EventKind::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len(), "duplicate wire name");
        for k in &kinds {
            assert!(k.category().index() < Category::COUNT);
        }
    }

    #[test]
    fn category_indices_are_a_permutation() {
        let mut seen = [false; Category::COUNT];
        for c in Category::ALL {
            assert!(!seen[c.index()], "duplicate index for {}", c.name());
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
