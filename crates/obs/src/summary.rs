//! Journal aggregation: replaying a JSONL journal into a Fig.8-style
//! per-iteration composition table.
//!
//! The replay mirrors `rog-sim`'s `Timeline` float arithmetic
//! operation-for-operation (same additions, same order), so the
//! composition derived from a journal is bitwise identical to the one
//! `RunMetrics` reports for the same run — the journal-vs-aggregate
//! cross-check the test suite pins.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::Record;

/// Device state names in `rog-sim` display order; indices match
/// `DeviceState::ALL`.
pub const STATE_NAMES: [&str; 5] = ["compute", "communicate", "stall", "idle", "offline"];

const COMPUTE: usize = 0;
const COMMUNICATE: usize = 1;
const STALL: usize = 2;
const OFFLINE: usize = 4;

/// Aggregates of one parsed journal.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Run display name from the `meta` header.
    pub name: String,
    /// RNG seed from the `meta` header.
    pub seed: u64,
    /// Total iterations across workers (from `run_end`).
    pub iters: u64,
    /// Virtual run duration in seconds (from `run_end`).
    pub duration: f64,
    /// Number of devices observed in state events.
    pub n_devices: usize,
    /// Per-device residency seconds, indexed `[device][state]` with
    /// states in [`STATE_NAMES`] order.
    pub residency: Vec<[f64; 5]>,
    /// Event counts by wire name.
    pub event_counts: BTreeMap<String, u64>,
    /// Total gate wait seconds (sum of `gate_exit.waited`).
    pub gate_wait_total: f64,
    /// Longest single gate wait.
    pub gate_wait_max: f64,
    /// Payload bytes from `push_end` events.
    pub bytes_pushed: u64,
    /// Rows re-sent by `retransmit` events.
    pub rows_retransmitted: u64,
    /// Chunks lost / corrupt from `loss` events.
    pub chunks_lost: u64,
    /// Chunks delivered damaged.
    pub chunks_corrupt: u64,
    /// Journal lines parsed.
    pub lines: usize,
}

/// Replay of one device's timeline, mirroring `Timeline::set_state` /
/// `Timeline::close` exactly: a span contributes `end - start` only
/// when strictly positive, additions happen in span order.
#[derive(Debug, Clone)]
struct DeviceReplay {
    open: Option<(usize, f64)>,
    res: [f64; 5],
}

impl Default for DeviceReplay {
    fn default() -> Self {
        DeviceReplay {
            open: None,
            // -0.0 is the identity `Sum for f64` folds from, so a state
            // with no spans reproduces `Timeline::time_in`'s empty sum
            // bit-for-bit (it is -0.0, not +0.0).
            res: [-0.0; 5],
        }
    }
}

impl DeviceReplay {
    fn set_state(&mut self, t: f64, state: usize) {
        if let Some((cur, start)) = self.open {
            if cur == state {
                return;
            }
            if t > start {
                self.res[cur] += t - start;
            }
        }
        self.open = Some((state, t));
    }

    fn close(&mut self, t: f64) {
        if let Some((cur, start)) = self.open.take() {
            if t > start {
                self.res[cur] += t - start;
            }
        }
    }
}

impl TraceSummary {
    /// Parses and aggregates a JSONL journal.
    pub fn from_jsonl(text: &str) -> Result<TraceSummary, String> {
        let mut devices: Vec<DeviceReplay> = Vec::new();
        let mut event_counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut name = String::new();
        let mut seed = 0u64;
        let mut iters = 0u64;
        let mut duration = 0.0f64;
        let mut gate_wait_total = 0.0f64;
        let mut gate_wait_max = 0.0f64;
        let mut bytes_pushed = 0u64;
        let mut rows_retransmitted = 0u64;
        let mut chunks_lost = 0u64;
        let mut chunks_corrupt = 0u64;
        let mut lines = 0usize;

        let dev = |devices: &mut Vec<DeviceReplay>, w: usize| {
            if devices.len() <= w {
                devices.resize_with(w + 1, DeviceReplay::default);
            }
        };

        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec = Record::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            lines += 1;
            let ev = rec.ev().to_string();
            *event_counts.entry(ev.clone()).or_insert(0) += 1;
            let t = rec.t();
            match ev.as_str() {
                "meta" => {
                    name = rec.str("name").unwrap_or("").to_string();
                    seed = rec.num("seed").unwrap_or(0.0) as u64;
                }
                "state" => {
                    let w = rec.num("w").ok_or("state without w")? as usize;
                    let s = rec.str("state").ok_or("state without state")?;
                    let idx = STATE_NAMES
                        .iter()
                        .position(|&n| n == s)
                        .ok_or_else(|| format!("unknown state {s:?}"))?;
                    dev(&mut devices, w);
                    devices[w].set_state(t, idx);
                }
                "close" => {
                    let w = rec.num("w").ok_or("close without w")? as usize;
                    dev(&mut devices, w);
                    devices[w].close(t);
                }
                "gate_exit" => {
                    let waited = rec.num("waited").unwrap_or(0.0);
                    gate_wait_total += waited;
                    if waited > gate_wait_max {
                        gate_wait_max = waited;
                    }
                }
                "push_end" => {
                    bytes_pushed += rec.num("bytes").unwrap_or(0.0) as u64;
                }
                "retransmit" => {
                    rows_retransmitted += rec.num("rows").unwrap_or(0.0) as u64;
                }
                "loss" => {
                    chunks_lost += rec.num("lost").unwrap_or(0.0) as u64;
                    chunks_corrupt += rec.num("corrupt").unwrap_or(0.0) as u64;
                }
                "run_end" => {
                    iters = rec.num("iters").unwrap_or(0.0) as u64;
                    duration = rec.num("duration").unwrap_or(0.0);
                }
                _ => {}
            }
        }

        Ok(TraceSummary {
            name,
            seed,
            iters,
            duration,
            n_devices: devices.len(),
            residency: devices.into_iter().map(|d| d.res).collect(),
            event_counts,
            gate_wait_total,
            gate_wait_max,
            bytes_pushed,
            rows_retransmitted,
            chunks_lost,
            chunks_corrupt,
            lines,
        })
    }

    /// Cluster residency for `state` (index into [`STATE_NAMES`]),
    /// summed over devices in index order — the same summation order
    /// `MetricsCollector::finish` uses over timelines.
    pub fn cluster_residency(&self, state: usize) -> f64 {
        self.residency.iter().map(|r| r[state]).sum()
    }

    /// Per-iteration composition `[compute, communicate, stall,
    /// offline]`, computed with the exact arithmetic of
    /// `MetricsCollector::finish` (zero when no iterations ran).
    pub fn composition(&self) -> [f64; 4] {
        if self.iters == 0 {
            return [0.0; 4];
        }
        let per = |s: usize| (self.cluster_residency(s) / self.iters as f64).max(0.0);
        [per(COMPUTE), per(COMMUNICATE), per(STALL), per(OFFLINE)]
    }

    /// Renders the Fig.8-style per-iteration composition table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace: {}", self.name);
        let _ = writeln!(
            out,
            "seed: {}  devices: {}  iterations: {}  duration: {:.3} s  journal lines: {}",
            self.seed, self.n_devices, self.iters, self.duration, self.lines
        );
        let comp = self.composition();
        let total: f64 = comp.iter().sum();
        let _ = writeln!(out, "\nper-iteration composition (s/iter):");
        let labels = ["compute", "communicate", "stall", "offline"];
        for (label, v) in labels.iter().zip(comp) {
            let pct = if total > 0.0 { 100.0 * v / total } else { 0.0 };
            let _ = writeln!(out, "  {label:<12} {v:>12.6}  {pct:>6.2}%");
        }
        let _ = writeln!(out, "  {:<12} {total:>12.6}", "total");
        let _ = writeln!(
            out,
            "\ngate waits: total {:.6} s, max {:.6} s",
            self.gate_wait_total, self.gate_wait_max
        );
        let _ = writeln!(
            out,
            "bytes pushed: {}  rows retransmitted: {}  chunks lost/corrupt: {}/{}",
            self.bytes_pushed, self.rows_retransmitted, self.chunks_lost, self.chunks_corrupt
        );
        let _ = writeln!(out, "\nevents:");
        for (ev, n) in &self.event_counts {
            let _ = writeln!(out, "  {ev:<16} {n:>10}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn journal_text(events: &[(f64, EventKind)]) -> String {
        let mut s = String::new();
        for (i, (t, k)) in events.iter().enumerate() {
            Event {
                t: *t,
                seq: i as u64,
                shard: Event::NO_SHARD,
                kind: k.clone(),
            }
            .write_jsonl(&mut s);
        }
        s
    }

    #[test]
    fn replay_reproduces_timeline_residencies() {
        // Mirrors timeline.rs::transitions_accumulate_durations.
        let text = journal_text(&[
            (
                0.0,
                EventKind::State {
                    w: 0,
                    state: "compute",
                },
            ),
            (
                2.0,
                EventKind::State {
                    w: 0,
                    state: "communicate",
                },
            ),
            (
                3.0,
                EventKind::State {
                    w: 0,
                    state: "stall",
                },
            ),
            (
                3.5,
                EventKind::State {
                    w: 0,
                    state: "compute",
                },
            ),
            (5.0, EventKind::Close { w: 0 }),
            (
                5.0,
                EventKind::RunEnd {
                    iters: 2,
                    duration: 5.0,
                },
            ),
        ]);
        let s = TraceSummary::from_jsonl(&text).unwrap();
        assert_eq!(s.n_devices, 1);
        assert_eq!(s.residency[0][COMPUTE], 3.5);
        assert_eq!(s.residency[0][COMMUNICATE], 1.0);
        assert_eq!(s.residency[0][STALL], 0.5);
        let comp = s.composition();
        assert_eq!(comp[0], 1.75);
        assert_eq!(comp[1], 0.5);
        assert_eq!(comp[2], 0.25);
        assert_eq!(comp[3], 0.0);
    }

    #[test]
    fn zero_length_spans_are_dropped_like_timeline() {
        let text = journal_text(&[
            (
                1.0,
                EventKind::State {
                    w: 0,
                    state: "compute",
                },
            ),
            (
                1.0,
                EventKind::State {
                    w: 0,
                    state: "stall",
                },
            ),
            (2.0, EventKind::Close { w: 0 }),
        ]);
        let s = TraceSummary::from_jsonl(&text).unwrap();
        assert_eq!(s.residency[0][COMPUTE], 0.0);
        assert_eq!(s.residency[0][STALL], 1.0);
    }

    #[test]
    fn gauges_and_counts_aggregate() {
        let text = journal_text(&[
            (
                0.0,
                EventKind::Meta {
                    name: "x".into(),
                    seed: 9,
                },
            ),
            (
                1.0,
                EventKind::GateExit {
                    w: 0,
                    iter: 1,
                    waited: 0.25,
                },
            ),
            (
                2.0,
                EventKind::GateExit {
                    w: 1,
                    iter: 1,
                    waited: 0.75,
                },
            ),
            (
                3.0,
                EventKind::PushEnd {
                    w: 0,
                    iter: 1,
                    rows: 3,
                    bytes: 123,
                },
            ),
            (
                4.0,
                EventKind::Loss {
                    w: 0,
                    lost: 1,
                    corrupt: 2,
                    chunks: 8,
                },
            ),
        ]);
        let s = TraceSummary::from_jsonl(&text).unwrap();
        assert_eq!(s.name, "x");
        assert_eq!(s.seed, 9);
        assert_eq!(s.event_counts.get("gate_exit"), Some(&2));
        assert!((s.gate_wait_total - 1.0).abs() < 1e-12);
        assert!((s.gate_wait_max - 0.75).abs() < 1e-12);
        assert_eq!(s.bytes_pushed, 123);
        assert_eq!(s.chunks_lost, 1);
        assert_eq!(s.chunks_corrupt, 2);
        let rendered = s.render();
        assert!(rendered.contains("per-iteration composition"));
        assert!(rendered.contains("gate_exit"));
    }

    #[test]
    fn no_iterations_means_zero_composition() {
        let text = journal_text(&[
            (
                0.0,
                EventKind::State {
                    w: 0,
                    state: "idle",
                },
            ),
            (1.0, EventKind::Close { w: 0 }),
        ]);
        let s = TraceSummary::from_jsonl(&text).unwrap();
        assert_eq!(s.composition(), [0.0; 4]);
    }

    #[test]
    fn bad_line_reports_line_number() {
        let err = TraceSummary::from_jsonl("{\"t\":1}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
