//! The ATP importance metric (Algorithm 3).
//!
//! Workers pushing to the parameter server give extra weight to *stale*
//! rows (`max(iter) - iter_i`), because stale pushed rows are what
//! trigger the server-side staleness gate and cause stall. The server
//! pulling to a worker instead favors *fresh* rows (`iter_i -
//! min(iter)`), which typically contribute more to accuracy. Both modes
//! add the mean absolute gradient value of the row. `f1`/`f2` are the
//! paper's empirical coefficients; here each term is normalized to
//! `[0, 1]` so the defaults are scale-free.

use crate::RowId;

/// Reusable scratch for [`ImportanceMetric::rank_into`] and
/// [`ImportanceMetric::rank_top_k_into`]: the per-row score buffer stays
/// allocated across calls, so steady-state ranking allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct RankScratch {
    scores: Vec<f64>,
}

/// Coefficients of the two importance terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceWeights {
    /// Weight of the gradient-magnitude term.
    pub f1: f64,
    /// Weight of the staleness/freshness term.
    pub f2: f64,
}

impl Default for ImportanceWeights {
    fn default() -> Self {
        Self { f1: 1.0, f2: 1.0 }
    }
}

/// Which side of the protocol is ranking rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportanceMode {
    /// Worker pushing to the parameter server: prioritize stale rows.
    Worker,
    /// Server sending to a worker: prioritize fresh rows.
    Server,
}

/// Ranks rows for transmission (highest importance first).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ImportanceMetric {
    /// Term weights.
    pub weights: ImportanceWeights,
}

impl ImportanceMetric {
    /// Creates a metric with the given weights.
    pub fn new(weights: ImportanceWeights) -> Self {
        Self { weights }
    }

    /// Returns row ids sorted by descending importance (ties broken by
    /// row id for determinism).
    ///
    /// `mean_abs[i]` is the mean absolute gradient of row `i`;
    /// `iters[i]` is the latest training iteration that updated row `i`
    /// (worker mode: last *pushed*; server mode: freshest content).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn rank(&self, mode: ImportanceMode, mean_abs: &[f32], iters: &[u64]) -> Vec<RowId> {
        let mut out = Vec::new();
        self.rank_into(mode, mean_abs, iters, &mut RankScratch::default(), &mut out);
        out
    }

    /// Allocation-free variant of [`ImportanceMetric::rank`]: writes the
    /// full descending-importance order into `out`, reusing `scratch`
    /// for the per-row scores.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn rank_into(
        &self,
        mode: ImportanceMode,
        mean_abs: &[f32],
        iters: &[u64],
        scratch: &mut RankScratch,
        out: &mut Vec<RowId>,
    ) {
        let n = self.prepare(mode, mean_abs, iters, scratch, out);
        if n == 0 {
            return;
        }
        let scores = &scratch.scores;
        out.sort_unstable_by(|a, b| Self::by_score(scores, *a, *b));
    }

    /// Ranks only the `k` most important rows (`O(n + k log k)` instead
    /// of a full `O(n log n)` sort): the result is exactly the first `k`
    /// entries of [`ImportanceMetric::rank_into`]'s order. Use when a
    /// transmission budget caps the rows that can possibly be sent.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn rank_top_k_into(
        &self,
        mode: ImportanceMode,
        mean_abs: &[f32],
        iters: &[u64],
        k: usize,
        scratch: &mut RankScratch,
        out: &mut Vec<RowId>,
    ) {
        let n = self.prepare(mode, mean_abs, iters, scratch, out);
        if n == 0 || k == 0 {
            out.clear();
            return;
        }
        let scores = &scratch.scores;
        if k < n {
            // Partition: everything before index k ranks at or above
            // everything after it under the (score desc, id asc) order.
            out.select_nth_unstable_by(k, |a, b| Self::by_score(scores, *a, *b));
            out.truncate(k);
        }
        out.sort_unstable_by(|a, b| Self::by_score(scores, *a, *b));
    }

    /// Fills `scratch.scores` and seeds `out` with the identity
    /// permutation; returns the row count.
    fn prepare(
        &self,
        mode: ImportanceMode,
        mean_abs: &[f32],
        iters: &[u64],
        scratch: &mut RankScratch,
        out: &mut Vec<RowId>,
    ) -> usize {
        assert_eq!(mean_abs.len(), iters.len(), "importance input mismatch");
        let n = mean_abs.len();
        out.clear();
        scratch.scores.clear();
        if n == 0 {
            return 0;
        }
        let max_abs = mean_abs.iter().cloned().fold(0.0f32, f32::max).max(1e-12);
        let min_iter = iters.iter().copied().min().unwrap_or(0);
        let max_iter = iters.iter().copied().max().unwrap_or(0);
        let span = (max_iter - min_iter).max(1) as f64;
        scratch.scores.extend((0..n).map(|i| {
            let mag = f64::from(mean_abs[i] / max_abs);
            let version_term = match mode {
                ImportanceMode::Worker => (max_iter - iters[i]) as f64 / span,
                ImportanceMode::Server => (iters[i] - min_iter) as f64 / span,
            };
            self.weights.f1 * mag + self.weights.f2 * version_term
        }));
        out.extend((0..n).map(RowId));
        n
    }

    /// Score-descending, id-ascending total order (unique ids make ties
    /// impossible, so unstable sorts are deterministic).
    fn by_score(scores: &[f64], a: RowId, b: RowId) -> std::cmp::Ordering {
        scores[b.0]
            .partial_cmp(&scores[a.0])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn worker_mode_prioritizes_stale_rows() {
        let m = ImportanceMetric::default();
        // Equal magnitudes; row 1 is two iterations stale.
        let order = m.rank(ImportanceMode::Worker, &[0.5, 0.5, 0.5], &[5, 3, 5]);
        assert_eq!(order[0], RowId(1));
    }

    #[test]
    fn server_mode_prioritizes_fresh_rows() {
        let m = ImportanceMetric::default();
        let order = m.rank(ImportanceMode::Server, &[0.5, 0.5, 0.5], &[5, 3, 4]);
        assert_eq!(order[0], RowId(0));
        assert_eq!(order[2], RowId(1));
    }

    #[test]
    fn large_gradients_win_at_equal_staleness() {
        let m = ImportanceMetric::default();
        let order = m.rank(ImportanceMode::Worker, &[0.1, 0.9, 0.4], &[2, 2, 2]);
        assert_eq!(order, vec![RowId(1), RowId(2), RowId(0)]);
    }

    #[test]
    fn weights_trade_off_terms() {
        // Magnitude-only metric ignores staleness entirely.
        let mag_only = ImportanceMetric::new(ImportanceWeights { f1: 1.0, f2: 0.0 });
        let order = mag_only.rank(ImportanceMode::Worker, &[0.9, 0.1], &[0, 9]);
        assert_eq!(order[0], RowId(0));
        // Staleness-only metric ignores magnitude.
        let stale_only = ImportanceMetric::new(ImportanceWeights { f1: 0.0, f2: 1.0 });
        let order = stale_only.rank(ImportanceMode::Worker, &[0.9, 0.1], &[9, 0]);
        assert_eq!(order[0], RowId(1));
    }

    #[test]
    fn empty_input_is_empty() {
        let m = ImportanceMetric::default();
        assert!(m.rank(ImportanceMode::Worker, &[], &[]).is_empty());
    }

    #[test]
    fn ties_break_deterministically_by_id() {
        let m = ImportanceMetric::default();
        let order = m.rank(ImportanceMode::Worker, &[0.5; 4], &[1; 4]);
        assert_eq!(order, vec![RowId(0), RowId(1), RowId(2), RowId(3)]);
    }

    #[test]
    fn top_k_is_prefix_of_full_rank() {
        let m = ImportanceMetric::default();
        let mags: Vec<f32> = (0..57).map(|i| ((i * 31 + 7) % 57) as f32 / 57.0).collect();
        let iters: Vec<u64> = (0..57).map(|i| (i * 13 + 5) % 23).collect();
        let full = m.rank(ImportanceMode::Worker, &mags, &iters);
        let mut scratch = RankScratch::default();
        let mut out = Vec::new();
        for k in [0usize, 1, 7, 56, 57, 100] {
            m.rank_top_k_into(
                ImportanceMode::Worker,
                &mags,
                &iters,
                k,
                &mut scratch,
                &mut out,
            );
            assert_eq!(out, full[..k.min(full.len())], "k={k}");
        }
    }

    #[test]
    fn rank_into_reuses_buffers() {
        let m = ImportanceMetric::default();
        let mut scratch = RankScratch::default();
        let mut out = Vec::new();
        m.rank_into(
            ImportanceMode::Server,
            &[0.1, 0.9],
            &[1, 2],
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, vec![RowId(1), RowId(0)]);
        // A second call with different inputs fully overwrites.
        m.rank_into(
            ImportanceMode::Server,
            &[0.9, 0.1, 0.5],
            &[2, 2, 2],
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, vec![RowId(0), RowId(2), RowId(1)]);
    }

    proptest! {
        #[test]
        fn prop_rank_is_permutation(
            mags in proptest::collection::vec(0.0f32..10.0, 0..64),
        ) {
            let iters: Vec<u64> = (0..mags.len() as u64).collect();
            let m = ImportanceMetric::default();
            let mut order: Vec<usize> = m
                .rank(ImportanceMode::Server, &mags, &iters)
                .into_iter()
                .map(|r| r.0)
                .collect();
            order.sort_unstable();
            prop_assert_eq!(order, (0..mags.len()).collect::<Vec<_>>());
        }
    }
}
