//! MTA — minimum transmission amount (Sec. IV-B, Table I).
//!
//! If every push transmits at least a fraction `P` of the rows (stalest
//! first), then after `s` pushes at most `(1-P)^s` of the rows remain
//! untransmitted. For all rows to be refreshed before the staleness
//! threshold `S` triggers, the paper requires `(1-P)^(S-1) < P` and sets
//! MTA to the solution of the equality — tabulated in Table I:
//!
//! | threshold | 2 | 3 | 4 | 5 | 6 | 7 | 8 |
//! |---|---|---|---|---|---|---|---|
//! | MTA | 0.5 | 0.38 | 0.32 | 0.28 | 0.25 | 0.22 | 0.2 |

/// The MTA fraction for staleness threshold `s`: the root of
/// `(1 - P)^(s-1) = P` in `(0, 1)`.
///
/// For `s <= 1` every row must be transmitted every iteration (returns
/// 1.0).
///
/// # Example
///
/// ```
/// use rog_core::mta::mta_fraction;
///
/// assert!((mta_fraction(2) - 0.5).abs() < 1e-9);
/// assert!((mta_fraction(4) - 0.32).abs() < 0.005); // Table I
/// ```
pub fn mta_fraction(s: u32) -> f64 {
    if s <= 1 {
        return 1.0;
    }
    let e = (s - 1) as f64;
    // f(p) = (1-p)^e - p is strictly decreasing on [0, 1] with f(0) = 1
    // and f(1) = -1: bisect.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if (1.0 - mid).powf(e) - mid > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Number of rows a push must include for `n_rows` total rows under
/// threshold `s` (at least 1 for non-empty models).
pub fn mta_rows(n_rows: usize, s: u32) -> usize {
    if n_rows == 0 {
        return 0;
    }
    ((n_rows as f64 * mta_fraction(s)).ceil() as usize).clamp(1, n_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reproduces_table_1() {
        // Paper Table I, to the two decimals printed there.
        let expected = [
            (2u32, 0.5),
            (3, 0.38),
            (4, 0.32),
            (5, 0.28),
            (6, 0.25),
            (7, 0.22),
            (8, 0.2),
        ];
        for (s, want) in expected {
            let got = mta_fraction(s);
            assert!(
                (got - want).abs() < 0.005,
                "threshold {s}: got {got}, table says {want}"
            );
        }
    }

    #[test]
    fn degenerate_thresholds_require_everything() {
        assert_eq!(mta_fraction(0), 1.0);
        assert_eq!(mta_fraction(1), 1.0);
    }

    #[test]
    fn mta_rows_rounds_up_and_clamps() {
        assert_eq!(mta_rows(100, 2), 50);
        assert_eq!(mta_rows(3, 8), 1);
        assert_eq!(mta_rows(0, 4), 0);
        assert_eq!(mta_rows(1, 64), 1);
    }

    proptest! {
        #[test]
        fn prop_solution_satisfies_inequality(s in 2u32..64) {
            let p = mta_fraction(s);
            prop_assert!((0.0..1.0).contains(&p));
            // Slightly above the root the strict inequality holds.
            let p_eps = p + 1e-6;
            prop_assert!((1.0 - p_eps).powf((s - 1) as f64) < p_eps);
            // At the root it's an equality within tolerance.
            prop_assert!(((1.0 - p).powf((s - 1) as f64) - p).abs() < 1e-9);
        }

        #[test]
        fn prop_mta_decreases_with_threshold(s in 2u32..63) {
            prop_assert!(mta_fraction(s + 1) < mta_fraction(s));
        }

        #[test]
        fn prop_stalest_first_coverage(s in 2u32..16, n in 1usize..5000) {
            // Pushing the `mta_rows` stalest rows each step refreshes
            // every row within ceil(1/P) steps — the deterministic
            // counterpart of the paper's probabilistic (1-P)^s argument.
            let p = mta_fraction(s);
            let k = mta_rows(n, s);
            let steps = (1.0 / p).ceil() as usize;
            let mut untransmitted = n;
            for _ in 0..steps {
                untransmitted = untransmitted.saturating_sub(k);
            }
            prop_assert_eq!(untransmitted, 0, "n={}, s={}, k={}", n, s, k);
        }
    }
}
