//! RSP + ATP: the contribution of the ROG paper.
//!
//! ROG breaks the granularity of gradient synchronization down from the
//! whole model to individual *rows* of each parameter matrix, and
//! schedules their transmission adaptively:
//!
//! * **RSP (Row Stale Parallel)** — a two-level staleness control
//!   (Sec. III-A, IV-A): the version of the same row across different
//!   workers, and of different rows within one worker, may each diverge
//!   by at most the staleness threshold. Implemented by
//!   [`RowVersionStore`] (parameter-server side, Algo 2 lines 7–9) and
//!   the mandatory-row rule of [`RogWorker::plan_push`] (worker side).
//!   RSP provably retains SSP's convergence guarantee —
//!   [`convergence::rsp_regret_bound`] computes the Theorem 1 bound and
//!   the crate's tests exercise it on a convex problem.
//!
//! * **ATP (Adaptive Transmission Protocol)** — [`ImportanceMetric`]
//!   (Algo 3) ranks rows by gradient magnitude plus staleness pressure,
//!   and speculative transmission (Algo 4) sends rows in that order
//!   under a shared time budget: [`mta::mta_fraction`] gives the minimum
//!   transmission amount that keeps RSP satisfiable (Table I), and
//!   [`MtaTimeTracker`] maintains the cross-device MTA-time estimate
//!   that aligns every device's transmission time.
//!
//! The event-driven engine that moves these pieces over a simulated
//! wireless channel lives in `rog-trainer`; everything algorithmic about
//! ROG is here, independent of time and transport.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregator;
pub mod convergence;
mod importance;
pub mod mta;
mod mta_time;
mod optimizer;
mod rows;
mod server;
mod shard;
mod version;
mod worker;

pub use aggregator::{AggregatorMap, AggregatorPlane, AggregatorStats, MergeSummary};
pub use importance::{ImportanceMetric, ImportanceMode, ImportanceWeights, RankScratch};
pub use mta_time::MtaTimeTracker;
pub use optimizer::{RogOptimizer, RogSession, StepReport};
pub use rows::{RowId, RowPartition, RowRef};
pub use server::RogServer;
pub use shard::{ShardMap, ShardedServer};
pub use version::{DenseRowVersionStore, RowVersionStore};
pub use worker::{RogWorker, RogWorkerConfig, UpdateRule};
