//! The ROG parameter server (Algorithm 2).
//!
//! The server keeps, *per worker*, a copy of the accumulated averaged
//! gradients (`ḡ^r`): a push from any worker is averaged into every
//! worker's copy, and a pull to worker `r` drains only `r`'s copy. Every
//! worker therefore eventually applies exactly the same gradients, which
//! is why partial (row-granular) transmission does not break consistency
//! (paper Sec. III-B).

use rog_compress::{Codec, CodecChoice, CodecState, OneBitCodec, RowCodec};
use rog_tensor::rng::DetRng;
use rog_tensor::{ops, Matrix};

use crate::{ImportanceMetric, ImportanceMode, RankScratch, RowId, RowPartition, RowVersionStore};

/// Parameter-server-side ROG state.
#[derive(Debug, Clone)]
pub struct RogServer {
    partition: RowPartition,
    n_workers: usize,
    threshold: u32,
    importance: ImportanceMetric,
    /// `accum[r]` = averaged gradients pending for worker `r`.
    accum: Vec<Vec<Matrix>>,
    /// `fresh[r][row]` = freshest iteration contributing to that cell
    /// (0 = no pending content).
    fresh: Vec<Vec<u64>>,
    /// `v_i^r` version storage.
    versions: RowVersionStore,
    /// Per-destination-worker pull codec (the per-link auto controller
    /// may switch individual links independently).
    codecs: Vec<Codec>,
    /// Per-destination-worker compression residuals for pulls.
    states: Vec<CodecState>,
    /// Membership mask: pushes are averaged over (and fanned out to)
    /// active workers only.
    active: Vec<bool>,
    /// Ranking scratch, reused across pull plans.
    scratch: RankScratch,
    /// Per-row mean-|ḡ| buffer, reused across pull plans.
    mean_abs_buf: Vec<f32>,
    /// Importance order buffer, reused across pull plans.
    ranked_buf: Vec<RowId>,
    /// Count of NaN/Inf gradient values zeroed at ingest (a corrupted
    /// or diverging worker must not poison every peer's pending copy).
    nonfinite_dropped: u64,
}

impl RogServer {
    /// Creates a server for `n_workers` sharing a model shaped like
    /// `params`.
    ///
    /// # Panics
    ///
    /// Panics if `n_workers == 0` or the model has no rows.
    pub fn new(
        params: &[Matrix],
        n_workers: usize,
        threshold: u32,
        importance: ImportanceMetric,
    ) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        let partition = RowPartition::of_params(params);
        assert!(partition.n_rows() > 0, "model has no rows");
        let zero: Vec<Matrix> = params
            .iter()
            .map(|m| Matrix::zeros(m.rows(), m.cols()))
            .collect();
        let widths = partition.widths().to_vec();
        Self {
            n_workers,
            threshold,
            importance,
            accum: vec![zero; n_workers],
            fresh: vec![vec![0; partition.n_rows()]; n_workers],
            versions: RowVersionStore::new(n_workers, partition.n_rows()),
            codecs: vec![Codec::default(); n_workers],
            states: (0..n_workers)
                .map(|_| CodecState::new(&widths, 0))
                .collect(),
            active: vec![true; n_workers],
            partition,
            scratch: RankScratch::default(),
            mean_abs_buf: Vec::new(),
            ranked_buf: Vec::new(),
            nonfinite_dropped: 0,
        }
    }

    /// Number of NaN/Inf gradient values zeroed at push ingest so far.
    pub fn nonfinite_dropped(&self) -> u64 {
        self.nonfinite_dropped
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// The staleness threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Changes the staleness threshold (used by the auto-threshold
    /// controller extension). Takes effect at the next gate check.
    pub fn set_threshold(&mut self, threshold: u32) {
        self.threshold = threshold;
    }

    /// Configures the pull codec of every link from `choice`, reseeding
    /// each destination worker's stochastic stream from a fork of
    /// `seed`. Call before training starts — it rebuilds the residual
    /// state.
    pub fn configure_codec(&mut self, choice: CodecChoice, seed: u64) {
        let widths = self.partition.widths().to_vec();
        let base = DetRng::new(seed);
        self.codecs = vec![choice.build(); self.n_workers];
        self.states = (0..self.n_workers)
            .map(|w| CodecState::new(&widths, base.fork(w as u64).seed()))
            .collect();
    }

    /// The active pull codec of the link to `worker`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn codec(&self, worker: usize) -> &Codec {
        &self.codecs[worker]
    }

    /// Switches the pull codec of the link to `worker` (the per-link
    /// auto controller). Residuals carry over — the held mass is
    /// codec-independent.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn set_codec(&mut self, worker: usize, codec: Codec) {
        self.codecs[worker] = codec;
    }

    /// The version storage (shared; `min(V)` and gate queries are
    /// `&self` reads on the sparse store).
    pub fn versions(&self) -> &RowVersionStore {
        &self.versions
    }

    /// The version storage (mutable, for direct version updates).
    pub fn versions_mut(&mut self) -> &mut RowVersionStore {
        &mut self.versions
    }

    /// Number of currently active (joined) workers.
    pub fn active_workers(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Whether `worker` is currently a cluster member.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn is_active(&self, worker: usize) -> bool {
        self.active[worker]
    }

    /// Removes `worker` from the active set: its frozen version rows
    /// stop gating the cluster, subsequent pushes are averaged over the
    /// remaining members only, and nothing further accumulates for it.
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn deactivate_worker(&mut self, worker: usize) {
        assert!(worker < self.n_workers, "worker out of range");
        if !self.active[worker] {
            return;
        }
        self.active[worker] = false;
        self.versions.set_active(worker, false);
    }

    /// Readmits `worker` after a cold resync at iteration `iter`: its
    /// stale pending copy and pull residuals are discarded (the model it
    /// adopted already reflects those gradients), and its version rows
    /// are fast-forwarded to `iter` so it re-enters the RSP bound
    /// exactly as fresh as the model it resynced to.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn rejoin_worker(&mut self, worker: usize, iter: u64) {
        assert!(worker < self.n_workers, "worker out of range");
        for m in &mut self.accum[worker] {
            m.fill_zero();
        }
        self.fresh[worker].fill(0);
        self.states[worker].reset();
        self.versions.stamp_worker(worker, iter);
        self.versions.set_active(worker, true);
        self.active[worker] = true;
    }

    /// Receives pushed row gradients of iteration `n` from a worker:
    /// averages them into every *active* worker's pending copy and
    /// updates the version storage (Algorithm 2 lines 2–6). Under full
    /// membership this is the paper's `1/n_workers` averaging exactly;
    /// when members have departed, the divisor is the active count, so
    /// the expected gradient magnitude is preserved for the survivors.
    ///
    /// NaN/Inf values are zeroed at ingest (and counted in
    /// [`RogServer::nonfinite_dropped`]): on a lossy link a corrupted
    /// payload that slipped past the CRC, or a diverging worker, must
    /// not poison every active worker's pending copy.
    ///
    /// # Panics
    ///
    /// Panics if `from` or any row is out of range, or a row payload has
    /// the wrong width.
    pub fn on_push(&mut self, from: usize, n: u64, rows: &[(RowId, Vec<f32>)]) {
        assert!(from < self.n_workers, "worker out of range");
        let inv = 1.0 / self.active_workers().max(1) as f32;
        let mut sanitized: Vec<f32> = Vec::new();
        for (id, values) in rows {
            assert_eq!(
                values.len(),
                self.partition.width(*id),
                "payload width mismatch for {id}"
            );
            // Fast path: finite rows (the overwhelmingly common case)
            // are added in place with no copy.
            let values: &[f32] = if values.iter().all(|v| v.is_finite()) {
                values
            } else {
                sanitized.clear();
                sanitized.extend(values.iter().map(|v| {
                    if v.is_finite() {
                        *v
                    } else {
                        self.nonfinite_dropped += 1;
                        0.0
                    }
                }));
                &sanitized
            };
            for r in 0..self.n_workers {
                if !self.active[r] {
                    continue;
                }
                let dst = self.partition.row_mut(&mut self.accum[r], *id);
                for (d, v) in dst.iter_mut().zip(values) {
                    *d += v * inv;
                }
                self.fresh[r][id.0] = self.fresh[r][id.0].max(n);
            }
            self.versions.record_push(from, id.0, n);
        }
    }

    /// The RSP gate (Algorithm 2 lines 7–9): may a worker whose push
    /// carried iteration `pushed_iter` be served its pull now?
    pub fn gate_ok(&self, pushed_iter: u64) -> bool {
        self.versions.gate_ok(pushed_iter, self.threshold)
    }

    /// Rows with pending content for `worker`, ranked by the server-mode
    /// importance metric (fresh, large-magnitude rows first).
    pub fn plan_pull(&mut self, worker: usize) -> Vec<RowId> {
        let mut out = Vec::new();
        self.plan_pull_into(worker, &mut out);
        out
    }

    /// Allocation-free variant of [`RogServer::plan_pull`]: writes the
    /// plan into `out`, reusing the server's internal ranking buffers.
    pub fn plan_pull_into(&mut self, worker: usize, out: &mut Vec<RowId>) {
        let mut mean_abs = std::mem::take(&mut self.mean_abs_buf);
        let mut ranked = std::mem::take(&mut self.ranked_buf);
        let mut scratch = std::mem::take(&mut self.scratch);
        mean_abs.clear();
        mean_abs.extend(
            (0..self.partition.n_rows())
                .map(|i| ops::mean_abs(self.partition.row(&self.accum[worker], RowId(i)))),
        );
        self.importance.rank_into(
            ImportanceMode::Server,
            &mean_abs,
            &self.fresh[worker],
            &mut scratch,
            &mut ranked,
        );
        out.clear();
        out.extend(
            ranked
                .iter()
                .copied()
                .filter(|id| self.fresh[worker][id.0] > 0),
        );
        self.mean_abs_buf = mean_abs;
        self.ranked_buf = ranked;
        self.scratch = scratch;
    }

    /// Width-only payload size of one row on the wire — the one-bit /
    /// dense bound, kept for sizing paths that have no destination
    /// worker in scope (e.g. resync model transfers, which are dense).
    pub fn payload_bytes(&self, id: RowId) -> u64 {
        OneBitCodec.payload_bytes(self.partition.width(id))
    }

    /// Payload size of one row on the link to `worker`, as that link's
    /// codec would frame it right now (content-sized codecs account the
    /// pending gradient plus the link's residual).
    ///
    /// # Panics
    ///
    /// Panics if `worker` or `id` is out of range.
    pub fn payload_bytes_for(&self, worker: usize, id: RowId) -> u64 {
        self.states[worker].planned_payload_bytes(
            &self.codecs[worker],
            id.0,
            self.partition.row(&self.accum[worker], id),
        )
    }

    /// Commits a pull: compresses (per-destination error feedback),
    /// drains the delivered rows from `worker`'s pending copy
    /// (Algorithm 2 lines 12–13), and returns the values the worker
    /// receives.
    pub fn commit_pull(&mut self, worker: usize, rows: &[RowId]) -> Vec<(RowId, Vec<f32>)> {
        rows.iter()
            .map(|&id| {
                let row = self.partition.row(&self.accum[worker], id).to_vec();
                let restored = self.states[worker]
                    .compress(&self.codecs[worker], id.0, &row)
                    .decompress();
                self.partition
                    .row_mut(&mut self.accum[worker], id)
                    .iter_mut()
                    .for_each(|v| *v = 0.0);
                self.fresh[worker][id.0] = 0;
                (id, restored)
            })
            .collect()
    }

    /// Sum over rows of pending mean-|ḡ| for `worker` (diagnostic).
    pub fn pending_magnitude(&self, worker: usize) -> f32 {
        (0..self.partition.n_rows())
            .map(|i| ops::mean_abs(self.partition.row(&self.accum[worker], RowId(i))))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Vec<Matrix> {
        vec![Matrix::zeros(2, 3), Matrix::zeros(1, 2)]
    }

    #[test]
    fn nonfinite_gradients_are_zeroed_at_ingest() {
        let p = params();
        let mut s = RogServer::new(&p, 2, 4, ImportanceMetric::default());
        s.on_push(
            0,
            1,
            &[
                (RowId(0), vec![1.0, f32::NAN, f32::INFINITY]),
                (RowId(1), vec![f32::NEG_INFINITY, 2.0, 3.0]),
            ],
        );
        assert_eq!(s.nonfinite_dropped(), 3);
        // The finite values landed (averaged by 1/2), the poison did not.
        let payloads = s.commit_pull(1, &[RowId(0), RowId(1)]);
        for (_, values) in &payloads {
            assert!(values.iter().all(|v| v.is_finite()), "{values:?}");
        }
        // A clean push leaves the counter alone.
        s.on_push(1, 1, &[(RowId(0), vec![1.0, 1.0, 1.0])]);
        assert_eq!(s.nonfinite_dropped(), 3);
    }

    fn server(n: usize, t: u32) -> RogServer {
        RogServer::new(&params(), n, t, ImportanceMetric::default())
    }

    #[test]
    fn push_is_averaged_into_every_copy() {
        let mut s = server(4, 4);
        s.on_push(0, 1, &[(RowId(0), vec![4.0, 8.0, 12.0])]);
        for w in 0..4 {
            let plan = s.plan_pull(w);
            assert_eq!(plan, vec![RowId(0)]);
        }
        let out = s.commit_pull(1, &[RowId(0)]);
        // 4.0 / 4 workers = 1.0 (one-bit code is exact for constant-sign
        // uniform magnitudes? not exactly — check approximate).
        let vals = &out[0].1;
        let mean: f32 = vals.iter().sum::<f32>() / 3.0;
        assert!((mean - 2.0).abs() < 0.8, "mean {mean}");
    }

    #[test]
    fn pull_drains_only_that_workers_copy() {
        let mut s = server(2, 4);
        s.on_push(0, 1, &[(RowId(1), vec![2.0, 2.0, 2.0])]);
        let _ = s.commit_pull(0, &[RowId(1)]);
        assert!(s.plan_pull(0).is_empty());
        assert_eq!(s.plan_pull(1), vec![RowId(1)]);
    }

    #[test]
    fn every_worker_eventually_gets_the_same_totals() {
        // Multiple pushes from different workers; drain both copies and
        // compare totals (modulo bounded compression residual).
        let mut s = server(2, 4);
        s.on_push(0, 1, &[(RowId(0), vec![1.0, 2.0, 3.0])]);
        s.on_push(1, 1, &[(RowId(0), vec![3.0, 2.0, 1.0])]);
        let all_rows = vec![RowId(0)];
        let a: Vec<f32> = s.commit_pull(0, &all_rows).remove(0).1;
        let b: Vec<f32> = s.commit_pull(1, &all_rows).remove(0).1;
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1.0, "copies diverge: {x} vs {y}");
        }
    }

    #[test]
    fn gate_follows_version_storage() {
        let mut s = server(2, 2);
        let n_rows = 3;
        // Worker 0 pushes all rows at iterations 1..=3; worker 1 stays
        // at 0.
        for it in 1..=3u64 {
            let rows: Vec<(RowId, Vec<f32>)> = (0..n_rows)
                .map(|i| (RowId(i), vec![1.0; if i < 2 { 3 } else { 2 }]))
                .collect();
            s.on_push(0, it, &rows);
        }
        // min(V) = 0 (worker 1), threshold 2: a push at iter 3 leads too
        // far.
        assert!(!s.gate_ok(3));
        // Worker 1 catches up.
        let rows: Vec<(RowId, Vec<f32>)> = (0..n_rows)
            .map(|i| (RowId(i), vec![1.0; if i < 2 { 3 } else { 2 }]))
            .collect();
        s.on_push(1, 3, &rows);
        assert!(s.gate_ok(3));
    }

    #[test]
    fn plan_pull_prefers_fresh_rows() {
        let mut s = server(1, 8);
        s.on_push(0, 1, &[(RowId(0), vec![0.5, 0.5, 0.5])]);
        s.on_push(0, 5, &[(RowId(1), vec![0.5, 0.5, 0.5])]);
        let plan = s.plan_pull(0);
        assert_eq!(plan[0], RowId(1), "fresher row first: {plan:?}");
    }

    #[test]
    #[should_panic(expected = "payload width mismatch")]
    fn wrong_width_payload_panics() {
        let mut s = server(1, 4);
        s.on_push(0, 1, &[(RowId(0), vec![1.0])]);
    }

    #[test]
    fn departed_worker_stops_gating_and_accumulating() {
        let mut s = server(3, 2);
        let all_rows: Vec<(RowId, Vec<f32>)> = vec![
            (RowId(0), vec![1.0, 1.0, 1.0]),
            (RowId(1), vec![1.0, 1.0, 1.0]),
            (RowId(2), vec![1.0, 1.0]),
        ];
        // Workers 0 and 1 reach iteration 5; worker 2 pushed once at 1.
        for it in 1..=5u64 {
            s.on_push(0, it, &all_rows);
            s.on_push(1, it, &all_rows);
        }
        s.on_push(2, 1, &all_rows);
        assert!(!s.gate_ok(5), "straggler pins min(V) = 1");
        s.deactivate_worker(2);
        assert_eq!(s.active_workers(), 2);
        assert!(!s.is_active(2));
        assert!(s.gate_ok(5), "gate recomputed over the active set");
        // Pushes now average over 2 and skip the departed copy.
        let before = s.pending_magnitude(2);
        s.on_push(0, 6, &[(RowId(0), vec![2.0, 2.0, 2.0])]);
        assert_eq!(
            s.pending_magnitude(2),
            before,
            "no accumulation for departed"
        );
        s.deactivate_worker(2); // idempotent
        assert_eq!(s.active_workers(), 2);
    }

    #[test]
    fn rejoin_clears_pending_state_and_fast_forwards_versions() {
        let mut s = server(2, 2);
        let all_rows: Vec<(RowId, Vec<f32>)> = vec![
            (RowId(0), vec![1.0, 1.0, 1.0]),
            (RowId(1), vec![1.0, 1.0, 1.0]),
            (RowId(2), vec![1.0, 1.0]),
        ];
        s.on_push(1, 1, &all_rows);
        s.deactivate_worker(1);
        for it in 2..=9u64 {
            s.on_push(0, it, &all_rows);
        }
        s.rejoin_worker(1, 9);
        assert!(s.is_active(1));
        assert_eq!(s.active_workers(), 2);
        assert!(s.plan_pull(1).is_empty(), "stale pending copy discarded");
        assert_eq!(s.pending_magnitude(1), 0.0);
        // Versions fast-forwarded: the rejoiner does not re-pin the gate.
        assert!(s.gate_ok(9));
        assert_eq!(s.versions_mut().global_min(), 9);
    }

    #[test]
    fn full_membership_averaging_matches_static_divisor() {
        // The zero-cost invariant: with nobody departed, on_push must be
        // arithmetically identical to the pre-membership 1/n averaging.
        let mut s = server(4, 4);
        s.on_push(0, 1, &[(RowId(0), vec![4.0, 8.0, 12.0])]);
        let m = s.pending_magnitude(3); // includes the 1/4-averaged row
        assert!((m - (1.0 + 2.0 + 3.0) / 3.0).abs() < 1e-6, "magnitude {m}");
    }
}
