//! Global row addressing across a model's parameter matrices.
//!
//! Sec. III-A: transmitting sub-model units requires indexing them.
//! Element granularity would double traffic (one `int32` index per
//! `float32` value); layer granularity indexes cheaply but single layers
//! are still large. Rows cost one index per row — 0.24 % of model size in
//! the paper's ConvMLP — which [`RowPartition::index_overhead_bytes`]
//! accounts for.

use std::fmt;

use rog_tensor::Matrix;

/// Identifier of one parameter row, global across the whole model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub usize);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row#{}", self.0)
    }
}

/// Location of a global row inside the parameter list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowRef {
    /// Index of the matrix in the parameter list.
    pub matrix: usize,
    /// Row index within that matrix.
    pub row: usize,
}

/// Maps global [`RowId`]s to matrix rows and back.
///
/// # Example
///
/// ```
/// use rog_core::{RowId, RowPartition};
/// use rog_tensor::Matrix;
///
/// let params = vec![Matrix::zeros(2, 3), Matrix::zeros(1, 5)];
/// let part = RowPartition::of_params(&params);
/// assert_eq!(part.n_rows(), 3);
/// assert_eq!(part.width(RowId(2)), 5);
/// assert_eq!(part.locate(RowId(1)).matrix, 0);
/// assert_eq!(part.locate(RowId(2)).matrix, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    refs: Vec<RowRef>,
    widths: Vec<usize>,
}

impl RowPartition {
    /// Builds a partition from `(rows, cols)` shapes.
    pub fn from_shapes(shapes: &[(usize, usize)]) -> Self {
        let mut refs = Vec::new();
        let mut widths = Vec::new();
        for (mi, &(rows, cols)) in shapes.iter().enumerate() {
            for r in 0..rows {
                refs.push(RowRef { matrix: mi, row: r });
                widths.push(cols);
            }
        }
        Self { refs, widths }
    }

    /// Builds a partition matching a parameter list.
    pub fn of_params(params: &[Matrix]) -> Self {
        Self::from_shapes(&params.iter().map(Matrix::shape).collect::<Vec<_>>())
    }

    /// Total number of rows.
    pub fn n_rows(&self) -> usize {
        self.refs.len()
    }

    /// Width (column count) of a row.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn width(&self, id: RowId) -> usize {
        self.widths[id.0]
    }

    /// All row widths in global order.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Locates a row inside the parameter list.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn locate(&self, id: RowId) -> RowRef {
        self.refs[id.0]
    }

    /// Borrow of the row's values within `params`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `params` does not match the
    /// partition's shapes.
    pub fn row<'a>(&self, params: &'a [Matrix], id: RowId) -> &'a [f32] {
        let r = self.locate(id);
        params[r.matrix].row(r.row)
    }

    /// Mutable borrow of the row's values within `params`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `params` does not match.
    pub fn row_mut<'a>(&self, params: &'a mut [Matrix], id: RowId) -> &'a mut [f32] {
        let r = self.locate(id);
        params[r.matrix].row_mut(r.row)
    }

    /// Total scalar parameters covered.
    pub fn total_elements(&self) -> usize {
        self.widths.iter().sum()
    }

    /// Bytes of index metadata needed to manage all rows (one `int32`
    /// index per row — the management overhead of Sec. III-A).
    pub fn index_overhead_bytes(&self) -> u64 {
        4 * self.n_rows() as u64
    }

    /// Management-overhead ratio: index bytes over raw `float32` model
    /// bytes. ~0.24 % for the paper's ConvMLP; ~50 % (doubling traffic)
    /// for element granularity.
    pub fn index_overhead_ratio(&self) -> f64 {
        self.index_overhead_bytes() as f64 / (4 * self.total_elements()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_rows_in_order() {
        let params = vec![
            Matrix::zeros(3, 4),
            Matrix::zeros(1, 3),
            Matrix::zeros(2, 4),
        ];
        let p = RowPartition::of_params(&params);
        assert_eq!(p.n_rows(), 6);
        assert_eq!(p.locate(RowId(0)), RowRef { matrix: 0, row: 0 });
        assert_eq!(p.locate(RowId(3)), RowRef { matrix: 1, row: 0 });
        assert_eq!(p.locate(RowId(5)), RowRef { matrix: 2, row: 1 });
        assert_eq!(p.width(RowId(3)), 3);
        assert_eq!(p.total_elements(), 12 + 3 + 8);
    }

    #[test]
    fn row_access_reads_and_writes() {
        let mut params = vec![Matrix::zeros(2, 2), Matrix::zeros(1, 3)];
        let p = RowPartition::of_params(&params);
        p.row_mut(&mut params, RowId(2))
            .copy_from_slice(&[7.0, 8.0, 9.0]);
        assert_eq!(p.row(&params, RowId(2)), &[7.0, 8.0, 9.0]);
        assert_eq!(params[1].row(0), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn paper_scale_overhead_ratio() {
        // ConvMLP: 16.95M elements in 33307 rows → index list ~0.20% of
        // model size (paper says 0.24%).
        let p = RowPartition::from_shapes(&[(33_307, 509)]);
        let ratio = p.index_overhead_ratio();
        assert!((0.001..0.004).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn element_granularity_would_double_traffic() {
        // A "partition" with one element per row: index bytes == data
        // bytes, i.e. 100% overhead, the paper's argument against
        // element granularity.
        let p = RowPartition::from_shapes(&[(1000, 1)]);
        assert!((p.index_overhead_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_model_is_legal() {
        let p = RowPartition::from_shapes(&[]);
        assert_eq!(p.n_rows(), 0);
        assert_eq!(p.total_elements(), 0);
    }
}
