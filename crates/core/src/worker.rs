//! The ROG local-worker state machine (Algorithm 1).
//!
//! Per iteration a worker: computes gradients and adds them to the
//! per-row *accumulated* gradients `g'`; ranks rows with the importance
//! metric (stale rows first — the worker side of RSP's second level);
//! speculatively transmits the prefix the time budget allows (at least
//! MTA rows); zeroes the accumulated gradients of transmitted rows and
//! records their push iteration; and finally applies whatever averaged
//! row gradients the server sent back.
//!
//! Time and transport live in `rog-trainer`; this type owns everything
//! else: accumulation, ranking, compression (with per-row error
//! feedback), and the optimizer step.

use rog_compress::{Codec, CodecChoice, CodecState};
use rog_tensor::{ops, Matrix};

use crate::{ImportanceMetric, ImportanceMode, RankScratch, RowId, RowPartition};

/// Per-row parameter-update rule applied to pulled averaged gradients.
///
/// Rows arrive independently, so every stateful rule keeps *per-row*
/// state (velocity / first and second moments / timestep) — the
/// block-wise formulation the paper adopts from Sun et al. for
/// momentum, extended here with Adam as an experimental option.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum UpdateRule {
    /// Plain SGD.
    #[default]
    Sgd,
    /// Heavy-ball momentum with coefficient `beta`.
    Momentum {
        /// Momentum coefficient in `[0, 1)`.
        beta: f32,
    },
    /// Adam with per-row bias correction. Note: with row-granular,
    /// accumulated (multi-iteration) gradients Adam's moment estimates
    /// see coarser samples than in synchronous training; treat as
    /// experimental (the paper's production path is SGD/momentum).
    Adam {
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Denominator stabilizer.
        eps: f32,
    },
}

impl UpdateRule {
    /// Standard Adam coefficients.
    pub fn adam() -> Self {
        UpdateRule::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Configuration of a ROG worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RogWorkerConfig {
    /// RSP staleness threshold `t`.
    pub threshold: u32,
    /// Importance metric for push ranking.
    pub importance: ImportanceMetric,
    /// Learning rate applied to pulled averaged gradients.
    pub lr: f32,
    /// Parameter-update rule.
    pub rule: UpdateRule,
    /// Row codec for pushed gradients (`Auto` starts on the one-bit
    /// rung; the engine's controller switches rungs at runtime).
    pub codec: CodecChoice,
    /// Seed of the worker's stochastic-rounding stream (only drawn from
    /// by randomizing codecs such as the quantization ladder).
    pub codec_seed: u64,
}

impl RogWorkerConfig {
    /// A config with the given threshold and learning rate, default
    /// importance, plain SGD, and the one-bit codec.
    pub fn new(threshold: u32, lr: f32) -> Self {
        Self {
            threshold,
            importance: ImportanceMetric::default(),
            lr,
            rule: UpdateRule::Sgd,
            codec: CodecChoice::OneBit,
            codec_seed: 0,
        }
    }

    /// Switches to momentum with coefficient `beta`.
    #[must_use]
    pub fn with_momentum(mut self, beta: f32) -> Self {
        self.rule = UpdateRule::Momentum { beta };
        self
    }

    /// Switches to the given update rule.
    #[must_use]
    pub fn with_rule(mut self, rule: UpdateRule) -> Self {
        self.rule = rule;
        self
    }

    /// Selects the row codec and the seed of its stochastic stream.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecChoice, seed: u64) -> Self {
        self.codec = codec;
        self.codec_seed = seed;
        self
    }
}

/// Worker-side ROG state (Algorithm 1).
#[derive(Debug, Clone)]
pub struct RogWorker {
    partition: RowPartition,
    /// Accumulated gradients `g'` (same shapes as the parameters).
    accum: Vec<Matrix>,
    /// Last iteration each row was pushed (`iters` in Algorithm 1).
    iters: Vec<u64>,
    /// The active row codec (switchable at runtime under `Auto`).
    codec: Codec,
    /// Per-row compression residuals + stochastic-rounding stream.
    state: CodecState,
    /// Per-row momentum velocities / Adam first moments.
    vel: Vec<Matrix>,
    /// Adam second moments (allocated lazily on first Adam step).
    adam_v: Option<Vec<Matrix>>,
    /// Per-row Adam timestep.
    adam_t: Vec<u64>,
    cfg: RogWorkerConfig,
    /// Ranking scratch, reused across push plans.
    scratch: RankScratch,
    /// Per-row mean-|g'| buffer, reused across push plans.
    mean_abs_buf: Vec<f32>,
    /// Importance order buffer, reused across push plans.
    ranked_buf: Vec<RowId>,
}

impl RogWorker {
    /// Creates a worker for a model with the given parameter matrices.
    pub fn new(params: &[Matrix], cfg: RogWorkerConfig) -> Self {
        let partition = RowPartition::of_params(params);
        let zero: Vec<Matrix> = params
            .iter()
            .map(|m| Matrix::zeros(m.rows(), m.cols()))
            .collect();
        let widths = partition.widths().to_vec();
        Self {
            accum: zero.clone(),
            iters: vec![0; partition.n_rows()],
            codec: cfg.codec.build(),
            state: CodecState::new(&widths, cfg.codec_seed),
            vel: zero,
            adam_v: None,
            adam_t: vec![0; partition.n_rows()],
            partition,
            cfg,
            scratch: RankScratch::default(),
            mean_abs_buf: Vec::new(),
            ranked_buf: Vec::new(),
        }
    }

    /// The row partition of the model.
    pub fn partition(&self) -> &RowPartition {
        &self.partition
    }

    /// The worker configuration.
    pub fn config(&self) -> &RogWorkerConfig {
        &self.cfg
    }

    /// Changes the staleness threshold (auto-threshold extension); the
    /// mandatory-row rule uses the new value from the next push plan.
    pub fn set_threshold(&mut self, threshold: u32) {
        self.cfg.threshold = threshold;
    }

    /// The active row codec.
    pub fn codec(&self) -> &Codec {
        &self.codec
    }

    /// Switches the active row codec (the per-link auto controller).
    /// Error-feedback residuals carry over — the mass they hold is
    /// codec-independent, so no information is dropped at a switch.
    pub fn set_codec(&mut self, codec: Codec) {
        self.codec = codec;
    }

    /// Last-push iteration of every row.
    pub fn row_iters(&self) -> &[u64] {
        &self.iters
    }

    /// Adds freshly computed gradients to the accumulated gradients
    /// (`g' ← g' + g`, Algorithm 1 line 3).
    ///
    /// # Panics
    ///
    /// Panics if `grads` shapes do not match the model.
    pub fn accumulate(&mut self, grads: &[Matrix]) {
        assert_eq!(grads.len(), self.accum.len(), "gradient set mismatch");
        for (a, g) in self.accum.iter_mut().zip(grads) {
            a.add_scaled(g, 1.0).expect("gradient shapes match model");
        }
    }

    /// Mean absolute accumulated gradient of each row.
    pub fn row_mean_abs(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.row_mean_abs_into(&mut out);
        out
    }

    fn row_mean_abs_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend(
            (0..self.partition.n_rows())
                .map(|i| ops::mean_abs(self.partition.row(&self.accum, RowId(i)))),
        );
    }

    /// Ranks all rows for pushing at iteration `n` (Algorithm 3, worker
    /// mode), with RSP's worker-level staleness rule applied: rows whose
    /// staleness would reach the threshold if skipped are *mandatory* and
    /// are placed first (stalest first), ahead of the importance order.
    pub fn plan_push(&mut self, n: u64) -> Vec<RowId> {
        let mut out = Vec::new();
        self.plan_push_into(n, &mut out);
        out
    }

    /// Allocation-free variant of [`RogWorker::plan_push`]: writes the
    /// plan into `out`, reusing the worker's internal ranking buffers.
    pub fn plan_push_into(&mut self, n: u64, out: &mut Vec<RowId>) {
        let mut mean_abs = std::mem::take(&mut self.mean_abs_buf);
        let mut ranked = std::mem::take(&mut self.ranked_buf);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.row_mean_abs_into(&mut mean_abs);
        self.cfg.importance.rank_into(
            ImportanceMode::Worker,
            &mean_abs,
            &self.iters,
            &mut scratch,
            &mut ranked,
        );
        let t = u64::from(self.cfg.threshold.max(1));
        let iters = &self.iters;
        let is_mandatory = |id: RowId| n.saturating_sub(iters[id.0]) >= t;
        out.clear();
        out.extend(ranked.iter().copied().filter(|&id| is_mandatory(id)));
        out.sort_unstable_by_key(|&id| (iters[id.0], id.0));
        out.extend(ranked.iter().copied().filter(|&id| !is_mandatory(id)));
        self.mean_abs_buf = mean_abs;
        self.ranked_buf = ranked;
        self.scratch = scratch;
    }

    /// Compressed payload size of one row on the wire, as the active
    /// codec would frame it right now (content-sized codecs account the
    /// current accumulated gradient plus residual).
    pub fn payload_bytes(&self, id: RowId) -> u64 {
        self.state
            .planned_payload_bytes(&self.codec, id.0, self.partition.row(&self.accum, id))
    }

    /// Commits a push: compresses the accumulated gradients of the rows
    /// actually delivered (error feedback retained), zeroes their
    /// accumulation and stamps their push iteration (Algorithm 1 lines
    /// 9–12). Returns the values the server receives.
    pub fn commit_push(&mut self, rows: &[RowId], n: u64) -> Vec<(RowId, Vec<f32>)> {
        rows.iter()
            .map(|&id| {
                let row = self.partition.row(&self.accum, id).to_vec();
                let restored = self.state.compress(&self.codec, id.0, &row).decompress();
                self.partition
                    .row_mut(&mut self.accum, id)
                    .iter_mut()
                    .for_each(|v| *v = 0.0);
                self.iters[id.0] = n;
                (id, restored)
            })
            .collect()
    }

    /// Applies pulled averaged gradients to the model parameters
    /// (Algorithm 1 lines 13–17), with per-row momentum if configured.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match.
    pub fn apply_pulled(&mut self, params: &mut [Matrix], rows: &[(RowId, Vec<f32>)]) {
        for (id, g) in rows {
            let r = self.partition.locate(*id);
            let w = params[r.matrix].row_mut(r.row);
            match self.cfg.rule {
                UpdateRule::Sgd => ops::sgd_row(w, g, self.cfg.lr),
                UpdateRule::Momentum { beta } => {
                    let v = self.vel[r.matrix].row_mut(r.row);
                    ops::sgd_momentum_row(w, v, g, self.cfg.lr, beta);
                }
                UpdateRule::Adam { beta1, beta2, eps } => {
                    let adam_v = self.adam_v.get_or_insert_with(|| {
                        self.vel
                            .iter()
                            .map(|m| Matrix::zeros(m.rows(), m.cols()))
                            .collect()
                    });
                    self.adam_t[id.0] += 1;
                    let m = self.vel[r.matrix].row_mut(r.row);
                    let v = adam_v[r.matrix].row_mut(r.row);
                    ops::adam_row(
                        w,
                        m,
                        v,
                        g,
                        self.cfg.lr,
                        beta1,
                        beta2,
                        eps,
                        self.adam_t[id.0],
                    );
                }
            }
        }
    }

    /// Rebuilds the worker's transient state after a cold rejoin resync
    /// at iteration `n`: accumulated gradients, compression residuals,
    /// momentum/Adam moments, and Adam timesteps are all dropped (they
    /// belong to the model lineage that died with the fault), and every
    /// row's push iteration is stamped to `n` so the freshly adopted
    /// model re-enters the staleness bound with zero row staleness.
    pub fn reset_for_rejoin(&mut self, n: u64) {
        for m in &mut self.accum {
            m.fill_zero();
        }
        self.state.reset();
        for m in &mut self.vel {
            m.fill_zero();
        }
        self.adam_v = None;
        self.adam_t.fill(0);
        self.iters.fill(n);
    }

    /// Staleness of the worker's stalest row at iteration `n`
    /// (worker-level RSP diagnostic).
    pub fn max_row_staleness(&self, n: u64) -> u64 {
        self.iters
            .iter()
            .map(|&it| n.saturating_sub(it))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Vec<Matrix> {
        vec![Matrix::zeros(3, 4), Matrix::zeros(1, 3)]
    }

    fn grads(scale: f32) -> Vec<Matrix> {
        vec![
            Matrix::from_fn(3, 4, |r, _| (r as f32 + 1.0) * scale),
            Matrix::from_fn(1, 3, |_, c| (c as f32 + 1.0) * scale),
        ]
    }

    #[test]
    fn accumulation_adds_up() {
        let mut w = RogWorker::new(&params(), RogWorkerConfig::new(4, 0.1));
        w.accumulate(&grads(1.0));
        w.accumulate(&grads(2.0));
        let mean_abs = w.row_mean_abs();
        // Row 0 of matrix 0 has all values 1.0 + 2.0 = 3.0.
        assert!((mean_abs[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn plan_push_orders_by_magnitude_initially() {
        let mut w = RogWorker::new(&params(), RogWorkerConfig::new(4, 0.1));
        w.accumulate(&grads(1.0));
        let plan = w.plan_push(1);
        assert_eq!(plan.len(), 4);
        // Row 2 (values 3.0) has the largest magnitude.
        assert_eq!(plan[0], RowId(2));
    }

    #[test]
    fn commit_push_zeroes_and_stamps() {
        let mut w = RogWorker::new(&params(), RogWorkerConfig::new(4, 0.1));
        w.accumulate(&grads(1.0));
        let sent = w.commit_push(&[RowId(2)], 1);
        assert_eq!(sent.len(), 1);
        assert_eq!(w.row_iters()[2], 1);
        assert_eq!(w.row_mean_abs()[2], 0.0);
        // Untransmitted rows keep accumulating.
        assert!(w.row_mean_abs()[0] > 0.0);
    }

    #[test]
    fn compression_error_is_carried_not_lost() {
        let mut w = RogWorker::new(&params(), RogWorkerConfig::new(4, 0.1));
        w.accumulate(&grads(1.0));
        let g_before: Vec<f32> = vec![1.0; 4];
        let sent = w.commit_push(&[RowId(0)], 1);
        let restored = &sent[0].1;
        // Residual + restored == original row.
        // Push again with fresh gradients; the residual rides along.
        w.accumulate(&grads(1.0));
        let sent2 = w.commit_push(&[RowId(0)], 2);
        let total_restored: Vec<f32> = restored
            .iter()
            .zip(&sent2[0].1)
            .map(|(a, b)| a + b)
            .collect();
        // Across two rounds, delivered ≈ total gradient (2 rounds of 1.0)
        // minus the still-held residual, which is bounded.
        for (d, want) in total_restored.iter().zip(g_before.iter().map(|v| v * 2.0)) {
            assert!((d - want).abs() < 1.0, "delivered {d} vs produced {want}");
        }
    }

    #[test]
    fn mandatory_stale_rows_jump_the_queue() {
        let mut w = RogWorker::new(&params(), RogWorkerConfig::new(3, 0.1));
        w.accumulate(&grads(1.0));
        // Push everything except row 1 across iterations 1 and 2.
        w.commit_push(&[RowId(0), RowId(2), RowId(3)], 1);
        w.accumulate(&grads(1.0));
        w.commit_push(&[RowId(0), RowId(2), RowId(3)], 2);
        w.accumulate(&grads(0.001)); // row 1 now has small gradients
                                     // At iteration 3 row 1 has staleness 3 >= threshold: mandatory.
        let plan = w.plan_push(3);
        assert_eq!(plan[0], RowId(1), "stale row must be first: {plan:?}");
    }

    #[test]
    fn apply_pulled_is_sgd() {
        let mut ps = params();
        let mut w = RogWorker::new(&ps, RogWorkerConfig::new(4, 0.5));
        w.apply_pulled(&mut ps, &[(RowId(0), vec![1.0, 2.0, 3.0, 4.0])]);
        assert_eq!(ps[0].row(0), &[-0.5, -1.0, -1.5, -2.0]);
    }

    #[test]
    fn apply_pulled_with_momentum_accumulates() {
        let mut ps = params();
        let cfg = RogWorkerConfig::new(4, 1.0).with_momentum(0.9);
        let mut w = RogWorker::new(&ps, cfg);
        w.apply_pulled(&mut ps, &[(RowId(0), vec![1.0, 0.0, 0.0, 0.0])]);
        w.apply_pulled(&mut ps, &[(RowId(0), vec![1.0, 0.0, 0.0, 0.0])]);
        // v1 = 1, w -= 1; v2 = 1.9, w -= 1.9 → w = -2.9.
        assert!((ps[0].get(0, 0) + 2.9).abs() < 1e-6);
    }

    #[test]
    fn apply_pulled_with_adam_takes_bounded_steps() {
        let mut ps = params();
        let cfg = RogWorkerConfig::new(4, 0.1).with_rule(UpdateRule::adam());
        let mut w = RogWorker::new(&ps, cfg);
        // Wildly different gradient magnitudes → near-equal step sizes.
        w.apply_pulled(&mut ps, &[(RowId(0), vec![100.0, 0.0, 0.0, 0.0])]);
        w.apply_pulled(&mut ps, &[(RowId(1), vec![0.001, 0.0, 0.0, 0.0])]);
        let s0 = ps[0].get(0, 0).abs();
        let s1 = ps[0].get(1, 0).abs();
        assert!((s0 - 0.1).abs() < 0.01, "step {s0}");
        assert!((s1 - 0.1).abs() < 0.02, "step {s1}");
    }

    #[test]
    fn adam_timesteps_are_per_row() {
        let mut ps = params();
        let cfg = RogWorkerConfig::new(4, 0.1).with_rule(UpdateRule::adam());
        let mut w = RogWorker::new(&ps, cfg);
        for _ in 0..5 {
            w.apply_pulled(&mut ps, &[(RowId(0), vec![1.0, 1.0, 1.0, 1.0])]);
        }
        assert_eq!(w.adam_t[0], 5);
        assert_eq!(w.adam_t[1], 0);
    }

    #[test]
    fn reset_for_rejoin_drops_transient_state_and_stamps_rows() {
        let cfg = RogWorkerConfig::new(3, 0.1).with_momentum(0.9);
        let mut ps = params();
        let mut w = RogWorker::new(&ps, cfg);
        w.accumulate(&grads(1.0));
        w.commit_push(&[RowId(0)], 2);
        w.apply_pulled(&mut ps, &[(RowId(0), vec![1.0, 1.0, 1.0, 1.0])]);
        w.reset_for_rejoin(7);
        assert!(w.row_mean_abs().iter().all(|&m| m == 0.0), "accum cleared");
        assert!(w.row_iters().iter().all(|&it| it == 7), "rows stamped");
        assert_eq!(w.max_row_staleness(7), 0);
        // Momentum restarts from zero velocity: one unit pull moves the
        // row by exactly lr, as on a fresh worker.
        let before = ps[0].get(0, 0);
        w.apply_pulled(&mut ps, &[(RowId(0), vec![1.0, 0.0, 0.0, 0.0])]);
        assert!((before - ps[0].get(0, 0) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn staleness_diagnostic() {
        let mut w = RogWorker::new(&params(), RogWorkerConfig::new(4, 0.1));
        assert_eq!(w.max_row_staleness(2), 2);
        w.commit_push(&(0..4).map(RowId).collect::<Vec<_>>(), 2);
        assert_eq!(w.max_row_staleness(2), 0);
    }
}
