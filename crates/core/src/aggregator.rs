//! Hierarchical aggregation tier: workers → edge aggregators → shards.
//!
//! At fleet scale the parameter plane cannot afford one server-side
//! conversation per worker: server link count, gate bookkeeping and
//! merge traffic must scale with the number of *aggregators*, not
//! workers. Each edge aggregator fronts a contiguous group of workers:
//! row pushes from its members are merged upstream (one row forwarded
//! once per merge window at the max pushed version, gradients summed
//! en route), and pulls fan out downstream from one upstream fetch.
//!
//! The tier is *results-preserving by construction*: gradient averaging
//! is associative over the ROG server's per-row accumulators, so
//! merging at the edge reorders no float operation and a hierarchical
//! run refines the flat run it replaces bit-for-bit. What the tier
//! changes is the *plane topology* — upstream conversations, merge
//! windows, fault domains — which [`AggregatorPlane`] accounts for and
//! the engine journals. `aggregators = 0` is the flat topology and is
//! byte-identical to the pre-aggregator engine (same contract as
//! `shards = 1` in the sharded plane).

/// Deterministic assignment of workers to edge aggregators.
///
/// Invariants (mirrors [`crate::ShardMap`] for rows):
/// - every worker maps to exactly one aggregator;
/// - member sets are a disjoint contiguous cover of `0..n_workers`;
/// - group sizes differ by at most one (earlier groups take the
///   remainder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregatorMap {
    n_aggregators: usize,
    /// `assign[worker]` = fronting aggregator.
    assign: Vec<usize>,
    /// `members[a]` = workers fronted by aggregator `a`, ascending.
    members: Vec<Vec<usize>>,
}

impl AggregatorMap {
    /// Contiguous near-equal grouping of `n_workers` behind
    /// `n_aggregators` edge aggregators.
    ///
    /// # Panics
    ///
    /// Panics if either count is 0 or there are more aggregators than
    /// workers (an empty aggregator fronts nobody and is a config
    /// error, not a degenerate case to paper over).
    pub fn contiguous(n_workers: usize, n_aggregators: usize) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        assert!(n_aggregators > 0, "need at least one aggregator");
        assert!(
            n_aggregators <= n_workers,
            "{n_aggregators} aggregators cannot front {n_workers} workers"
        );
        let base = n_workers / n_aggregators;
        let rem = n_workers % n_aggregators;
        let mut assign = Vec::with_capacity(n_workers);
        let mut members = Vec::with_capacity(n_aggregators);
        let mut next = 0usize;
        for a in 0..n_aggregators {
            let len = base + usize::from(a < rem);
            members.push((next..next + len).collect());
            assign.extend(std::iter::repeat_n(a, len));
            next += len;
        }
        Self {
            n_aggregators,
            assign,
            members,
        }
    }

    /// Number of aggregators.
    pub fn n_aggregators(&self) -> usize {
        self.n_aggregators
    }

    /// Number of workers covered.
    pub fn n_workers(&self) -> usize {
        self.assign.len()
    }

    /// The aggregator fronting `worker`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn agg_of(&self, worker: usize) -> usize {
        self.assign[worker]
    }

    /// Workers fronted by `aggregator`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `aggregator` is out of range.
    pub fn members(&self, aggregator: usize) -> &[usize] {
        &self.members[aggregator]
    }

    /// Fan-in of `aggregator` (member count).
    ///
    /// # Panics
    ///
    /// Panics if `aggregator` is out of range.
    pub fn fan_in(&self, aggregator: usize) -> usize {
        self.members[aggregator].len()
    }
}

/// What one closed merge window forwarded upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeSummary {
    /// Distinct rows forwarded (each once, at its max pushed version).
    pub rows: u64,
    /// Raw member row-pushes folded into those rows.
    pub raw_rows: u64,
    /// Member pushes merged (the realized fan-in of the window).
    pub pushes: u64,
    /// Freshest iteration among the merged pushes.
    pub max_version: u64,
}

/// Totals over a plane's lifetime (all aggregators, all shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Closed merge windows (upstream messages sent).
    pub flushes: u64,
    /// Distinct rows forwarded upstream.
    pub upstream_rows: u64,
    /// Raw member row-pushes those forwards replaced.
    pub raw_rows: u64,
    /// Pulls fanned out downstream to members.
    pub pulls: u64,
}

/// One open merge window: member pushes to one shard accumulating at
/// one aggregator until a member pull forces the merged rows upstream.
#[derive(Debug, Clone, Default)]
struct Window {
    /// `seen[row]` = true once the row is in the window. Indexed by
    /// global row id; allocated lazily on the first push through the
    /// aggregator, then reused (cleared via the `rows` list).
    seen: Vec<bool>,
    /// Rows currently in the window (insertion order; used to clear).
    rows: Vec<usize>,
    raw_rows: u64,
    pushes: u64,
    max_version: u64,
}

impl Window {
    fn absorb(&mut self, row_ids: &[usize], version: u64, n_rows: usize) {
        if self.seen.is_empty() {
            self.seen = vec![false; n_rows];
        }
        for &r in row_ids {
            if !self.seen[r] {
                self.seen[r] = true;
                self.rows.push(r);
            }
        }
        self.raw_rows += row_ids.len() as u64;
        self.pushes += 1;
        self.max_version = self.max_version.max(version);
    }

    fn flush(&mut self) -> Option<MergeSummary> {
        if self.pushes == 0 {
            return None;
        }
        let summary = MergeSummary {
            rows: self.rows.len() as u64,
            raw_rows: self.raw_rows,
            pushes: self.pushes,
            max_version: self.max_version,
        };
        for &r in &self.rows {
            self.seen[r] = false;
        }
        self.rows.clear();
        self.raw_rows = 0;
        self.pushes = 0;
        self.max_version = 0;
        Some(summary)
    }
}

/// Merge/fan-out bookkeeping for the aggregation tier.
///
/// The plane sits between the engine's per-worker conversations and the
/// sharded upstream: member pushes accumulate in per-(aggregator,
/// shard) merge windows (sum gradients — already done row-wise by the
/// upstream accumulators — and max versions), and a member pull closes
/// the window, forwarding each distinct row once. The engine drives it
/// with three calls: [`AggregatorPlane::on_member_push`] after a push
/// commits, [`AggregatorPlane::flush`] when a pull is granted (the
/// merged rows must precede the fresh pull upstream), and
/// [`AggregatorPlane::on_member_pull`] for fan-out accounting.
#[derive(Debug, Clone)]
pub struct AggregatorPlane {
    map: AggregatorMap,
    n_shards: usize,
    n_rows: usize,
    /// `windows[a * n_shards + s]`.
    windows: Vec<Window>,
    stats: AggregatorStats,
}

impl AggregatorPlane {
    /// Creates the plane for `map` over `n_shards` upstream shards and
    /// a model of `n_rows` global rows.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards == 0` or `n_rows == 0`.
    pub fn new(map: AggregatorMap, n_shards: usize, n_rows: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        assert!(n_rows > 0, "need at least one row");
        let windows = vec![Window::default(); map.n_aggregators() * n_shards];
        Self {
            map,
            n_shards,
            n_rows,
            windows,
            stats: AggregatorStats::default(),
        }
    }

    /// The worker→aggregator assignment.
    pub fn map(&self) -> &AggregatorMap {
        &self.map
    }

    /// Absorbs a committed push of `row_ids` (global ids) at iteration
    /// `version` from `worker` into its aggregator's merge window for
    /// `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `worker`, `shard` or any row is out of range.
    pub fn on_member_push(&mut self, worker: usize, shard: usize, row_ids: &[usize], version: u64) {
        assert!(shard < self.n_shards, "shard out of range");
        let a = self.map.agg_of(worker);
        self.windows[a * self.n_shards + shard].absorb(row_ids, version, self.n_rows);
    }

    /// Closes `worker`'s aggregator's merge window for `shard`,
    /// returning what went upstream (or `None` if nothing was pending).
    ///
    /// # Panics
    ///
    /// Panics if `worker` or `shard` is out of range.
    pub fn flush(&mut self, worker: usize, shard: usize) -> Option<MergeSummary> {
        assert!(shard < self.n_shards, "shard out of range");
        let a = self.map.agg_of(worker);
        let summary = self.windows[a * self.n_shards + shard].flush();
        if let Some(s) = summary {
            self.stats.flushes += 1;
            self.stats.upstream_rows += s.rows;
            self.stats.raw_rows += s.raw_rows;
        }
        summary
    }

    /// Accounts one pull fanned out to a member.
    pub fn on_member_pull(&mut self) {
        self.stats.pulls += 1;
    }

    /// Lifetime totals.
    pub fn stats(&self) -> AggregatorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_groups_are_a_disjoint_cover() {
        for aggs in 1..=5 {
            let m = AggregatorMap::contiguous(7, aggs);
            let mut seen = vec![0usize; 7];
            for a in 0..aggs {
                for &w in m.members(a) {
                    seen[w] += 1;
                    assert_eq!(m.agg_of(w), a);
                }
                assert_eq!(m.fan_in(a), m.members(a).len());
            }
            assert!(seen.iter().all(|&c| c == 1), "{aggs} aggs: {seen:?}");
        }
    }

    #[test]
    fn groups_are_contiguous_and_balanced() {
        let m = AggregatorMap::contiguous(7, 3);
        assert_eq!(m.members(0), &[0, 1, 2]);
        assert_eq!(m.members(1), &[3, 4]);
        assert_eq!(m.members(2), &[5, 6]);
    }

    #[test]
    #[should_panic(expected = "cannot front")]
    fn more_aggregators_than_workers_panics() {
        let _ = AggregatorMap::contiguous(2, 3);
    }

    #[test]
    fn merge_window_dedups_rows_and_maxes_versions() {
        let plane_map = AggregatorMap::contiguous(4, 2);
        let mut p = AggregatorPlane::new(plane_map, 1, 8);
        // Two members of aggregator 0 push overlapping rows.
        p.on_member_push(0, 0, &[1, 2, 3], 5);
        p.on_member_push(1, 0, &[2, 3, 4], 7);
        let s = p.flush(0, 0).expect("window pending");
        assert_eq!(s.rows, 4, "rows 1-4 forwarded once each");
        assert_eq!(s.raw_rows, 6);
        assert_eq!(s.pushes, 2);
        assert_eq!(s.max_version, 7);
        // The window is drained; a second flush is empty.
        assert_eq!(p.flush(0, 0), None);
        // Aggregator 1's window was never touched.
        assert_eq!(p.flush(2, 0), None);
        let t = p.stats();
        assert_eq!(t.flushes, 1);
        assert_eq!(t.upstream_rows, 4);
        assert_eq!(t.raw_rows, 6);
    }

    #[test]
    fn windows_are_per_aggregator_per_shard() {
        let m = AggregatorMap::contiguous(4, 2);
        let mut p = AggregatorPlane::new(m, 2, 8);
        p.on_member_push(0, 0, &[0], 1);
        p.on_member_push(0, 1, &[1], 2);
        p.on_member_push(3, 0, &[2], 3);
        assert_eq!(p.flush(1, 0).unwrap().rows, 1, "agg 0 / shard 0");
        assert_eq!(p.flush(1, 1).unwrap().max_version, 2, "agg 0 / shard 1");
        assert_eq!(p.flush(2, 0).unwrap().raw_rows, 1, "agg 1 / shard 0");
        assert_eq!(p.flush(2, 1), None, "agg 1 / shard 1 untouched");
    }

    #[test]
    fn window_reuse_after_flush_starts_clean() {
        let m = AggregatorMap::contiguous(2, 1);
        let mut p = AggregatorPlane::new(m, 1, 4);
        p.on_member_push(0, 0, &[0, 1], 3);
        let _ = p.flush(0, 0);
        p.on_member_push(1, 0, &[1], 9);
        let s = p.flush(0, 0).unwrap();
        assert_eq!((s.rows, s.raw_rows, s.pushes, s.max_version), (1, 1, 1, 9));
    }

    #[test]
    fn pull_fanout_is_counted() {
        let m = AggregatorMap::contiguous(4, 2);
        let mut p = AggregatorPlane::new(m, 1, 2);
        p.on_member_pull();
        p.on_member_pull();
        assert_eq!(p.stats().pulls, 2);
    }
}
