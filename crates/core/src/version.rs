//! RSP's row-granulated version storage (the paper's "Version Storage").

/// Tracks, for every `(worker, row)` pair, the latest training iteration
/// whose gradients for that row the parameter server has received —
/// `v_i^r` in Algorithm 2.
///
/// The RSP gate (Algorithm 2, lines 7–9) compares a worker's freshly
/// pushed version against the global minimum `min(V)`: if the lead
/// reaches the staleness threshold, the pull is withheld and the worker
/// stalls until stragglers catch up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowVersionStore {
    /// `v[worker][row]`.
    v: Vec<Vec<u64>>,
    cached_min: u64,
    dirty: bool,
}

impl RowVersionStore {
    /// Creates storage for `n_workers × n_rows`, all at version 0.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    pub fn new(n_workers: usize, n_rows: usize) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        assert!(n_rows > 0, "need at least one row");
        Self {
            v: vec![vec![0; n_rows]; n_workers],
            cached_min: 0,
            dirty: false,
        }
    }

    /// Number of workers tracked.
    pub fn n_workers(&self) -> usize {
        self.v.len()
    }

    /// Number of rows tracked.
    pub fn n_rows(&self) -> usize {
        self.v[0].len()
    }

    /// Version of `row` on `worker`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn get(&self, worker: usize, row: usize) -> u64 {
        self.v[worker][row]
    }

    /// Records that `worker` pushed `row` at iteration `iter`
    /// (monotonic).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn record_push(&mut self, worker: usize, row: usize, iter: u64) {
        let cell = &mut self.v[worker][row];
        if iter > *cell {
            if *cell == self.cached_min {
                self.dirty = true;
            }
            *cell = iter;
        }
    }

    /// `min(V)`: the version of the stalest row anywhere in the cluster.
    pub fn global_min(&mut self) -> u64 {
        if self.dirty {
            self.cached_min = self
                .v
                .iter()
                .flat_map(|w| w.iter())
                .copied()
                .min()
                .expect("non-empty");
            self.dirty = false;
        }
        self.cached_min
    }

    /// The RSP gate: may a worker whose freshest pushed rows carry
    /// version `pushed_iter` be served its pull under `threshold`?
    ///
    /// Mirrors Algorithm 2: the pull waits while
    /// `pushed_iter - min(V) >= threshold`.
    pub fn gate_ok(&mut self, pushed_iter: u64, threshold: u32) -> bool {
        pushed_iter < self.global_min() + u64::from(threshold).max(1)
    }

    /// Staleness (iterations behind the cluster-freshest row) of the
    /// stalest row of `worker`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn worker_max_staleness(&self, worker: usize) -> u64 {
        let global_max = self
            .v
            .iter()
            .flat_map(|w| w.iter())
            .copied()
            .max()
            .expect("non-empty");
        let worker_min = *self.v[worker].iter().min().expect("non-empty");
        global_max - worker_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_tracks_the_stalest_cell() {
        let mut v = RowVersionStore::new(2, 3);
        assert_eq!(v.global_min(), 0);
        for r in 0..3 {
            v.record_push(0, r, 4);
        }
        assert_eq!(v.global_min(), 0, "worker 1 still at 0");
        for r in 0..3 {
            v.record_push(1, r, 2);
        }
        assert_eq!(v.global_min(), 2);
    }

    #[test]
    fn partial_row_pushes_hold_the_min_down() {
        let mut v = RowVersionStore::new(1, 4);
        v.record_push(0, 0, 5);
        v.record_push(0, 1, 5);
        // Rows 2, 3 never pushed.
        assert_eq!(v.global_min(), 0);
        v.record_push(0, 2, 3);
        v.record_push(0, 3, 3);
        assert_eq!(v.global_min(), 3);
    }

    #[test]
    fn gate_blocks_leads_at_threshold() {
        let mut v = RowVersionStore::new(2, 2);
        for r in 0..2 {
            v.record_push(0, r, 4);
            v.record_push(1, r, 1);
        }
        // min(V) = 1; a push at iter 4 leads by 3.
        assert!(v.gate_ok(4, 4));
        assert!(!v.gate_ok(4, 3));
        assert!(!v.gate_ok(4, 2));
    }

    #[test]
    fn versions_are_monotonic() {
        let mut v = RowVersionStore::new(1, 1);
        v.record_push(0, 0, 9);
        v.record_push(0, 0, 4);
        assert_eq!(v.get(0, 0), 9);
    }

    #[test]
    fn worker_staleness_is_vs_global_freshest() {
        let mut v = RowVersionStore::new(2, 2);
        v.record_push(0, 0, 10);
        v.record_push(0, 1, 10);
        v.record_push(1, 0, 7);
        // Worker 1's row 1 is still at version 0.
        assert_eq!(v.worker_max_staleness(1), 10);
        v.record_push(1, 1, 8);
        assert_eq!(v.worker_max_staleness(1), 3);
        assert_eq!(v.worker_max_staleness(0), 0);
    }
}
