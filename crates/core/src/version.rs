//! RSP's row-granulated version storage (the paper's "Version Storage").

/// Tracks, for every `(worker, row)` pair, the latest training iteration
/// whose gradients for that row the parameter server has received —
/// `v_i^r` in Algorithm 2.
///
/// The RSP gate (Algorithm 2, lines 7–9) compares a worker's freshly
/// pushed version against the global minimum `min(V)`: if the lead
/// reaches the staleness threshold, the pull is withheld and the worker
/// stalls until stragglers catch up.
///
/// Under dynamic membership, `min(V)` ranges over the *active* workers
/// only ([`RowVersionStore::set_active`]): a departed worker's frozen
/// rows are aged out of the bound instead of pinning the whole cluster
/// at its last push forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowVersionStore {
    /// `v[worker][row]`.
    v: Vec<Vec<u64>>,
    /// Membership mask; inactive workers are excluded from `min(V)`.
    active: Vec<bool>,
    cached_min: u64,
    dirty: bool,
}

impl RowVersionStore {
    /// Creates storage for `n_workers × n_rows`, all at version 0.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    pub fn new(n_workers: usize, n_rows: usize) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        assert!(n_rows > 0, "need at least one row");
        Self {
            v: vec![vec![0; n_rows]; n_workers],
            active: vec![true; n_workers],
            cached_min: 0,
            dirty: false,
        }
    }

    /// Number of workers tracked.
    pub fn n_workers(&self) -> usize {
        self.v.len()
    }

    /// Number of rows tracked.
    pub fn n_rows(&self) -> usize {
        self.v[0].len()
    }

    /// Version of `row` on `worker`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn get(&self, worker: usize, row: usize) -> u64 {
        self.v[worker][row]
    }

    /// Records that `worker` pushed `row` at iteration `iter`
    /// (monotonic).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn record_push(&mut self, worker: usize, row: usize, iter: u64) {
        let cell = &mut self.v[worker][row];
        if iter > *cell {
            if *cell == self.cached_min {
                self.dirty = true;
            }
            *cell = iter;
        }
    }

    /// Includes (`active == true`) or excludes `worker` from the
    /// `min(V)` bound. Departed workers are excluded so their frozen
    /// rows stop gating everyone else; rejoining workers are included
    /// again after [`RowVersionStore::stamp_worker`] fast-forwards them.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn set_active(&mut self, worker: usize, active: bool) {
        if self.active[worker] != active {
            self.active[worker] = active;
            self.dirty = true;
        }
    }

    /// Whether `worker` currently counts toward `min(V)`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn is_active(&self, worker: usize) -> bool {
        self.active[worker]
    }

    /// Fast-forwards every row of `worker` to at least `iter`
    /// (monotonic, like [`RowVersionStore::record_push`]). Used on
    /// rejoin: the worker resynced its model at `iter`, so its rows are
    /// exactly as fresh as the model it adopted.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn stamp_worker(&mut self, worker: usize, iter: u64) {
        for cell in &mut self.v[worker] {
            if iter > *cell {
                *cell = iter;
            }
        }
        self.dirty = true;
    }

    /// `min(V)`: the version of the stalest row of any *active* worker.
    /// Falls back to the minimum over all workers if none is active (a
    /// fully departed cluster has nothing left to gate).
    pub fn global_min(&mut self) -> u64 {
        if self.dirty {
            let over_active = self
                .v
                .iter()
                .zip(&self.active)
                .filter(|(_, &a)| a)
                .flat_map(|(w, _)| w.iter())
                .copied()
                .min();
            self.cached_min = match over_active {
                Some(m) => m,
                None => self
                    .v
                    .iter()
                    .flat_map(|w| w.iter())
                    .copied()
                    .min()
                    .expect("non-empty"),
            };
            self.dirty = false;
        }
        self.cached_min
    }

    /// The RSP gate: may a worker whose freshest pushed rows carry
    /// version `pushed_iter` be served its pull under `threshold`?
    ///
    /// Mirrors Algorithm 2: the pull waits while
    /// `pushed_iter - min(V) >= threshold`. The bound semantics live
    /// in [`rog_sync::gate::rsp_may_pull`], shared with the engine and
    /// the invariant tests.
    pub fn gate_ok(&mut self, pushed_iter: u64, threshold: u32) -> bool {
        let global_min = self.global_min();
        rog_sync::gate::rsp_may_pull(global_min, pushed_iter, threshold)
    }

    /// The cell pinning `min(V)`: the first `(worker, row)` in index
    /// order (active workers preferred) whose version equals the
    /// global minimum — "whom the gate is waiting for".
    pub fn stalest_cell(&mut self) -> (usize, usize, u64) {
        let min = self.global_min();
        for (w, (rows, &active)) in self.v.iter().zip(&self.active).enumerate() {
            if !active {
                continue;
            }
            if let Some(r) = rows.iter().position(|&v| v == min) {
                return (w, r, min);
            }
        }
        for (w, rows) in self.v.iter().enumerate() {
            if let Some(r) = rows.iter().position(|&v| v == min) {
                return (w, r, min);
            }
        }
        (0, 0, min)
    }

    /// Staleness (iterations behind the cluster-freshest row) of the
    /// stalest row of `worker`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn worker_max_staleness(&self, worker: usize) -> u64 {
        let global_max = self
            .v
            .iter()
            .flat_map(|w| w.iter())
            .copied()
            .max()
            .expect("non-empty");
        let worker_min = *self.v[worker].iter().min().expect("non-empty");
        global_max - worker_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_tracks_the_stalest_cell() {
        let mut v = RowVersionStore::new(2, 3);
        assert_eq!(v.global_min(), 0);
        for r in 0..3 {
            v.record_push(0, r, 4);
        }
        assert_eq!(v.global_min(), 0, "worker 1 still at 0");
        for r in 0..3 {
            v.record_push(1, r, 2);
        }
        assert_eq!(v.global_min(), 2);
    }

    #[test]
    fn partial_row_pushes_hold_the_min_down() {
        let mut v = RowVersionStore::new(1, 4);
        v.record_push(0, 0, 5);
        v.record_push(0, 1, 5);
        // Rows 2, 3 never pushed.
        assert_eq!(v.global_min(), 0);
        v.record_push(0, 2, 3);
        v.record_push(0, 3, 3);
        assert_eq!(v.global_min(), 3);
    }

    #[test]
    fn gate_blocks_leads_at_threshold() {
        let mut v = RowVersionStore::new(2, 2);
        for r in 0..2 {
            v.record_push(0, r, 4);
            v.record_push(1, r, 1);
        }
        // min(V) = 1; a push at iter 4 leads by 3.
        assert!(v.gate_ok(4, 4));
        assert!(!v.gate_ok(4, 3));
        assert!(!v.gate_ok(4, 2));
    }

    #[test]
    fn versions_are_monotonic() {
        let mut v = RowVersionStore::new(1, 1);
        v.record_push(0, 0, 9);
        v.record_push(0, 0, 4);
        assert_eq!(v.get(0, 0), 9);
    }

    #[test]
    fn deactivated_workers_stop_pinning_the_min() {
        let mut v = RowVersionStore::new(3, 2);
        for r in 0..2 {
            v.record_push(0, r, 10);
            v.record_push(1, r, 9);
            // Worker 2 pushed once long ago and then vanished.
            v.record_push(2, r, 2);
        }
        assert_eq!(v.global_min(), 2);
        assert!(!v.gate_ok(10, 4), "straggler pins the gate");
        v.set_active(2, false);
        assert!(!v.is_active(2));
        assert_eq!(v.global_min(), 9, "frozen rows aged out of the bound");
        assert!(v.gate_ok(10, 4), "gate opens once the departed row is out");
        // Reactivating without a stamp restores the old bound.
        v.set_active(2, true);
        assert_eq!(v.global_min(), 2);
    }

    #[test]
    fn stamp_worker_fast_forwards_monotonically() {
        let mut v = RowVersionStore::new(2, 3);
        v.record_push(0, 0, 12);
        v.record_push(1, 1, 7);
        v.stamp_worker(1, 5);
        assert_eq!(v.get(1, 0), 5);
        assert_eq!(v.get(1, 1), 7, "stamp never lowers a version");
        assert_eq!(v.get(1, 2), 5);
        // Rejoin sequence: deactivate, stamp at the adopted iteration,
        // reactivate — min(V) reflects the resynced rows.
        v.set_active(1, false);
        v.stamp_worker(1, 12);
        v.set_active(1, true);
        v.stamp_worker(0, 12);
        assert_eq!(v.global_min(), 12);
    }

    #[test]
    fn min_over_no_active_workers_falls_back_to_all() {
        let mut v = RowVersionStore::new(2, 1);
        v.record_push(0, 0, 3);
        v.record_push(1, 0, 5);
        v.set_active(0, false);
        v.set_active(1, false);
        assert_eq!(v.global_min(), 3);
    }

    #[test]
    fn stalest_cell_identifies_the_gating_row() {
        let mut v = RowVersionStore::new(2, 2);
        v.record_push(0, 0, 5);
        v.record_push(0, 1, 5);
        v.record_push(1, 0, 5);
        // Row (1, 1) is still at version 0 and pins the gate.
        assert_eq!(v.stalest_cell(), (1, 1, 0));
        v.set_active(1, false);
        assert_eq!(v.stalest_cell(), (0, 0, 5));
    }

    #[test]
    fn gate_matches_shared_predicate() {
        let mut v = RowVersionStore::new(2, 2);
        for r in 0..2 {
            v.record_push(0, r, 4);
            v.record_push(1, r, 1);
        }
        let min = v.global_min();
        for threshold in 0..6 {
            for pushed in 0..8 {
                assert_eq!(
                    v.gate_ok(pushed, threshold),
                    rog_sync::gate::rsp_may_pull(min, pushed, threshold)
                );
            }
        }
    }

    #[test]
    fn worker_staleness_is_vs_global_freshest() {
        let mut v = RowVersionStore::new(2, 2);
        v.record_push(0, 0, 10);
        v.record_push(0, 1, 10);
        v.record_push(1, 0, 7);
        // Worker 1's row 1 is still at version 0.
        assert_eq!(v.worker_max_staleness(1), 10);
        v.record_push(1, 1, 8);
        assert_eq!(v.worker_max_staleness(1), 3);
        assert_eq!(v.worker_max_staleness(0), 0);
    }
}
