//! RSP's row-granulated version storage (the paper's "Version Storage").
//!
//! Two implementations share one semantics:
//!
//! * [`RowVersionStore`] — the production store: an interned per-worker
//!   clock (a base version plus a sparse override map for rows pushed
//!   ahead of it) and a count-indexed min tracker, so `min(V)` is a
//!   plain field read (`&self`, O(1)) and memory is
//!   O(workers + rows pushed ahead of their worker's floor) instead of
//!   the dense `workers × rows` table.
//! * [`DenseRowVersionStore`] — the original dense table, kept as the
//!   differential test oracle (and as the readable reference for the
//!   semantics).

use std::collections::{HashMap, VecDeque};

/// One worker's row versions, interned against a base clock.
///
/// Invariants (enforced by every mutator):
/// * every value in `over` is strictly greater than `base`;
/// * `over.len() < n_rows` — whenever an update would override the last
///   base row, the clock *rebases* (folds the new minimum into `base`),
///   so at least one row always sits exactly at `base`;
/// * therefore the worker's minimum version is `base`, and `base` never
///   decreases (pushes and stamps are monotonic).
#[derive(Debug, Clone, PartialEq, Eq)]
struct WorkerClock {
    /// Version floor: every row not in `over` is exactly here.
    base: u64,
    /// Rows pushed ahead of `base` (values strictly greater).
    over: HashMap<usize, u64>,
}

impl WorkerClock {
    fn new() -> Self {
        Self {
            base: 0,
            over: HashMap::new(),
        }
    }

    fn get(&self, row: usize) -> u64 {
        self.over.get(&row).copied().unwrap_or(self.base)
    }

    /// Folds the override minimum into `base` once every row has been
    /// overridden, restoring `over.len() < n_rows`. Returns the new
    /// base. O(over.len()), and only reachable after at least one full
    /// sweep of the rows, so amortized cost stays sub-linear in steady
    /// state.
    fn rebase(&mut self) -> u64 {
        let new_base = self.over.values().copied().min().expect("non-empty over");
        self.base = new_base;
        self.over.retain(|_, v| *v > new_base);
        new_base
    }

    /// Monotonic single-row update. Returns the worker's new minimum if
    /// it rose (i.e. a rebase happened).
    fn record(&mut self, row: usize, iter: u64, n_rows: usize) -> Option<u64> {
        if iter <= self.get(row) {
            return None;
        }
        self.over.insert(row, iter);
        if self.over.len() == n_rows {
            Some(self.rebase())
        } else {
            None
        }
    }

    /// Monotonic fast-forward of every row to at least `iter`. Returns
    /// the worker's new minimum if it rose.
    fn stamp(&mut self, iter: u64, n_rows: usize) -> Option<u64> {
        if iter <= self.base {
            return None;
        }
        self.over.retain(|_, v| *v > iter);
        self.base = iter;
        if self.over.len() == n_rows {
            Some(self.rebase())
        } else {
            Some(iter)
        }
    }
}

/// Tracks, for every `(worker, row)` pair, the latest training iteration
/// whose gradients for that row the parameter server has received —
/// `v_i^r` in Algorithm 2.
///
/// The RSP gate (Algorithm 2, lines 7–9) compares a worker's freshly
/// pushed version against the global minimum `min(V)`: if the lead
/// reaches the staleness threshold, the pull is withheld and the worker
/// stalls until stragglers catch up.
///
/// Under dynamic membership, `min(V)` ranges over the *active* workers
/// only ([`RowVersionStore::set_active`]): a departed worker's frozen
/// rows are aged out of the bound instead of pinning the whole cluster
/// at its last push forever.
///
/// # Fleet-scale representation
///
/// Per-worker state is a [`WorkerClock`] (base + sparse overrides), so a
/// worker's own minimum is its base and is *monotone nondecreasing*.
/// That monotonicity is what makes the global bound incremental: the
/// store keeps two count rings indexed by `version − origin` — how many
/// workers (all, and active-only) currently have their minimum at each
/// version — and advances the cached minima past empty buckets as
/// counts drain. `global_min` is then a field read; the advancing scan
/// is amortized O(1) per version increment. The only operation that can
/// *lower* the cached bound is reactivating a stale worker
/// ([`RowVersionStore::set_active`]), a rare fault-path event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowVersionStore {
    n_rows: usize,
    clocks: Vec<WorkerClock>,
    /// Membership mask; inactive workers are excluded from `min(V)`.
    active: Vec<bool>,
    n_active: usize,
    /// Version of the first count-ring bucket; `≤` every worker's
    /// minimum. Advances (popping dead buckets) as the fleet moves on.
    origin: u64,
    /// `counts_all[v − origin]` = workers whose minimum is `v`.
    counts_all: VecDeque<u32>,
    /// Same, restricted to active workers.
    counts_active: VecDeque<u32>,
    /// `min(V)` over all workers (monotone; counts_all ring).
    min_all: u64,
    /// `min(V)` over active workers; meaningful iff `n_active > 0`.
    min_active: u64,
    /// Freshest version of any cell, active or not (monotone).
    gmax: u64,
}

impl RowVersionStore {
    /// Creates storage for `n_workers × n_rows`, all at version 0.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    pub fn new(n_workers: usize, n_rows: usize) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        assert!(n_rows > 0, "need at least one row");
        Self {
            n_rows,
            clocks: vec![WorkerClock::new(); n_workers],
            active: vec![true; n_workers],
            n_active: n_workers,
            origin: 0,
            counts_all: VecDeque::from([n_workers as u32]),
            counts_active: VecDeque::from([n_workers as u32]),
            min_all: 0,
            min_active: 0,
            gmax: 0,
        }
    }

    /// Number of workers tracked.
    pub fn n_workers(&self) -> usize {
        self.clocks.len()
    }

    /// Number of rows tracked.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Version of `row` on `worker`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn get(&self, worker: usize, row: usize) -> u64 {
        assert!(row < self.n_rows, "row out of range");
        self.clocks[worker].get(row)
    }

    fn bucket_add(&mut self, v: u64, active: bool) {
        let i = (v - self.origin) as usize;
        if i >= self.counts_all.len() {
            self.counts_all.resize(i + 1, 0);
            self.counts_active.resize(i + 1, 0);
        }
        self.counts_all[i] += 1;
        if active {
            self.counts_active[i] += 1;
        }
    }

    fn bucket_remove(&mut self, v: u64, active: bool) {
        let i = (v - self.origin) as usize;
        self.counts_all[i] -= 1;
        if active {
            self.counts_active[i] -= 1;
        }
    }

    /// Re-establishes the cached minima after a bucket drained, then
    /// pops buckets below the all-workers minimum so ring length stays
    /// O(version spread). Amortized O(1): every bucket advanced over
    /// corresponds to a version the fleet minimum moved past.
    fn advance_minima(&mut self) {
        while self.counts_all[(self.min_all - self.origin) as usize] == 0 {
            self.min_all += 1;
        }
        if self.n_active > 0 {
            if self.min_active < self.min_all {
                self.min_active = self.min_all;
            }
            while self.counts_active[(self.min_active - self.origin) as usize] == 0 {
                self.min_active += 1;
            }
        }
        while self.origin < self.min_all {
            self.counts_all.pop_front();
            self.counts_active.pop_front();
            self.origin += 1;
        }
    }

    /// Moves `worker`'s minimum from its previous bucket to `new_min`
    /// (always a raise — per-worker minima are monotone).
    fn on_worker_min_raised(&mut self, worker: usize, old_min: u64, new_min: u64) {
        let active = self.active[worker];
        self.bucket_remove(old_min, active);
        self.bucket_add(new_min, active);
        self.advance_minima();
    }

    /// Records that `worker` pushed `row` at iteration `iter`
    /// (monotonic).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn record_push(&mut self, worker: usize, row: usize, iter: u64) {
        assert!(row < self.n_rows, "row out of range");
        let clock = &mut self.clocks[worker];
        let old_min = clock.base;
        let raised = clock.record(row, iter, self.n_rows);
        if iter > self.gmax {
            self.gmax = iter;
        }
        if let Some(new_min) = raised {
            self.on_worker_min_raised(worker, old_min, new_min);
        }
    }

    /// Includes (`active == true`) or excludes `worker` from the
    /// `min(V)` bound. Departed workers are excluded so their frozen
    /// rows stop gating everyone else; rejoining workers are included
    /// again after [`RowVersionStore::stamp_worker`] fast-forwards them.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn set_active(&mut self, worker: usize, active: bool) {
        if self.active[worker] == active {
            return;
        }
        self.active[worker] = active;
        let wmin = self.clocks[worker].base;
        let i = (wmin - self.origin) as usize;
        if active {
            self.counts_active[i] += 1;
            self.n_active += 1;
            // Reactivation is the one event that can lower the active
            // bound (the rejoiner may still be stale).
            if self.n_active == 1 || wmin < self.min_active {
                self.min_active = wmin;
            }
        } else {
            self.counts_active[i] -= 1;
            self.n_active -= 1;
            if self.n_active > 0 {
                while self.counts_active[(self.min_active - self.origin) as usize] == 0 {
                    self.min_active += 1;
                }
            }
        }
    }

    /// Whether `worker` currently counts toward `min(V)`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn is_active(&self, worker: usize) -> bool {
        self.active[worker]
    }

    /// Fast-forwards every row of `worker` to at least `iter`
    /// (monotonic, like [`RowVersionStore::record_push`]). Used on
    /// rejoin: the worker resynced its model at `iter`, so its rows are
    /// exactly as fresh as the model it adopted.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn stamp_worker(&mut self, worker: usize, iter: u64) {
        let clock = &mut self.clocks[worker];
        let old_min = clock.base;
        let raised = clock.stamp(iter, self.n_rows);
        if iter > self.gmax {
            self.gmax = iter;
        }
        if let Some(new_min) = raised {
            self.on_worker_min_raised(worker, old_min, new_min);
        }
    }

    /// `min(V)`: the version of the stalest row of any *active* worker.
    /// Falls back to the minimum over all workers if none is active (a
    /// fully departed cluster has nothing left to gate).
    ///
    /// O(1): the bound is maintained incrementally by the mutators.
    pub fn global_min(&self) -> u64 {
        if self.n_active > 0 {
            self.min_active
        } else {
            self.min_all
        }
    }

    /// The RSP gate: may a worker whose freshest pushed rows carry
    /// version `pushed_iter` be served its pull under `threshold`?
    ///
    /// Mirrors Algorithm 2: the pull waits while
    /// `pushed_iter - min(V) >= threshold`. The bound semantics live
    /// in [`rog_sync::gate::rsp_may_pull`], shared with the engine and
    /// the invariant tests.
    pub fn gate_ok(&self, pushed_iter: u64, threshold: u32) -> bool {
        rog_sync::gate::rsp_may_pull(self.global_min(), pushed_iter, threshold)
    }

    /// The cell pinning `min(V)`: the first `(worker, row)` in index
    /// order (active workers preferred) whose version equals the
    /// global minimum — "whom the gate is waiting for".
    pub fn stalest_cell(&self) -> (usize, usize, u64) {
        let min = self.global_min();
        let first_row_at = |clock: &WorkerClock| -> Option<usize> {
            if clock.base != min {
                return None;
            }
            // Every row outside `over` sits exactly at `base`; the
            // clock invariant guarantees at least one exists.
            (0..self.n_rows).find(|r| !clock.over.contains_key(r))
        };
        for (w, (clock, &active)) in self.clocks.iter().zip(&self.active).enumerate() {
            if !active {
                continue;
            }
            if let Some(r) = first_row_at(clock) {
                return (w, r, min);
            }
        }
        for (w, clock) in self.clocks.iter().enumerate() {
            if let Some(r) = first_row_at(clock) {
                return (w, r, min);
            }
        }
        (0, 0, min)
    }

    /// Staleness (iterations behind the cluster-freshest row) of the
    /// stalest row of `worker`. O(1): both bounds are tracked
    /// incrementally.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn worker_max_staleness(&self, worker: usize) -> u64 {
        self.gmax - self.clocks[worker].base
    }

    /// Estimated resident size of the store in bytes: the struct, the
    /// clock table with each worker's override capacity, and the count
    /// rings. An estimate (hash-map overhead is approximated per
    /// entry), meant for capacity ratchets, not allocator accounting.
    pub fn memory_bytes(&self) -> usize {
        // Rough per-entry cost of a `HashMap<usize, u64>`: key + value
        // + one byte of control metadata, times the usual 8/7 load
        // headroom, rounded up to 24. Counted per *live* entry (`len`),
        // not `capacity`: with removals in the mix the table's bucket
        // count depends on its per-instance hash seed, and this
        // estimate feeds deterministic run artifacts.
        const OVER_ENTRY_BYTES: usize = 24;
        std::mem::size_of::<Self>()
            + self.clocks.capacity() * std::mem::size_of::<WorkerClock>()
            + self
                .clocks
                .iter()
                .map(|c| c.over.len() * OVER_ENTRY_BYTES)
                .sum::<usize>()
            + self.active.capacity()
            + (self.counts_all.capacity() + self.counts_active.capacity())
                * std::mem::size_of::<u32>()
    }
}

/// The original dense `workers × rows` version table with a rescan-based
/// `min(V)`. Retained as the differential oracle for
/// [`RowVersionStore`]: same observable semantics, trivially auditable
/// implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseRowVersionStore {
    /// `v[worker][row]`.
    v: Vec<Vec<u64>>,
    /// Membership mask; inactive workers are excluded from `min(V)`.
    active: Vec<bool>,
    cached_min: u64,
    dirty: bool,
}

impl DenseRowVersionStore {
    /// Creates storage for `n_workers × n_rows`, all at version 0.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    pub fn new(n_workers: usize, n_rows: usize) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        assert!(n_rows > 0, "need at least one row");
        Self {
            v: vec![vec![0; n_rows]; n_workers],
            active: vec![true; n_workers],
            cached_min: 0,
            dirty: false,
        }
    }

    /// Number of workers tracked.
    pub fn n_workers(&self) -> usize {
        self.v.len()
    }

    /// Number of rows tracked.
    pub fn n_rows(&self) -> usize {
        self.v[0].len()
    }

    /// Version of `row` on `worker`.
    pub fn get(&self, worker: usize, row: usize) -> u64 {
        self.v[worker][row]
    }

    /// Records that `worker` pushed `row` at iteration `iter`
    /// (monotonic).
    pub fn record_push(&mut self, worker: usize, row: usize, iter: u64) {
        let cell = &mut self.v[worker][row];
        if iter > *cell {
            if *cell == self.cached_min {
                self.dirty = true;
            }
            *cell = iter;
        }
    }

    /// Includes or excludes `worker` from the `min(V)` bound.
    pub fn set_active(&mut self, worker: usize, active: bool) {
        if self.active[worker] != active {
            self.active[worker] = active;
            self.dirty = true;
        }
    }

    /// Whether `worker` currently counts toward `min(V)`.
    pub fn is_active(&self, worker: usize) -> bool {
        self.active[worker]
    }

    /// Fast-forwards every row of `worker` to at least `iter`.
    pub fn stamp_worker(&mut self, worker: usize, iter: u64) {
        for cell in &mut self.v[worker] {
            if iter > *cell {
                *cell = iter;
            }
        }
        self.dirty = true;
    }

    /// `min(V)` by full rescan (when dirty) over the dense table.
    pub fn global_min(&mut self) -> u64 {
        if self.dirty {
            let over_active = self
                .v
                .iter()
                .zip(&self.active)
                .filter(|(_, &a)| a)
                .flat_map(|(w, _)| w.iter())
                .copied()
                .min();
            self.cached_min = match over_active {
                Some(m) => m,
                None => self
                    .v
                    .iter()
                    .flat_map(|w| w.iter())
                    .copied()
                    .min()
                    .expect("non-empty"),
            };
            self.dirty = false;
        }
        self.cached_min
    }

    /// The RSP gate over the rescanned bound.
    pub fn gate_ok(&mut self, pushed_iter: u64, threshold: u32) -> bool {
        let global_min = self.global_min();
        rog_sync::gate::rsp_may_pull(global_min, pushed_iter, threshold)
    }

    /// The cell pinning `min(V)`, first in index order (active workers
    /// preferred).
    pub fn stalest_cell(&mut self) -> (usize, usize, u64) {
        let min = self.global_min();
        for (w, (rows, &active)) in self.v.iter().zip(&self.active).enumerate() {
            if !active {
                continue;
            }
            if let Some(r) = rows.iter().position(|&v| v == min) {
                return (w, r, min);
            }
        }
        for (w, rows) in self.v.iter().enumerate() {
            if let Some(r) = rows.iter().position(|&v| v == min) {
                return (w, r, min);
            }
        }
        (0, 0, min)
    }

    /// Staleness of the stalest row of `worker` vs the global freshest.
    pub fn worker_max_staleness(&self, worker: usize) -> u64 {
        let global_max = self
            .v
            .iter()
            .flat_map(|w| w.iter())
            .copied()
            .max()
            .expect("non-empty");
        let worker_min = *self.v[worker].iter().min().expect("non-empty");
        global_max - worker_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_tracks_the_stalest_cell() {
        let mut v = RowVersionStore::new(2, 3);
        assert_eq!(v.global_min(), 0);
        for r in 0..3 {
            v.record_push(0, r, 4);
        }
        assert_eq!(v.global_min(), 0, "worker 1 still at 0");
        for r in 0..3 {
            v.record_push(1, r, 2);
        }
        assert_eq!(v.global_min(), 2);
    }

    #[test]
    fn partial_row_pushes_hold_the_min_down() {
        let mut v = RowVersionStore::new(1, 4);
        v.record_push(0, 0, 5);
        v.record_push(0, 1, 5);
        // Rows 2, 3 never pushed.
        assert_eq!(v.global_min(), 0);
        v.record_push(0, 2, 3);
        v.record_push(0, 3, 3);
        assert_eq!(v.global_min(), 3);
    }

    #[test]
    fn gate_blocks_leads_at_threshold() {
        let mut v = RowVersionStore::new(2, 2);
        for r in 0..2 {
            v.record_push(0, r, 4);
            v.record_push(1, r, 1);
        }
        // min(V) = 1; a push at iter 4 leads by 3.
        assert!(v.gate_ok(4, 4));
        assert!(!v.gate_ok(4, 3));
        assert!(!v.gate_ok(4, 2));
    }

    #[test]
    fn versions_are_monotonic() {
        let mut v = RowVersionStore::new(1, 1);
        v.record_push(0, 0, 9);
        v.record_push(0, 0, 4);
        assert_eq!(v.get(0, 0), 9);
    }

    #[test]
    fn deactivated_workers_stop_pinning_the_min() {
        let mut v = RowVersionStore::new(3, 2);
        for r in 0..2 {
            v.record_push(0, r, 10);
            v.record_push(1, r, 9);
            // Worker 2 pushed once long ago and then vanished.
            v.record_push(2, r, 2);
        }
        assert_eq!(v.global_min(), 2);
        assert!(!v.gate_ok(10, 4), "straggler pins the gate");
        v.set_active(2, false);
        assert!(!v.is_active(2));
        assert_eq!(v.global_min(), 9, "frozen rows aged out of the bound");
        assert!(v.gate_ok(10, 4), "gate opens once the departed row is out");
        // Reactivating without a stamp restores the old bound.
        v.set_active(2, true);
        assert_eq!(v.global_min(), 2);
    }

    #[test]
    fn stamp_worker_fast_forwards_monotonically() {
        let mut v = RowVersionStore::new(2, 3);
        v.record_push(0, 0, 12);
        v.record_push(1, 1, 7);
        v.stamp_worker(1, 5);
        assert_eq!(v.get(1, 0), 5);
        assert_eq!(v.get(1, 1), 7, "stamp never lowers a version");
        assert_eq!(v.get(1, 2), 5);
        // Rejoin sequence: deactivate, stamp at the adopted iteration,
        // reactivate — min(V) reflects the resynced rows.
        v.set_active(1, false);
        v.stamp_worker(1, 12);
        v.set_active(1, true);
        v.stamp_worker(0, 12);
        assert_eq!(v.global_min(), 12);
    }

    #[test]
    fn min_over_no_active_workers_falls_back_to_all() {
        let mut v = RowVersionStore::new(2, 1);
        v.record_push(0, 0, 3);
        v.record_push(1, 0, 5);
        v.set_active(0, false);
        v.set_active(1, false);
        assert_eq!(v.global_min(), 3);
    }

    #[test]
    fn stalest_cell_identifies_the_gating_row() {
        let mut v = RowVersionStore::new(2, 2);
        v.record_push(0, 0, 5);
        v.record_push(0, 1, 5);
        v.record_push(1, 0, 5);
        // Row (1, 1) is still at version 0 and pins the gate.
        assert_eq!(v.stalest_cell(), (1, 1, 0));
        v.set_active(1, false);
        assert_eq!(v.stalest_cell(), (0, 0, 5));
    }

    #[test]
    fn gate_matches_shared_predicate() {
        let mut v = RowVersionStore::new(2, 2);
        for r in 0..2 {
            v.record_push(0, r, 4);
            v.record_push(1, r, 1);
        }
        let min = v.global_min();
        for threshold in 0..6 {
            for pushed in 0..8 {
                assert_eq!(
                    v.gate_ok(pushed, threshold),
                    rog_sync::gate::rsp_may_pull(min, pushed, threshold)
                );
            }
        }
    }

    #[test]
    fn worker_staleness_is_vs_global_freshest() {
        let mut v = RowVersionStore::new(2, 2);
        v.record_push(0, 0, 10);
        v.record_push(0, 1, 10);
        v.record_push(1, 0, 7);
        // Worker 1's row 1 is still at version 0.
        assert_eq!(v.worker_max_staleness(1), 10);
        v.record_push(1, 1, 8);
        assert_eq!(v.worker_max_staleness(1), 3);
        assert_eq!(v.worker_max_staleness(0), 0);
    }

    #[test]
    fn global_min_borrows_shared() {
        // The satellite contract: `global_min` takes `&self`, so a
        // shared reference can read the bound (the dense oracle could
        // not offer this without interior mutability).
        let v = RowVersionStore::new(3, 3);
        let r = &v;
        assert_eq!(r.global_min(), 0);
        assert_eq!(r.stalest_cell(), (0, 0, 0));
        assert!(r.gate_ok(0, 1));
    }

    #[test]
    fn rebase_keeps_a_row_at_the_floor() {
        // Override every row, forcing a rebase; the invariant that some
        // row sits exactly at the worker min must survive.
        let mut v = RowVersionStore::new(1, 3);
        v.record_push(0, 0, 5);
        v.record_push(0, 1, 3);
        v.record_push(0, 2, 7);
        assert_eq!(v.global_min(), 3);
        assert_eq!(v.stalest_cell(), (0, 1, 3));
        v.record_push(0, 1, 4);
        assert_eq!(v.global_min(), 4);
        assert_eq!(v.stalest_cell(), (0, 1, 4));
    }

    #[test]
    fn memory_stays_sparse_for_untouched_rows() {
        // A fleet where nobody has pushed yet costs O(workers), not
        // O(workers × rows).
        let wide = RowVersionStore::new(512, 4096);
        let bytes = wide.memory_bytes();
        assert!(
            bytes < 512 * 4096,
            "untouched 512×4096 store should be far below one byte per cell, got {bytes}"
        );
        let mut touched = RowVersionStore::new(512, 4096);
        touched.record_push(0, 7, 3);
        assert!(touched.memory_bytes() < 512 * 4096);
    }

    /// Applies one oracle op to both stores and checks every observable
    /// agrees. The dense store is the semantics; the sparse store must
    /// match it on any history.
    #[derive(Debug, Clone)]
    enum Op {
        Push { w: usize, r: usize, iter: u64 },
        Stamp { w: usize, iter: u64 },
        SetActive { w: usize, active: bool },
    }

    fn check_equivalent(sparse: &RowVersionStore, dense: &mut DenseRowVersionStore) {
        assert_eq!(sparse.global_min(), dense.global_min(), "global_min");
        assert_eq!(sparse.stalest_cell(), dense.stalest_cell(), "stalest_cell");
        for w in 0..sparse.n_workers() {
            assert_eq!(sparse.is_active(w), dense.is_active(w), "is_active {w}");
            assert_eq!(
                sparse.worker_max_staleness(w),
                dense.worker_max_staleness(w),
                "staleness {w}"
            );
            for r in 0..sparse.n_rows() {
                assert_eq!(sparse.get(w, r), dense.get(w, r), "cell ({w}, {r})");
            }
        }
        for threshold in 0..4 {
            for pushed in 0..10 {
                assert_eq!(
                    sparse.gate_ok(pushed, threshold),
                    dense.gate_ok(pushed, threshold),
                    "gate({pushed}, {threshold})"
                );
            }
        }
    }

    fn apply(op: &Op, sparse: &mut RowVersionStore, dense: &mut DenseRowVersionStore) {
        match *op {
            Op::Push { w, r, iter } => {
                sparse.record_push(w, r, iter);
                dense.record_push(w, r, iter);
            }
            Op::Stamp { w, iter } => {
                sparse.stamp_worker(w, iter);
                dense.stamp_worker(w, iter);
            }
            Op::SetActive { w, active } => {
                sparse.set_active(w, active);
                dense.set_active(w, active);
            }
        }
    }

    #[test]
    fn differential_oracle_on_a_fixed_fault_history() {
        // A deterministic history touching every tricky transition:
        // rebase, deactivate-under-min, reactivate-stale, stamp-rejoin,
        // and the everyone-departed fallback.
        let ops = [
            Op::Push {
                w: 0,
                r: 0,
                iter: 3,
            },
            Op::Push {
                w: 0,
                r: 1,
                iter: 3,
            },
            Op::Push {
                w: 1,
                r: 1,
                iter: 2,
            },
            Op::Push {
                w: 1,
                r: 0,
                iter: 2,
            },
            Op::Push {
                w: 2,
                r: 0,
                iter: 1,
            },
            Op::SetActive {
                w: 2,
                active: false,
            },
            Op::Push {
                w: 0,
                r: 0,
                iter: 6,
            },
            Op::Push {
                w: 0,
                r: 1,
                iter: 6,
            },
            Op::SetActive { w: 2, active: true },
            Op::Stamp { w: 2, iter: 5 },
            Op::Push {
                w: 1,
                r: 0,
                iter: 4,
            },
            Op::Push {
                w: 1,
                r: 1,
                iter: 4,
            },
            Op::SetActive {
                w: 0,
                active: false,
            },
            Op::SetActive {
                w: 1,
                active: false,
            },
            Op::SetActive {
                w: 2,
                active: false,
            },
            Op::SetActive { w: 1, active: true },
            Op::Stamp { w: 0, iter: 9 },
        ];
        let mut sparse = RowVersionStore::new(3, 2);
        let mut dense = DenseRowVersionStore::new(3, 2);
        for op in &ops {
            apply(op, &mut sparse, &mut dense);
            check_equivalent(&sparse, &mut dense);
        }
    }

    mod differential_props {
        use super::*;
        use proptest::prelude::*;

        const W: usize = 4;
        const R: usize = 5;

        /// Decodes a raw draw into an op: pushes dominate (as in a real
        /// run), stamps and membership flips are the fault-path tail.
        fn decode(kind: usize, w: usize, r: usize, iter: u64) -> Op {
            match kind {
                0..=5 => Op::Push { w, r, iter },
                6 => Op::Stamp { w, iter },
                _ => Op::SetActive {
                    w,
                    active: iter.is_multiple_of(2),
                },
            }
        }

        proptest! {
            #[test]
            fn sparse_store_matches_the_dense_oracle(
                raw in proptest::collection::vec((0..9usize, 0..W, 0..R, 0u64..20), 1..120)
            ) {
                let mut sparse = RowVersionStore::new(W, R);
                let mut dense = DenseRowVersionStore::new(W, R);
                for &(kind, w, r, iter) in &raw {
                    let op = decode(kind, w, r, iter);
                    apply(&op, &mut sparse, &mut dense);
                    check_equivalent(&sparse, &mut dense);
                }
            }
        }
    }
}
