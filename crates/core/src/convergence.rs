//! Theorem 1: SGD under RSP converges (Sec. IV-C).
//!
//! The paper proves that because RSP applies SSP's bounded-staleness
//! control to every row independently, and no row's updates are ever
//! lost (only delayed and accumulated), the whole model retains SSP's
//! `O(√T)` regret bound:
//!
//! `R[X] ≤ 4 F L √(2 (S_max + 1) P T)`
//!
//! where `F` bounds the optimization diameter, `L` the gradient norms,
//! `S_max` the largest per-row staleness threshold and `P` the worker
//! count. [`rsp_regret_bound`] evaluates the bound; the crate's tests run
//! delayed-gradient SGD on a convex problem and check the realized regret
//! sits under it and is sublinear.

/// The Theorem 1 regret bound `4 F L √(2 (s_max + 1) workers · t)`.
///
/// # Panics
///
/// Panics if `f_diameter` or `lipschitz` is negative, or `workers == 0`.
///
/// # Example
///
/// ```
/// use rog_core::convergence::rsp_regret_bound;
///
/// let b1 = rsp_regret_bound(1.0, 1.0, 4, 4, 100);
/// let b2 = rsp_regret_bound(1.0, 1.0, 4, 4, 400);
/// // O(√T): quadrupling T doubles the bound.
/// assert!((b2 / b1 - 2.0).abs() < 1e-9);
/// ```
pub fn rsp_regret_bound(
    f_diameter: f64,
    lipschitz: f64,
    s_max: u32,
    workers: usize,
    t: u64,
) -> f64 {
    assert!(f_diameter >= 0.0, "diameter must be non-negative");
    assert!(lipschitz >= 0.0, "Lipschitz constant must be non-negative");
    assert!(workers > 0, "need at least one worker");
    4.0 * f_diameter
        * lipschitz
        * (2.0 * (f64::from(s_max) + 1.0) * workers as f64 * t as f64).sqrt()
}

/// The step-size schedule of Theorem 1: `η_t = σ / √t` with
/// `σ = F / (L √(2 (s_max + 1) P))`.
///
/// # Panics
///
/// Panics if any argument is non-positive.
pub fn theorem1_step_size(
    f_diameter: f64,
    lipschitz: f64,
    s_max: u32,
    workers: usize,
    t: u64,
) -> f64 {
    assert!(
        f_diameter > 0.0 && lipschitz > 0.0,
        "F and L must be positive"
    );
    assert!(workers > 0 && t > 0, "workers and t must be positive");
    let sigma = f_diameter / (lipschitz * (2.0 * (f64::from(s_max) + 1.0) * workers as f64).sqrt());
    sigma / (t as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs row-wise delayed SGD on the convex objective
    /// `f_t(x) = Σ_i |x_i - c_{t,i}|²` where each row's gradient is
    /// applied with its own bounded delay (the worst case RSP admits),
    /// and returns the total regret versus the fixed minimizer.
    fn delayed_sgd_regret(s_max: u64, t_total: u64) -> (f64, f64, f64) {
        // 4 "rows", scalar each; targets drift around a center so the
        // minimizer of the sum is the mean target.
        let rows = 4usize;
        let centers: Vec<f64> = (0..rows).map(|i| i as f64 * 0.5 - 0.75).collect();
        let target = |t: u64, i: usize| centers[i] + 0.3 * ((t as f64 * 0.7 + i as f64).sin());
        // Empirical minimizer of Σ_t f_t per row = mean of targets.
        let mut mean_t = vec![0.0f64; rows];
        for step in 1..=t_total {
            for (i, m) in mean_t.iter_mut().enumerate() {
                *m += target(step, i) / t_total as f64;
            }
        }
        let mut x = vec![0.0f64; rows];
        // Per-row queue of delayed gradients: row i's gradient computed
        // at step t is applied at t + (i % (s_max+1)) — staleness varies
        // per row but never exceeds s_max, as RSP guarantees.
        let mut pending: Vec<Vec<(u64, f64)>> = vec![Vec::new(); rows];
        let mut regret = 0.0;
        let f_diam = 4.0;
        let lip = 4.0;
        for step in 1..=t_total {
            // Loss of current (stale) iterate.
            for i in 0..rows {
                let c = target(step, i);
                regret += (x[i] - c).powi(2) - (mean_t[i] - c).powi(2);
            }
            // Gradient at the current iterate, delivered with delay.
            for i in 0..rows {
                let c = target(step, i);
                let g = 2.0 * (x[i] - c);
                let delay = (i as u64) % (s_max + 1);
                pending[i].push((step + delay, g));
            }
            // Apply all gradients due by now with Theorem 1's step size.
            let eta = theorem1_step_size(f_diam, lip, s_max as u32, 1, step);
            for (i, q) in pending.iter_mut().enumerate() {
                let (due, rest): (Vec<_>, Vec<_>) = q.iter().partition(|(at, _)| *at <= step);
                *q = rest;
                for (_, g) in due {
                    x[i] -= eta * g;
                }
            }
        }
        let bound = rsp_regret_bound(f_diam, lip, s_max as u32, 1, t_total);
        (regret, bound, regret / t_total as f64)
    }

    #[test]
    fn bound_scales_as_sqrt_t() {
        let b100 = rsp_regret_bound(2.0, 3.0, 4, 4, 100);
        let b10000 = rsp_regret_bound(2.0, 3.0, 4, 4, 10_000);
        assert!((b10000 / b100 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bound_grows_with_staleness_and_workers() {
        let base = rsp_regret_bound(1.0, 1.0, 2, 2, 100);
        assert!(rsp_regret_bound(1.0, 1.0, 8, 2, 100) > base);
        assert!(rsp_regret_bound(1.0, 1.0, 2, 8, 100) > base);
    }

    #[test]
    fn delayed_sgd_regret_is_under_the_bound_and_sublinear() {
        for s in [0u64, 2, 4] {
            let (r1, b1, avg1) = delayed_sgd_regret(s, 500);
            let (_, _, avg2) = delayed_sgd_regret(s, 4000);
            assert!(r1 < b1, "staleness {s}: regret {r1} exceeds bound {b1}");
            assert!(
                avg2 < avg1,
                "staleness {s}: average regret must shrink: {avg1} -> {avg2}"
            );
        }
    }

    #[test]
    fn step_size_decays_as_inverse_sqrt() {
        let e1 = theorem1_step_size(1.0, 1.0, 4, 4, 100);
        let e2 = theorem1_step_size(1.0, 1.0, 4, 4, 400);
        assert!((e1 / e2 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = rsp_regret_bound(1.0, 1.0, 1, 0, 10);
    }
}
