//! The drop-in optimizer facade.
//!
//! The paper's integration story (Sec. V): ROG is "implemented as an
//! optimizer in PyTorch … integrated by simply replacing the
//! application's original optimizer", with a parameter server tracked
//! under the hood. [`RogSession`] + [`RogOptimizer`] are the Rust
//! equivalent for in-process data-parallel training: one session hosts
//! the shared [`RogServer`]; each rank holds a [`RogOptimizer`] and
//! calls [`RogOptimizer::step`] once per iteration with its freshly
//! computed gradients. The step accumulates, ranks, "transmits" the
//! admitted row budget (the caller supplies how many rows its link
//! admitted — or `None` for all), applies the RSP gate, and pulls
//! averaged updates into the local parameters.
//!
//! The simulated-time distributed engine in `rog-trainer` uses the
//! underlying [`RogWorker`]/[`RogServer`] directly; this facade is for
//! embedding ROG into a different harness or transport.
//!
//! # Example
//!
//! ```
//! use rog_core::{RogSession, RowId};
//! use rog_tensor::Matrix;
//!
//! let params = vec![Matrix::zeros(4, 3), Matrix::zeros(1, 4)];
//! let session = RogSession::new(&params, 2, 4);
//! let mut opt0 = session.optimizer(0, 0.1);
//! let mut local0 = params.clone();
//!
//! let grads = vec![
//!     Matrix::from_fn(4, 3, |_, _| 1.0),
//!     Matrix::from_fn(1, 4, |_, _| 0.5),
//! ];
//! let report = opt0.step(&mut local0, &grads, None);
//! assert!(report.gate_open);
//! assert_eq!(report.pushed_rows, 5);
//! ```

use std::sync::Arc;

use parking_lot::Mutex;
use rog_tensor::Matrix;

use crate::{mta, ImportanceMetric, RogServer, RogWorker, RogWorkerConfig};

/// What one [`RogOptimizer::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Rows pushed to the parameter server this step.
    pub pushed_rows: usize,
    /// Rows pulled and applied this step.
    pub pulled_rows: usize,
    /// Whether the RSP gate admitted the pull. When `false`, this rank
    /// is too far ahead of a straggler: the pull was skipped and should
    /// be retried on the next step (a real deployment would block).
    pub gate_open: bool,
}

/// Shared state of an in-process ROG training group.
#[derive(Debug, Clone)]
pub struct RogSession {
    server: Arc<Mutex<RogServer>>,
    template: Vec<(usize, usize)>,
    n_workers: usize,
    threshold: u32,
}

impl RogSession {
    /// Creates a session for `n_workers` ranks training a model shaped
    /// like `params`.
    ///
    /// # Panics
    ///
    /// Panics if `n_workers == 0` or the model has no rows.
    pub fn new(params: &[Matrix], n_workers: usize, threshold: u32) -> Self {
        Self {
            server: Arc::new(Mutex::new(RogServer::new(
                params,
                n_workers,
                threshold,
                ImportanceMetric::default(),
            ))),
            template: params.iter().map(Matrix::shape).collect(),
            n_workers,
            threshold,
        }
    }

    /// Number of ranks.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Creates the optimizer for `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn optimizer(&self, rank: usize, lr: f32) -> RogOptimizer {
        assert!(rank < self.n_workers, "rank out of range");
        let params: Vec<Matrix> = self
            .template
            .iter()
            .map(|&(r, c)| Matrix::zeros(r, c))
            .collect();
        RogOptimizer {
            server: Arc::clone(&self.server),
            worker: RogWorker::new(&params, RogWorkerConfig::new(self.threshold, lr)),
            rank,
            iter: 0,
            threshold: self.threshold,
        }
    }
}

/// Per-rank drop-in optimizer (see module docs).
#[derive(Debug)]
pub struct RogOptimizer {
    server: Arc<Mutex<RogServer>>,
    worker: RogWorker,
    rank: usize,
    iter: u64,
    threshold: u32,
}

impl RogOptimizer {
    /// The rank this optimizer belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Completed steps.
    pub fn iterations(&self) -> u64 {
        self.iter
    }

    /// One training step: accumulate `grads`, push the admitted row
    /// budget (at least MTA plus RSP-mandatory rows; `None` = all rows),
    /// and — gate permitting — pull averaged gradients into `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params`/`grads` do not match the session's model
    /// shape.
    pub fn step(
        &mut self,
        params: &mut [Matrix],
        grads: &[Matrix],
        budget_rows: Option<usize>,
    ) -> StepReport {
        let n = self.iter + 1;
        self.worker.accumulate(grads);
        let plan = self.worker.plan_push(n);
        let n_rows = plan.len();
        let t = u64::from(self.threshold.max(1));
        let mandatory = plan
            .iter()
            .take_while(|&&id| n.saturating_sub(self.worker.row_iters()[id.0]) >= t)
            .count();
        let floor = mta::mta_rows(n_rows, self.threshold).max(mandatory);
        let admitted = budget_rows
            .unwrap_or(n_rows)
            .clamp(floor.min(n_rows), n_rows);
        let sent = self.worker.commit_push(&plan[..admitted], n);

        let mut server = self.server.lock();
        server.on_push(self.rank, n, &sent);
        let gate_open = server.gate_ok(n);
        let pulled = if gate_open {
            let pull_plan = server.plan_pull(self.rank);
            let payload = server.commit_pull(self.rank, &pull_plan);
            drop(server);
            self.worker.apply_pulled(params, &payload);
            payload.len()
        } else {
            0
        };
        self.iter = n;
        StepReport {
            pushed_rows: admitted,
            pulled_rows: pulled,
            gate_open,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rog_tensor::rng::DetRng;

    fn params() -> Vec<Matrix> {
        vec![Matrix::zeros(3, 4), Matrix::zeros(1, 3)]
    }

    fn grads(rng: &mut DetRng) -> Vec<Matrix> {
        params()
            .iter()
            .map(|m| Matrix::randn(m.rows(), m.cols(), 1.0, rng))
            .collect()
    }

    #[test]
    fn full_budget_step_applies_averaged_updates() {
        let session = RogSession::new(&params(), 2, 4);
        let mut o0 = session.optimizer(0, 1.0);
        let mut o1 = session.optimizer(1, 1.0);
        let mut p0 = params();
        let mut p1 = params();
        let g = vec![
            Matrix::from_fn(3, 4, |_, _| 2.0),
            Matrix::from_fn(1, 3, |_, _| 2.0),
        ];
        let r0 = o0.step(&mut p0, &g, None);
        let r1 = o1.step(&mut p1, &g, None);
        assert!(r0.gate_open && r1.gate_open);
        // Both ranks pushed +2 everywhere; each pull carries whatever has
        // been averaged so far (rank 0 sees its own half, rank 1 both).
        assert!(p0[0].get(0, 0) < 0.0);
        assert!(p1[0].get(0, 0) <= p0[0].get(0, 0));
    }

    #[test]
    fn budget_is_floored_at_mta_and_mandatory() {
        let session = RogSession::new(&params(), 1, 4);
        let mut opt = session.optimizer(0, 0.1);
        let mut p = params();
        let mut rng = DetRng::new(1);
        // Ask for zero budget: MTA(4) of 4 rows = ceil(0.3177*4) = 2.
        let r = opt.step(&mut p, &grads(&mut rng), Some(0));
        assert_eq!(r.pushed_rows, 2);
    }

    #[test]
    fn gate_blocks_a_runaway_rank() {
        let session = RogSession::new(&params(), 2, 3);
        let mut fast = session.optimizer(0, 0.1);
        let mut p = params();
        let mut rng = DetRng::new(2);
        let mut blocked = false;
        for _ in 0..6 {
            let r = fast.step(&mut p, &grads(&mut rng), None);
            blocked |= !r.gate_open;
        }
        assert!(blocked, "a rank running alone must eventually be gated");
    }

    #[test]
    fn staleness_stays_bounded_under_minimal_budgets() {
        let session = RogSession::new(&params(), 1, 4);
        let mut opt = session.optimizer(0, 0.1);
        let mut p = params();
        let mut rng = DetRng::new(3);
        for k in 1..=20u64 {
            let _ = opt.step(&mut p, &grads(&mut rng), Some(0));
            assert!(
                opt.worker.max_row_staleness(k) < 4,
                "staleness exceeded the threshold at step {k}"
            );
        }
    }

    #[test]
    fn two_ranks_round_robin_train_consistently() {
        let session = RogSession::new(&params(), 2, 4);
        let mut opts = [session.optimizer(0, 0.5), session.optimizer(1, 0.5)];
        let mut ps = [params(), params()];
        let mut rng = DetRng::new(4);
        for _ in 0..12 {
            for r in 0..2 {
                let g = grads(&mut rng);
                let _ = opts[r].step(&mut ps[r], &g, Some(3));
            }
        }
        // Models track each other within the staleness bound.
        let d: f32 = ps[0]
            .iter()
            .zip(&ps[1])
            .map(|(a, b)| {
                a.as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .map(|(x, y)| (x - y).abs())
                    .sum::<f32>()
            })
            .sum();
        let norm: f32 = ps[0].iter().map(|m| m.frobenius_norm()).sum();
        assert!(
            d < 2.0 * norm.max(1.0),
            "models diverged: dist {d}, norm {norm}"
        );
    }
}
