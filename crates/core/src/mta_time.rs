//! The shared MTA-time estimate (Algorithm 4's `GetMTATime` /
//! `UpdateMTATime`).
//!
//! ATP aligns transmission time across devices: a straggler transmits MTA
//! rows and reports how long that took; non-stragglers keep transmitting
//! for that long (sending *more* than MTA rows with their better links).
//! The tracker keeps a per-device exponentially smoothed estimate of
//! "seconds to transmit MTA rows" and serves the maximum across devices
//! as the common time budget `tMTA`.

use rog_sim::Time;

/// Cross-device estimate of the speculative-transmission time budget.
#[derive(Debug, Clone)]
pub struct MtaTimeTracker {
    per_device: Vec<Time>,
    alpha: f64,
    floor: Time,
    cap: Time,
}

impl MtaTimeTracker {
    /// Creates a tracker for `n_devices`, all starting at
    /// `initial_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `n_devices == 0` or `initial_secs <= 0`.
    pub fn new(n_devices: usize, initial_secs: Time) -> Self {
        assert!(n_devices > 0, "need at least one device");
        assert!(initial_secs > 0.0, "initial estimate must be positive");
        Self {
            per_device: vec![initial_secs; n_devices],
            alpha: 0.5,
            floor: 0.01,
            cap: 60.0,
        }
    }

    /// The current common time budget `tMTA`: the largest per-device
    /// estimate (every device must be given enough time to get its MTA
    /// rows through).
    pub fn get(&self) -> Time {
        self.per_device.iter().cloned().fold(self.floor, Time::max)
    }

    /// Per-device estimate (for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn device_estimate(&self, device: usize) -> Time {
        self.per_device[device]
    }

    /// Records a finished push: `rows_sent` rows took `duration` seconds
    /// and the device's MTA is `mta_rows` rows.
    ///
    /// A device that pushed at least MTA rows extrapolates its per-row
    /// speed; one that timed out below MTA keeps transmitting to MTA and
    /// reports the measured duration directly, so `duration` here is the
    /// full time to reach MTA.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn report(&mut self, device: usize, rows_sent: usize, duration: Time, mta_rows: usize) {
        let sample = if rows_sent == 0 {
            // Nothing got through within the budget: back off upward.
            (self.per_device[device] * 2.0).min(self.cap)
        } else if mta_rows == 0 {
            self.floor
        } else {
            (duration * mta_rows as f64 / rows_sent as f64).clamp(self.floor, self.cap)
        };
        let e = &mut self.per_device[device];
        *e = self.alpha * sample + (1.0 - self.alpha) * *e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_budget_is_the_seed() {
        let t = MtaTimeTracker::new(3, 1.5);
        assert_eq!(t.get(), 1.5);
    }

    #[test]
    fn budget_is_the_slowest_device() {
        let mut t = MtaTimeTracker::new(2, 1.0);
        // Device 0 is fast: sent 100 rows in 0.5 s, MTA is 50.
        for _ in 0..10 {
            t.report(0, 100, 0.5, 50);
        }
        // Device 1 is slow: needed 4 s for its 50 MTA rows.
        for _ in 0..10 {
            t.report(1, 50, 4.0, 50);
        }
        assert!(t.device_estimate(0) < 0.5);
        assert!((t.get() - 4.0).abs() < 0.1, "budget {}", t.get());
    }

    #[test]
    fn fast_device_extrapolates_per_row_speed() {
        let mut t = MtaTimeTracker::new(1, 1.0);
        // 200 rows in 1 s with MTA 50 → 0.25 s per MTA.
        for _ in 0..20 {
            t.report(0, 200, 1.0, 50);
        }
        assert!((t.device_estimate(0) - 0.25).abs() < 0.01);
    }

    #[test]
    fn zero_rows_backs_off_upward() {
        let mut t = MtaTimeTracker::new(1, 1.0);
        let before = t.get();
        t.report(0, 0, 1.0, 50);
        assert!(t.get() > before);
    }

    #[test]
    fn estimates_adapt_to_bandwidth_recovery() {
        let mut t = MtaTimeTracker::new(1, 10.0);
        for _ in 0..20 {
            t.report(0, 50, 0.2, 50);
        }
        assert!(t.get() < 0.3, "should converge down: {}", t.get());
    }

    #[test]
    fn estimates_stay_within_bounds() {
        let mut t = MtaTimeTracker::new(1, 1.0);
        for _ in 0..50 {
            t.report(0, 0, 1.0, 50);
        }
        assert!(t.get() <= 60.0);
        for _ in 0..200 {
            t.report(0, 1000, 1e-9, 1);
        }
        assert!(t.get() >= 0.01);
    }
}
