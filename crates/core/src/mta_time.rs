//! The shared MTA-time estimate (Algorithm 4's `GetMTATime` /
//! `UpdateMTATime`).
//!
//! ATP aligns transmission time across devices: a straggler transmits MTA
//! rows and reports how long that took; non-stragglers keep transmitting
//! for that long (sending *more* than MTA rows with their better links).
//! The tracker keeps a per-device exponentially smoothed estimate of
//! "seconds to transmit MTA rows" and serves the maximum across devices
//! as the common time budget `tMTA`.

use rog_sim::Time;

/// Cross-device estimate of the speculative-transmission time budget.
#[derive(Debug, Clone)]
pub struct MtaTimeTracker {
    per_device: Vec<Time>,
    alpha: f64,
    floor: Time,
    cap: Time,
    /// Cached `max(per_device)` and its argmax. `get()` runs on every
    /// push leg, so at fleet scale the former O(devices) fold would
    /// dominate; the cache makes it O(1), with a rescan only when the
    /// slowest device itself speeds up. `f64::max` over non-NaN values
    /// is order-independent, so the cached value is bit-identical to
    /// the fold it replaces.
    max_est: Time,
    max_dev: usize,
}

impl MtaTimeTracker {
    /// Creates a tracker for `n_devices`, all starting at
    /// `initial_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `n_devices == 0` or `initial_secs <= 0`.
    pub fn new(n_devices: usize, initial_secs: Time) -> Self {
        assert!(n_devices > 0, "need at least one device");
        assert!(initial_secs > 0.0, "initial estimate must be positive");
        Self {
            per_device: vec![initial_secs; n_devices],
            alpha: 0.5,
            floor: 0.01,
            cap: 60.0,
            max_est: initial_secs,
            max_dev: 0,
        }
    }

    /// The current common time budget `tMTA`: the largest per-device
    /// estimate (every device must be given enough time to get its MTA
    /// rows through). O(1) amortized.
    pub fn get(&self) -> Time {
        self.max_est.max(self.floor)
    }

    /// Per-device estimate (for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn device_estimate(&self, device: usize) -> Time {
        self.per_device[device]
    }

    /// Records a finished push: `rows_sent` rows took `duration` seconds
    /// and the device's MTA is `mta_rows` rows.
    ///
    /// A device that pushed at least MTA rows extrapolates its per-row
    /// speed; one that timed out below MTA keeps transmitting to MTA and
    /// reports the measured duration directly, so `duration` here is the
    /// full time to reach MTA.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn report(&mut self, device: usize, rows_sent: usize, duration: Time, mta_rows: usize) {
        let sample = if rows_sent == 0 {
            // Nothing got through within the budget: back off upward.
            (self.per_device[device] * 2.0).min(self.cap)
        } else if mta_rows == 0 {
            self.floor
        } else {
            (duration * mta_rows as f64 / rows_sent as f64).clamp(self.floor, self.cap)
        };
        let e = &mut self.per_device[device];
        *e = self.alpha * sample + (1.0 - self.alpha) * *e;
        let e = *e;
        if e >= self.max_est {
            self.max_est = e;
            self.max_dev = device;
        } else if device == self.max_dev {
            // The slowest device sped up: only now is a rescan needed.
            let (dev, est) = self.per_device.iter().enumerate().fold(
                (0, Time::NEG_INFINITY),
                |(bd, be), (d, &v)| {
                    if v > be {
                        (d, v)
                    } else {
                        (bd, be)
                    }
                },
            );
            self.max_dev = dev;
            self.max_est = est;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_budget_is_the_seed() {
        let t = MtaTimeTracker::new(3, 1.5);
        assert_eq!(t.get(), 1.5);
    }

    #[test]
    fn budget_is_the_slowest_device() {
        let mut t = MtaTimeTracker::new(2, 1.0);
        // Device 0 is fast: sent 100 rows in 0.5 s, MTA is 50.
        for _ in 0..10 {
            t.report(0, 100, 0.5, 50);
        }
        // Device 1 is slow: needed 4 s for its 50 MTA rows.
        for _ in 0..10 {
            t.report(1, 50, 4.0, 50);
        }
        assert!(t.device_estimate(0) < 0.5);
        assert!((t.get() - 4.0).abs() < 0.1, "budget {}", t.get());
    }

    #[test]
    fn fast_device_extrapolates_per_row_speed() {
        let mut t = MtaTimeTracker::new(1, 1.0);
        // 200 rows in 1 s with MTA 50 → 0.25 s per MTA.
        for _ in 0..20 {
            t.report(0, 200, 1.0, 50);
        }
        assert!((t.device_estimate(0) - 0.25).abs() < 0.01);
    }

    #[test]
    fn zero_rows_backs_off_upward() {
        let mut t = MtaTimeTracker::new(1, 1.0);
        let before = t.get();
        t.report(0, 0, 1.0, 50);
        assert!(t.get() > before);
    }

    #[test]
    fn estimates_adapt_to_bandwidth_recovery() {
        let mut t = MtaTimeTracker::new(1, 10.0);
        for _ in 0..20 {
            t.report(0, 50, 0.2, 50);
        }
        assert!(t.get() < 0.3, "should converge down: {}", t.get());
    }

    #[test]
    fn cached_budget_matches_a_full_fold() {
        // Differential check of the O(1) cache against the reference
        // fold, through a mixed history that moves the argmax around.
        let mut t = MtaTimeTracker::new(4, 1.0);
        let history: [(usize, usize, Time, usize); 12] = [
            (0, 50, 4.0, 50),
            (1, 100, 0.5, 50),
            (2, 0, 1.0, 50),
            (0, 200, 0.2, 50), // previous argmax speeds up -> rescan
            (3, 50, 6.0, 50),
            (3, 500, 0.1, 50), // argmax speeds up again
            (1, 50, 2.0, 50),
            (2, 50, 0.3, 50),
            (0, 0, 1.0, 50),
            (1, 1000, 1e-9, 1),
            (2, 50, 5.0, 50),
            (3, 50, 0.05, 50),
        ];
        for (dev, rows, dur, mta) in history {
            t.report(dev, rows, dur, mta);
            let reference = t.per_device.iter().cloned().fold(t.floor, Time::max);
            assert_eq!(t.get(), reference, "cache diverged after ({dev})");
        }
    }

    #[test]
    fn estimates_stay_within_bounds() {
        let mut t = MtaTimeTracker::new(1, 1.0);
        for _ in 0..50 {
            t.report(0, 0, 1.0, 50);
        }
        assert!(t.get() <= 60.0);
        for _ in 0..200 {
            t.report(0, 1000, 1e-9, 1);
        }
        assert!(t.get() >= 0.01);
    }
}
