//! Row-sharded parameter-server plane.
//!
//! ROG's row granularity is exactly the unit a sharded PS group needs:
//! every [`RowId`] is homed on one shard, each shard keeps its own
//! version storage and active-mask, and RSP's two-level bound composes
//! per shard because `global_min` is already a per-row property — a
//! worker blocks only on the shard that owns the row pinning its
//! staleness, so one slow or faulted shard never stalls rows homed
//! elsewhere.
//!
//! [`ShardMap`] is the deterministic row→shard assignment (contiguous
//! ranges by default, seeded hash optionally); [`ShardedServer`] owns
//! one [`RogServer`] per shard and translates between global and
//! shard-local row ids at the boundary. With one shard the map is the
//! identity and the plane degenerates to a single [`RogServer`] built
//! exactly as before — byte-identical behaviour is a hard contract.

use rog_tensor::Matrix;

use crate::{ImportanceMetric, RogServer, RowId, RowPartition, RowVersionStore};

/// `splitmix64` finalizer — a tiny, dependency-free seeded hash with
/// full avalanche, used for the optional hashed row→shard mode.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic assignment of global rows to parameter-server shards.
///
/// Invariants (property-tested in the facade suite):
/// - every row maps to exactly one shard;
/// - the shard row-sets are a disjoint cover of `0..n_rows`;
/// - with one shard, routing is the identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    n_shards: usize,
    /// `assign[row]` = owning shard.
    assign: Vec<usize>,
    /// `local[row]` = index of the row within its shard.
    local: Vec<usize>,
    /// `rows[s]` = global row ids homed on shard `s`, in local order.
    rows: Vec<Vec<usize>>,
}

impl ShardMap {
    fn from_assignment(n_shards: usize, assign: Vec<usize>) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        let mut local = vec![0usize; assign.len()];
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        for (r, &s) in assign.iter().enumerate() {
            local[r] = rows[s].len();
            rows[s].push(r);
        }
        Self {
            n_shards,
            assign,
            local,
            rows,
        }
    }

    /// Contiguous row-range partitioning: shard `s` owns a near-equal
    /// slice of `0..n_rows`, earlier shards taking the remainder rows.
    /// With `n_shards == 1` this is the identity map.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards == 0`.
    pub fn contiguous(n_rows: usize, n_shards: usize) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        let base = n_rows / n_shards;
        let rem = n_rows % n_shards;
        let mut assign = Vec::with_capacity(n_rows);
        for s in 0..n_shards {
            let len = base + usize::from(s < rem);
            assign.extend((0..len).map(|_| s));
        }
        Self::from_assignment(n_shards, assign)
    }

    /// Seeded-hash partitioning: each row's shard is drawn from a
    /// `splitmix64` hash of `(seed, row)`. Deterministic for a given
    /// seed, load-balanced in expectation, and independent of row
    /// adjacency (useful when neighbouring rows have correlated load).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards == 0`.
    pub fn seeded_hash(n_rows: usize, n_shards: usize, seed: u64) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        let assign = (0..n_rows)
            .map(|r| (splitmix64(seed ^ (r as u64).wrapping_mul(0x9E37_79B9))) as usize % n_shards)
            .collect();
        Self::from_assignment(n_shards, assign)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Total number of rows covered.
    pub fn n_rows(&self) -> usize {
        self.assign.len()
    }

    /// The shard owning a global row.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn shard_of(&self, id: RowId) -> usize {
        self.assign[id.0]
    }

    /// Translates a global row id to its shard-local id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn to_local(&self, id: RowId) -> RowId {
        RowId(self.local[id.0])
    }

    /// Translates a shard-local row id back to the global id.
    ///
    /// # Panics
    ///
    /// Panics if `shard` or `local` is out of range.
    pub fn to_global(&self, shard: usize, local: RowId) -> RowId {
        RowId(self.rows[shard][local.0])
    }

    /// Number of rows homed on `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_rows(&self, shard: usize) -> usize {
        self.rows[shard].len()
    }

    /// Global row ids homed on `shard`, in shard-local order.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn rows_of(&self, shard: usize) -> &[usize] {
        &self.rows[shard]
    }

    /// Whether routing is the identity (single shard).
    pub fn is_identity(&self) -> bool {
        self.n_shards == 1
    }
}

/// A group of [`RogServer`] shards behind one global-row-id facade.
///
/// Each shard is a full `RogServer` — its own accumulators, error
/// feedback, [`RowVersionStore`] and active-mask — over the rows the
/// [`ShardMap`] homes on it. All methods speak global [`RowId`]s and
/// translate at the boundary; translation is pure index arithmetic
/// (no float operations), so shard count never perturbs values.
#[derive(Debug, Clone)]
pub struct ShardedServer {
    map: ShardMap,
    shards: Vec<RogServer>,
    /// Scratch for global→local id translation in `commit_pull`.
    local_buf: Vec<RowId>,
}

impl ShardedServer {
    /// Creates the shard group for `n_workers` over a model shaped like
    /// `params`. With a single shard the inner server is constructed
    /// exactly as an unsharded [`RogServer`] (same partition, same
    /// buffer layout) — the byte-identity anchor for `shards = 1`.
    ///
    /// # Panics
    ///
    /// Panics if the map does not cover the model's rows, `n_workers ==
    /// 0`, or any shard ends up empty.
    pub fn new(
        params: &[Matrix],
        n_workers: usize,
        threshold: u32,
        importance: ImportanceMetric,
        map: ShardMap,
    ) -> Self {
        let partition = RowPartition::of_params(params);
        assert_eq!(
            map.n_rows(),
            partition.n_rows(),
            "shard map covers {} rows but the model has {}",
            map.n_rows(),
            partition.n_rows()
        );
        let shards = if map.is_identity() {
            vec![RogServer::new(params, n_workers, threshold, importance)]
        } else {
            (0..map.n_shards())
                .map(|s| {
                    assert!(
                        map.shard_rows(s) > 0,
                        "shard {s} owns no rows ({} rows over {} shards)",
                        map.n_rows(),
                        map.n_shards()
                    );
                    // Server state is strictly per-row, so a synthetic
                    // one-row-per-matrix shape reproduces the same
                    // arithmetic regardless of the original grouping.
                    let shard_params: Vec<Matrix> = map
                        .rows_of(s)
                        .iter()
                        .map(|&r| Matrix::zeros(1, partition.width(RowId(r))))
                        .collect();
                    RogServer::new(&shard_params, n_workers, threshold, importance)
                })
                .collect()
        };
        Self {
            map,
            shards,
            local_buf: Vec::new(),
        }
    }

    /// The row→shard assignment.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.map.n_shards()
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.shards[0].n_workers()
    }

    /// The staleness threshold (uniform across shards).
    pub fn threshold(&self) -> u32 {
        self.shards[0].threshold()
    }

    /// Changes the staleness threshold on every shard.
    pub fn set_threshold(&mut self, threshold: u32) {
        for s in &mut self.shards {
            s.set_threshold(threshold);
        }
    }

    /// Configures the pull codec of every link on every shard, each
    /// shard's stochastic streams seeded from an independent fork of
    /// `seed`. Call before training starts.
    pub fn configure_codec(&mut self, choice: rog_compress::CodecChoice, seed: u64) {
        let base = rog_tensor::rng::DetRng::new(seed);
        for (i, s) in self.shards.iter_mut().enumerate() {
            s.configure_codec(choice, base.fork(i as u64).seed());
        }
    }

    /// Switches the pull codec of the link to `worker` on every shard
    /// (the per-link auto controller).
    pub fn set_codec(&mut self, worker: usize, codec: rog_compress::Codec) {
        for s in &mut self.shards {
            s.set_codec(worker, codec);
        }
    }

    /// Total NaN/Inf gradient values zeroed at ingest across shards.
    pub fn nonfinite_dropped(&self) -> u64 {
        self.shards.iter().map(RogServer::nonfinite_dropped).sum()
    }

    /// Number of currently active workers (uniform across shards).
    pub fn active_workers(&self) -> usize {
        self.shards[0].active_workers()
    }

    /// Whether `worker` is currently a cluster member.
    pub fn is_active(&self, worker: usize) -> bool {
        self.shards[0].is_active(worker)
    }

    /// Removes `worker` from the active set on every shard.
    pub fn deactivate_worker(&mut self, worker: usize) {
        for s in &mut self.shards {
            s.deactivate_worker(worker);
        }
    }

    /// Readmits `worker` at iteration `iter` on every shard.
    pub fn rejoin_worker(&mut self, worker: usize, iter: u64) {
        for s in &mut self.shards {
            s.rejoin_worker(worker, iter);
        }
    }

    /// The version storage of one shard (shared; gate diagnostics are
    /// `&self` reads on the sparse store).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn versions(&self, shard: usize) -> &RowVersionStore {
        self.shards[shard].versions()
    }

    /// The version storage of one shard (mutable).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn versions_mut(&mut self, shard: usize) -> &mut RowVersionStore {
        self.shards[shard].versions_mut()
    }

    /// Estimated resident bytes of every shard's version storage (see
    /// [`RowVersionStore::memory_bytes`]).
    pub fn version_store_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.versions().memory_bytes())
            .sum()
    }

    /// Receives pushed rows homed on `shard`. `rows` carries global ids
    /// and is translated to shard-local ids **in place** (callers hand
    /// the payload over; the ids are not meaningful afterwards).
    ///
    /// # Panics
    ///
    /// Panics if any row is not homed on `shard`.
    pub fn on_push(&mut self, shard: usize, from: usize, n: u64, rows: &mut [(RowId, Vec<f32>)]) {
        for (id, _) in rows.iter_mut() {
            assert_eq!(self.map.shard_of(*id), shard, "{id} not homed on {shard}");
            *id = self.map.to_local(*id);
        }
        self.shards[shard].on_push(from, n, rows);
    }

    /// Per-shard RSP gate: may a worker whose push to `shard` carried
    /// iteration `pushed_iter` be served that shard's pull now?
    pub fn gate_ok(&self, shard: usize, pushed_iter: u64) -> bool {
        self.shards[shard].gate_ok(pushed_iter)
    }

    /// Shard-local pull plan for `worker`, translated to global ids.
    pub fn plan_pull_into(&mut self, shard: usize, worker: usize, out: &mut Vec<RowId>) {
        self.shards[shard].plan_pull_into(worker, out);
        for id in out.iter_mut() {
            *id = self.map.to_global(shard, *id);
        }
    }

    /// Width-only payload size of one (global) row on the wire (the
    /// one-bit / dense bound; see [`RogServer::payload_bytes`]).
    pub fn payload_bytes(&self, id: RowId) -> u64 {
        self.shards[self.map.shard_of(id)].payload_bytes(self.map.to_local(id))
    }

    /// Payload size of one (global) row on the link to `worker`, as
    /// that link's codec would frame it right now.
    pub fn payload_bytes_for(&self, worker: usize, id: RowId) -> u64 {
        self.shards[self.map.shard_of(id)].payload_bytes_for(worker, self.map.to_local(id))
    }

    /// Commits a pull of global `rows` from `shard`, returning the
    /// delivered values keyed by global id.
    pub fn commit_pull(
        &mut self,
        shard: usize,
        worker: usize,
        rows: &[RowId],
    ) -> Vec<(RowId, Vec<f32>)> {
        let mut local = std::mem::take(&mut self.local_buf);
        local.clear();
        local.extend(rows.iter().map(|&id| self.map.to_local(id)));
        let mut out = self.shards[shard].commit_pull(worker, &local);
        for (id, _) in &mut out {
            *id = self.map.to_global(shard, *id);
        }
        self.local_buf = local;
        out
    }

    /// Sum over shards of pending mean-|ḡ| for `worker` (diagnostic).
    pub fn pending_magnitude(&self, worker: usize) -> f32 {
        self.shards
            .iter()
            .map(|s| s.pending_magnitude(worker))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Vec<Matrix> {
        vec![Matrix::zeros(4, 3), Matrix::zeros(3, 2)]
    }

    #[test]
    fn contiguous_map_is_a_disjoint_cover() {
        for shards in 1..=5 {
            let m = ShardMap::contiguous(7, shards);
            let mut seen = vec![0usize; 7];
            for s in 0..shards {
                for &r in m.rows_of(s) {
                    seen[r] += 1;
                    assert_eq!(m.shard_of(RowId(r)), s);
                    assert_eq!(m.to_global(s, m.to_local(RowId(r))), RowId(r));
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{shards} shards: {seen:?}");
        }
    }

    #[test]
    fn contiguous_ranges_are_contiguous_and_balanced() {
        let m = ShardMap::contiguous(7, 3);
        assert_eq!(m.rows_of(0), &[0, 1, 2]);
        assert_eq!(m.rows_of(1), &[3, 4]);
        assert_eq!(m.rows_of(2), &[5, 6]);
    }

    #[test]
    fn single_shard_is_identity() {
        let m = ShardMap::contiguous(9, 1);
        assert!(m.is_identity());
        for r in 0..9 {
            assert_eq!(m.shard_of(RowId(r)), 0);
            assert_eq!(m.to_local(RowId(r)), RowId(r));
            assert_eq!(m.to_global(0, RowId(r)), RowId(r));
        }
    }

    #[test]
    fn seeded_hash_is_deterministic_and_covers() {
        let a = ShardMap::seeded_hash(50, 4, 7);
        let b = ShardMap::seeded_hash(50, 4, 7);
        assert_eq!(a, b);
        let total: usize = (0..4).map(|s| a.shard_rows(s)).sum();
        assert_eq!(total, 50);
        // A different seed reshuffles the assignment.
        let c = ShardMap::seeded_hash(50, 4, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn sharded_push_pull_matches_single_server_values() {
        // Per-row server arithmetic is shard-invariant: pushing the same
        // rows through a 3-shard plane and a plain server must deliver
        // identical pulled values.
        let p = params();
        let imp = ImportanceMetric::default();
        let mut plain = RogServer::new(&p, 2, 4, imp);
        let map = ShardMap::contiguous(7, 3);
        let mut sharded = ShardedServer::new(&p, 2, 4, imp, map);

        let rows: Vec<(RowId, Vec<f32>)> = (0..7)
            .map(|r| {
                let w = if r < 4 { 3 } else { 2 };
                (RowId(r), vec![0.5 + r as f32; w])
            })
            .collect();
        plain.on_push(0, 1, &rows);
        for s in 0..3 {
            let mut part: Vec<(RowId, Vec<f32>)> = rows
                .iter()
                .filter(|(id, _)| sharded.map().shard_of(*id) == s)
                .cloned()
                .collect();
            sharded.on_push(s, 0, 1, &mut part);
        }

        let ids: Vec<RowId> = (0..7).map(RowId).collect();
        let want = plain.commit_pull(1, &ids);
        for s in 0..3 {
            let shard_ids: Vec<RowId> = ids
                .iter()
                .copied()
                .filter(|&id| sharded.map().shard_of(id) == s)
                .collect();
            let got = sharded.commit_pull(s, 1, &shard_ids);
            for (id, values) in got {
                let (_, expect) = want.iter().find(|(w, _)| *w == id).unwrap();
                assert_eq!(&values, expect, "{id}");
            }
        }
    }

    #[test]
    fn per_shard_gate_is_independent() {
        let p = params();
        let map = ShardMap::contiguous(7, 2);
        let mut s = ShardedServer::new(&p, 2, 1, ImportanceMetric::default(), map);
        // Worker 0 pushes only shard-0 rows at iteration 3; worker 1 has
        // pushed nothing anywhere.
        let mut rows: Vec<(RowId, Vec<f32>)> = s
            .map()
            .rows_of(0)
            .to_vec()
            .iter()
            .map(|&r| (RowId(r), vec![1.0; if r < 4 { 3 } else { 2 }]))
            .collect();
        s.on_push(0, 0, 3, &mut rows);
        assert!(!s.gate_ok(0, 3), "shard 0 gated by worker 1's rows");
        // Worker 1 catches up on shard 0 only: shard 0 opens while shard
        // 1 still reflects nothing (gate at iter 3 leads by 3 > 1).
        let mut rows: Vec<(RowId, Vec<f32>)> = s
            .map()
            .rows_of(0)
            .to_vec()
            .iter()
            .map(|&r| (RowId(r), vec![1.0; if r < 4 { 3 } else { 2 }]))
            .collect();
        s.on_push(0, 1, 3, &mut rows);
        assert!(s.gate_ok(0, 3), "shard 0 gate opens independently");
        assert!(!s.gate_ok(1, 3), "shard 1 still pins its own gate");
    }

    #[test]
    fn membership_ops_fan_out_to_every_shard() {
        let p = params();
        let map = ShardMap::contiguous(7, 2);
        let mut s = ShardedServer::new(&p, 3, 2, ImportanceMetric::default(), map);
        s.deactivate_worker(2);
        assert_eq!(s.active_workers(), 2);
        assert!(!s.is_active(2));
        s.rejoin_worker(2, 5);
        assert!(s.is_active(2));
        assert_eq!(s.versions_mut(0).global_min(), 0, "others still at 0");
        s.set_threshold(9);
        assert_eq!(s.threshold(), 9);
    }

    #[test]
    #[should_panic(expected = "not homed on")]
    fn pushing_a_foreign_row_panics() {
        let p = params();
        let map = ShardMap::contiguous(7, 2);
        let mut s = ShardedServer::new(&p, 1, 2, ImportanceMetric::default(), map);
        let foreign = s.map().rows_of(1)[0];
        let mut rows = vec![(RowId(foreign), vec![1.0, 1.0])];
        s.on_push(0, 0, 1, &mut rows);
    }
}
