//! QSGD-style stochastic quantization.
//!
//! The multi-level, *unbiased* cousin of one-bit compression: each value
//! is randomly rounded to one of `s` levels of its row's max magnitude,
//! with probabilities chosen so the expectation equals the input. Where
//! one-bit + error feedback delays information, QSGD adds zero-mean
//! noise instead — a different point in the gradient-compression design
//! space the paper's related work surveys, provided for the compression
//! ablations.

use rog_tensor::rng::DetRng;

/// A stochastically quantized row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedRow {
    /// Scale (max magnitude of the row).
    pub norm: f32,
    /// Signed level per value, in `[-levels, +levels]`.
    pub levels_signed: Vec<i16>,
    /// Number of positive levels.
    pub levels: u16,
}

impl QuantizedRow {
    /// Reconstructs the row values.
    pub fn decompress(&self) -> Vec<f32> {
        let s = f32::from(self.levels.max(1));
        self.levels_signed
            .iter()
            .map(|&l| f32::from(l) / s * self.norm)
            .collect()
    }

    /// Bytes on the wire: the scale plus `ceil(log2(2s+1))` bits per
    /// value, byte-padded.
    pub fn payload_bytes(&self) -> u64 {
        let symbols = u32::from(self.levels) * 2 + 1;
        let bits_per_value = 32 - (symbols - 1).leading_zeros();
        4 + ((self.levels_signed.len() as u64 * u64::from(bits_per_value)).div_ceil(8))
    }
}

/// QSGD quantizer with `levels` positive levels per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QsgdCodec {
    /// Positive quantization levels (1 = ternary {-1, 0, +1}).
    pub levels: u16,
}

impl QsgdCodec {
    /// Creates a codec with the given number of levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn new(levels: u16) -> Self {
        assert!(levels > 0, "need at least one level");
        Self { levels }
    }

    /// Stochastically quantizes one row (unbiased).
    pub fn compress(&self, row: &[f32], rng: &mut DetRng) -> QuantizedRow {
        let norm = row.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let s = f32::from(self.levels);
        let levels_signed = row
            .iter()
            .map(|&v| {
                if norm == 0.0 {
                    return 0i16;
                }
                let scaled = v.abs() / norm * s;
                let lower = scaled.floor();
                let p = f64::from(scaled - lower);
                let level = lower as i16 + i16::from(rng.chance(p));
                if v < 0.0 {
                    -level
                } else {
                    level
                }
            })
            .collect();
        QuantizedRow {
            norm,
            levels_signed,
            levels: self.levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_row_stays_zero() {
        let mut rng = DetRng::new(1);
        let q = QsgdCodec::new(4).compress(&[0.0; 8], &mut rng);
        assert!(q.decompress().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn max_magnitude_is_exact() {
        let mut rng = DetRng::new(2);
        let q = QsgdCodec::new(4).compress(&[-3.0, 1.0, 3.0], &mut rng);
        let d = q.decompress();
        assert_eq!(d[0], -3.0);
        assert_eq!(d[2], 3.0);
    }

    #[test]
    fn quantization_is_unbiased() {
        // Average many independent quantizations of the same row.
        let row = [0.3f32, -0.7, 0.55, 1.0, -0.11];
        let codec = QsgdCodec::new(2);
        let mut rng = DetRng::new(3);
        let n = 4000;
        let mut acc = vec![0.0f64; row.len()];
        for _ in 0..n {
            for (a, v) in acc
                .iter_mut()
                .zip(codec.compress(&row, &mut rng).decompress())
            {
                *a += f64::from(v);
            }
        }
        for (a, &v) in acc.iter().zip(&row) {
            let mean = a / f64::from(n);
            assert!((mean - f64::from(v)).abs() < 0.03, "biased: {mean} vs {v}");
        }
    }

    #[test]
    fn error_is_bounded_by_one_level() {
        let row: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut rng = DetRng::new(4);
        let codec = QsgdCodec::new(8);
        let d = codec.compress(&row, &mut rng).decompress();
        let norm = row.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        for (q, v) in d.iter().zip(&row) {
            assert!((q - v).abs() <= norm / 8.0 + 1e-6, "{q} vs {v}");
        }
    }

    #[test]
    fn wire_size_shrinks_with_fewer_levels() {
        let row = vec![1.0f32; 256];
        let mut rng = DetRng::new(5);
        let small = QsgdCodec::new(1).compress(&row, &mut rng).payload_bytes();
        let large = QsgdCodec::new(127).compress(&row, &mut rng).payload_bytes();
        assert!(small < large, "{small} vs {large}");
        // Ternary: 2 bits per value + 4-byte scale.
        assert_eq!(small, 4 + 64);
    }

    #[test]
    fn compression_is_deterministic_per_seed() {
        let row = [0.5f32, -0.25, 0.8];
        let a = QsgdCodec::new(4).compress(&row, &mut DetRng::new(9));
        let b = QsgdCodec::new(4).compress(&row, &mut DetRng::new(9));
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_reconstruction_within_range(
            row in proptest::collection::vec(-100.0f32..100.0, 0..64),
            levels in 1u16..32,
            seed in 0u64..1000,
        ) {
            let mut rng = DetRng::new(seed);
            let q = QsgdCodec::new(levels).compress(&row, &mut rng);
            let d = q.decompress();
            prop_assert_eq!(d.len(), row.len());
            let norm = row.iter().fold(0.0f32, |a, v| a.max(v.abs()));
            for (qv, v) in d.iter().zip(&row) {
                prop_assert!(qv.abs() <= norm + 1e-4);
                if *qv != 0.0 && *v != 0.0 {
                    // Sign is preserved for nonzero reconstructions.
                    prop_assert!(qv.signum() * v.signum() > 0.0);
                }
            }
        }
    }
}
