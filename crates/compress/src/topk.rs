//! Top-k magnitude sparsification (the lossy comparator from related work).
//!
//! The paper cites deep gradient compression (Lin et al.) as achieving up
//! to 0.1 % compression rate but without a convergence guarantee
//! (Sec. II-D); it is implemented here for the granularity/compression
//! ablation benches, not used by ROG proper.

/// A sparsified row: the `k` largest-magnitude entries with their indices.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseRow {
    /// Indices of retained values, ascending.
    pub indices: Vec<u32>,
    /// Retained values, aligned with `indices`.
    pub values: Vec<f32>,
    /// Original row width.
    pub cols: usize,
}

impl SparseRow {
    /// Dense reconstruction with zeros elsewhere.
    pub fn decompress(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }

    /// Wire size: 4-byte index + 4-byte value per retained entry.
    pub fn payload_bytes(&self) -> u64 {
        8 * self.indices.len() as u64
    }
}

/// Top-k sparsifying codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKCodec {
    /// Fraction of entries to keep, in `(0, 1]`.
    pub keep_fraction: f64,
}

impl TopKCodec {
    /// Creates a codec keeping `keep_fraction` of each row.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < keep_fraction <= 1`.
    pub fn new(keep_fraction: f64) -> Self {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep_fraction must be in (0, 1]"
        );
        Self { keep_fraction }
    }

    /// Sparsifies one row, keeping at least one entry for non-empty rows.
    pub fn compress(&self, row: &[f32]) -> SparseRow {
        let cols = row.len();
        if cols == 0 {
            return SparseRow {
                indices: vec![],
                values: vec![],
                cols,
            };
        }
        let k = ((cols as f64 * self.keep_fraction).ceil() as usize).clamp(1, cols);
        let mut order: Vec<usize> = (0..cols).collect();
        order.sort_by(|&a, &b| {
            row[b]
                .abs()
                .partial_cmp(&row[a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut keep: Vec<usize> = order.into_iter().take(k).collect();
        keep.sort_unstable();
        SparseRow {
            indices: keep.iter().map(|&i| i as u32).collect(),
            values: keep.iter().map(|&i| row[i]).collect(),
            cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_largest_magnitudes() {
        let codec = TopKCodec::new(0.5);
        let s = codec.compress(&[0.1, -5.0, 0.2, 3.0]);
        assert_eq!(s.indices, vec![1, 3]);
        assert_eq!(s.values, vec![-5.0, 3.0]);
    }

    #[test]
    fn decompress_zero_fills() {
        let codec = TopKCodec::new(0.25);
        let s = codec.compress(&[1.0, 9.0, 2.0, 3.0]);
        assert_eq!(s.decompress(), vec![0.0, 9.0, 0.0, 0.0]);
    }

    #[test]
    fn keep_all_is_identity() {
        let codec = TopKCodec::new(1.0);
        let row = [3.0, -1.0, 2.0];
        assert_eq!(codec.compress(&row).decompress(), row.to_vec());
    }

    #[test]
    fn empty_row_is_empty() {
        let s = TopKCodec::new(0.5).compress(&[]);
        assert!(s.decompress().is_empty());
        assert_eq!(s.payload_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "keep_fraction")]
    fn zero_fraction_panics() {
        let _ = TopKCodec::new(0.0);
    }

    proptest! {
        #[test]
        fn prop_retained_dominate_dropped(
            row in proptest::collection::vec(-10.0f32..10.0, 1..64),
            frac in 0.05f64..1.0,
        ) {
            let s = TopKCodec::new(frac).compress(&row);
            prop_assert!(!s.indices.is_empty());
            let min_kept = s.values.iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
            let kept: std::collections::HashSet<u32> = s.indices.iter().copied().collect();
            for (i, v) in row.iter().enumerate() {
                if !kept.contains(&(i as u32)) {
                    prop_assert!(v.abs() <= min_kept + 1e-6);
                }
            }
        }
    }
}
