//! One-bit sign compression with per-row error feedback.

/// A one-bit-compressed row: one sign bit per value plus two scales.
///
/// Values flagged positive decompress to `scale_pos`, the rest to
/// `-scale_neg`; the scales are the mean magnitudes of each sign class,
/// which minimizes the L2 reconstruction error among one-bit codes with
/// two levels.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedRow {
    /// Reconstruction level of positive values (≥ 0).
    pub scale_pos: f32,
    /// Reconstruction magnitude of negative values (≥ 0).
    pub scale_neg: f32,
    /// Packed sign bits, LSB-first within each byte.
    pub bits: Vec<u8>,
    /// Number of values in the row.
    pub cols: usize,
}

impl CompressedRow {
    /// Compresses a row without error feedback (pure function).
    ///
    /// Signs are packed a 64-value word at a time: each block of 64
    /// values builds one `u64` in a register, which is then spilled as 8
    /// little-endian bytes — bit `i` of the word lands in byte `i / 8`,
    /// bit `i % 8`, exactly the LSB-first layout the per-bit encoder
    /// produced, so the wire format is unchanged.
    pub fn encode(row: &[f32]) -> Self {
        let cols = row.len();
        let mut bits = vec![0u8; cols.div_ceil(8)];
        let (mut pos_sum, mut pos_n, mut neg_sum, mut neg_n) = (0.0f64, 0u32, 0.0f64, 0u32);
        let mut pack = |chunk: &[f32]| -> u64 {
            let mut word = 0u64;
            for (b, &v) in chunk.iter().enumerate() {
                if v >= 0.0 {
                    word |= 1 << b;
                    pos_sum += f64::from(v);
                    pos_n += 1;
                } else {
                    neg_sum += f64::from(-v);
                    neg_n += 1;
                }
            }
            word
        };
        let mut chunks = row.chunks_exact(64);
        let mut byte = 0usize;
        for chunk in &mut chunks {
            let word = pack(chunk);
            bits[byte..byte + 8].copy_from_slice(&word.to_le_bytes());
            byte += 8;
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let word = pack(tail);
            let nb = tail.len().div_ceil(8);
            bits[byte..byte + nb].copy_from_slice(&word.to_le_bytes()[..nb]);
        }
        let scale_pos = if pos_n > 0 {
            (pos_sum / pos_n as f64) as f32
        } else {
            0.0
        };
        let scale_neg = if neg_n > 0 {
            (neg_sum / neg_n as f64) as f32
        } else {
            0.0
        };
        Self {
            scale_pos,
            scale_neg,
            bits,
            cols,
        }
    }

    /// Reconstructs the row values (word-at-a-time unpack).
    pub fn decompress(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.cols);
        let mut remaining = self.cols;
        let unpack = |word: u64, take: usize, out: &mut Vec<f32>| {
            for b in 0..take {
                out.push(if word >> b & 1 == 1 {
                    self.scale_pos
                } else {
                    -self.scale_neg
                });
            }
        };
        let mut chunks = self.bits.chunks_exact(8);
        for ch in &mut chunks {
            let word = u64::from_le_bytes(ch.try_into().expect("8-byte chunk"));
            let take = remaining.min(64);
            unpack(word, take, &mut out);
            remaining -= take;
        }
        let rem = chunks.remainder();
        if remaining > 0 {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            unpack(u64::from_le_bytes(buf), remaining, &mut out);
        }
        out
    }

    /// Bytes this row occupies on the wire (scales + packed bits).
    pub fn payload_bytes(&self) -> u64 {
        8 + self.cols.div_ceil(8) as u64
    }
}

/// Per-row error-feedback state for a whole model.
///
/// Each row keeps the quantization residual of its last transmission; the
/// residual is added to the next gradient before compressing, so no
/// information is ever dropped — it is only delayed. This is the error
/// compensation that lets the paper call one-bit compression "lossless".
#[derive(Debug, Clone)]
pub struct ErrorFeedback {
    residuals: Vec<Vec<f32>>,
}

impl ErrorFeedback {
    /// Creates zeroed state for rows of the given widths.
    pub fn new(row_widths: &[usize]) -> Self {
        Self {
            residuals: row_widths.iter().map(|&w| vec![0.0; w]).collect(),
        }
    }

    /// Number of rows tracked.
    pub fn rows(&self) -> usize {
        self.residuals.len()
    }

    /// Current residual of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn residual(&self, row: usize) -> &[f32] {
        &self.residuals[row]
    }

    /// Zeroes every stored residual. Used when a worker cold-resyncs
    /// after a fault: the compensation was accumulated against a model
    /// lineage that no longer exists, so carrying it into the adopted
    /// model would inject stale error instead of correcting it.
    pub fn reset(&mut self) {
        for r in &mut self.residuals {
            r.fill(0.0);
        }
    }

    /// Compresses `gradient` for row `row`, folding in the stored residual
    /// and retaining the new quantization error.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `gradient` has the wrong width.
    pub fn compress(&mut self, row: usize, gradient: &[f32]) -> CompressedRow {
        let residual = &mut self.residuals[row];
        assert_eq!(
            residual.len(),
            gradient.len(),
            "gradient width mismatch for row {row}"
        );
        let adjusted: Vec<f32> = gradient
            .iter()
            .zip(residual.iter())
            .map(|(g, r)| g + r)
            .collect();
        let code = CompressedRow::encode(&adjusted);
        let restored = code.decompress();
        for ((r, a), d) in residual.iter_mut().zip(&adjusted).zip(&restored) {
            *r = a - d;
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rog_tensor::rng::DetRng;

    /// The original bit-at-a-time encoder, kept as the reference the
    /// u64 word-packed implementation must match exactly.
    fn encode_per_bit(row: &[f32]) -> CompressedRow {
        let cols = row.len();
        let mut bits = vec![0u8; cols.div_ceil(8)];
        let (mut pos_sum, mut pos_n, mut neg_sum, mut neg_n) = (0.0f64, 0u32, 0.0f64, 0u32);
        for (i, &v) in row.iter().enumerate() {
            if v >= 0.0 {
                bits[i / 8] |= 1 << (i % 8);
                pos_sum += f64::from(v);
                pos_n += 1;
            } else {
                neg_sum += f64::from(-v);
                neg_n += 1;
            }
        }
        CompressedRow {
            scale_pos: if pos_n > 0 {
                (pos_sum / f64::from(pos_n)) as f32
            } else {
                0.0
            },
            scale_neg: if neg_n > 0 {
                (neg_sum / f64::from(neg_n)) as f32
            } else {
                0.0
            },
            bits,
            cols,
        }
    }

    /// The original bit-at-a-time decoder (reference).
    fn decompress_per_bit(c: &CompressedRow) -> Vec<f32> {
        (0..c.cols)
            .map(|i| {
                if c.bits[i / 8] >> (i % 8) & 1 == 1 {
                    c.scale_pos
                } else {
                    -c.scale_neg
                }
            })
            .collect()
    }

    #[test]
    fn word_packed_codec_matches_reference_across_boundaries() {
        // Lengths straddling the byte and word boundaries.
        let mut rng = DetRng::new(17);
        for cols in [0usize, 1, 7, 8, 9, 63, 64, 65, 127, 128, 129, 200] {
            let row: Vec<f32> = (0..cols).map(|_| rng.normal() as f32).collect();
            let fast = CompressedRow::encode(&row);
            let reference = encode_per_bit(&row);
            assert_eq!(fast, reference, "encode diverges at cols={cols}");
            assert_eq!(
                fast.decompress(),
                decompress_per_bit(&reference),
                "decode diverges at cols={cols}"
            );
        }
    }

    #[test]
    fn encode_decode_preserves_signs() {
        let row = [1.0, -2.0, 3.0, -4.0];
        let d = CompressedRow::encode(&row).decompress();
        for (orig, dec) in row.iter().zip(&d) {
            assert_eq!(orig.signum(), dec.signum());
        }
    }

    #[test]
    fn scales_are_mean_magnitudes() {
        let c = CompressedRow::encode(&[1.0, 3.0, -2.0, -6.0]);
        assert!((c.scale_pos - 2.0).abs() < 1e-6);
        assert!((c.scale_neg - 4.0).abs() < 1e-6);
    }

    #[test]
    fn all_positive_row_has_zero_neg_scale() {
        let c = CompressedRow::encode(&[1.0, 2.0]);
        assert_eq!(c.scale_neg, 0.0);
        assert_eq!(c.decompress(), vec![1.5, 1.5]);
    }

    #[test]
    fn empty_row_round_trips() {
        let c = CompressedRow::encode(&[]);
        assert!(c.decompress().is_empty());
        assert_eq!(c.payload_bytes(), 8);
    }

    #[test]
    fn error_feedback_conserves_information() {
        // decompressed + new_residual == gradient + old_residual, exactly
        // the invariant that makes the scheme lossless over time.
        let mut ef = ErrorFeedback::new(&[4]);
        let mut rng = DetRng::new(3);
        for _ in 0..50 {
            let g: Vec<f32> = (0..4).map(|_| rng.normal() as f32).collect();
            let old_res: Vec<f32> = ef.residual(0).to_vec();
            let restored = ef.compress(0, &g).decompress();
            for i in 0..4 {
                let lhs = restored[i] + ef.residual(0)[i];
                let rhs = g[i] + old_res[i];
                assert!((lhs - rhs).abs() < 1e-5, "lossy at {i}: {lhs} vs {rhs}");
            }
        }
    }

    #[test]
    fn residual_stays_bounded_for_stationary_gradients() {
        // Error feedback must not accumulate unboundedly when gradients
        // are bounded.
        let mut ef = ErrorFeedback::new(&[8]);
        let mut rng = DetRng::new(9);
        let mut max_res = 0.0f32;
        for _ in 0..500 {
            let g: Vec<f32> = (0..8).map(|_| rng.normal() as f32).collect();
            ef.compress(0, &g);
            let m = ef.residual(0).iter().fold(0.0f32, |a, &b| a.max(b.abs()));
            max_res = max_res.max(m);
        }
        assert!(max_res < 20.0, "residual exploded: {max_res}");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut ef = ErrorFeedback::new(&[4]);
        ef.compress(0, &[1.0]);
    }

    #[test]
    fn reset_zeroes_all_residuals() {
        let mut ef = ErrorFeedback::new(&[4, 2]);
        ef.compress(0, &[0.3, -0.7, 0.1, 0.9]);
        ef.compress(1, &[1.5, -0.2]);
        assert!(ef.residual(0).iter().any(|&r| r != 0.0));
        ef.reset();
        for row in 0..ef.rows() {
            assert!(ef.residual(row).iter().all(|&r| r == 0.0));
        }
        // Post-reset compression behaves like a fresh instance.
        let fresh = ErrorFeedback::new(&[4, 2]).compress(0, &[0.3, -0.7, 0.1, 0.9]);
        assert_eq!(ef.compress(0, &[0.3, -0.7, 0.1, 0.9]), fresh);
    }

    proptest! {
        #[test]
        fn prop_one_round_information_conservation(
            g in proptest::collection::vec(-100.0f32..100.0, 0..64),
            r in proptest::collection::vec(-10.0f32..10.0, 0..64),
        ) {
            let n = g.len().min(r.len());
            let g = &g[..n];
            let mut ef = ErrorFeedback::new(&[n]);
            // Seed the residual by one warm-up round.
            ef.compress(0, &r[..n]);
            let old_res: Vec<f32> = ef.residual(0).to_vec();
            let restored = ef.compress(0, g).decompress();
            for i in 0..n {
                let lhs = restored[i] + ef.residual(0)[i];
                let rhs = g[i] + old_res[i];
                prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + rhs.abs()));
            }
        }

        #[test]
        fn prop_bits_length_matches_cols(cols in 0usize..200) {
            let row = vec![1.0f32; cols];
            let c = CompressedRow::encode(&row);
            prop_assert_eq!(c.bits.len(), cols.div_ceil(8));
            prop_assert_eq!(c.decompress().len(), cols);
        }

        #[test]
        fn prop_word_packed_round_trips_like_reference(
            row in proptest::collection::vec(-50.0f32..50.0, 0..200),
        ) {
            let fast = CompressedRow::encode(&row);
            let reference = encode_per_bit(&row);
            prop_assert_eq!(&fast, &reference);
            prop_assert_eq!(fast.decompress(), decompress_per_bit(&reference));
        }
    }
}
