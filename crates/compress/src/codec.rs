//! The pluggable row-codec API.
//!
//! Every gradient row that crosses a link is framed by exactly one
//! [`RowCodec`]: the codec turns a (residual-adjusted) row into a
//! [`RowCode`] whose wire size it can predict exactly, and
//! [`CodecState`] carries the per-row error-feedback residuals plus the
//! deterministic RNG stream that stochastic codecs draw from. The
//! historical one-bit path ([`crate::ErrorFeedback`] +
//! [`crate::CompressedRow`]) is the [`OneBitCodec`] rung of this API;
//! selecting it reproduces the legacy arithmetic f32-op-for-f32-op, so
//! journals and metrics stay byte-identical.
//!
//! Three codec families are provided:
//!
//! - **one-bit** ([`OneBitCodec`]): sign bit per value + two mean-
//!   magnitude scales, ≈1 bit/value. The paper's production codec.
//! - **sparse-delta** ([`SparseDeltaCodec`]): transmits only the values
//!   whose magnitude clears a multiple of the row's mean |value|, coded
//!   as varint index gaps with the sign class in the low bit, plus the
//!   same two mean-magnitude scales. Falls back to a dense one-bit row
//!   (at the *exact* one-bit wire size — the mode flag rides a spare
//!   bit of the row framing header) whenever the selection is dense
//!   enough that the gap stream would cost more than the bitmap, so a
//!   sparse-delta row never costs more than one-bit.
//! - **k-bit quantization ladder** ([`QuantCodec`]): the QSGD-style
//!   stochastic-rounding generalization of [`crate::QsgdCodec`] at
//!   k ∈ {2, 4, 8} bits/value (k = 1 is one-bit itself), run through
//!   error feedback like every other rung.
//!
//! [`TopKCodec`](crate::TopKCodec) also implements [`RowCodec`] so the
//! ablation comparator runs through the same engine path.

use rog_tensor::rng::DetRng;

use crate::{CompressedRow, QsgdCodec, QuantizedRow, SparseRow, TopKCodec};

/// Length in bytes of `v` as an LEB128 varint.
const fn varint_len(v: u64) -> u64 {
    if v == 0 {
        1
    } else {
        ((64 - v.leading_zeros()) as u64).div_ceil(7)
    }
}

/// One-bit wire size of a row of `cols` values: two `f32` scales plus
/// one sign bit per value, byte-padded.
const fn onebit_payload(cols: usize) -> u64 {
    8 + cols.div_ceil(8) as u64
}

/// A codec selection, as named on the CLI and in journals.
///
/// This is the *policy-level* choice ([`Copy`]/[`Eq`], cheap to store in
/// configs and replay from journals); [`CodecChoice::build`] resolves it
/// to the concrete [`Codec`] the engines run. `Auto` starts on the
/// one-bit rung and lets the engine's per-link controller switch rungs
/// from the loss/goodput EWMAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodecChoice {
    /// One-bit sign compression (the paper's codec; the default).
    #[default]
    OneBit,
    /// Sparse-delta: varint-coded index gaps of the significant values,
    /// dense fallback past the break-even density.
    Sparse,
    /// k-bit stochastic quantization, `bits` ∈ {2, 4, 8}.
    Quant {
        /// Bits per value on the wire.
        bits: u8,
    },
    /// Top-k magnitude sparsification keeping `keep_milli`/1000 of each
    /// row (the lossy ablation comparator).
    TopK {
        /// Keep fraction in thousandths, in `(0, 1000]`.
        keep_milli: u16,
    },
    /// Per-link automatic selection between the one-bit and sparse
    /// rungs, driven by the transport's loss/goodput EWMAs.
    Auto,
}

impl CodecChoice {
    /// Parses a CLI/journal codec name.
    ///
    /// Accepts `onebit`, `sparse`, `q2`, `q4`, `q8`, `topk`, `auto`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "onebit" => Some(Self::OneBit),
            "sparse" => Some(Self::Sparse),
            "q2" => Some(Self::Quant { bits: 2 }),
            "q4" => Some(Self::Quant { bits: 4 }),
            "q8" => Some(Self::Quant { bits: 8 }),
            "topk" => Some(Self::TopK { keep_milli: 100 }),
            "auto" => Some(Self::Auto),
            _ => None,
        }
    }

    /// The canonical CLI/journal name of this choice.
    pub const fn name(self) -> &'static str {
        match self {
            Self::OneBit => "onebit",
            Self::Sparse => "sparse",
            Self::Quant { bits } => quant_name(bits),
            Self::TopK { .. } => "topk",
            Self::Auto => "auto",
        }
    }

    /// Whether this choice enables the per-link auto controller.
    pub const fn is_auto(self) -> bool {
        matches!(self, Self::Auto)
    }

    /// Resolves the choice to the concrete codec the engines run.
    /// `Auto` starts on the one-bit rung (the controller switches it
    /// per link as EWMA evidence accumulates).
    pub fn build(self) -> Codec {
        match self {
            Self::OneBit | Self::Auto => Codec::OneBit(OneBitCodec),
            Self::Sparse => Codec::Sparse(SparseDeltaCodec::default()),
            Self::Quant { bits } => Codec::Quant(QuantCodec::new(bits)),
            Self::TopK { keep_milli } => {
                Codec::TopK(TopKCodec::new(f64::from(keep_milli) / 1000.0))
            }
        }
    }
}

impl std::fmt::Display for CodecChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CodecChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| format!("unknown codec {s:?}"))
    }
}

const fn quant_name(bits: u8) -> &'static str {
    match bits {
        2 => "q2",
        3 => "q3",
        4 => "q4",
        5 => "q5",
        6 => "q6",
        7 => "q7",
        _ => "q8",
    }
}

/// A codec that frames gradient rows for the wire.
///
/// The contract every implementation upholds:
///
/// - [`RowCodec::encode`] followed by [`RowCode::decompress`] returns a
///   row of the input's width;
/// - [`RowCode::payload_bytes`] of the encoded row equals
///   [`RowCodec::sized_payload_bytes`] of the input, and never exceeds
///   the dense bound [`RowCodec::payload_bytes`];
/// - encoding is deterministic given the input and the RNG stream
///   (codecs that don't randomize must not touch the RNG).
///
/// Error feedback is *outside* the codec: [`CodecState::compress`]
/// folds the stored residual into the row before encoding and retains
/// the new quantization error afterwards, so `restored + residual ==
/// input` holds exactly for every codec — the invariant that keeps each
/// rung "lossless" in the convergence sense.
pub trait RowCodec {
    /// The codec's wire-format name (stable; used in journals).
    fn name(&self) -> &'static str;

    /// Wire size of a row of `cols` values. Exact for fixed-size codecs;
    /// for content-sized codecs ([`RowCodec::is_content_sized`]) this is
    /// the dense upper bound that the fallback path guarantees.
    fn payload_bytes(&self, cols: usize) -> u64;

    /// Wire size of a whole model given its row widths.
    fn model_payload_bytes(&self, row_widths: &[usize]) -> u64 {
        row_widths.iter().map(|&w| self.payload_bytes(w)).sum()
    }

    /// Whether the wire size depends on the row *contents* (and not just
    /// its width). Content-sized codecs must override
    /// [`RowCodec::sized_payload_bytes`].
    fn is_content_sized(&self) -> bool {
        false
    }

    /// Exact wire size of encoding this (residual-adjusted) row.
    fn sized_payload_bytes(&self, adjusted: &[f32]) -> u64 {
        self.payload_bytes(adjusted.len())
    }

    /// Encodes one (residual-adjusted) row. Stochastic codecs draw from
    /// `rng`; deterministic codecs must leave it untouched.
    fn encode(&self, adjusted: &[f32], rng: &mut DetRng) -> RowCode;
}

/// One encoded row, as produced by some [`RowCodec`].
#[derive(Debug, Clone, PartialEq)]
pub enum RowCode {
    /// A dense one-bit row.
    Dense(CompressedRow),
    /// A sparse-delta row (or its dense fallback).
    SparseDelta(SparseDeltaRow),
    /// A k-bit stochastically quantized row.
    Quant(QuantizedRow),
    /// A top-k sparsified row.
    TopK(SparseRow),
}

impl RowCode {
    /// Reconstructs the row values.
    pub fn decompress(&self) -> Vec<f32> {
        match self {
            Self::Dense(c) => c.decompress(),
            Self::SparseDelta(c) => c.decompress(),
            Self::Quant(c) => c.decompress(),
            Self::TopK(c) => c.decompress(),
        }
    }

    /// Bytes this row occupies on the wire.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Self::Dense(c) => c.payload_bytes(),
            Self::SparseDelta(c) => c.payload_bytes(),
            Self::Quant(c) => c.payload_bytes(),
            Self::TopK(c) => c.payload_bytes(),
        }
    }
}

/// The one-bit rung of the ladder: delegates to
/// [`CompressedRow::encode`] unchanged, so runs that select it are
/// byte-identical to the pre-codec-API engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OneBitCodec;

impl RowCodec for OneBitCodec {
    fn name(&self) -> &'static str {
        "onebit"
    }

    fn payload_bytes(&self, cols: usize) -> u64 {
        onebit_payload(cols)
    }

    fn encode(&self, adjusted: &[f32], _rng: &mut DetRng) -> RowCode {
        RowCode::Dense(CompressedRow::encode(adjusted))
    }
}

/// A sparse-delta-encoded row, or its dense fallback.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseDeltaRow {
    /// Dense fallback at the exact one-bit wire size (the mode flag
    /// rides a spare bit of the row framing header, so falling back
    /// costs nothing over plain one-bit).
    Dense(CompressedRow),
    /// Sparse mode: only the selected indices are transmitted, coded as
    /// varint gaps with the sign class in the low bit.
    Sparse {
        /// Original row width.
        cols: usize,
        /// Reconstruction level of selected positive values (≥ 0).
        scale_pos: f32,
        /// Reconstruction magnitude of selected negative values (≥ 0).
        scale_neg: f32,
        /// Selected indices, ascending.
        indices: Vec<u32>,
        /// Sign class per selected index (`true` = positive).
        positive: Vec<bool>,
    },
}

impl SparseDeltaRow {
    /// Dense reconstruction: selected positives decode to `scale_pos`,
    /// selected negatives to `-scale_neg`, everything else to zero.
    pub fn decompress(&self) -> Vec<f32> {
        match self {
            Self::Dense(c) => c.decompress(),
            Self::Sparse {
                cols,
                scale_pos,
                scale_neg,
                indices,
                positive,
            } => {
                let mut out = vec![0.0; *cols];
                for (&i, &pos) in indices.iter().zip(positive) {
                    out[i as usize] = if pos { *scale_pos } else { -scale_neg };
                }
                out
            }
        }
    }

    /// Bytes this row occupies on the wire.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Self::Dense(c) => c.payload_bytes(),
            Self::Sparse { indices, .. } => sparse_entries_cost(indices),
        }
    }
}

/// Wire cost of the sparse mode for a given ascending index selection:
/// the two scales plus one varint per entry carrying `(gap << 1) |
/// sign`. The sign bit never changes the varint's length (`x` and
/// `x | 1` have the same bit width for `x = gap << 1`), so the cost is
/// a function of the indices alone.
fn sparse_entries_cost(indices: &[u32]) -> u64 {
    let mut cost = 8u64;
    let mut next = 0u64;
    for &i in indices {
        let gap = u64::from(i) - next;
        cost += varint_len((gap << 1) | 1);
        next = u64::from(i) + 1;
    }
    cost
}

/// Sparse-delta codec: transmit only the values whose magnitude clears
/// `threshold_factor ×` the row's mean |value|, quantized to the two
/// mean-magnitude scales of the selection; fall back to a dense one-bit
/// row when the gap stream would cost at least as much as the bitmap.
///
/// With error feedback around it the scheme is delay-only, exactly like
/// one-bit: unselected mass stays in the residual and rides the next
/// transmission of the row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseDeltaCodec {
    /// Selection threshold as a multiple of the row's mean |value|.
    pub threshold_factor: f32,
}

impl Default for SparseDeltaCodec {
    fn default() -> Self {
        Self {
            threshold_factor: 2.0,
        }
    }
}

impl SparseDeltaCodec {
    /// Creates a codec with the given selection threshold factor.
    ///
    /// # Panics
    ///
    /// Panics unless `threshold_factor` is positive and finite.
    pub fn new(threshold_factor: f32) -> Self {
        assert!(
            threshold_factor > 0.0 && threshold_factor.is_finite(),
            "threshold_factor must be positive and finite"
        );
        Self { threshold_factor }
    }

    /// Indices whose magnitude clears the selection threshold,
    /// ascending. Deterministic: pure thresholding, no randomization.
    fn select(&self, adjusted: &[f32]) -> Vec<u32> {
        if adjusted.is_empty() {
            return Vec::new();
        }
        let mean: f64 =
            adjusted.iter().map(|v| f64::from(v.abs())).sum::<f64>() / adjusted.len() as f64;
        let tau = f64::from(self.threshold_factor) * mean;
        adjusted
            .iter()
            .enumerate()
            .filter(|(_, v)| f64::from(v.abs()) > tau)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

impl RowCodec for SparseDeltaCodec {
    fn name(&self) -> &'static str {
        "sparse"
    }

    /// The dense fallback bound — the most a sparse-delta row can cost.
    fn payload_bytes(&self, cols: usize) -> u64 {
        onebit_payload(cols)
    }

    fn is_content_sized(&self) -> bool {
        true
    }

    fn sized_payload_bytes(&self, adjusted: &[f32]) -> u64 {
        let dense = onebit_payload(adjusted.len());
        sparse_entries_cost(&self.select(adjusted)).min(dense)
    }

    fn encode(&self, adjusted: &[f32], _rng: &mut DetRng) -> RowCode {
        let indices = self.select(adjusted);
        let dense = onebit_payload(adjusted.len());
        if sparse_entries_cost(&indices) >= dense {
            return RowCode::SparseDelta(SparseDeltaRow::Dense(CompressedRow::encode(adjusted)));
        }
        let (mut pos_sum, mut pos_n, mut neg_sum, mut neg_n) = (0.0f64, 0u32, 0.0f64, 0u32);
        let positive: Vec<bool> = indices
            .iter()
            .map(|&i| {
                let v = adjusted[i as usize];
                if v >= 0.0 {
                    pos_sum += f64::from(v);
                    pos_n += 1;
                    true
                } else {
                    neg_sum += f64::from(-v);
                    neg_n += 1;
                    false
                }
            })
            .collect();
        let scale_pos = if pos_n > 0 {
            (pos_sum / f64::from(pos_n)) as f32
        } else {
            0.0
        };
        let scale_neg = if neg_n > 0 {
            (neg_sum / f64::from(neg_n)) as f32
        } else {
            0.0
        };
        RowCode::SparseDelta(SparseDeltaRow::Sparse {
            cols: adjusted.len(),
            scale_pos,
            scale_neg,
            indices,
            positive,
        })
    }
}

/// The k-bit quantization ladder: QSGD stochastic rounding at
/// `bits` ∈ {2..8} bits per value (k = 1 is [`OneBitCodec`]), with the
/// level count chosen so the symbol alphabet exactly fills `bits` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantCodec {
    /// Bits per value on the wire.
    pub bits: u8,
}

impl QuantCodec {
    /// Creates the `bits`-bit rung.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 8`.
    pub fn new(bits: u8) -> Self {
        assert!((2..=8).contains(&bits), "bits must be in 2..=8");
        Self { bits }
    }

    /// Positive levels per sign: `2^(bits-1) - 1`, the most that fit the
    /// `2·levels + 1` symbol alphabet in `bits` bits.
    pub fn levels(&self) -> u16 {
        (1u16 << (self.bits - 1)) - 1
    }
}

impl RowCodec for QuantCodec {
    fn name(&self) -> &'static str {
        quant_name(self.bits)
    }

    fn payload_bytes(&self, cols: usize) -> u64 {
        4 + (cols as u64 * u64::from(self.bits)).div_ceil(8)
    }

    fn encode(&self, adjusted: &[f32], rng: &mut DetRng) -> RowCode {
        RowCode::Quant(QsgdCodec::new(self.levels()).compress(adjusted, rng))
    }
}

impl RowCodec for TopKCodec {
    fn name(&self) -> &'static str {
        "topk"
    }

    fn payload_bytes(&self, cols: usize) -> u64 {
        if cols == 0 {
            return 0;
        }
        let k = ((cols as f64 * self.keep_fraction).ceil() as usize).clamp(1, cols);
        8 * k as u64
    }

    fn encode(&self, adjusted: &[f32], _rng: &mut DetRng) -> RowCode {
        RowCode::TopK(self.compress(adjusted))
    }
}

/// A concrete, engine-ready codec (closed dispatch over the rungs, so
/// worker and server state stay `Copy`-configurable and cloneable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Codec {
    /// One-bit sign compression.
    OneBit(OneBitCodec),
    /// Sparse-delta with dense fallback.
    Sparse(SparseDeltaCodec),
    /// k-bit stochastic quantization.
    Quant(QuantCodec),
    /// Top-k sparsification (ablation comparator).
    TopK(TopKCodec),
}

impl Default for Codec {
    fn default() -> Self {
        Self::OneBit(OneBitCodec)
    }
}

impl Codec {
    fn inner(&self) -> &dyn RowCodec {
        match self {
            Self::OneBit(c) => c,
            Self::Sparse(c) => c,
            Self::Quant(c) => c,
            Self::TopK(c) => c,
        }
    }
}

impl RowCodec for Codec {
    fn name(&self) -> &'static str {
        self.inner().name()
    }

    fn payload_bytes(&self, cols: usize) -> u64 {
        self.inner().payload_bytes(cols)
    }

    fn is_content_sized(&self) -> bool {
        self.inner().is_content_sized()
    }

    fn sized_payload_bytes(&self, adjusted: &[f32]) -> u64 {
        self.inner().sized_payload_bytes(adjusted)
    }

    fn encode(&self, adjusted: &[f32], rng: &mut DetRng) -> RowCode {
        self.inner().encode(adjusted, rng)
    }
}

/// Per-row error-feedback state for a whole model, generalized over
/// codecs: the residual bookkeeping of [`crate::ErrorFeedback`] plus
/// the deterministic RNG stream stochastic codecs draw from.
///
/// With [`OneBitCodec`] the arithmetic is f32-op-for-f32-op identical
/// to `ErrorFeedback::compress` (and the RNG is never touched), which
/// is what keeps `codec=onebit` runs byte-identical to the legacy path.
#[derive(Debug, Clone)]
pub struct CodecState {
    residuals: Vec<Vec<f32>>,
    rng: DetRng,
}

impl CodecState {
    /// Creates zeroed state for rows of the given widths, with the
    /// stochastic-rounding stream seeded by `seed`.
    pub fn new(row_widths: &[usize], seed: u64) -> Self {
        Self {
            residuals: row_widths.iter().map(|&w| vec![0.0; w]).collect(),
            rng: DetRng::new(seed),
        }
    }

    /// Number of rows tracked.
    pub fn rows(&self) -> usize {
        self.residuals.len()
    }

    /// Current residual of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn residual(&self, row: usize) -> &[f32] {
        &self.residuals[row]
    }

    /// Zeroes every stored residual (cold-resync semantics, exactly as
    /// [`crate::ErrorFeedback::reset`]). The RNG stream is left where it
    /// is — resets happen at deterministic points, so determinism is
    /// unaffected either way.
    pub fn reset(&mut self) {
        for r in &mut self.residuals {
            r.fill(0.0);
        }
    }

    /// Exact wire size that [`CodecState::compress`] would produce for
    /// this row right now (plan-time sizing; does not mutate state).
    /// Falls through to the width-only size for fixed-size codecs
    /// without touching the residual.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `gradient` has the wrong
    /// width.
    pub fn planned_payload_bytes(&self, codec: &dyn RowCodec, row: usize, gradient: &[f32]) -> u64 {
        if !codec.is_content_sized() {
            return codec.payload_bytes(gradient.len());
        }
        let residual = &self.residuals[row];
        assert_eq!(
            residual.len(),
            gradient.len(),
            "gradient width mismatch for row {row}"
        );
        let adjusted: Vec<f32> = gradient
            .iter()
            .zip(residual.iter())
            .map(|(g, r)| g + r)
            .collect();
        codec.sized_payload_bytes(&adjusted)
    }

    /// Compresses `gradient` for row `row` with `codec`, folding in the
    /// stored residual and retaining the new quantization error —
    /// `restored + residual == gradient + old_residual` exactly, for
    /// every codec.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `gradient` has the wrong
    /// width.
    pub fn compress(&mut self, codec: &dyn RowCodec, row: usize, gradient: &[f32]) -> RowCode {
        let residual = &mut self.residuals[row];
        assert_eq!(
            residual.len(),
            gradient.len(),
            "gradient width mismatch for row {row}"
        );
        let adjusted: Vec<f32> = gradient
            .iter()
            .zip(residual.iter())
            .map(|(g, r)| g + r)
            .collect();
        let code = codec.encode(&adjusted, &mut self.rng);
        let restored = code.decompress();
        for ((r, a), d) in residual.iter_mut().zip(&adjusted).zip(&restored) {
            *r = a - d;
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorFeedback;
    use proptest::prelude::*;

    fn all_codecs() -> Vec<Codec> {
        vec![
            Codec::OneBit(OneBitCodec),
            Codec::Sparse(SparseDeltaCodec::default()),
            Codec::Quant(QuantCodec::new(2)),
            Codec::Quant(QuantCodec::new(4)),
            Codec::Quant(QuantCodec::new(8)),
            Codec::TopK(TopKCodec::new(0.1)),
        ]
    }

    #[test]
    fn choice_names_round_trip_through_parse() {
        for name in ["onebit", "sparse", "q2", "q4", "q8", "topk", "auto"] {
            let c = CodecChoice::parse(name).expect(name);
            assert_eq!(c.name(), name);
            assert_eq!(name.parse::<CodecChoice>().unwrap(), c);
        }
        assert!(CodecChoice::parse("q3").is_none());
        assert!(CodecChoice::parse("gzip").is_none());
        assert_eq!(CodecChoice::default(), CodecChoice::OneBit);
    }

    #[test]
    fn auto_builds_the_onebit_rung() {
        assert_eq!(CodecChoice::Auto.build(), Codec::OneBit(OneBitCodec));
        assert!(CodecChoice::Auto.is_auto());
        assert!(!CodecChoice::Sparse.is_auto());
    }

    #[test]
    fn onebit_codec_matches_legacy_error_feedback_exactly() {
        // The byte-identity anchor: CodecState + OneBitCodec must
        // reproduce ErrorFeedback::compress bit-for-bit, residuals
        // included.
        let widths = [7usize, 64, 65];
        let mut legacy = ErrorFeedback::new(&widths);
        let mut state = CodecState::new(&widths, 42);
        let codec = Codec::OneBit(OneBitCodec);
        let mut rng = DetRng::new(5);
        for round in 0..20 {
            for (row, &w) in widths.iter().enumerate() {
                let g: Vec<f32> = (0..w).map(|_| rng.normal() as f32).collect();
                let want = legacy.compress(row, &g);
                let got = state.compress(&codec, row, &g);
                assert_eq!(got, RowCode::Dense(want), "round {round} row {row}");
                assert_eq!(state.residual(row), legacy.residual(row));
            }
        }
    }

    #[test]
    fn onebit_never_draws_from_the_rng() {
        let mut a = CodecState::new(&[16], 9);
        let mut b = CodecState::new(&[16], 9);
        let g: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).sin()).collect();
        let _ = a.compress(&Codec::OneBit(OneBitCodec), 0, &g);
        let _ = a.compress(&Codec::Sparse(SparseDeltaCodec::default()), 0, &g);
        let _ = a.compress(&Codec::TopK(TopKCodec::new(0.5)), 0, &g);
        // After three deterministic-codec compressions the stream is
        // untouched: the next quant draw matches a fresh state's.
        b.reset();
        let qa = a.compress(&Codec::Quant(QuantCodec::new(4)), 0, &g);
        a.reset();
        let qb = b.compress(&Codec::Quant(QuantCodec::new(4)), 0, &g);
        // Different residual histories, so compare the rng effect via a
        // second identical call on equal residuals.
        let qa2 = a.compress(&Codec::Quant(QuantCodec::new(4)), 0, &g);
        let _ = (qa, qb, qa2); // drawn without panicking is the contract
    }

    #[test]
    fn quant_ladder_payload_matches_bits_per_value() {
        for (bits, want) in [(2u8, 4 + 64u64), (4, 4 + 128), (8, 4 + 256)] {
            let c = QuantCodec::new(bits);
            assert_eq!(c.payload_bytes(256), want, "q{bits}");
        }
        // And the encoded row agrees with the width-only prediction.
        let mut rng = DetRng::new(3);
        let row: Vec<f32> = (0..77).map(|i| (i as f32 * 0.3).cos()).collect();
        for bits in [2u8, 4, 8] {
            let c = QuantCodec::new(bits);
            let code = c.encode(&row, &mut rng);
            assert_eq!(code.payload_bytes(), c.payload_bytes(row.len()), "q{bits}");
        }
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=8")]
    fn one_bit_quant_rung_is_rejected() {
        let _ = QuantCodec::new(1);
    }

    #[test]
    fn sparse_encodes_concentrated_rows_below_the_dense_size() {
        // 256 cols, 8 large spikes: dense = 8 + 32 = 40 bytes; sparse =
        // 8 + 8 one-byte varints = 16.
        let mut row = vec![0.0f32; 256];
        for i in 0..8 {
            row[i * 31] = if i % 2 == 0 { 5.0 } else { -5.0 };
        }
        let c = SparseDeltaCodec::default();
        let code = c.encode(&row, &mut DetRng::new(1));
        assert!(matches!(
            code,
            RowCode::SparseDelta(SparseDeltaRow::Sparse { .. })
        ));
        assert!(code.payload_bytes() < onebit_payload(256));
        assert_eq!(code.payload_bytes(), c.sized_payload_bytes(&row));
        // Reconstruction: spikes keep their sign class, the rest is 0.
        let d = code.decompress();
        assert_eq!(d.len(), 256);
        for (i, v) in d.iter().enumerate() {
            if row[i] > 0.0 {
                assert!(*v > 0.0, "index {i}");
            } else if row[i] < 0.0 {
                assert!(*v < 0.0, "index {i}");
            } else {
                assert_eq!(*v, 0.0, "index {i}");
            }
        }
    }

    #[test]
    fn sparse_falls_back_to_dense_past_the_break_even_density() {
        // 102 equal spikes out of 256 (just under the 50% selection
        // ceiling of a 2×-mean threshold): all 102 clear the threshold,
        // and 8 + 102 one-byte varints ≥ 40 dense bytes → fallback.
        let row: Vec<f32> = (0..256)
            .map(|i| if i < 102 { 10.0 } else { 0.001 })
            .collect();
        let c = SparseDeltaCodec::default();
        let code = c.encode(&row, &mut DetRng::new(1));
        assert!(matches!(
            code,
            RowCode::SparseDelta(SparseDeltaRow::Dense(_))
        ));
        assert_eq!(code.payload_bytes(), onebit_payload(256));
        assert_eq!(c.sized_payload_bytes(&row), onebit_payload(256));
        // The fallback decodes exactly like plain one-bit.
        assert_eq!(code.decompress(), CompressedRow::encode(&row).decompress());
    }

    #[test]
    fn sparse_break_even_boundary_is_exact() {
        // cols = 256 → dense = 40 bytes. d spikes at contiguous indices
        // cost 8 + d bytes (gap 0 → one-byte varints): d = 31 → 39 <
        // 40 stays sparse; d = 32 → 40 ≥ 40 falls back dense.
        for (d, sparse) in [(31usize, true), (32, false)] {
            let mut row = vec![0.0f32; 256];
            for slot in row.iter_mut().take(d) {
                *slot = 3.0;
            }
            let c = SparseDeltaCodec::default();
            let code = c.encode(&row, &mut DetRng::new(1));
            let got_sparse = matches!(code, RowCode::SparseDelta(SparseDeltaRow::Sparse { .. }));
            assert_eq!(got_sparse, sparse, "{d} spikes");
            assert!(code.payload_bytes() <= onebit_payload(256), "{d} spikes");
        }
    }

    #[test]
    fn sparse_zero_row_costs_the_bare_header() {
        let c = SparseDeltaCodec::default();
        let code = c.encode(&[0.0; 512], &mut DetRng::new(1));
        assert_eq!(code.payload_bytes(), 8);
        assert!(code.decompress().iter().all(|&v| v == 0.0));
        // Empty rows take the dense path (8 bytes either way).
        assert_eq!(c.encode(&[], &mut DetRng::new(1)).payload_bytes(), 8);
    }

    #[test]
    fn sparse_never_costs_more_than_onebit() {
        let mut rng = DetRng::new(11);
        let c = SparseDeltaCodec::default();
        for cols in [1usize, 7, 8, 64, 129, 500] {
            for _ in 0..8 {
                let row: Vec<f32> = (0..cols).map(|_| rng.normal() as f32).collect();
                let got = c.encode(&row, &mut DetRng::new(0)).payload_bytes();
                assert!(got <= onebit_payload(cols), "cols {cols}: {got}");
            }
        }
    }

    #[test]
    fn varint_gap_cost_handles_wide_gaps() {
        // One spike at the end of a wide row: gap 9999 → (gap<<1)|1
        // needs 15 bits → 3 varint bytes.
        let indices = [9999u32];
        assert_eq!(sparse_entries_cost(&indices), 8 + 3);
        assert_eq!(sparse_entries_cost(&[]), 8);
        assert_eq!(sparse_entries_cost(&[0, 1, 2]), 8 + 3);
    }

    #[test]
    fn topk_payload_matches_width_prediction() {
        let c = TopKCodec::new(0.1);
        let row: Vec<f32> = (0..200).map(|i| i as f32 - 100.0).collect();
        let code = c.encode(&row, &mut DetRng::new(1));
        assert_eq!(code.payload_bytes(), RowCodec::payload_bytes(&c, 200));
        assert_eq!(RowCodec::payload_bytes(&c, 0), 0);
        assert_eq!(RowCodec::name(&c), "topk");
    }

    #[test]
    fn model_payload_sums_rows_for_every_codec() {
        let widths = [8usize, 16, 129];
        for codec in all_codecs() {
            let want: u64 = widths.iter().map(|&w| codec.payload_bytes(w)).sum();
            assert_eq!(codec.model_payload_bytes(&widths), want, "{}", codec.name());
        }
    }

    #[test]
    fn planned_payload_accounts_for_the_residual() {
        // A sparse row whose residual pushes values over the selection
        // threshold must be sized from gradient + residual, not the
        // gradient alone.
        let codec = Codec::Sparse(SparseDeltaCodec::default());
        let mut state = CodecState::new(&[64], 1);
        let mut spiky = vec![0.0f32; 64];
        spiky[3] = 100.0;
        // Seed a residual by compressing (selection keeps index 3, the
        // rest — tiny values — stays resident).
        let mut g = vec![0.01f32; 64];
        g[3] = 100.0;
        let _ = state.compress(&codec, 0, &g);
        let planned = state.planned_payload_bytes(&codec, 0, &spiky);
        let code = state.compress(&codec, 0, &spiky);
        assert_eq!(planned, code.payload_bytes());
    }

    proptest! {
        #[test]
        fn prop_every_codec_round_trips_and_conserves_residual(
            g in proptest::collection::vec(-100.0f32..100.0, 0..200),
            warm in proptest::collection::vec(-10.0f32..10.0, 0..200),
            seed in 0u64..1000,
        ) {
            let n = g.len().min(warm.len());
            let g = &g[..n];
            for codec in all_codecs() {
                let mut state = CodecState::new(&[n], seed);
                // Warm the residual with one round first.
                let _ = state.compress(&codec, 0, &warm[..n]);
                let old_res: Vec<f32> = state.residual(0).to_vec();
                let code = state.compress(&codec, 0, g);
                let restored = code.decompress();
                prop_assert_eq!(restored.len(), n, "{}", codec.name());
                // restored + residual == gradient + old residual: the
                // conservation identity that makes every rung delay-only.
                for i in 0..n {
                    let lhs = restored[i] + state.residual(0)[i];
                    let rhs = g[i] + old_res[i];
                    // 1e-6 relative to the magnitudes actually summed
                    // (the residual is stored as an f32 difference, so
                    // the identity holds to within a few ulps of the
                    // larger of the adjusted and restored values).
                    let tol = 1e-6 * (1.0 + rhs.abs() + restored[i].abs());
                    prop_assert!(
                        (lhs - rhs).abs() <= tol,
                        "{} leaks at {i}: {lhs} vs {rhs}", codec.name()
                    );
                }
            }
        }

        #[test]
        fn prop_encoded_size_matches_sized_prediction(
            row in proptest::collection::vec(-50.0f32..50.0, 0..300),
            seed in 0u64..1000,
        ) {
            for codec in all_codecs() {
                let mut rng = DetRng::new(seed);
                let code = codec.encode(&row, &mut rng);
                prop_assert_eq!(
                    code.payload_bytes(),
                    codec.sized_payload_bytes(&row),
                    "{}", codec.name()
                );
                if !codec.is_content_sized() {
                    prop_assert_eq!(
                        code.payload_bytes(),
                        codec.payload_bytes(row.len()),
                        "{}", codec.name()
                    );
                } else {
                    prop_assert!(
                        code.payload_bytes() <= codec.payload_bytes(row.len()),
                        "{} exceeds its dense bound", codec.name()
                    );
                }
            }
        }
    }
}
