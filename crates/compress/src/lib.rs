//! Gradient compression for wireless distributed training.
//!
//! The paper (Sec. II-D, Sec. V) compresses all communicated gradients
//! with the one-bit algorithm of Sun et al. (LAQ / 1-bit SGD family):
//! each value is reduced to its sign plus two per-row scales, and the
//! quantization error is carried forward into the next round's gradient
//! (*error feedback*), which is what makes the scheme "lossless" in the
//! convergence sense. The resulting wire size is ≈1 bit per parameter —
//! the paper reports ≈3.2 % of the uncompressed volume, i.e. 2.1 MB for
//! the 65 MB ConvMLP model.
//!
//! Compression here is *per row*, because ROG transmits and error-
//! compensates rows independently: an untransmitted row keeps both its
//! accumulated gradient and its quantization residual on the sender.
//!
//! [`TopKCodec`] implements the magnitude-sparsification comparator the
//! paper cites as related work (deep gradient compression) for the
//! ablation benches.
//!
//! # Example
//!
//! ```
//! use rog_compress::ErrorFeedback;
//!
//! let mut ef = ErrorFeedback::new(&[3]);
//! let g = [0.5, -0.25, 0.75];
//! let c = ef.compress(0, &g);
//! let restored = c.decompress();
//! // One round is lossy ...
//! assert_ne!(restored.as_slice(), g.as_slice());
//! // ... but the error is fully retained as the row's residual:
//! for i in 0..3 {
//!     assert!((restored[i] + ef.residual(0)[i] - g[i]).abs() < 1e-6);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod onebit;
mod qsgd;
mod topk;

pub use codec::{
    Codec, CodecChoice, CodecState, OneBitCodec, QuantCodec, RowCode, RowCodec, SparseDeltaCodec,
    SparseDeltaRow,
};
pub use onebit::{CompressedRow, ErrorFeedback};
pub use qsgd::{QsgdCodec, QuantizedRow};
pub use topk::{SparseRow, TopKCodec};

/// Wire size in bytes of a one-bit-compressed row of `cols` values:
/// two `f32` scales plus one bit per value, byte-padded.
#[deprecated(note = "use `RowCodec::payload_bytes` on `OneBitCodec` (or the selected codec)")]
pub const fn compressed_row_payload_bytes(cols: usize) -> u64 {
    8 + cols.div_ceil(8) as u64
}

/// Wire size of a whole one-bit-compressed model given its row widths
/// (used by the model-granularity baselines, which also compress).
#[deprecated(note = "use `RowCodec::model_payload_bytes` on `OneBitCodec` (or the selected codec)")]
pub fn compressed_model_payload_bytes(row_widths: &[usize]) -> u64 {
    #[allow(deprecated)]
    row_widths
        .iter()
        .map(|&c| compressed_row_payload_bytes(c))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_size_is_about_one_bit_per_value() {
        // 1024 f32 values = 4096 raw bytes; compressed = 8 + 128 = 136.
        let c = OneBitCodec.payload_bytes(1024);
        assert_eq!(c, 136);
        let rate = c as f64 / 4096.0;
        assert!(rate < 0.04, "compression rate {rate}");
    }

    #[test]
    fn model_size_sums_rows() {
        assert_eq!(
            OneBitCodec.model_payload_bytes(&[8, 16]),
            OneBitCodec.payload_bytes(8) + OneBitCodec.payload_bytes(16)
        );
    }

    #[test]
    fn paper_scale_compression_rate() {
        // ConvMLP-like: 16.95M params in 33307 rows (~509 cols/row mean).
        // The paper reports 65 MB -> 2.1 MB (3.2%). One-bit plus scales on
        // rows of ~509 columns gives ~3.3%.
        let widths = vec![509usize; 33_307];
        let raw: u64 = widths.iter().map(|&c| 4 * c as u64).sum();
        let comp = OneBitCodec.model_payload_bytes(&widths);
        let rate = comp as f64 / raw as f64;
        assert!((0.028..0.045).contains(&rate), "rate {rate}");
    }

    /// Deprecated-shim coverage, exercised only on the CI deprecation
    /// lane (`RUSTFLAGS=--cfg rog_exercise_deprecated`): the free
    /// functions must keep returning exactly the one-bit codec's sizes.
    #[cfg(rog_exercise_deprecated)]
    mod shim_exercise {
        use super::*;

        #[test]
        #[allow(deprecated)]
        fn free_payload_fns_match_the_onebit_codec() {
            for cols in [0usize, 1, 7, 8, 63, 64, 1024] {
                assert_eq!(
                    compressed_row_payload_bytes(cols),
                    OneBitCodec.payload_bytes(cols)
                );
            }
            let widths = [3usize, 509, 64];
            assert_eq!(
                compressed_model_payload_bytes(&widths),
                OneBitCodec.model_payload_bytes(&widths)
            );
        }
    }
}
