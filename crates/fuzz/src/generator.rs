//! The seeded scenario generator.
//!
//! [`ScenarioGen`] samples complete experiment scenarios from a single
//! root `u64` seed, with one forked [`DetRng`] stream per scenario
//! index — the same stream discipline `rog-fault`'s churn generator
//! uses, so scenario `i` is a pure function of `(seed, i)` no matter
//! how many scenarios were drawn before it, and a failing draw can be
//! re-generated in isolation.

use rog_compress::CodecChoice;
use rog_fault::{FaultKind, FaultPlan, FaultWindow, LossWindow};
use rog_tensor::rng::DetRng;
use rog_trainer::{Environment, Strategy};

use crate::scenario::{LossSpec, Scenario};

/// Earliest virtual second at which any sampled fault or loss window
/// may open. The fault-free prefix guarantees every scenario completes
/// at least one iteration, which is what turns "the run made no
/// progress" into a checkable invariant instead of a sampling accident.
pub const FAULT_FREE_PREFIX_SECS: f64 = 10.0;

/// Scenario sampler: all draws funnel through per-index forks of one
/// root seed.
#[derive(Debug, Clone)]
pub struct ScenarioGen {
    seed: u64,
    max_duration: f64,
    widened: bool,
}

impl ScenarioGen {
    /// A generator rooted at `seed` with the default 45-second duration
    /// ceiling.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            max_duration: 45.0,
            widened: false,
        }
    }

    /// Widens the sync-model draw to the adaptive strategies (DSSP,
    /// ABS and the adaptive-bound ROG hybrid). Off by default: the
    /// legacy draw stays byte-identical so existing corpus seeds keep
    /// reproducing the same scenarios.
    pub fn widened(mut self, on: bool) -> Self {
        self.widened = on;
        self
    }

    /// Caps the sampled virtual duration (floored at
    /// 2 × [`FAULT_FREE_PREFIX_SECS`] so the fault-free prefix and a
    /// recovery tail always fit).
    pub fn max_duration(mut self, secs: f64) -> Self {
        self.max_duration = secs.max(2.0 * FAULT_FREE_PREFIX_SECS);
        self
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The effective duration ceiling (after the prefix floor).
    pub fn max_duration_secs(&self) -> f64 {
        self.max_duration
    }

    /// Samples scenario `index`. Deterministic: a pure function of
    /// `(seed, index, max_duration)`.
    pub fn scenario(&self, index: u64) -> Scenario {
        let base = DetRng::new(self.seed ^ 0xf0cc_5ced_0a11_d00d);
        let mut rng = base.fork(index);

        // --- sync model: ROG-weighted; threshold spread keeps the gate
        // binding (low thresholds) and slack (high) both covered. The
        // widened draw adds the adaptive models on a separate arm table
        // so the legacy draw stays byte-identical.
        let strategy = if self.widened {
            match rng.index(13) {
                0..=4 => Strategy::Rog {
                    threshold: 1 + rng.index(6) as u32,
                },
                5 => Strategy::Bsp,
                6 => Strategy::Ssp {
                    threshold: 1 + rng.index(8) as u32,
                },
                7 => Strategy::Asp,
                8 => {
                    let min = 1 + rng.index(3) as u32;
                    Strategy::Flown {
                        min_threshold: min,
                        max_threshold: min + 1 + rng.index(8) as u32,
                    }
                }
                9 => {
                    let min = 1 + rng.index(3) as u32;
                    Strategy::Dssp {
                        min_threshold: min,
                        max_threshold: min + 1 + rng.index(8) as u32,
                    }
                }
                10 => {
                    let min = 1 + rng.index(3) as u32;
                    Strategy::Abs {
                        min_threshold: min,
                        max_threshold: min + 1 + rng.index(8) as u32,
                    }
                }
                _ => {
                    let min = 1 + rng.index(3) as u32;
                    Strategy::RogAdaptive {
                        min_threshold: min,
                        max_threshold: min + 1 + rng.index(8) as u32,
                    }
                }
            }
        } else {
            match rng.index(10) {
                0..=5 => Strategy::Rog {
                    threshold: 1 + rng.index(6) as u32,
                },
                6 => Strategy::Bsp,
                7 => Strategy::Ssp {
                    threshold: 1 + rng.index(8) as u32,
                },
                8 => Strategy::Asp,
                _ => {
                    let min = 1 + rng.index(3) as u32;
                    Strategy::Flown {
                        min_threshold: min,
                        max_threshold: min + 1 + rng.index(8) as u32,
                    }
                }
            }
        };
        let rog = strategy.is_row_granular();

        // --- topology. Shards/aggregators only exist under the ROG row
        // engine; the baselines ignore them, so sampling them there
        // would only blur which knob a failing scenario actually needs.
        let n_workers = 2 + rng.index(3);
        let n_shards = if rog { [1, 1, 2, 3][rng.index(4)] } else { 1 };
        let n_aggregators = if rog && rng.chance(0.4) {
            1 + rng.index(n_workers.min(2))
        } else {
            0
        };

        let environment = [
            Environment::Stable,
            Environment::Stable,
            Environment::Indoor,
            Environment::Outdoor,
        ][rng.index(4)];

        let lo = 2.0 * FAULT_FREE_PREFIX_SECS;
        let duration_secs = if self.max_duration > lo {
            rng.uniform_range(lo, self.max_duration)
        } else {
            lo
        };
        let run_seed = rng.next_u64();

        // --- channel-wide loss: rates stay well under the reliable
        // class's MAX_LOSS_PROB cap so progress is never a coin flip.
        let loss = rng.chance(0.5).then(|| LossSpec {
            seed: rng.next_u64(),
            iid_loss: if rng.chance(0.6) {
                rng.uniform_range(0.01, 0.3)
            } else {
                0.0
            },
            corrupt: if rng.chance(0.3) {
                rng.uniform_range(0.005, 0.1)
            } else {
                0.0
            },
            duplicate: if rng.chance(0.3) {
                rng.uniform_range(0.005, 0.1)
            } else {
                0.0
            },
            reorder: if rng.chance(0.3) {
                rng.uniform_range(0.005, 0.1)
            } else {
                0.0
            },
            ge_mean: rng.chance(0.5).then(|| rng.uniform_range(0.02, 0.2)),
        });

        // --- row codec: only the widened draw samples the ladder, and
        // only under row-granular strategies (the baselines always
        // frame dense one-bit rows). The draw comes from a pure fork so
        // it perturbs no other stream — legacy corpus seeds keep
        // reproducing byte-identical scenarios.
        let codec = if self.widened && rog {
            let mut codec_rng = rng.fork(0xC0DE);
            match codec_rng.index(6) {
                0 | 1 => CodecChoice::OneBit,
                2 => CodecChoice::Sparse,
                3 => CodecChoice::Quant {
                    bits: [2u8, 4, 8][codec_rng.index(3)],
                },
                _ => CodecChoice::Auto,
            }
        } else {
            CodecChoice::OneBit
        };

        // --- fault plan: windows over [prefix, 0.9 · duration], each
        // kind sampled within the ranges the engine validates against
        // (worker < n_workers, shard < effective shards, aggregator <
        // aggregator count). Same-kind overlaps are simply dropped —
        // rejection sampling would skew window counts between kinds.
        let mut fault_rng = rng.fork(0x0fa1);
        let mut plan = FaultPlan::new();
        let n_windows = fault_rng.index(6);
        for _ in 0..n_windows {
            let last_start = duration_secs * 0.9;
            let start = fault_rng.uniform_range(FAULT_FREE_PREFIX_SECS, last_start);
            let end = start + fault_rng.uniform_range(2.0, 15.0);
            let worker = fault_rng.index(n_workers);
            let kinds = if n_aggregators > 0 { 5 } else { 4 };
            let _ = match fault_rng.index(kinds) {
                0 => plan.try_push(FaultWindow {
                    kind: FaultKind::WorkerOffline(worker),
                    start,
                    end,
                }),
                1 => plan.try_push(FaultWindow {
                    kind: FaultKind::LinkBlackout(worker),
                    start,
                    end,
                }),
                2 => plan.try_push(FaultWindow {
                    kind: FaultKind::ServerOutage(fault_rng.index(n_shards.max(1))),
                    start,
                    end,
                }),
                3 => plan.try_push_loss(LossWindow {
                    link: worker,
                    start,
                    end,
                    rate: fault_rng.uniform_range(0.05, 0.9),
                }),
                _ => plan.try_push(FaultWindow {
                    kind: FaultKind::AggregatorOutage(fault_rng.index(n_aggregators)),
                    start,
                    end,
                }),
            };
        }

        Scenario {
            gen_seed: self.seed,
            index,
            strategy,
            n_workers,
            n_shards,
            n_aggregators,
            environment,
            duration_secs,
            run_seed,
            loss,
            codec,
            script: plan.to_script(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scenario() {
        let a = ScenarioGen::new(42);
        let b = ScenarioGen::new(42);
        for i in 0..32 {
            assert_eq!(a.scenario(i), b.scenario(i), "index {i}");
        }
        assert_ne!(a.scenario(0), ScenarioGen::new(43).scenario(0));
    }

    #[test]
    fn scenarios_are_valid_and_round_trip() {
        let g = ScenarioGen::new(7);
        for i in 0..64 {
            let sc = g.scenario(i);
            // The embedded script parses back into a valid plan whose
            // indices the engine's own validation would accept.
            let plan = sc.fault_plan().expect("generated script parses");
            let cfg = sc.config();
            if let Some(w) = plan.max_worker() {
                assert!(w < cfg.n_workers, "index {i}");
            }
            if let Some(s) = plan.max_shard() {
                assert!(s < cfg.effective_shards(), "index {i}");
            }
            if let Some(a) = plan.max_aggregator() {
                assert!(a < cfg.effective_aggregators(), "index {i}");
            }
            // No window opens inside the fault-free prefix.
            for w in plan.windows() {
                assert!(w.start >= FAULT_FREE_PREFIX_SECS, "index {i}");
            }
            for w in plan.loss_windows() {
                assert!(w.start >= FAULT_FREE_PREFIX_SECS, "index {i}");
            }
            assert!(sc.duration_secs >= 2.0 * FAULT_FREE_PREFIX_SECS);
            // Repro round trip.
            let text = sc.to_repro();
            assert_eq!(Scenario::parse(&text).expect("parses"), sc, "index {i}");
        }
    }

    #[test]
    fn generator_covers_every_dimension() {
        let g = ScenarioGen::new(1);
        let scenarios: Vec<Scenario> = (0..256).map(|i| g.scenario(i)).collect();
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.strategy, Strategy::Rog { .. })));
        assert!(scenarios.iter().any(|s| matches!(
            s.strategy,
            Strategy::Bsp | Strategy::Ssp { .. } | Strategy::Asp | Strategy::Flown { .. }
        )));
        assert!(scenarios.iter().any(|s| s.n_shards > 1));
        assert!(scenarios.iter().any(|s| s.n_aggregators > 0));
        assert!(scenarios.iter().any(|s| s.loss.is_some()));
        assert!(scenarios.iter().any(|s| s.loss.is_none()));
        assert!(scenarios.iter().any(|s| !s.script.is_empty()));
        assert!(scenarios.iter().any(|s| s.script.is_empty()));
        assert!(scenarios.iter().any(|s| s.script.contains("agg-restart")));
        assert!(scenarios
            .iter()
            .any(|s| s.script.contains("server-restart")));
        assert!(scenarios.iter().any(|s| s.script.contains("loss ")));
    }

    #[test]
    fn widened_generator_covers_the_adaptive_models() {
        let g = ScenarioGen::new(1).widened(true);
        let scenarios: Vec<Scenario> = (0..256).map(|i| g.scenario(i)).collect();
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.strategy, Strategy::Dssp { .. })));
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.strategy, Strategy::Abs { .. })));
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.strategy, Strategy::RogAdaptive { .. })));
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.strategy, Strategy::Rog { .. })));
        // The hybrid is row-granular: sharded/aggregated topologies are
        // drawn for it, and everything still round-trips.
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.strategy, Strategy::RogAdaptive { .. }) && s.n_shards > 1));
        // The codec ladder is drawn too — every rung shows up, and only
        // on row-granular strategies.
        assert!(scenarios.iter().any(|s| s.codec == CodecChoice::Sparse));
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.codec, CodecChoice::Quant { .. })));
        assert!(scenarios.iter().any(|s| s.codec == CodecChoice::Auto));
        assert!(scenarios.iter().any(|s| s.codec == CodecChoice::OneBit));
        for sc in &scenarios {
            if sc.codec != CodecChoice::OneBit {
                assert!(
                    sc.strategy.is_row_granular(),
                    "codec on {}",
                    sc.strategy.name()
                );
            }
        }
        for (i, sc) in scenarios.iter().enumerate() {
            assert_eq!(
                Scenario::parse(&sc.to_repro()).expect("parses"),
                *sc,
                "index {i}"
            );
        }
    }

    #[test]
    fn legacy_draw_never_samples_the_adaptive_models() {
        // Existing corpus seeds must keep reproducing the same
        // scenarios, so the default draw may not change.
        let g = ScenarioGen::new(1);
        for i in 0..256 {
            let sc = g.scenario(i);
            assert!(
                !matches!(
                    sc.strategy,
                    Strategy::Dssp { .. } | Strategy::Abs { .. } | Strategy::RogAdaptive { .. }
                ),
                "index {i} drew {}",
                sc.strategy.name()
            );
            assert_eq!(sc.codec, CodecChoice::OneBit, "index {i}");
        }
    }

    #[test]
    fn max_duration_caps_the_draw() {
        let g = ScenarioGen::new(3).max_duration(25.0);
        for i in 0..32 {
            let d = g.scenario(i).duration_secs;
            assert!((20.0..=25.0).contains(&d), "duration {d}");
        }
    }
}
