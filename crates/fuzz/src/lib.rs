//! `rog-fuzz`: seeded scenario fuzzing and differential invariant
//! checking for the ROG simulator.
//!
//! The hand-written regression matrix covers seven scenarios; the
//! space PRs 2–7 actually built — fault plans × loss configs × shard
//! counts × aggregator topologies × sync models — is combinatorial,
//! and correctness bugs hide in rare interleavings of loss and
//! membership churn that no hand-picked matrix reaches. This crate
//! turns the deterministic simulation into its own test oracle at
//! scale, in three layers:
//!
//! * [`ScenarioGen`] — samples complete experiment scenarios from a
//!   single root `u64` seed (forked [`rog_tensor::rng::DetRng`]
//!   streams, one per scenario index), emitting fault plans through
//!   the `rog-fault` script format so every repro is plain text.
//! * [`check_scenario`] — replays a scenario across compute-thread
//!   counts and twin topologies, asserting thread-invariance, the
//!   progress watchdog, byte-ledger sanity, journal↔metrics
//!   reconciliation, the RSP staleness bound, and the shard/aggregator
//!   identity twins; failures come back as data ([`Violation`]), never
//!   panics.
//! * [`shrink`] — greedily minimizes a failing scenario (drop script
//!   lines, clear loss/aggregators/shards/workers/duration) and hands
//!   back the smallest still-failing [`Scenario`], ready to be dumped
//!   as a [`Scenario::to_repro`] artifact and checked into the
//!   regression corpus (`tests/corpus/`).
//!
//! The `rogctl fuzz` subcommand drives a campaign and emits a
//! wall-clock-free [`FuzzReport`]; `tests/fuzz_corpus.rs` replays the
//! checked-in corpus on every CI run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod generator;
mod report;
mod scenario;
mod shrink;

pub use check::{check_scenario, CheckOutcome, Violation, THREAD_COUNTS};
pub use generator::{ScenarioGen, FAULT_FREE_PREFIX_SECS};
pub use report::{FuzzReport, ScenarioRecord};
pub use scenario::{LossSpec, Scenario};
pub use shrink::{shrink, ShrinkResult};
