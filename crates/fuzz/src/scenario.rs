//! A complete fuzz scenario and its `.repro` text format.
//!
//! A [`Scenario`] is everything the checker needs to replay one
//! experiment: the sampled topology, sync model, loss knobs and the
//! fault plan in the `rog-fault` script format. Scenarios serialize to
//! a line-oriented `.repro` file that round-trips byte-for-byte —
//! failing scenarios are exchanged (corpus entries, shrinker output,
//! bug reports) exclusively in this form, so the format leans on the
//! same exact-float `{}` rendering the fault-script format pins.

use rog_compress::CodecChoice;
use rog_fault::FaultPlan;
use rog_net::{GeParams, LossConfig};
use rog_trainer::{Environment, ExperimentConfig, ModelScale, Strategy, WorkloadKind};

/// The loss knobs a scenario may carry, in generator-level terms: the
/// i.i.d. probabilities plus the *mean* of a bursty Gilbert–Elliott
/// chain (reconstructed via [`GeParams::bursty`]), not the raw chain
/// parameters — exactly the surface [`LossConfig`]'s constructors
/// expose.
#[derive(Debug, Clone, PartialEq)]
pub struct LossSpec {
    /// Root seed for the per-link fate streams.
    pub seed: u64,
    /// Independent per-chunk loss probability.
    pub iid_loss: f64,
    /// Per-chunk corruption probability.
    pub corrupt: f64,
    /// Per-chunk duplication probability.
    pub duplicate: f64,
    /// Per-chunk reorder probability.
    pub reorder: f64,
    /// Mean loss of the bursty Gilbert–Elliott layer, if any.
    pub ge_mean: Option<f64>,
}

impl LossSpec {
    /// The [`LossConfig`] this spec describes.
    pub fn to_config(&self) -> LossConfig {
        LossConfig {
            seed: self.seed,
            iid_loss: self.iid_loss,
            corrupt: self.corrupt,
            duplicate: self.duplicate,
            reorder: self.reorder,
            ge: self.ge_mean.map(GeParams::bursty),
        }
    }
}

/// One sampled experiment scenario, reproducible from its fields alone.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The generator draw that produced this scenario: root fuzz seed
    /// and scenario index. Identification only — the replay is a pure
    /// function of the remaining fields.
    pub gen_seed: u64,
    /// Scenario index under `gen_seed`.
    pub index: u64,
    /// Sync model under test.
    pub strategy: Strategy,
    /// Worker count.
    pub n_workers: usize,
    /// Parameter-server shards (ROG only; the config treats 0 as 1).
    pub n_shards: usize,
    /// Edge aggregators (ROG only; 0 = flat).
    pub n_aggregators: usize,
    /// Row codec (ROG only; one-bit elsewhere). Repro files omit the
    /// `codec` directive for the one-bit default, so legacy corpora
    /// parse unchanged and legacy-draw repro text stays byte-identical.
    pub codec: CodecChoice,
    /// Wireless environment.
    pub environment: Environment,
    /// Virtual duration in seconds.
    pub duration_secs: f64,
    /// The experiment seed (`ExperimentConfig::seed`).
    pub run_seed: u64,
    /// Channel-wide loss knobs, if any.
    pub loss: Option<LossSpec>,
    /// Fault plan in script form (`""` = no plan). Kept as text so the
    /// repro file *is* the exchange format; [`Scenario::fault_plan`]
    /// parses it on demand.
    pub script: String,
}

impl Scenario {
    /// Parses the scenario's fault-plan script. Scenarios constructed
    /// by the generator or parsed from a repro file always carry a
    /// valid script.
    pub fn fault_plan(&self) -> Result<FaultPlan, rog_fault::FaultPlanError> {
        FaultPlan::parse(&self.script)
    }

    /// Number of fault-script lines — the size measure the shrinker
    /// minimizes and the meta-test bounds.
    pub fn script_lines(&self) -> usize {
        self.script.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// The full experiment config this scenario replays. Everything
    /// not sampled is pinned to the deterministic test-scale defaults
    /// the integration suites use (Small CRUDA, robot-only fleet).
    pub fn config(&self) -> ExperimentConfig {
        let plan = self.fault_plan().expect("scenario script must be valid");
        ExperimentConfig {
            workload: WorkloadKind::Cruda,
            environment: self.environment,
            strategy: self.strategy,
            model_scale: ModelScale::Small,
            n_workers: self.n_workers,
            n_laptop_workers: 0,
            n_shards: self.n_shards,
            n_aggregators: self.n_aggregators,
            duration_secs: self.duration_secs,
            eval_every: 5,
            seed: self.run_seed,
            codec: self.codec,
            loss: self.loss.as_ref().map(LossSpec::to_config),
            fault_plan: if plan.is_empty() { None } else { Some(plan) },
            ..ExperimentConfig::default()
        }
    }

    /// Short display label ("seed 7 #12: ROG-4 w3 s2 a1").
    pub fn label(&self) -> String {
        format!(
            "seed {} #{}: {} w{} s{} a{}{} {:.0}s{}{}",
            self.gen_seed,
            self.index,
            self.strategy.name(),
            self.n_workers,
            self.n_shards,
            self.n_aggregators,
            if self.codec == CodecChoice::OneBit {
                String::new()
            } else {
                format!(" +{}", self.codec.name())
            },
            self.duration_secs,
            if self.loss.is_some() { " +loss" } else { "" },
            if self.script.is_empty() {
                String::new()
            } else {
                format!(" +{} fault lines", self.script_lines())
            },
        )
    }

    /// Renders the scenario as `.repro` text. [`Scenario::parse`]
    /// inverts this byte-for-byte.
    pub fn to_repro(&self) -> String {
        let mut out = String::new();
        out.push_str("# rog-fuzz scenario v1\n");
        out.push_str(&format!("gen-seed {}\n", self.gen_seed));
        out.push_str(&format!("index {}\n", self.index));
        let strat = match self.strategy {
            Strategy::Bsp => "bsp".to_owned(),
            Strategy::Ssp { threshold } => format!("ssp {threshold}"),
            Strategy::Asp => "asp".to_owned(),
            Strategy::Flown {
                min_threshold,
                max_threshold,
            } => format!("flown {min_threshold} {max_threshold}"),
            Strategy::Dssp {
                min_threshold,
                max_threshold,
            } => format!("dssp {min_threshold} {max_threshold}"),
            Strategy::Abs {
                min_threshold,
                max_threshold,
            } => format!("abs {min_threshold} {max_threshold}"),
            Strategy::Rog { threshold } => format!("rog {threshold}"),
            Strategy::RogAdaptive {
                min_threshold,
                max_threshold,
            } => format!("roga {min_threshold} {max_threshold}"),
        };
        out.push_str(&format!("strategy {strat}\n"));
        out.push_str(&format!("workers {}\n", self.n_workers));
        out.push_str(&format!("shards {}\n", self.n_shards));
        out.push_str(&format!("aggregators {}\n", self.n_aggregators));
        // The one-bit default is implicit: legacy repro files (which
        // predate the directive) stay parseable and re-render
        // byte-identically.
        if self.codec != CodecChoice::OneBit {
            out.push_str(&format!("codec {}\n", self.codec.name()));
        }
        out.push_str(&format!("environment {}\n", self.environment.name()));
        out.push_str(&format!("duration {}\n", self.duration_secs));
        out.push_str(&format!("run-seed {}\n", self.run_seed));
        match &self.loss {
            None => out.push_str("loss none\n"),
            Some(l) => {
                let ge = match l.ge_mean {
                    None => "none".to_owned(),
                    Some(m) => format!("{m}"),
                };
                out.push_str(&format!(
                    "loss {} {} {} {} {} {ge}\n",
                    l.seed, l.iid_loss, l.corrupt, l.duplicate, l.reorder
                ));
            }
        }
        out.push_str("script-begin\n");
        out.push_str(&self.script);
        out.push_str("script-end\n");
        out
    }

    /// Parses `.repro` text back into a scenario.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut gen_seed = None;
        let mut index = None;
        let mut strategy = None;
        let mut n_workers = None;
        let mut n_shards = None;
        let mut n_aggregators = None;
        let mut codec = None;
        let mut environment = None;
        let mut duration_secs = None;
        let mut run_seed = None;
        let mut loss: Option<Option<LossSpec>> = None;
        let mut script: Option<String> = None;
        let mut in_script = false;

        for (lineno, raw) in text.lines().enumerate() {
            let at = |msg: &str| format!("line {}: {msg} (`{raw}`)", lineno + 1);
            if in_script {
                if raw == "script-end" {
                    in_script = false;
                } else {
                    let s = script.as_mut().expect("script block open");
                    s.push_str(raw);
                    s.push('\n');
                }
                continue;
            }
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "script-begin" {
                if script.is_some() {
                    return Err(at("duplicate script block"));
                }
                script = Some(String::new());
                in_script = true;
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let parse_u64 = |s: &str| s.parse::<u64>().map_err(|_| at("bad integer"));
            let parse_usize = |s: &str| s.parse::<usize>().map_err(|_| at("bad integer"));
            let parse_f64 = |s: &str| s.parse::<f64>().map_err(|_| at("bad number"));
            match fields.as_slice() {
                ["gen-seed", v] => gen_seed = Some(parse_u64(v)?),
                ["index", v] => index = Some(parse_u64(v)?),
                ["strategy", "bsp"] => strategy = Some(Strategy::Bsp),
                ["strategy", "asp"] => strategy = Some(Strategy::Asp),
                ["strategy", "ssp", t] => {
                    strategy = Some(Strategy::Ssp {
                        threshold: parse_u64(t)? as u32,
                    })
                }
                ["strategy", "rog", t] => {
                    strategy = Some(Strategy::Rog {
                        threshold: parse_u64(t)? as u32,
                    })
                }
                ["strategy", "flown", lo, hi] => {
                    strategy = Some(Strategy::Flown {
                        min_threshold: parse_u64(lo)? as u32,
                        max_threshold: parse_u64(hi)? as u32,
                    })
                }
                ["strategy", "dssp", lo, hi] => {
                    strategy = Some(Strategy::Dssp {
                        min_threshold: parse_u64(lo)? as u32,
                        max_threshold: parse_u64(hi)? as u32,
                    })
                }
                ["strategy", "abs", lo, hi] => {
                    strategy = Some(Strategy::Abs {
                        min_threshold: parse_u64(lo)? as u32,
                        max_threshold: parse_u64(hi)? as u32,
                    })
                }
                ["strategy", "roga", lo, hi] => {
                    strategy = Some(Strategy::RogAdaptive {
                        min_threshold: parse_u64(lo)? as u32,
                        max_threshold: parse_u64(hi)? as u32,
                    })
                }
                ["workers", v] => n_workers = Some(parse_usize(v)?),
                ["shards", v] => n_shards = Some(parse_usize(v)?),
                ["aggregators", v] => n_aggregators = Some(parse_usize(v)?),
                ["codec", v] => {
                    codec = Some(v.parse::<CodecChoice>().map_err(|_| at("unknown codec"))?);
                }
                ["environment", v] => {
                    environment = Some(match *v {
                        "indoor" => Environment::Indoor,
                        "outdoor" => Environment::Outdoor,
                        "stable" => Environment::Stable,
                        _ => return Err(at("unknown environment")),
                    })
                }
                ["duration", v] => duration_secs = Some(parse_f64(v)?),
                ["run-seed", v] => run_seed = Some(parse_u64(v)?),
                ["loss", "none"] => loss = Some(None),
                ["loss", seed, iid, corrupt, dup, reorder, ge] => {
                    loss = Some(Some(LossSpec {
                        seed: parse_u64(seed)?,
                        iid_loss: parse_f64(iid)?,
                        corrupt: parse_f64(corrupt)?,
                        duplicate: parse_f64(dup)?,
                        reorder: parse_f64(reorder)?,
                        ge_mean: if *ge == "none" {
                            None
                        } else {
                            Some(parse_f64(ge)?)
                        },
                    }))
                }
                _ => return Err(at("unknown directive")),
            }
        }
        if in_script {
            return Err("unterminated script block (missing `script-end`)".to_owned());
        }

        let need = |what: &str| format!("missing `{what}` line");
        let sc = Scenario {
            gen_seed: gen_seed.ok_or_else(|| need("gen-seed"))?,
            index: index.ok_or_else(|| need("index"))?,
            strategy: strategy.ok_or_else(|| need("strategy"))?,
            n_workers: n_workers.ok_or_else(|| need("workers"))?,
            n_shards: n_shards.ok_or_else(|| need("shards"))?,
            n_aggregators: n_aggregators.ok_or_else(|| need("aggregators"))?,
            // Absent in legacy corpora: default to the one-bit codec.
            codec: codec.unwrap_or(CodecChoice::OneBit),
            environment: environment.ok_or_else(|| need("environment"))?,
            duration_secs: duration_secs.ok_or_else(|| need("duration"))?,
            run_seed: run_seed.ok_or_else(|| need("run-seed"))?,
            loss: loss.ok_or_else(|| need("loss"))?,
            script: script.ok_or_else(|| need("script-begin"))?,
        };
        // Surface a broken fault script (with its own line diagnostics)
        // at parse time, not at replay time.
        sc.fault_plan().map_err(|e| e.to_string())?;
        Ok(sc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            gen_seed: 7,
            index: 3,
            strategy: Strategy::Rog { threshold: 4 },
            n_workers: 3,
            n_shards: 2,
            n_aggregators: 1,
            codec: CodecChoice::OneBit,
            environment: Environment::Stable,
            duration_secs: 27.53125,
            run_seed: 0xfeed,
            loss: Some(LossSpec {
                seed: 11,
                iid_loss: 0.05,
                corrupt: 0.01,
                duplicate: 0.0,
                reorder: 0.02,
                ge_mean: Some(0.1),
            }),
            script: "offline 1 12.5 20\nloss 0 15 18 0.30000000000000004\n".to_owned(),
        }
    }

    #[test]
    fn repro_round_trips_byte_for_byte() {
        let sc = sample();
        let text = sc.to_repro();
        let again = Scenario::parse(&text).expect("repro parses");
        assert_eq!(again, sc);
        assert_eq!(again.to_repro(), text);
    }

    #[test]
    fn lossless_and_faultless_scenarios_round_trip() {
        let sc = Scenario {
            loss: None,
            script: String::new(),
            ..sample()
        };
        let text = sc.to_repro();
        assert_eq!(Scenario::parse(&text).expect("parses"), sc);
        assert_eq!(sc.script_lines(), 0);
    }

    #[test]
    fn config_reflects_the_scenario() {
        let cfg = sample().config();
        assert_eq!(cfg.n_workers, 3);
        assert_eq!(cfg.n_shards, 2);
        assert_eq!(cfg.n_aggregators, 1);
        assert_eq!(cfg.seed, 0xfeed);
        assert!(cfg.loss_active());
        assert_eq!(cfg.fault_plan.as_ref().map(|p| p.windows().len()), Some(1));
        assert_eq!(
            cfg.fault_plan.as_ref().map(|p| p.loss_windows().len()),
            Some(1)
        );
        // All strategies parse back.
        for strat in [
            Strategy::Bsp,
            Strategy::Asp,
            Strategy::Ssp { threshold: 3 },
            Strategy::Flown {
                min_threshold: 2,
                max_threshold: 9,
            },
            Strategy::Dssp {
                min_threshold: 1,
                max_threshold: 8,
            },
            Strategy::Abs {
                min_threshold: 1,
                max_threshold: 6,
            },
            Strategy::RogAdaptive {
                min_threshold: 1,
                max_threshold: 8,
            },
        ] {
            let sc = Scenario {
                strategy: strat,
                ..sample()
            };
            assert_eq!(Scenario::parse(&sc.to_repro()).expect("parses"), sc);
        }
    }

    #[test]
    fn codec_directive_round_trips_and_defaults_to_onebit() {
        // Non-default codecs render a `codec` line and round-trip.
        for choice in [
            CodecChoice::Sparse,
            CodecChoice::Quant { bits: 4 },
            CodecChoice::Auto,
        ] {
            let sc = Scenario {
                codec: choice,
                ..sample()
            };
            let text = sc.to_repro();
            assert!(text.contains("codec "), "{text}");
            let again = Scenario::parse(&text).expect("parses");
            assert_eq!(again, sc);
            assert_eq!(again.config().codec, choice);
        }
        // The one-bit default is implicit: no directive is written, and
        // legacy repro text (which never had one) parses to one-bit.
        let text = sample().to_repro();
        assert!(!text.contains("codec "), "{text}");
        assert_eq!(
            Scenario::parse(&text).expect("parses").codec,
            CodecChoice::OneBit
        );
        assert!(
            Scenario::parse(&text.replace("aggregators 1\n", "aggregators 1\ncodec banana\n"))
                .unwrap_err()
                .contains("unknown codec")
        );
    }

    #[test]
    fn parse_rejects_garbage_with_location() {
        let err = Scenario::parse("gen-seed 1\nfrob 2\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = Scenario::parse(&sample().to_repro().replace("script-end\n", "")).unwrap_err();
        assert!(err.contains("unterminated"), "{err}");
        // A broken embedded fault script is caught at parse time with
        // the script parser's own line diagnostics.
        let bad = sample()
            .to_repro()
            .replace("offline 1 12.5 20", "offline 1 20 12.5");
        let err = Scenario::parse(&bad).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
