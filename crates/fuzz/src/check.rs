//! The differential invariant checker.
//!
//! [`check_scenario`] replays one [`Scenario`] across compute-thread
//! counts {1, 2, 8} and asserts the cheap invariants the hand-written
//! suites already trust, returning every violation instead of
//! panicking — the shrinker needs failures to be data:
//!
//! * **Thread invariance** — serialized metrics, journal bytes and
//!   fleet stats are byte-identical at every thread count.
//! * **Engine self-checks** — a replay that panics (debug-build
//!   staleness watchdog, byte-conservation assert, any engine bug) is
//!   caught and reported, never crashes the harness.
//! * **Progress** — the gate never wedges: every scenario's fault-free
//!   prefix guarantees at least one iteration completes.
//! * **Byte ledger** — the four-way useful/wasted/lost/corrupt split
//!   is finite, non-negative, and exactly zero on the loss axes when
//!   nothing in the scenario can harm a chunk.
//! * **Journal ↔ metrics reconciliation** — the composition replayed
//!   from the journal is bitwise the one the metrics report, and
//!   begin/end event pairings balance.
//! * **Codec selection** — only a `codec auto` scenario may journal
//!   `codec_select` events, every event names a live worker and a
//!   known codec rung, and per worker no two consecutive selections
//!   repeat (the engine never journals a no-op switch).
//! * **Staleness** — without shard or aggregator outages, no gate
//!   event may record a lead beyond the model's *instantaneous*
//!   staleness bound (static for BSP/SSP/ROG, replayed from the
//!   journal's threshold-adaptation events for DSSP/ABS and the
//!   adaptive-bound ROG hybrid).
//! * **Topology twins** — `n_shards = 0` replays byte-identically to
//!   `n_shards = 1` (the documented pre-shard identity), and a
//!   hierarchical run matches its flat twin once aggregator accounting
//!   records are stripped.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rog_fault::FaultKind;
use rog_obs::{Record, TraceSummary};
use rog_sync::gate;
use rog_trainer::report::runs_to_json;
use rog_trainer::{compute, ExperimentConfig, RunMetrics, RunOutcome, Strategy};

use crate::scenario::Scenario;

/// Compute-thread counts every scenario is replayed at.
pub const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Float tolerance for mean-vs-total iteration reconciliation (all
/// other comparisons are bitwise).
const EPS: f64 = 1e-9;

/// One invariant failure observed while replaying a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A replay panicked — an engine self-check (staleness watchdog,
    /// byte-conservation assert) or a genuine crash.
    EnginePanic {
        /// Compute-thread count of the panicking replay.
        threads: usize,
        /// The panic payload.
        message: String,
    },
    /// Two thread counts produced observably different runs.
    ThreadDivergence {
        /// The diverging thread count (compared against the first).
        threads: usize,
        /// What differed.
        what: String,
    },
    /// The run completed zero iterations despite its fault-free prefix.
    NoProgress,
    /// The four-way byte ledger is inconsistent.
    ByteLedger(String),
    /// Journal and metrics disagree.
    Reconciliation(String),
    /// A gate event recorded a lead beyond the RSP staleness bound.
    StalenessExceeded(String),
    /// A `codec_select` event broke the selector's replay contract.
    CodecSelect(String),
    /// `n_shards = 0` diverged from `n_shards = 1`.
    ShardTwinDivergence(String),
    /// The hierarchical run diverged from its flat twin.
    HierarchyTwinDivergence(String),
}

impl Violation {
    /// Stable short name, used as the report's violation key.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::EnginePanic { .. } => "engine_panic",
            Violation::ThreadDivergence { .. } => "thread_divergence",
            Violation::NoProgress => "no_progress",
            Violation::ByteLedger(_) => "byte_ledger",
            Violation::Reconciliation(_) => "reconciliation",
            Violation::StalenessExceeded(_) => "staleness_exceeded",
            Violation::CodecSelect(_) => "codec_select",
            Violation::ShardTwinDivergence(_) => "shard_twin",
            Violation::HierarchyTwinDivergence(_) => "hierarchy_twin",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::EnginePanic { threads, message } => {
                write!(f, "engine panic @ {threads} threads: {message}")
            }
            Violation::ThreadDivergence { threads, what } => {
                write!(f, "thread divergence @ {threads} threads: {what}")
            }
            Violation::NoProgress => write!(f, "no progress: zero iterations completed"),
            Violation::ByteLedger(d) => write!(f, "byte ledger: {d}"),
            Violation::Reconciliation(d) => write!(f, "journal/metrics reconciliation: {d}"),
            Violation::StalenessExceeded(d) => write!(f, "staleness exceeded: {d}"),
            Violation::CodecSelect(d) => write!(f, "codec selection: {d}"),
            Violation::ShardTwinDivergence(d) => write!(f, "shard-0 vs shard-1 twin: {d}"),
            Violation::HierarchyTwinDivergence(d) => write!(f, "hierarchical vs flat twin: {d}"),
        }
    }
}

/// Everything one scenario check produced.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Invariant failures, empty when the scenario is green.
    pub violations: Vec<Violation>,
    /// Virtual seconds the base replay covered (0 when it panicked).
    pub virtual_secs: f64,
    /// Simulation events the base replay dispatched (wall-clock-free
    /// work measure; 0 when it panicked).
    pub sim_events: u64,
}

impl CheckOutcome {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs a config with panics captured and the default panic hook
/// silenced for the duration of the run — the shrinker deliberately
/// replays panicking scenarios dozens of times.
///
/// The hook swap is process-global; tests driving the checker share a
/// binary with nothing else (see `tests/fuzz_corpus.rs`).
fn quiet_run(cfg: &ExperimentConfig) -> Result<RunOutcome, String> {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| cfg.options().traced(true).run()));
    std::panic::set_hook(prev);
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        }
    })
}

/// Field-by-field bit-exact comparison of two runs, ignoring the run
/// name (twin topologies legitimately differ in their `+agg{n}` /
/// `+shard{n}` name segments). Returns human-readable differences.
fn metrics_diff_modulo_name(a: &RunMetrics, b: &RunMetrics) -> Vec<String> {
    let mut diffs = Vec::new();
    if a.checkpoints != b.checkpoints {
        diffs.push("checkpoints".to_owned());
    }
    if a.mean_iterations.to_bits() != b.mean_iterations.to_bits() {
        diffs.push(format!(
            "mean_iterations {} vs {}",
            a.mean_iterations, b.mean_iterations
        ));
    }
    if a.total_energy_j.to_bits() != b.total_energy_j.to_bits() {
        diffs.push("total_energy_j".to_owned());
    }
    for (what, x, y) in [
        ("useful_bytes", a.useful_bytes, b.useful_bytes),
        ("wasted_bytes", a.wasted_bytes, b.wasted_bytes),
        ("lost_bytes", a.lost_bytes, b.lost_bytes),
        ("corrupt_bytes", a.corrupt_bytes, b.corrupt_bytes),
        ("stall_secs", a.stall_secs, b.stall_secs),
        ("offline_secs", a.offline_secs, b.offline_secs),
    ] {
        if x.to_bits() != y.to_bits() {
            diffs.push(format!("{what} {x} vs {y}"));
        }
    }
    if a.final_model_divergence != b.final_model_divergence {
        diffs.push("final_model_divergence".to_owned());
    }
    diffs
}

/// Removes the `"seq":N,` field from one journal line (aggregator
/// merge records consume sequence numbers, shifting later records).
fn without_seq(line: &str) -> String {
    let Some(i) = line.find("\"seq\":") else {
        return line.to_owned();
    };
    let Some(j) = line[i..].find(',') else {
        return line.to_owned();
    };
    format!("{}{}", &line[..i], &line[i + j + 1..])
}

/// Normalizes a journal for flat-vs-hierarchical comparison: drop
/// `agg_merge` records and `seq` counters, erase the `+agg{n}` name
/// segment — the same normalization the fleet-scale suite pins.
fn normalized(journal: &str, aggs: usize) -> String {
    journal
        .replace(&format!("+agg{aggs}"), "")
        .lines()
        .filter(|l| !l.contains("\"ev\":\"agg_merge\""))
        .map(without_seq)
        .collect::<Vec<_>>()
        .join("\n")
}

/// The reconciliation block: journal replay must agree with the
/// metrics bitwise, and event pairings must balance. `faulty` is true
/// when the scenario's plan has fault windows — fault recovery
/// re-queues an aborted granted pull into the gate wait silently, so
/// its re-grant emits a second `gate_exit` for a single `gate_enter`
/// and the gate pairing is only checkable on fault-free runs.
fn reconcile(m: &RunMetrics, journal: &str, faulty: bool, violations: &mut Vec<Violation>) {
    let s = match TraceSummary::from_jsonl(journal) {
        Ok(s) => s,
        Err(e) => {
            violations.push(Violation::Reconciliation(format!(
                "journal does not parse: {e}"
            )));
            return;
        }
    };
    let comp = s.composition();
    let mut bit = |what: &str, a: f64, b: f64| {
        if a.to_bits() != b.to_bits() {
            violations.push(Violation::Reconciliation(format!("{what}: {a} != {b}")));
        }
    };
    bit("compute", comp[0], m.composition.compute);
    bit("communicate", comp[1], m.composition.communicate);
    bit("stall", comp[2], m.composition.stall);
    bit("offline", comp[3], m.composition.offline);
    bit("stall_secs", s.cluster_residency(2), m.stall_secs);
    bit("offline_secs", s.cluster_residency(4), m.offline_secs);
    bit("duration", s.duration, m.duration);
    if s.n_devices == 0 || (s.iters as f64 / s.n_devices as f64 - m.mean_iterations).abs() >= EPS {
        violations.push(Violation::Reconciliation(format!(
            "{} iters over {} devices vs mean {}",
            s.iters, s.n_devices, m.mean_iterations
        )));
    }
    let n = |ev: &str| s.event_counts.get(ev).copied().unwrap_or(0);
    // Begin/end pairings are directional, not exact: the duration cap
    // cuts runs mid-operation (a worker blocked at the gate, a push in
    // flight) and a blackout aborts a push leg without its end event,
    // so starts may outnumber ends — but an end without a start is
    // always a bug. (The hand-written tier-1 matrix, whose scenarios
    // end cleanly, keeps pinning exact equality.)
    let mut paired = |start: &str, end: &str| {
        if n(end) > n(start) {
            violations.push(Violation::Reconciliation(format!(
                "more {end} than {start} events: {} vs {}",
                n(end),
                n(start)
            )));
        }
    };
    if !faulty {
        paired("gate_enter", "gate_exit");
    }
    paired("push_start", "push_end");
    paired("pull_start", "pull_end");
    if n("iter_end") != s.iters {
        violations.push(Violation::Reconciliation(format!(
            "{} iter_end events vs run_end total {}",
            n("iter_end"),
            s.iters
        )));
    }
    if n("meta") != 1 || n("run_end") != 1 || n("close") as usize != s.n_devices {
        violations.push(Violation::Reconciliation(
            "meta/run_end/close cardinality broken".to_owned(),
        ));
    }
}

/// The per-model instantaneous staleness bound a `gate_enter` lead may
/// not exceed, reconstructed from the journal as the checker walks it.
enum StalenessBound {
    /// Static bound (BSP / SSP / ROG): one limit for the whole run.
    Fixed(u64),
    /// Model-engine adaptive bound (DSSP / ABS): per-worker thresholds,
    /// updated by `threshold_adapt` events; a `gate_enter` lead may not
    /// exceed the worker's journaled threshold + 1.
    PerWorker { thr: Vec<u64>, initial: u64 },
    /// Row-engine adaptive bound (the `roga` hybrid): one cluster-wide
    /// threshold, updated by `auto_threshold` events; a `gate_enter`
    /// lead may not exceed `rsp_bound(cur)`.
    Row { cur: u32 },
}

/// The staleness invariant, observed from the journal: every
/// `gate_enter` lead stays within the model's *instantaneous* bound —
/// static for BSP/SSP/ROG, replayed from the `threshold_adapt` /
/// `auto_threshold` event stream for the adaptive models. ASP is
/// unbounded and FLOWN adapts without journaling its bound, so both
/// are skipped, as are plans that take a shard or an aggregator down
/// (a skipped shard legitimately ages rows past the bound — the
/// engine's own watchdog excludes it too).
fn check_staleness(sc: &Scenario, journal: &str, violations: &mut Vec<Violation>) {
    let plan = sc.fault_plan().expect("scenario script must be valid");
    let outage = plan.windows().iter().any(|w| {
        matches!(
            w.kind,
            FaultKind::ServerOutage(_) | FaultKind::AggregatorOutage(_)
        )
    });
    if outage {
        return;
    }
    let mut bound = match sc.strategy {
        Strategy::Bsp => StalenessBound::Fixed(1),
        Strategy::Ssp { threshold } => StalenessBound::Fixed(u64::from(threshold) + 1),
        Strategy::Asp | Strategy::Flown { .. } => return,
        Strategy::Dssp { min_threshold, .. } | Strategy::Abs { min_threshold, .. } => {
            StalenessBound::PerWorker {
                thr: Vec::new(),
                initial: u64::from(min_threshold),
            }
        }
        Strategy::Rog { threshold } => StalenessBound::Fixed(gate::rsp_bound(threshold)),
        Strategy::RogAdaptive { min_threshold, .. } => StalenessBound::Row { cur: min_threshold },
    };
    for line in journal.lines() {
        if line.contains("\"ev\":\"threshold_adapt\"") {
            if let (StalenessBound::PerWorker { thr, initial }, Ok(rec)) =
                (&mut bound, Record::parse(line))
            {
                if let (Some(w), Some(t)) = (rec.num("w"), rec.num("threshold")) {
                    let w = w as usize;
                    if thr.len() <= w {
                        thr.resize(w + 1, *initial);
                    }
                    thr[w] = t as u64;
                }
            }
            continue;
        }
        if line.contains("\"ev\":\"auto_threshold\"") {
            if let (StalenessBound::Row { cur }, Ok(rec)) = (&mut bound, Record::parse(line)) {
                if let Some(t) = rec.num("threshold") {
                    *cur = t as u32;
                }
            }
            continue;
        }
        if !line.contains("\"ev\":\"gate_enter\"") {
            continue;
        }
        let Ok(rec) = Record::parse(line) else {
            continue; // parse failures are the reconciliation check's job
        };
        let lead = rec.num("lead").unwrap_or(0.0) as u64;
        let limit = match &bound {
            StalenessBound::Fixed(b) => *b,
            StalenessBound::PerWorker { thr, initial } => {
                let w = rec.num("w").unwrap_or(0.0) as usize;
                thr.get(w).copied().unwrap_or(*initial) + 1
            }
            StalenessBound::Row { cur } => gate::rsp_bound(*cur),
        };
        if lead > limit {
            violations.push(Violation::StalenessExceeded(format!(
                "gate_enter lead {lead} > instantaneous bound {limit} ({}): {line}",
                sc.strategy.name()
            )));
            return; // one witness line is enough
        }
    }
}

/// The codec-selector replay contract, observed from the journal:
/// `codec_select` events may only appear when the scenario's effective
/// codec is `auto`, each names a worker inside the fleet and one of
/// the rungs the selector actually chooses between ("onebit" /
/// "sparse"), and per worker no two consecutive selections repeat —
/// the engine skips no-op switches before journaling, and every
/// worker starts on the dense one-bit rung.
fn check_codec_select(sc: &Scenario, journal: &str, violations: &mut Vec<Violation>) {
    let auto = sc.config().effective_codec().is_auto();
    let mut last: Vec<String> = vec!["onebit".to_owned(); sc.n_workers];
    for line in journal.lines() {
        if !line.contains("\"ev\":\"codec_select\"") {
            continue;
        }
        if !auto {
            violations.push(Violation::CodecSelect(format!(
                "codec_select journaled by a non-auto ({}) run: {line}",
                sc.codec.name()
            )));
            return;
        }
        let Ok(rec) = Record::parse(line) else {
            continue; // parse failures are the reconciliation check's job
        };
        let w = rec.num("w").unwrap_or(f64::NAN);
        let codec = rec.str("codec").unwrap_or("").to_owned();
        if !(w >= 0.0 && (w as usize) < sc.n_workers) {
            violations.push(Violation::CodecSelect(format!(
                "worker {w} outside the {}-worker fleet: {line}",
                sc.n_workers
            )));
            return;
        }
        if codec != "onebit" && codec != "sparse" {
            violations.push(Violation::CodecSelect(format!(
                "unknown selector rung {codec:?}: {line}"
            )));
            return;
        }
        let w = w as usize;
        if last[w] == codec {
            violations.push(Violation::CodecSelect(format!(
                "worker {w} re-selected {codec:?} it was already on: {line}"
            )));
            return;
        }
        last[w] = codec;
    }
}

/// Replays `sc` across thread counts and twin topologies, returning
/// every invariant violation. Never panics on engine failures — they
/// become [`Violation::EnginePanic`] — so the shrinker can replay
/// failing scenarios freely.
///
/// Uses the process-global compute-thread override (restored to auto
/// on exit) and briefly swaps the panic hook; callers running inside a
/// test binary should keep that binary to a single `#[test]`.
pub fn check_scenario(sc: &Scenario) -> CheckOutcome {
    let cfg = sc.config();
    let mut violations = Vec::new();

    // --- differential replays across thread counts.
    let mut base: Option<RunOutcome> = None;
    for threads in THREAD_COUNTS {
        compute::set_thread_override(Some(threads));
        let res = quiet_run(&cfg);
        compute::set_thread_override(None);
        let out = match res {
            Ok(out) => out,
            Err(message) => {
                violations.push(Violation::EnginePanic { threads, message });
                // Remaining invariants are meaningless once a replay
                // dies; report the panic and stop.
                return CheckOutcome {
                    violations,
                    virtual_secs: 0.0,
                    sim_events: 0,
                };
            }
        };
        match &base {
            None => base = Some(out),
            Some(b) => {
                let b_m = runs_to_json(std::slice::from_ref(&b.metrics));
                let o_m = runs_to_json(std::slice::from_ref(&out.metrics));
                if b_m != o_m {
                    violations.push(Violation::ThreadDivergence {
                        threads,
                        what: "serialized metrics differ".to_owned(),
                    });
                }
                let b_j = b.journal.as_ref().expect("traced").to_jsonl();
                let o_j = out.journal.as_ref().expect("traced").to_jsonl();
                if b_j != o_j {
                    violations.push(Violation::ThreadDivergence {
                        threads,
                        what: "journal bytes differ".to_owned(),
                    });
                }
                if b.stats != out.stats {
                    violations.push(Violation::ThreadDivergence {
                        threads,
                        what: format!("fleet stats differ: {:?} vs {:?}", b.stats, out.stats),
                    });
                }
            }
        }
    }
    let base = base.expect("base replay always runs");
    let m = &base.metrics;
    let journal = base.journal.as_ref().expect("traced").to_jsonl();

    // --- progress watchdog.
    if m.mean_iterations <= 0.0 {
        violations.push(Violation::NoProgress);
    }

    // --- byte-ledger sanity. (The exact 4-way conservation against
    // offered bytes is the engine's own debug assert, which the panic
    // capture above surfaces; here we check what the metrics expose.)
    for (what, v) in [
        ("useful_bytes", m.useful_bytes),
        ("wasted_bytes", m.wasted_bytes),
        ("lost_bytes", m.lost_bytes),
        ("corrupt_bytes", m.corrupt_bytes),
    ] {
        if !v.is_finite() || v < 0.0 {
            violations.push(Violation::ByteLedger(format!("{what} = {v}")));
        }
    }
    if !cfg.loss_active() && (m.lost_bytes != 0.0 || m.corrupt_bytes != 0.0) {
        violations.push(Violation::ByteLedger(format!(
            "loss-free scenario lost {} / corrupted {} bytes",
            m.lost_bytes, m.corrupt_bytes
        )));
    }

    // --- journal ↔ metrics reconciliation.
    let faulty = sc
        .fault_plan()
        .map(|p| !p.windows().is_empty())
        .unwrap_or(true);
    reconcile(m, &journal, faulty, &mut violations);

    // --- RSP staleness bound, observed at the gate.
    check_staleness(sc, &journal, &mut violations);

    // --- codec-selector replay contract.
    check_codec_select(sc, &journal, &mut violations);

    // --- topology twins (row-granular strategies only).
    if sc.strategy.is_row_granular() {
        if sc.n_shards == 1 {
            // `n_shards: 0` is documented as "treated as 1"; the twin
            // must be byte-identical, journal included.
            match quiet_run(&ExperimentConfig {
                n_shards: 0,
                ..cfg.clone()
            }) {
                Err(e) => violations.push(Violation::ShardTwinDivergence(format!(
                    "shard-0 twin panicked: {e}"
                ))),
                Ok(twin) => {
                    if runs_to_json(std::slice::from_ref(&twin.metrics))
                        != runs_to_json(std::slice::from_ref(m))
                    {
                        violations.push(Violation::ShardTwinDivergence(
                            "serialized metrics differ".to_owned(),
                        ));
                    }
                    if twin.journal.as_ref().expect("traced").to_jsonl() != journal {
                        violations.push(Violation::ShardTwinDivergence(
                            "journal bytes differ".to_owned(),
                        ));
                    }
                }
            }
        }
        let plan = sc.fault_plan().expect("scenario script must be valid");
        let agg_outage = plan
            .windows()
            .iter()
            .any(|w| matches!(w.kind, FaultKind::AggregatorOutage(_)));
        if sc.n_aggregators > 0 && !agg_outage {
            // The aggregator tier is pure accounting: the flat twin
            // matches modulo the aggregator records and name segment.
            match quiet_run(&ExperimentConfig {
                n_aggregators: 0,
                ..cfg.clone()
            }) {
                Err(e) => violations.push(Violation::HierarchyTwinDivergence(format!(
                    "flat twin panicked: {e}"
                ))),
                Ok(flat) => {
                    for d in metrics_diff_modulo_name(&flat.metrics, m) {
                        violations.push(Violation::HierarchyTwinDivergence(d));
                    }
                    let flat_j = flat.journal.as_ref().expect("traced").to_jsonl();
                    if normalized(&flat_j, sc.n_aggregators)
                        != normalized(&journal, sc.n_aggregators)
                    {
                        violations.push(Violation::HierarchyTwinDivergence(
                            "normalized journals differ".to_owned(),
                        ));
                    }
                }
            }
        }
    }

    CheckOutcome {
        violations,
        virtual_secs: m.duration,
        sim_events: base.stats.sim_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use rog_compress::CodecChoice;
    use rog_trainer::Environment;

    #[test]
    fn a_clean_scenario_passes_every_invariant() {
        let sc = Scenario {
            gen_seed: 0,
            index: 0,
            strategy: Strategy::Rog { threshold: 4 },
            n_workers: 2,
            n_shards: 1,
            n_aggregators: 0,
            environment: Environment::Stable,
            duration_secs: 20.0,
            run_seed: 42,
            loss: None,
            codec: CodecChoice::OneBit,
            script: String::new(),
        };
        let out = check_scenario(&sc);
        assert!(out.passed(), "violations: {:?}", out.violations);
        assert!(out.virtual_secs > 0.0);
        assert!(out.sim_events > 0);
    }

    // Synthetic journals, not full replays: `check_scenario` swaps
    // process-global state, so this binary keeps a single replay test.
    #[test]
    fn codec_select_contract_is_enforced_from_the_journal() {
        let sc = |codec| Scenario {
            gen_seed: 0,
            index: 0,
            strategy: Strategy::Rog { threshold: 4 },
            n_workers: 2,
            n_shards: 1,
            n_aggregators: 0,
            environment: Environment::Stable,
            duration_secs: 20.0,
            run_seed: 42,
            loss: None,
            codec,
            script: String::new(),
        };
        let ev = |w: u32, codec: &str| {
            format!("{{\"t\":1.0,\"ev\":\"codec_select\",\"w\":{w},\"codec\":\"{codec}\"}}")
        };

        // A legal auto trace: each worker flips rungs alternately.
        let mut v = Vec::new();
        let ok = [ev(0, "sparse"), ev(1, "sparse"), ev(0, "onebit")].join("\n");
        check_codec_select(&sc(CodecChoice::Auto), &ok, &mut v);
        assert!(v.is_empty(), "{v:?}");

        // Any codec_select outside an auto run is a violation.
        check_codec_select(&sc(CodecChoice::OneBit), &ok, &mut v);
        assert!(matches!(v.as_slice(), [Violation::CodecSelect(_)]));

        // Workers start on one-bit, so the first switch must leave it.
        v.clear();
        check_codec_select(&sc(CodecChoice::Auto), &ev(0, "onebit"), &mut v);
        assert_eq!(v.len(), 1, "{v:?}");

        // Re-selecting the current rung, unknown rungs, and
        // out-of-fleet workers are each a violation.
        v.clear();
        let dup = [ev(0, "sparse"), ev(0, "sparse")].join("\n");
        check_codec_select(&sc(CodecChoice::Auto), &dup, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        v.clear();
        check_codec_select(&sc(CodecChoice::Auto), &ev(0, "q4"), &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        v.clear();
        check_codec_select(&sc(CodecChoice::Auto), &ev(2, "sparse"), &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind(), "codec_select");
    }
}
