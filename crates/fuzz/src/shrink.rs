//! Greedy scenario minimization.
//!
//! Given a failing [`Scenario`], [`shrink`] searches for the smallest
//! scenario that still fails: it drops fault-script lines one at a
//! time, then clears whole dimensions (loss, aggregators, shards,
//! workers, duration), re-running the full differential check after
//! every candidate mutation and keeping only mutations that preserve
//! the failure. The passes repeat until a fixpoint (or the replay
//! budget runs out), so a line whose removal only becomes safe after
//! another knob clears is still dropped eventually.
//!
//! The result is exchanged as `.repro` text ([`Scenario::to_repro`]) —
//! config, seeds and the surviving script lines — which is exactly
//! what a regression-corpus entry or a bug report needs.

use crate::check::{check_scenario, Violation};
use crate::scenario::Scenario;

/// Outcome of a shrink search.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The smallest still-failing scenario found.
    pub scenario: Scenario,
    /// Violations of that minimal scenario (empty only when the input
    /// scenario already passed — nothing to shrink).
    pub violations: Vec<Violation>,
    /// Differential checks spent, including the initial confirmation.
    pub replays: usize,
}

/// Shortest admissible duration for a shrunk scenario — twice the
/// generator's fault-free prefix, the same floor the generator obeys.
const MIN_DURATION_SECS: f64 = 20.0;

fn drop_script_line(sc: &Scenario, index: usize) -> Scenario {
    let script: String = sc
        .script
        .lines()
        .enumerate()
        .filter(|(i, _)| *i != index)
        .map(|(_, l)| format!("{l}\n"))
        .collect();
    Scenario {
        script,
        ..sc.clone()
    }
}

/// One whole-dimension simplification; `None` when already minimal.
fn knob_candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    if sc.loss.is_some() {
        out.push(Scenario {
            loss: None,
            ..sc.clone()
        });
    }
    if sc.n_aggregators > 0 {
        out.push(Scenario {
            n_aggregators: 0,
            ..sc.clone()
        });
    }
    if sc.n_shards > 1 {
        out.push(Scenario {
            n_shards: 1,
            ..sc.clone()
        });
    }
    if sc.n_workers > 2 {
        out.push(Scenario {
            n_workers: 2,
            ..sc.clone()
        });
    }
    if sc.duration_secs > MIN_DURATION_SECS {
        out.push(Scenario {
            duration_secs: (sc.duration_secs / 2.0).max(MIN_DURATION_SECS),
            ..sc.clone()
        });
    }
    out
}

/// A knob candidate may strand script lines that referenced the
/// removed dimension (an `agg-restart` after aggregators went, a
/// worker index beyond the shrunk fleet, a shard beyond the shrunk
/// plane). Those scenarios would fail the engine's plan validation for
/// the wrong reason, so they are skipped rather than checked.
fn plan_fits(sc: &Scenario) -> bool {
    let Ok(plan) = sc.fault_plan() else {
        return false;
    };
    let cfg = sc.config();
    plan.max_worker().is_none_or(|w| w < cfg.n_workers)
        && plan.max_shard().is_none_or(|s| s < cfg.effective_shards())
        && plan
            .max_aggregator()
            .is_none_or(|a| a < cfg.effective_aggregators())
}

/// Minimizes a failing scenario. Spends at most `max_replays`
/// differential checks (each check replays the scenario at three
/// thread counts plus twins). If the input scenario passes, it is
/// returned unchanged with empty `violations`.
pub fn shrink(sc: &Scenario, max_replays: usize) -> ShrinkResult {
    fn fails(sc: &Scenario, replays: &mut usize) -> Option<Vec<Violation>> {
        *replays += 1;
        let out = check_scenario(sc);
        (!out.passed()).then_some(out.violations)
    }
    let mut replays = 0usize;

    let mut current = sc.clone();
    let Some(mut violations) = fails(&current, &mut replays) else {
        return ShrinkResult {
            scenario: current,
            violations: Vec::new(),
            replays,
        };
    };

    loop {
        let mut changed = false;

        // Pass 1: drop fault-script lines one at a time.
        let mut i = 0;
        while i < current.script.lines().count() && replays < max_replays {
            let cand = drop_script_line(&current, i);
            if let Some(v) = fails(&cand, &mut replays) {
                current = cand;
                violations = v;
                changed = true;
                // Line i was removed; the next line now has index i.
            } else {
                i += 1;
            }
        }

        // Pass 2: clear whole dimensions, re-deriving candidates after
        // every accepted mutation (repeat-until-rejected covers the
        // duration-halving chain).
        let mut k = 0;
        loop {
            let cands = knob_candidates(&current);
            if k >= cands.len() || replays >= max_replays {
                break;
            }
            let cand = cands[k].clone();
            if plan_fits(&cand) {
                if let Some(v) = fails(&cand, &mut replays) {
                    current = cand;
                    violations = v;
                    changed = true;
                    k = 0; // candidate list changed; start over
                    continue;
                }
            }
            k += 1;
        }

        if !changed || replays >= max_replays {
            break;
        }
    }

    ShrinkResult {
        scenario: current,
        violations,
        replays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rog_trainer::{Environment, Strategy};

    fn sc(script: &str) -> Scenario {
        Scenario {
            gen_seed: 0,
            index: 0,
            strategy: Strategy::Rog { threshold: 2 },
            n_workers: 3,
            n_shards: 2,
            n_aggregators: 1,
            environment: Environment::Stable,
            duration_secs: 40.0,
            run_seed: 1,
            loss: None,
            codec: rog_compress::CodecChoice::OneBit,
            script: script.to_owned(),
        }
    }

    #[test]
    fn drop_script_line_removes_exactly_one_line() {
        let s = sc("offline 1 10 20\nblackout 0 12 14\nloss 2 15 18 0.5\n");
        let d = drop_script_line(&s, 1);
        assert_eq!(d.script, "offline 1 10 20\nloss 2 15 18 0.5\n");
        assert_eq!(drop_script_line(&s, 0).script_lines(), 2);
        assert_eq!(drop_script_line(&s, 2).script_lines(), 2);
    }

    #[test]
    fn knob_candidates_cover_every_dimension_once() {
        let mut s = sc("");
        s.loss = Some(crate::scenario::LossSpec {
            seed: 1,
            iid_loss: 0.1,
            corrupt: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            ge_mean: None,
        });
        let cands = knob_candidates(&s);
        assert_eq!(cands.len(), 5);
        assert!(cands.iter().any(|c| c.loss.is_none()));
        assert!(cands.iter().any(|c| c.n_aggregators == 0));
        assert!(cands.iter().any(|c| c.n_shards == 1));
        assert!(cands.iter().any(|c| c.n_workers == 2));
        assert!(cands.iter().any(|c| c.duration_secs == 20.0));
        // A minimal scenario has nothing left to clear.
        let minimal = Scenario {
            n_aggregators: 0,
            n_shards: 1,
            n_workers: 2,
            duration_secs: 20.0,
            loss: None,
            ..s
        };
        assert!(knob_candidates(&minimal).is_empty());
    }

    #[test]
    fn plan_fits_rejects_stranded_indices() {
        // Fleet shrunk to 2 workers, but the script faults worker 2.
        let stranded = Scenario {
            n_workers: 2,
            ..sc("offline 2 10 20\n")
        };
        assert!(!plan_fits(&stranded));
        assert!(plan_fits(&sc("offline 2 10 20\n")));
        // Aggregator outage without aggregators.
        let no_aggs = Scenario {
            n_aggregators: 0,
            ..sc("agg-restart 0 10 20\n")
        };
        assert!(!plan_fits(&no_aggs));
        assert!(plan_fits(&sc("agg-restart 0 10 20\n")));
    }
}
