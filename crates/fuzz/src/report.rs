//! The fuzz campaign report.
//!
//! Aggregates per-scenario results into a text summary and a JSON
//! artifact (`BENCH_fuzz.json`). Every field is **wall-clock-free** —
//! counts, virtual seconds, sim events and a deterministic fingerprint
//! — so two runs of the same campaign produce byte-identical reports;
//! CI diffs them to pin harness determinism, and throughput ratchets
//! use scenarios per *virtual* minute, which no machine speed can
//! perturb.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::check::CheckOutcome;

/// One checked scenario, reduced to what the report keeps.
#[derive(Debug, Clone)]
pub struct ScenarioRecord {
    /// Display label ([`crate::Scenario::label`] or a corpus filename).
    pub label: String,
    /// Strategy display name ("ROG-4", "BSP", …).
    pub strategy: String,
    /// Violation kind keys, empty when green.
    pub violation_kinds: Vec<String>,
    /// Virtual seconds the base replay covered.
    pub virtual_secs: f64,
    /// Sim events the base replay dispatched.
    pub sim_events: u64,
}

impl ScenarioRecord {
    /// Builds a record from a check outcome.
    pub fn new(label: String, strategy: String, outcome: &CheckOutcome) -> Self {
        Self {
            label,
            strategy,
            violation_kinds: outcome
                .violations
                .iter()
                .map(|v| v.kind().to_owned())
                .collect(),
            virtual_secs: outcome.virtual_secs,
            sim_events: outcome.sim_events,
        }
    }
}

/// Campaign-level aggregation.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Root generator seed (0 for corpus-only replays).
    pub gen_seed: u64,
    /// Duration ceiling the generator ran with.
    pub max_duration_secs: f64,
    /// Per-scenario records in check order.
    pub records: Vec<ScenarioRecord>,
}

/// Exact, `-0.0`-folded float rendering shared by the JSON emitters:
/// Rust's shortest-repr `{}` round-trips f64 exactly, so reports are
/// byte-stable across runs and hosts.
fn json_f64(v: f64) -> String {
    format!("{}", v + 0.0)
}

/// FNV-1a over the report-relevant bytes of every record — a cheap
/// deterministic campaign fingerprint for run-twice byte diffs.
fn fingerprint(records: &[ScenarioRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in records {
        eat(r.label.as_bytes());
        eat(r.strategy.as_bytes());
        for k in &r.violation_kinds {
            eat(k.as_bytes());
        }
        eat(&r.virtual_secs.to_bits().to_le_bytes());
        eat(&r.sim_events.to_le_bytes());
    }
    h
}

impl FuzzReport {
    /// An empty report for a campaign rooted at `gen_seed`.
    pub fn new(gen_seed: u64, max_duration_secs: f64) -> Self {
        Self {
            gen_seed,
            max_duration_secs,
            records: Vec::new(),
        }
    }

    /// Appends one scenario record.
    pub fn push(&mut self, record: ScenarioRecord) {
        self.records.push(record);
    }

    /// Number of failing scenarios.
    pub fn failing(&self) -> usize {
        self.records
            .iter()
            .filter(|r| !r.violation_kinds.is_empty())
            .count()
    }

    /// Total virtual seconds replayed (base replays only).
    pub fn total_virtual_secs(&self) -> f64 {
        self.records.iter().map(|r| r.virtual_secs).sum()
    }

    /// Total sim events dispatched (base replays only).
    pub fn total_sim_events(&self) -> u64 {
        self.records.iter().map(|r| r.sim_events).sum()
    }

    /// Scenarios checked per virtual minute — the wall-clock-free
    /// throughput measure the CI lane ratchets.
    pub fn scenarios_per_virtual_minute(&self) -> f64 {
        let secs = self.total_virtual_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.records.len() as f64 / (secs / 60.0)
    }

    fn by_key<F: Fn(&ScenarioRecord) -> Vec<String>>(&self, f: F) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            for k in f(r) {
                *out.entry(k).or_insert(0) += 1;
            }
        }
        out
    }

    /// Scenario counts by strategy display name.
    pub fn scenarios_by_strategy(&self) -> BTreeMap<String, u64> {
        self.by_key(|r| vec![r.strategy.clone()])
    }

    /// Violation counts by kind key.
    pub fn violations_by_kind(&self) -> BTreeMap<String, u64> {
        self.by_key(|r| r.violation_kinds.clone())
    }

    /// Human-readable campaign summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz campaign: seed {}  scenarios {}  failing {}",
            self.gen_seed,
            self.records.len(),
            self.failing()
        );
        let _ = writeln!(
            out,
            "virtual time {:.1} s  sim events {}  scenarios/virtual-minute {:.3}",
            self.total_virtual_secs(),
            self.total_sim_events(),
            self.scenarios_per_virtual_minute()
        );
        let _ = writeln!(out, "\nscenarios by strategy:");
        for (k, n) in self.scenarios_by_strategy() {
            let _ = writeln!(out, "  {k:<12} {n:>6}");
        }
        let by_kind = self.violations_by_kind();
        if by_kind.is_empty() {
            let _ = writeln!(out, "\nall invariants green");
        } else {
            let _ = writeln!(out, "\nviolations by kind:");
            for (k, n) in by_kind {
                let _ = writeln!(out, "  {k:<20} {n:>6}");
            }
            let _ = writeln!(out, "\nfailing scenarios:");
            for r in self
                .records
                .iter()
                .filter(|r| !r.violation_kinds.is_empty())
            {
                let _ = writeln!(out, "  {}: {}", r.label, r.violation_kinds.join(", "));
            }
        }
        let _ = writeln!(out, "\nfingerprint {:#018x}", fingerprint(&self.records));
        out
    }

    /// The `BENCH_fuzz.json` artifact: wall-clock-free, byte-stable.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"fuzz\",\n");
        out.push_str(&format!("  \"gen_seed\": {},\n", self.gen_seed));
        out.push_str(&format!(
            "  \"max_duration_secs\": {},\n",
            json_f64(self.max_duration_secs)
        ));
        out.push_str(&format!("  \"scenarios\": {},\n", self.records.len()));
        out.push_str(&format!(
            "  \"green\": {},\n",
            self.records.len() - self.failing()
        ));
        out.push_str(&format!("  \"failing\": {},\n", self.failing()));
        let map_json = |m: &BTreeMap<String, u64>| -> String {
            let body: Vec<String> = m.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
            format!("{{{}}}", body.join(", "))
        };
        out.push_str(&format!(
            "  \"scenarios_by_strategy\": {},\n",
            map_json(&self.scenarios_by_strategy())
        ));
        out.push_str(&format!(
            "  \"violations_by_kind\": {},\n",
            map_json(&self.violations_by_kind())
        ));
        out.push_str(&format!(
            "  \"total_virtual_secs\": {},\n",
            json_f64(self.total_virtual_secs())
        ));
        out.push_str(&format!(
            "  \"total_sim_events\": {},\n",
            self.total_sim_events()
        ));
        out.push_str(&format!(
            "  \"scenarios_per_virtual_minute\": {},\n",
            json_f64(self.scenarios_per_virtual_minute())
        ));
        out.push_str(&format!(
            "  \"fingerprint\": \"{:#018x}\"\n",
            fingerprint(&self.records)
        ));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, strategy: &str, kinds: &[&str]) -> ScenarioRecord {
        ScenarioRecord {
            label: label.to_owned(),
            strategy: strategy.to_owned(),
            violation_kinds: kinds.iter().map(|s| (*s).to_owned()).collect(),
            virtual_secs: 30.0,
            sim_events: 1000,
        }
    }

    #[test]
    fn report_aggregates_and_is_deterministic() {
        let mut a = FuzzReport::new(1, 45.0);
        a.push(record("s0", "ROG-4", &[]));
        a.push(record("s1", "BSP", &["no_progress"]));
        a.push(record("s2", "ROG-2", &["engine_panic", "no_progress"]));
        assert_eq!(a.failing(), 2);
        assert_eq!(a.total_sim_events(), 3000);
        assert!((a.total_virtual_secs() - 90.0).abs() < 1e-12);
        assert!((a.scenarios_per_virtual_minute() - 2.0).abs() < 1e-12);
        assert_eq!(a.violations_by_kind().get("no_progress"), Some(&2));
        assert_eq!(a.scenarios_by_strategy().len(), 3);

        let mut b = FuzzReport::new(1, 45.0);
        b.push(record("s0", "ROG-4", &[]));
        b.push(record("s1", "BSP", &["no_progress"]));
        b.push(record("s2", "ROG-2", &["engine_panic", "no_progress"]));
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render(), b.render());

        // Any record perturbation moves the fingerprint.
        b.records[0].sim_events += 1;
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = FuzzReport::new(7, 30.0);
        r.push(record("s0", "ROG-4", &[]));
        let json = r.to_json();
        for key in [
            "\"bench\": \"fuzz\"",
            "\"gen_seed\": 7",
            "\"scenarios\": 1",
            "\"green\": 1",
            "\"failing\": 0",
            "\"total_virtual_secs\": 30",
            "\"scenarios_per_virtual_minute\": 2",
            "\"fingerprint\": \"0x",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
