//! Meta-test: the harness must catch a real, deliberately injected
//! engine bug and shrink it to a tiny repro.
//!
//! The injection widens the RSP cross-row pull gate
//! (`rog_sync::gate::testhooks::set_gate_slack`) by a few iterations —
//! a genuine staleness-contract violation in the one predicate the
//! engine, the parameter server and the test suites share. The
//! engine's independent debug-build watchdog (`pushed iter ≤ min +
//! bound`) and the checker's journal-level gate-lead invariant both
//! observe the widened gate, so the differential check must flag
//! scenarios whose gate actually engages.
//!
//! The gate-slack hook and the compute-thread override are
//! process-global, so this file holds exactly one `#[test]` — it must
//! not share a binary with clean-gate tests.

use rog_fuzz::{check_scenario, shrink, Scenario, ScenarioGen};
use rog_sync::gate::testhooks;
use rog_trainer::Strategy;

/// Scenario draws to scan for one whose gate engages under the bug.
const SEARCH_BUDGET: u64 = 48;
/// Differential checks the shrinker may spend.
const SHRINK_BUDGET: usize = 150;

#[test]
fn harness_catches_and_shrinks_an_injected_gate_bug() {
    // Widen the pull gate by 3 iterations. Production code never sets
    // this; every replay below runs the buggy gate.
    testhooks::set_gate_slack(3);

    // The fuzzer, unmodified, must find the bug: scan generated
    // scenarios until one fails. Only ROG scenarios exercise the
    // row-granular pull gate, and a gate that never blocks (threshold
    // above the natural worker spread) cannot witness the slack, so
    // not every draw fails — that is exactly why the fuzzer scans.
    let gen = ScenarioGen::new(0xb06).max_duration(30.0);
    let mut caught: Option<(Scenario, Vec<String>)> = None;
    for index in 0..SEARCH_BUDGET {
        let sc = gen.scenario(index);
        if !matches!(sc.strategy, Strategy::Rog { .. }) {
            continue;
        }
        let out = check_scenario(&sc);
        if !out.passed() {
            let kinds = out.violations.iter().map(|v| v.kind().to_owned()).collect();
            caught = Some((sc, kinds));
            break;
        }
    }
    let (sc, kinds) = caught.unwrap_or_else(|| {
        testhooks::set_gate_slack(0);
        panic!("no scenario in {SEARCH_BUDGET} draws caught the injected gate bug")
    });
    assert!(
        kinds
            .iter()
            .any(|k| k == "engine_panic" || k == "staleness_exceeded"),
        "the injected gate bug must surface as a staleness violation, got {kinds:?}"
    );

    // Shrink it. The bug lives in the gate itself, not in any fault
    // window, so the minimizer should strip the scenario to (nearly)
    // nothing — the issue demands a ≤ 5-line fault script.
    let shrunk = shrink(&sc, SHRINK_BUDGET);
    assert!(
        !shrunk.violations.is_empty(),
        "shrinking lost the failure (replays: {})",
        shrunk.replays
    );
    assert!(
        shrunk.scenario.script_lines() <= 5,
        "shrunk repro still has {} fault lines:\n{}",
        shrunk.scenario.script_lines(),
        shrunk.scenario.to_repro()
    );
    assert!(
        shrunk.scenario.script_lines() <= sc.script_lines(),
        "shrinking grew the script"
    );

    // The minimal repro round-trips through the exchange format.
    let repro = shrunk.scenario.to_repro();
    assert_eq!(
        Scenario::parse(&repro).expect("repro parses"),
        shrunk.scenario
    );

    // Control: with the injection removed the very same minimal
    // scenario is green — the harness flagged the injected bug, not a
    // latent real one. (If this fails, the fuzzer just found a genuine
    // engine bug; replay the printed repro.)
    testhooks::set_gate_slack(0);
    let clean = check_scenario(&shrunk.scenario);
    assert!(
        clean.passed(),
        "minimal scenario fails even without the injected bug — real bug?\n{repro}\n{:?}",
        clean.violations
    );
}
