//! Per-worker iteration version bookkeeping.

/// Tracks the latest iteration whose gradients each worker has pushed to
/// the parameter server.
///
/// # Example
///
/// ```
/// use rog_sync::VersionVector;
///
/// let mut v = VersionVector::new(3);
/// v.record_push(0, 1);
/// v.record_push(1, 1);
/// assert_eq!(v.min(), 0); // worker 2 has pushed nothing yet
/// v.record_push(2, 1);
/// assert_eq!(v.min(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionVector {
    versions: Vec<u64>,
}

impl VersionVector {
    /// Creates a vector for `n_workers`, all at iteration 0 (nothing
    /// pushed).
    ///
    /// # Panics
    ///
    /// Panics if `n_workers == 0`.
    pub fn new(n_workers: usize) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        Self {
            versions: vec![0; n_workers],
        }
    }

    /// Number of workers tracked.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Always false (a version vector has at least one worker).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Records that `worker` pushed gradients of iteration `iter`.
    ///
    /// Versions are monotonic: pushing an older iteration is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn record_push(&mut self, worker: usize, iter: u64) {
        let v = &mut self.versions[worker];
        *v = (*v).max(iter);
    }

    /// Latest pushed iteration of `worker`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn get(&self, worker: usize) -> u64 {
        self.versions[worker]
    }

    /// Iteration of the slowest worker.
    pub fn min(&self) -> u64 {
        *self.versions.iter().min().expect("non-empty")
    }

    /// Iteration of the fastest worker.
    pub fn max(&self) -> u64 {
        *self.versions.iter().max().expect("non-empty")
    }

    /// How far `worker` is ahead of the slowest worker.
    pub fn lead(&self, worker: usize) -> u64 {
        self.get(worker) - self.min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_lead() {
        let mut v = VersionVector::new(3);
        v.record_push(0, 5);
        v.record_push(1, 3);
        v.record_push(2, 4);
        assert_eq!(v.min(), 3);
        assert_eq!(v.max(), 5);
        assert_eq!(v.lead(0), 2);
        assert_eq!(v.lead(1), 0);
    }

    #[test]
    fn pushes_are_monotonic() {
        let mut v = VersionVector::new(1);
        v.record_push(0, 7);
        v.record_push(0, 3);
        assert_eq!(v.get(0), 7);
    }

    #[test]
    #[should_panic]
    fn out_of_range_worker_panics() {
        let mut v = VersionVector::new(2);
        v.record_push(2, 1);
    }
}
