//! Model-granularity synchronization baselines.
//!
//! The paper compares ROG against three baselines that all transmit and
//! synchronize gradients at the granularity of the *whole model*:
//!
//! * **BSP** (bulk synchronous parallel) — a barrier after every
//!   iteration; equivalently an SSP staleness threshold of zero.
//! * **SSP** (stale synchronous parallel) — fast workers may run ahead of
//!   the slowest by at most a fixed staleness threshold.
//! * **FLOWN** — the state-of-the-art dynamic scheduling baseline
//!   (Chen et al., "A Joint Learning and Communications Framework for
//!   Federated Learning Over Wireless Networks"): per-worker staleness
//!   allowances are assigned each iteration from estimated bandwidth and
//!   estimated contribution to accuracy, but transmission remains
//!   model-granular — which is exactly why it cannot track the transient
//!   instability of robotic IoT links (paper Sec. I).
//!
//! Two adaptive-bound competitors ride the same abstraction:
//!
//! * **DSSP** ([`DsspPolicy`], arxiv 1908.11848) — re-derives per-worker
//!   SSP thresholds at runtime from observed iteration-rate EWMAs.
//! * **ABS** ([`AbsPolicy`], arxiv 2301.08895) — one uniform bound,
//!   widened/narrowed on communication-round stall accounting.
//!
//! This crate holds the pieces shared by those baselines: the iteration
//! [`VersionVector`], the SSP [`gate`] predicate, and the
//! [`ThresholdPolicy`] abstraction with [`FixedThreshold`] (BSP/SSP),
//! [`FlownPolicy`], [`DsspPolicy`] and [`AbsPolicy`] implementations.
//! The event-driven engine that drives them over the simulated wireless
//! channel lives in `rog-trainer`.
//!
//! # Example
//!
//! ```
//! use rog_sync::{FixedThreshold, FlownPolicy, ThresholdPolicy, WorkerNetStats};
//!
//! let mut bsp = FixedThreshold::bsp();
//! let stats = vec![WorkerNetStats::default(); 3];
//! assert_eq!(bsp.thresholds(&stats), vec![0, 0, 0]);
//!
//! let mut flown = FlownPolicy::new(4, 20);
//! let ts = flown.thresholds(&stats);
//! assert_eq!(ts.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
mod policy;
mod version;

pub use policy::{
    AbsPolicy, DsspPolicy, FixedThreshold, FlownPolicy, ThresholdPolicy, WorkerNetStats,
};
pub use version::VersionVector;
