//! The SSP staleness gate.
//!
//! In SSP a worker that has finished iteration `n` may *proceed to*
//! iteration `n + 1` only if it would not run more than `threshold`
//! iterations ahead of the slowest worker; otherwise it stalls at the
//! barrier until stragglers catch up. BSP is the special case
//! `threshold == 0` (everyone advances in lockstep).

use crate::VersionVector;

/// Whether a worker that has pushed through iteration `done_iter` may
/// start its next iteration under `threshold`, given everyone's push
/// versions.
///
/// # Example
///
/// ```
/// use rog_sync::{gate, VersionVector};
///
/// let mut v = VersionVector::new(2);
/// v.record_push(0, 4);
/// v.record_push(1, 1);
/// // Worker 0 wants to start iteration 5; it would lead by 4 > 2.
/// assert!(!gate::may_proceed(&v, 0, 2));
/// // With threshold 4 it may.
/// assert!(gate::may_proceed(&v, 0, 4));
/// // The slowest worker may always proceed.
/// assert!(gate::may_proceed(&v, 1, 0));
/// ```
pub fn may_proceed(versions: &VersionVector, worker: usize, threshold: u32) -> bool {
    let next = versions.get(worker) + 1;
    next <= versions.min() + 1 + u64::from(threshold)
}

/// The earliest slowest-worker version that would let `worker` proceed.
/// Useful for diagnostics ("whom are we waiting for").
pub fn required_min_version(versions: &VersionVector, worker: usize, threshold: u32) -> u64 {
    (versions.get(worker) + 1).saturating_sub(1 + u64::from(threshold))
}

// --------------------------------------------------------------- RSP
//
// ROG's row-granulated SP (paper Sec. IV) is a *two-level* staleness
// contract, and these predicates are its single source of truth: the
// ROG engine (`rog-trainer`), the parameter server
// (`rog-core::RowVersionStore`), and the invariant test suites must
// all agree on the bound semantics, in particular on the
// `threshold == 0` clamp below.
//
// Under a row-sharded parameter plane (`rog-core::ShardedServer`) these
// predicates compose per shard: each shard evaluates the RSP gate over
// the versions of the rows *it* owns, so a worker blocks only on the
// shard homing the mandatory row, never on an unrelated shard's
// stragglers. Because the bounds are per-row to begin with, the
// conjunction of the per-shard gates over a disjoint row cover is
// exactly the single-server gate — which is what keeps one-shard runs
// bit-identical.

/// The effective RSP staleness bound for `threshold`.
///
/// A bound of zero would deadlock the row gate (a worker could never
/// advance past its own freshly pushed rows), so `threshold == 0` is
/// clamped to the tightest usable bound of one iteration — the same
/// clamp the server's pull gate applies.
pub fn rsp_bound(threshold: u32) -> u64 {
    u64::from(threshold).max(1)
}

/// Level 1 (same-row mandatory bound): must the row whose last pushed
/// version is `row_iter` be part of the *mandatory* transmission set
/// when its worker finishes iteration `iter`?
///
/// A row may be skipped by the importance scheduler only while its
/// staleness stays strictly below [`rsp_bound`]; once it reaches the
/// bound it must be pushed (and, under loss, retransmitted) before
/// the worker may advance.
pub fn row_is_mandatory(row_iter: u64, iter: u64, threshold: u32) -> bool {
    iter.saturating_sub(row_iter) >= rsp_bound(threshold)
}

/// Level 2 (cross-row pull gate): may a worker that has pushed
/// iteration `pushed_iter` start its next iteration, given the
/// cluster-wide minimum row version `global_min`?
///
/// Mirrors `RowVersionStore::gate_ok`: the worker may run ahead of
/// the stalest row anywhere in the cluster by strictly less than
/// [`rsp_bound`] iterations.
pub fn rsp_may_pull(global_min: u64, pushed_iter: u64, threshold: u32) -> bool {
    pushed_iter < global_min + rsp_bound(threshold) + u64::from(testhooks::gate_slack())
}

/// Defect-injection surface for harness meta-testing. Not part of the
/// public API; see `rog-fuzz`'s injected-bug test.
#[doc(hidden)]
pub mod testhooks {
    use std::sync::atomic::{AtomicU32, Ordering};

    static GATE_SLACK: AtomicU32 = AtomicU32::new(0);

    /// Widens the cross-row pull gate ([`super::rsp_may_pull`]) by
    /// `slack` extra iterations of admissible lead — a deliberate,
    /// process-global staleness-contract violation used to prove the
    /// differential harness catches real gate bugs. Zero (the default
    /// and the only value production code ever observes) restores the
    /// exact paper semantics. Callers must restore zero when done;
    /// tests flipping this cannot share a process with clean runs.
    pub fn set_gate_slack(slack: u32) {
        GATE_SLACK.store(slack, Ordering::Relaxed);
    }

    /// Current injected pull-gate slack (zero in production).
    pub fn gate_slack() -> u32 {
        GATE_SLACK.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn versions(vs: &[u64]) -> VersionVector {
        let mut v = VersionVector::new(vs.len());
        for (w, &iter) in vs.iter().enumerate() {
            v.record_push(w, iter);
        }
        v
    }

    #[test]
    fn bsp_is_lockstep() {
        // Under threshold 0, a worker may only be one iteration ahead of
        // the slowest pusher.
        let v = versions(&[1, 1, 1]);
        assert!(may_proceed(&v, 0, 0));
        let v = versions(&[2, 1, 1]);
        assert!(!may_proceed(&v, 0, 0));
        assert!(may_proceed(&v, 1, 0));
    }

    #[test]
    fn ssp_allows_bounded_lead() {
        let v = versions(&[5, 2, 3]);
        // Worker 0 would be computing iteration 6 while the slowest has
        // pushed only 2 — a lead of 4 iterations, admissible only when
        // `threshold + 1 >= 4`.
        assert!(!may_proceed(&v, 0, 2));
        assert!(may_proceed(&v, 0, 3));
    }

    #[test]
    fn required_min_matches_gate() {
        let v = versions(&[5, 2, 3]);
        let need = required_min_version(&v, 0, 2);
        assert_eq!(need, 3);
        // Once the slowest reaches `need`, the gate opens.
        let v2 = versions(&[5, 3, 3]);
        assert!(may_proceed(&v2, 0, 2));
    }

    #[test]
    fn fresh_cluster_can_start() {
        let v = VersionVector::new(4);
        for w in 0..4 {
            assert!(may_proceed(&v, w, 0));
        }
    }

    #[test]
    fn rsp_bound_clamps_zero_threshold() {
        assert_eq!(rsp_bound(0), 1);
        assert_eq!(rsp_bound(1), 1);
        assert_eq!(rsp_bound(4), 4);
    }

    #[test]
    fn mandatory_rows_are_exactly_those_at_the_bound() {
        // Worker finishing iteration 5 under threshold 2: rows pushed
        // at iteration 4 (staleness 1) may still be skipped, rows from
        // iteration 3 (staleness 2) must go.
        assert!(!row_is_mandatory(4, 5, 2));
        assert!(row_is_mandatory(3, 5, 2));
        assert!(row_is_mandatory(0, 5, 2));
        // threshold 0 behaves like threshold 1.
        assert!(!row_is_mandatory(5, 5, 0));
        assert!(row_is_mandatory(4, 5, 0));
    }

    #[test]
    fn pull_gate_bounds_lead_over_stalest_row() {
        // global_min 3, threshold 2: pushed 4 may pull, pushed 5 stalls.
        assert!(rsp_may_pull(3, 4, 2));
        assert!(!rsp_may_pull(3, 5, 2));
        // BSP-like threshold 0: may lead by strictly less than one.
        assert!(rsp_may_pull(3, 3, 0));
        assert!(!rsp_may_pull(3, 4, 0));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// A model RSP cluster driven through random push/pull/advance
        /// sequences by the proptests below, using the shared gate
        /// predicates exactly as the engine does: when a worker
        /// finishes an iteration it pushes every mandatory row plus a
        /// random voluntary subset, then advances only if the pull
        /// gate admits it.
        struct ModelCluster {
            threshold: u32,
            /// Completed (pushed-through) iterations per worker.
            iters: Vec<u64>,
            /// Last pushed iteration per worker per row.
            rows: Vec<Vec<u64>>,
        }

        impl ModelCluster {
            fn new(n_workers: usize, n_rows: usize, threshold: u32) -> Self {
                Self {
                    threshold,
                    iters: vec![0; n_workers],
                    rows: vec![vec![0; n_rows]; n_workers],
                }
            }

            fn global_min(&self) -> u64 {
                self.rows
                    .iter()
                    .flat_map(|r| r.iter().copied())
                    .min()
                    .unwrap_or(0)
            }

            /// One engine step for `w`: finish iteration, push
            /// mandatory ∪ voluntary rows, advance if the gate opens.
            /// Returns whether the worker advanced.
            fn step(&mut self, w: usize, voluntary_bits: u32) -> bool {
                if !rsp_may_pull(self.global_min(), self.iters[w], self.threshold) {
                    return false; // stalled at the gate
                }
                let n = self.iters[w] + 1;
                for (r, row_iter) in self.rows[w].iter_mut().enumerate() {
                    let voluntary = voluntary_bits >> (r % 32) & 1 == 1;
                    if voluntary || row_is_mandatory(*row_iter, n, self.threshold) {
                        *row_iter = n;
                    }
                }
                self.iters[w] = n;
                true
            }

            fn check_invariants(&self) -> Result<(), TestCaseError> {
                let bound = rsp_bound(self.threshold);
                for (w, rows) in self.rows.iter().enumerate() {
                    // While computing iteration `iters[w] + 1`, no row
                    // may be older than the same-row bound.
                    let computing = self.iters[w] + 1;
                    for (r, &row_iter) in rows.iter().enumerate() {
                        prop_assert!(
                            computing.saturating_sub(row_iter) <= bound,
                            "worker {w} row {r}: iter {computing} sees version {row_iter}, \
                             staleness {} > bound {bound}",
                            computing - row_iter
                        );
                    }
                    // Intra-worker spread stays within the cross-row
                    // bound.
                    let max = rows.iter().copied().max().unwrap_or(0);
                    let min = rows.iter().copied().min().unwrap_or(0);
                    prop_assert!(
                        max - min <= bound,
                        "worker {w}: row-version spread {} > bound {bound}",
                        max - min
                    );
                    // Cross-worker lead over the cluster-stalest row
                    // is what the pull gate bounds.
                    prop_assert!(
                        self.iters[w].saturating_sub(self.global_min()) <= bound,
                        "worker {w}: lead {} over stalest row > bound {bound}",
                        self.iters[w] - self.global_min()
                    );
                }
                Ok(())
            }
        }

        proptest! {
            /// The RSP two-level staleness invariant: random
            /// push/pull/advance sequences never observe a row older
            /// than the same-row bound, nor an intra-worker spread
            /// beyond the cross-row bound.
            #[test]
            fn prop_rsp_two_level_staleness_holds(
                threshold in 0u32..5,
                n_workers in 1usize..5,
                n_rows in 1usize..8,
                ops in proptest::collection::vec((0usize..64, 0u32..=u32::MAX), 1..300),
            ) {
                let mut cluster = ModelCluster::new(n_workers, n_rows, threshold);
                cluster.check_invariants()?;
                for (pick, bits) in ops {
                    cluster.step(pick % n_workers, bits);
                    cluster.check_invariants()?;
                }
            }

            /// Progress: the gate never wedges the whole cluster — the
            /// worker at the global minimum can always advance.
            #[test]
            fn prop_slowest_worker_is_never_gated(
                threshold in 0u32..5,
                n_workers in 1usize..5,
                n_rows in 1usize..8,
                ops in proptest::collection::vec((0usize..64, 0u32..=u32::MAX), 1..200),
            ) {
                let mut cluster = ModelCluster::new(n_workers, n_rows, threshold);
                for (pick, bits) in ops {
                    cluster.step(pick % n_workers, bits);
                }
                let slowest = (0..n_workers)
                    .min_by_key(|&w| cluster.iters[w])
                    .unwrap();
                prop_assert!(
                    cluster.step(slowest, 0),
                    "slowest worker stalled forever"
                );
            }

            /// `may_proceed` and `required_min_version` are two views of
            /// one predicate: the gate opens exactly when the slowest
            /// pusher has reached the required minimum version.
            #[test]
            fn prop_required_min_version_matches_may_proceed(
                threshold in 0u32..8,
                versions_raw in proptest::collection::vec(0u64..60, 1..6),
                pick in 0usize..6,
            ) {
                let mut v = VersionVector::new(versions_raw.len());
                for (w, &iter) in versions_raw.iter().enumerate() {
                    v.record_push(w, iter);
                }
                let w = pick % versions_raw.len();
                prop_assert_eq!(
                    may_proceed(&v, w, threshold),
                    v.min() >= required_min_version(&v, w, threshold),
                    "gate and required-min disagree: versions {:?}, worker {}, threshold {}",
                    versions_raw, w, threshold
                );
            }

            /// The row-granular pull gate is at least as strict as the
            /// coarse SSP gate at the same threshold.
            #[test]
            fn prop_rsp_gate_is_stricter_than_ssp(
                threshold in 0u32..6,
                global_min in 0u64..50,
                lead in 0u64..10,
                n_workers in 2usize..5,
            ) {
                let pushed = global_min + lead;
                if rsp_may_pull(global_min, pushed, threshold) {
                    let mut v = VersionVector::new(n_workers);
                    v.record_push(0, pushed);
                    for w in 1..n_workers {
                        v.record_push(w, global_min);
                    }
                    prop_assert!(
                        may_proceed(&v, 0, threshold),
                        "RSP admitted lead {lead} at threshold {threshold} but SSP refused"
                    );
                }
            }
        }
    }
}
