//! The SSP staleness gate.
//!
//! In SSP a worker that has finished iteration `n` may *proceed to*
//! iteration `n + 1` only if it would not run more than `threshold`
//! iterations ahead of the slowest worker; otherwise it stalls at the
//! barrier until stragglers catch up. BSP is the special case
//! `threshold == 0` (everyone advances in lockstep).

use crate::VersionVector;

/// Whether a worker that has pushed through iteration `done_iter` may
/// start its next iteration under `threshold`, given everyone's push
/// versions.
///
/// # Example
///
/// ```
/// use rog_sync::{gate, VersionVector};
///
/// let mut v = VersionVector::new(2);
/// v.record_push(0, 4);
/// v.record_push(1, 1);
/// // Worker 0 wants to start iteration 5; it would lead by 4 > 2.
/// assert!(!gate::may_proceed(&v, 0, 2));
/// // With threshold 4 it may.
/// assert!(gate::may_proceed(&v, 0, 4));
/// // The slowest worker may always proceed.
/// assert!(gate::may_proceed(&v, 1, 0));
/// ```
pub fn may_proceed(versions: &VersionVector, worker: usize, threshold: u32) -> bool {
    let next = versions.get(worker) + 1;
    next <= versions.min() + 1 + u64::from(threshold)
}

/// The earliest slowest-worker version that would let `worker` proceed.
/// Useful for diagnostics ("whom are we waiting for").
pub fn required_min_version(versions: &VersionVector, worker: usize, threshold: u32) -> u64 {
    (versions.get(worker) + 1).saturating_sub(1 + u64::from(threshold))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn versions(vs: &[u64]) -> VersionVector {
        let mut v = VersionVector::new(vs.len());
        for (w, &iter) in vs.iter().enumerate() {
            v.record_push(w, iter);
        }
        v
    }

    #[test]
    fn bsp_is_lockstep() {
        // Under threshold 0, a worker may only be one iteration ahead of
        // the slowest pusher.
        let v = versions(&[1, 1, 1]);
        assert!(may_proceed(&v, 0, 0));
        let v = versions(&[2, 1, 1]);
        assert!(!may_proceed(&v, 0, 0));
        assert!(may_proceed(&v, 1, 0));
    }

    #[test]
    fn ssp_allows_bounded_lead() {
        let v = versions(&[5, 2, 3]);
        // Worker 0 would be computing iteration 6 while the slowest has
        // pushed only 2 — a lead of 4 iterations, admissible only when
        // `threshold + 1 >= 4`.
        assert!(!may_proceed(&v, 0, 2));
        assert!(may_proceed(&v, 0, 3));
    }

    #[test]
    fn required_min_matches_gate() {
        let v = versions(&[5, 2, 3]);
        let need = required_min_version(&v, 0, 2);
        assert_eq!(need, 3);
        // Once the slowest reaches `need`, the gate opens.
        let v2 = versions(&[5, 3, 3]);
        assert!(may_proceed(&v2, 0, 2));
    }

    #[test]
    fn fresh_cluster_can_start() {
        let v = VersionVector::new(4);
        for w in 0..4 {
            assert!(may_proceed(&v, w, 0));
        }
    }
}
