//! Staleness-threshold policies: fixed (BSP/SSP), FLOWN-style dynamic,
//! and the adaptive-bound competitors DSSP and ABS.

/// Per-worker network/contribution statistics a policy may condition on.
///
/// The engine refreshes these after every synchronization round.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerNetStats {
    /// Estimated link bandwidth in bit/s (from recent transmissions).
    pub est_bandwidth_bps: f64,
    /// Seconds the worker's last model push took.
    pub last_push_secs: f64,
    /// Mean absolute value of the worker's last gradient (its estimated
    /// contribution to accuracy).
    pub grad_mean_abs: f64,
    /// Completed synchronization rounds (push count). Policies that keep
    /// per-round state key their updates on this counter so repeated
    /// refreshes within one round never double-count.
    pub rounds: u64,
    /// Seconds the worker's last full round took (push-done to
    /// push-done on the virtual clock); `0.0` until the first round.
    pub last_round_secs: f64,
    /// Seconds the worker waited at the gate before its last pull was
    /// granted; `0.0` when it passed straight through.
    pub last_stall_secs: f64,
}

impl Default for WorkerNetStats {
    fn default() -> Self {
        Self {
            est_bandwidth_bps: 50e6,
            last_push_secs: 1.0,
            grad_mean_abs: 1.0,
            rounds: 0,
            last_round_secs: 0.0,
            last_stall_secs: 0.0,
        }
    }
}

/// Assigns each worker a staleness threshold for the coming round.
pub trait ThresholdPolicy: std::fmt::Debug {
    /// Display name ("BSP", "SSP-4", "FLOWN").
    fn name(&self) -> String;

    /// Per-worker thresholds given current statistics.
    fn thresholds(&mut self, stats: &[WorkerNetStats]) -> Vec<u32>;
}

/// The same fixed threshold for every worker: `FixedThreshold(0)` is BSP,
/// `FixedThreshold(s)` is SSP with threshold `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedThreshold(pub u32);

impl FixedThreshold {
    /// BSP: a barrier every iteration.
    pub fn bsp() -> Self {
        FixedThreshold(0)
    }

    /// SSP with staleness threshold `s`.
    pub fn ssp(s: u32) -> Self {
        FixedThreshold(s)
    }

    /// ASP (fully asynchronous parallel): an effectively unbounded
    /// threshold — workers never wait, at the cost of unbounded
    /// staleness (no convergence guarantee; included as the asynchronous
    /// end of the baseline spectrum).
    pub fn asp() -> Self {
        FixedThreshold(u32::MAX)
    }
}

impl ThresholdPolicy for FixedThreshold {
    fn name(&self) -> String {
        if self.0 == 0 {
            "BSP".to_owned()
        } else if self.0 == u32::MAX {
            "ASP".to_owned()
        } else {
            format!("SSP-{}", self.0)
        }
    }

    fn thresholds(&mut self, stats: &[WorkerNetStats]) -> Vec<u32> {
        vec![self.0; stats.len()]
    }
}

/// FLOWN-style dynamic scheduling (Chen et al. 2021, reference 19 of
/// the paper): workers estimated to have *low* bandwidth and *low*
/// contribution get a larger staleness allowance (they may fall further
/// behind without stalling others); workers with good links and large
/// gradients are held to a small threshold so their updates stay fresh.
///
/// The schedule is recomputed from measurements of *previous* rounds —
/// which is precisely the weakness the paper exploits: in robotic IoT
/// networks the bandwidth during the coming transmission is only loosely
/// related to the last measurement, so the schedule frequently mismatches
/// reality (Sec. I: "the random and rapid nature of bandwidth degradation
/// ... can transform the non-stragglers estimated during scheduling into
/// stragglers during the actual transmission").
#[derive(Debug, Clone)]
pub struct FlownPolicy {
    min_threshold: u32,
    max_threshold: u32,
    /// Exponential smoothing factor for bandwidth estimates.
    alpha: f64,
    smoothed_bw: Vec<f64>,
}

impl FlownPolicy {
    /// Creates a policy assigning thresholds in
    /// `[min_threshold, max_threshold]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_threshold > max_threshold`.
    pub fn new(min_threshold: u32, max_threshold: u32) -> Self {
        assert!(
            min_threshold <= max_threshold,
            "min threshold must not exceed max"
        );
        Self {
            min_threshold,
            max_threshold,
            alpha: 0.4,
            smoothed_bw: Vec::new(),
        }
    }
}

impl ThresholdPolicy for FlownPolicy {
    fn name(&self) -> String {
        "FLOWN".to_owned()
    }

    fn thresholds(&mut self, stats: &[WorkerNetStats]) -> Vec<u32> {
        if self.smoothed_bw.len() != stats.len() {
            self.smoothed_bw = stats.iter().map(|s| s.est_bandwidth_bps).collect();
        }
        for (sm, s) in self.smoothed_bw.iter_mut().zip(stats) {
            *sm = self.alpha * s.est_bandwidth_bps + (1.0 - self.alpha) * *sm;
        }
        let max_bw = self.smoothed_bw.iter().cloned().fold(1.0f64, f64::max);
        let max_contrib = stats
            .iter()
            .map(|s| s.grad_mean_abs)
            .fold(f64::MIN_POSITIVE, f64::max);
        stats
            .iter()
            .zip(&self.smoothed_bw)
            .map(|(s, &bw)| {
                // Normalized goodness in [0, 1]: fast link + large
                // gradients → small threshold (kept fresh).
                let goodness = 0.6 * (bw / max_bw) + 0.4 * (s.grad_mean_abs / max_contrib);
                let span = f64::from(self.max_threshold - self.min_threshold);
                let t = f64::from(self.max_threshold) - goodness * span;
                (t.round() as u32).clamp(self.min_threshold, self.max_threshold)
            })
            .collect()
    }
}

/// Dynamic SSP (Zhao et al., arxiv 1908.11848): the staleness threshold
/// is re-derived at runtime from observed per-worker iteration rates.
///
/// Each worker's iteration rate (rounds per virtual second) is smoothed
/// with an EWMA; a worker running `k×` faster than the slowest observed
/// peer is allowed roughly `k − 1` extra iterations of lead, clamped to
/// `[min_threshold, max_threshold]`. Workers with no completed round yet
/// sit at `min_threshold`. The update is keyed on
/// [`WorkerNetStats::rounds`], so the policy is a pure function of the
/// per-round measurement sequence — replaying the same inputs re-derives
/// the same thresholds.
#[derive(Debug, Clone)]
pub struct DsspPolicy {
    min_threshold: u32,
    max_threshold: u32,
    /// Exponential smoothing factor for iteration-rate estimates.
    alpha: f64,
    /// Smoothed rounds-per-second; `0.0` until first observation.
    rate_ewma: Vec<f64>,
    /// Round counter at the last consumed observation, per worker.
    rounds_seen: Vec<u64>,
}

impl DsspPolicy {
    /// Creates a policy adapting thresholds in
    /// `[min_threshold, max_threshold]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_threshold > max_threshold`.
    pub fn new(min_threshold: u32, max_threshold: u32) -> Self {
        assert!(
            min_threshold <= max_threshold,
            "min threshold must not exceed max"
        );
        Self {
            min_threshold,
            max_threshold,
            alpha: 0.3,
            rate_ewma: Vec::new(),
            rounds_seen: Vec::new(),
        }
    }
}

impl ThresholdPolicy for DsspPolicy {
    fn name(&self) -> String {
        format!("DSSP-{}..{}", self.min_threshold, self.max_threshold)
    }

    fn thresholds(&mut self, stats: &[WorkerNetStats]) -> Vec<u32> {
        if self.rate_ewma.len() != stats.len() {
            self.rate_ewma = vec![0.0; stats.len()];
            self.rounds_seen = vec![0; stats.len()];
        }
        for (w, s) in stats.iter().enumerate() {
            if s.rounds > self.rounds_seen[w] && s.last_round_secs > 0.0 {
                let rate = 1.0 / s.last_round_secs;
                self.rate_ewma[w] = if self.rate_ewma[w] == 0.0 {
                    rate
                } else {
                    self.alpha * rate + (1.0 - self.alpha) * self.rate_ewma[w]
                };
            }
            if s.rounds > self.rounds_seen[w] {
                self.rounds_seen[w] = s.rounds;
            }
        }
        let slowest = self
            .rate_ewma
            .iter()
            .copied()
            .filter(|&r| r > 0.0)
            .fold(f64::INFINITY, f64::min);
        self.rate_ewma
            .iter()
            .map(|&r| {
                if r > 0.0 && slowest.is_finite() {
                    let extra = (r / slowest - 1.0).round();
                    let t = f64::from(self.min_threshold) + extra.max(0.0);
                    (t.min(f64::from(self.max_threshold)) as u32)
                        .clamp(self.min_threshold, self.max_threshold)
                } else {
                    self.min_threshold
                }
            })
            .collect()
    }
}

/// A gate wait shorter than this is "passed straight through" for ABS
/// round accounting.
const ABS_STALL_EPS: f64 = 1e-9;

/// Rounds per ABS adaptation window.
const ABS_WINDOW_ROUNDS: u64 = 12;

/// Share of stalled rounds in a window above which ABS widens the bound.
const ABS_WIDEN_SHARE: f64 = 0.25;

/// Adaptive Bounded Staleness (arxiv 2301.08895): one uniform bound,
/// widened or narrowed on communication-round accounting.
///
/// Rounds are counted across all workers; every [`ABS_WINDOW_ROUNDS`]
/// completed rounds the policy looks at how many of them paid a gate
/// stall. A stall share above [`ABS_WIDEN_SHARE`] widens the bound by
/// one (workers are blocking on the gate — trade staleness for fewer
/// stalled rounds); a window with no stalls at all narrows it by one
/// (the bound is slack — tighten it to keep updates fresh). Like
/// [`DsspPolicy`] the update is keyed on [`WorkerNetStats::rounds`], so
/// replaying the measurement sequence re-derives the same bounds.
#[derive(Debug, Clone)]
pub struct AbsPolicy {
    min_threshold: u32,
    max_threshold: u32,
    /// Current uniform bound.
    cur: u32,
    rounds_in_window: u64,
    stalled_in_window: u64,
    /// Round counter at the last consumed observation, per worker.
    rounds_seen: Vec<u64>,
}

impl AbsPolicy {
    /// Creates a policy adapting one uniform bound in
    /// `[min_threshold, max_threshold]`, starting at `min_threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `min_threshold > max_threshold`.
    pub fn new(min_threshold: u32, max_threshold: u32) -> Self {
        assert!(
            min_threshold <= max_threshold,
            "min threshold must not exceed max"
        );
        Self {
            min_threshold,
            max_threshold,
            cur: min_threshold,
            rounds_in_window: 0,
            stalled_in_window: 0,
            rounds_seen: Vec::new(),
        }
    }

    /// The bound currently in force.
    pub fn current(&self) -> u32 {
        self.cur
    }
}

impl ThresholdPolicy for AbsPolicy {
    fn name(&self) -> String {
        format!("ABS-{}..{}", self.min_threshold, self.max_threshold)
    }

    fn thresholds(&mut self, stats: &[WorkerNetStats]) -> Vec<u32> {
        if self.rounds_seen.len() != stats.len() {
            self.rounds_seen = vec![0; stats.len()];
        }
        for (w, s) in stats.iter().enumerate() {
            let new_rounds = s.rounds.saturating_sub(self.rounds_seen[w]);
            if new_rounds > 0 {
                self.rounds_in_window += new_rounds;
                if s.last_stall_secs > ABS_STALL_EPS {
                    self.stalled_in_window += 1;
                }
                self.rounds_seen[w] = s.rounds;
            }
        }
        if self.rounds_in_window >= ABS_WINDOW_ROUNDS {
            let share = self.stalled_in_window as f64 / self.rounds_in_window as f64;
            if share > ABS_WIDEN_SHARE && self.cur < self.max_threshold {
                self.cur += 1;
            } else if self.stalled_in_window == 0 && self.cur > self.min_threshold {
                self.cur -= 1;
            }
            self.rounds_in_window = 0;
            self.stalled_in_window = 0;
        }
        vec![self.cur; stats.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_names() {
        assert_eq!(FixedThreshold::bsp().name(), "BSP");
        assert_eq!(FixedThreshold::ssp(4).name(), "SSP-4");
        assert_eq!(FixedThreshold::asp().name(), "ASP");
    }

    #[test]
    fn asp_never_gates() {
        use crate::{gate, VersionVector};
        let mut v = VersionVector::new(2);
        v.record_push(0, 1_000_000);
        assert!(gate::may_proceed(&v, 0, FixedThreshold::asp().0));
    }

    #[test]
    fn fixed_is_uniform() {
        let mut p = FixedThreshold::ssp(7);
        assert_eq!(
            p.thresholds(&vec![WorkerNetStats::default(); 4]),
            vec![7; 4]
        );
    }

    #[test]
    fn flown_gives_slow_low_contribution_workers_more_slack() {
        let mut p = FlownPolicy::new(2, 20);
        let fast_big = WorkerNetStats {
            est_bandwidth_bps: 100e6,
            last_push_secs: 0.5,
            grad_mean_abs: 1.0,
            ..WorkerNetStats::default()
        };
        let slow_small = WorkerNetStats {
            est_bandwidth_bps: 5e6,
            last_push_secs: 8.0,
            grad_mean_abs: 0.05,
            ..WorkerNetStats::default()
        };
        let ts = p.thresholds(&[fast_big, slow_small]);
        assert!(
            ts[1] > ts[0],
            "slow/low-contribution worker should get a larger threshold: {ts:?}"
        );
        assert!(ts.iter().all(|&t| (2..=20).contains(&t)));
    }

    #[test]
    fn flown_smoothing_reacts_gradually() {
        let mut p = FlownPolicy::new(2, 20);
        let stats = |bw: f64| {
            vec![
                WorkerNetStats {
                    est_bandwidth_bps: bw,
                    ..WorkerNetStats::default()
                },
                WorkerNetStats {
                    est_bandwidth_bps: 100e6,
                    ..WorkerNetStats::default()
                },
            ]
        };
        let first = p.thresholds(&stats(100e6))[0];
        // Bandwidth collapses; threshold rises but not instantly to max.
        let after_one = p.thresholds(&stats(1e6))[0];
        assert!(after_one >= first);
        let mut last = after_one;
        for _ in 0..10 {
            last = p.thresholds(&stats(1e6))[0];
        }
        assert!(last >= after_one, "threshold should keep rising: {last}");
    }

    #[test]
    #[should_panic(expected = "min threshold")]
    fn inverted_bounds_panic() {
        let _ = FlownPolicy::new(10, 2);
    }

    #[test]
    fn adaptive_names_encode_bound_ranges() {
        assert_eq!(DsspPolicy::new(1, 8).name(), "DSSP-1..8");
        assert_eq!(AbsPolicy::new(2, 6).name(), "ABS-2..6");
    }

    #[test]
    #[should_panic(expected = "min threshold")]
    fn dssp_inverted_bounds_panic() {
        let _ = DsspPolicy::new(10, 2);
    }

    #[test]
    #[should_panic(expected = "min threshold")]
    fn abs_inverted_bounds_panic() {
        let _ = AbsPolicy::new(10, 2);
    }

    #[test]
    fn dssp_starts_at_min_without_observations() {
        let mut p = DsspPolicy::new(2, 9);
        assert_eq!(
            p.thresholds(&vec![WorkerNetStats::default(); 3]),
            vec![2; 3]
        );
    }

    #[test]
    fn dssp_gives_fast_workers_more_lead() {
        let mut p = DsspPolicy::new(1, 8);
        let stats = |rounds: u64| {
            vec![
                WorkerNetStats {
                    rounds,
                    last_round_secs: 1.0, // 1 round/s: the fast worker
                    ..WorkerNetStats::default()
                },
                WorkerNetStats {
                    rounds,
                    last_round_secs: 4.0, // 0.25 round/s: the straggler
                    ..WorkerNetStats::default()
                },
            ]
        };
        let mut ts = Vec::new();
        for r in 1..=6 {
            ts = p.thresholds(&stats(r));
        }
        assert!(
            ts[0] > ts[1],
            "fast worker should hold the wider threshold: {ts:?}"
        );
        assert_eq!(ts[1], 1, "the slowest worker sits at min");
        assert!(ts.iter().all(|&t| (1..=8).contains(&t)));
    }

    #[test]
    fn dssp_ignores_repeated_refreshes_within_a_round() {
        // Refreshing thresholds many times for the same round counter
        // must not move the EWMA: the update is keyed on `rounds`.
        let mut a = DsspPolicy::new(1, 8);
        let mut b = DsspPolicy::new(1, 8);
        let s = vec![
            WorkerNetStats {
                rounds: 1,
                last_round_secs: 1.0,
                ..WorkerNetStats::default()
            },
            WorkerNetStats {
                rounds: 1,
                last_round_secs: 3.0,
                ..WorkerNetStats::default()
            },
        ];
        let once = a.thresholds(&s);
        let mut many = b.thresholds(&s);
        for _ in 0..10 {
            many = b.thresholds(&s);
        }
        assert_eq!(once, many);
    }

    #[test]
    fn abs_widens_under_stall_pressure_and_narrows_when_slack() {
        let mut p = AbsPolicy::new(1, 6);
        let stalled = |rounds: u64| {
            vec![WorkerNetStats {
                rounds,
                last_stall_secs: 0.5,
                ..WorkerNetStats::default()
            }]
        };
        let clean = |rounds: u64| {
            vec![WorkerNetStats {
                rounds,
                last_stall_secs: 0.0,
                ..WorkerNetStats::default()
            }]
        };
        // Every round stalls: one full window widens the bound by one.
        let mut r = 0;
        let mut t = p.current();
        for _ in 0..ABS_WINDOW_ROUNDS {
            r += 1;
            t = p.thresholds(&stalled(r))[0];
        }
        assert_eq!(t, 2, "a fully stalled window widens the bound");
        // Stall-free windows narrow it back down to min.
        for _ in 0..2 * ABS_WINDOW_ROUNDS {
            r += 1;
            t = p.thresholds(&clean(r))[0];
        }
        assert_eq!(t, 1, "stall-free windows narrow back to min");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// One synthetic per-round measurement:
        /// `(worker, round_secs, stall_secs)` — the same journal-visible
        /// inputs the engine feeds the policy.
        type Round = (usize, f64, f64);

        fn rounds_strategy() -> impl Strategy<Value = Vec<Round>> {
            proptest::collection::vec((0usize..5, 0.05f64..20.0, 0.0f64..5.0), 1..80)
        }

        /// Replays a measurement trace through a policy, returning every
        /// thresholds() output. Stats evolve exactly as in the engine:
        /// each round bumps one worker's counter and overwrites its
        /// last-round / last-stall measurements.
        fn replay(policy: &mut dyn ThresholdPolicy, n: usize, trace: &[Round]) -> Vec<Vec<u32>> {
            let mut stats = vec![WorkerNetStats::default(); n];
            let mut out = vec![policy.thresholds(&stats)];
            for &(worker, round_secs, stall_secs) in trace {
                let s = &mut stats[worker % n];
                s.rounds += 1;
                s.last_round_secs = round_secs;
                s.last_stall_secs = stall_secs;
                out.push(policy.thresholds(&stats));
            }
            out
        }

        proptest! {
            /// DSSP thresholds never leave `[min, max]`, whatever the
            /// measurement sequence.
            #[test]
            fn prop_dssp_thresholds_stay_in_bounds(
                min in 0u32..5,
                span in 0u32..10,
                n in 1usize..5,
                trace in rounds_strategy(),
            ) {
                let max = min + span;
                let mut p = DsspPolicy::new(min, max);
                for ts in replay(&mut p, n, &trace) {
                    prop_assert_eq!(ts.len(), n);
                    prop_assert!(ts.iter().all(|&t| (min..=max).contains(&t)), "{:?}", ts);
                }
            }

            /// ABS bounds never leave `[min, max]`, and move by at most
            /// one step between consecutive refreshes.
            #[test]
            fn prop_abs_thresholds_stay_in_bounds_and_step_by_one(
                min in 0u32..5,
                span in 0u32..10,
                n in 1usize..5,
                trace in rounds_strategy(),
            ) {
                let max = min + span;
                let mut p = AbsPolicy::new(min, max);
                let outs = replay(&mut p, n, &trace);
                let mut prev: Option<u32> = None;
                for ts in outs {
                    prop_assert!(ts.iter().all(|&t| (min..=max).contains(&t)), "{:?}", ts);
                    let t = ts[0];
                    prop_assert!(ts.iter().all(|&x| x == t), "ABS bound must be uniform");
                    if let Some(p0) = prev {
                        prop_assert!(t.abs_diff(p0) <= 1, "jumped {p0} -> {t}");
                    }
                    prev = Some(t);
                }
            }

            /// Adaptation is a pure function of the measurement trace:
            /// replaying the same journal-visible inputs through a fresh
            /// policy re-derives the exact same threshold sequence.
            #[test]
            fn prop_adaptation_replays_from_the_trace(
                min in 0u32..4,
                span in 0u32..8,
                n in 1usize..5,
                trace in rounds_strategy(),
            ) {
                let max = min + span;
                let mut live = DsspPolicy::new(min, max);
                let mut replayed = DsspPolicy::new(min, max);
                prop_assert_eq!(
                    replay(&mut live, n, &trace),
                    replay(&mut replayed, n, &trace)
                );
                let mut live = AbsPolicy::new(min, max);
                let mut replayed = AbsPolicy::new(min, max);
                prop_assert_eq!(
                    replay(&mut live, n, &trace),
                    replay(&mut replayed, n, &trace)
                );
            }
        }
    }
}
