//! Staleness-threshold policies: fixed (BSP/SSP) and FLOWN-style dynamic.

/// Per-worker network/contribution statistics a policy may condition on.
///
/// The engine refreshes these after every synchronization round.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerNetStats {
    /// Estimated link bandwidth in bit/s (from recent transmissions).
    pub est_bandwidth_bps: f64,
    /// Seconds the worker's last model push took.
    pub last_push_secs: f64,
    /// Mean absolute value of the worker's last gradient (its estimated
    /// contribution to accuracy).
    pub grad_mean_abs: f64,
}

impl Default for WorkerNetStats {
    fn default() -> Self {
        Self {
            est_bandwidth_bps: 50e6,
            last_push_secs: 1.0,
            grad_mean_abs: 1.0,
        }
    }
}

/// Assigns each worker a staleness threshold for the coming round.
pub trait ThresholdPolicy: std::fmt::Debug {
    /// Display name ("BSP", "SSP-4", "FLOWN").
    fn name(&self) -> String;

    /// Per-worker thresholds given current statistics.
    fn thresholds(&mut self, stats: &[WorkerNetStats]) -> Vec<u32>;
}

/// The same fixed threshold for every worker: `FixedThreshold(0)` is BSP,
/// `FixedThreshold(s)` is SSP with threshold `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedThreshold(pub u32);

impl FixedThreshold {
    /// BSP: a barrier every iteration.
    pub fn bsp() -> Self {
        FixedThreshold(0)
    }

    /// SSP with staleness threshold `s`.
    pub fn ssp(s: u32) -> Self {
        FixedThreshold(s)
    }

    /// ASP (fully asynchronous parallel): an effectively unbounded
    /// threshold — workers never wait, at the cost of unbounded
    /// staleness (no convergence guarantee; included as the asynchronous
    /// end of the baseline spectrum).
    pub fn asp() -> Self {
        FixedThreshold(u32::MAX)
    }
}

impl ThresholdPolicy for FixedThreshold {
    fn name(&self) -> String {
        if self.0 == 0 {
            "BSP".to_owned()
        } else if self.0 == u32::MAX {
            "ASP".to_owned()
        } else {
            format!("SSP-{}", self.0)
        }
    }

    fn thresholds(&mut self, stats: &[WorkerNetStats]) -> Vec<u32> {
        vec![self.0; stats.len()]
    }
}

/// FLOWN-style dynamic scheduling (Chen et al. 2021, reference 19 of
/// the paper): workers estimated to have *low* bandwidth and *low*
/// contribution get a larger staleness allowance (they may fall further
/// behind without stalling others); workers with good links and large
/// gradients are held to a small threshold so their updates stay fresh.
///
/// The schedule is recomputed from measurements of *previous* rounds —
/// which is precisely the weakness the paper exploits: in robotic IoT
/// networks the bandwidth during the coming transmission is only loosely
/// related to the last measurement, so the schedule frequently mismatches
/// reality (Sec. I: "the random and rapid nature of bandwidth degradation
/// ... can transform the non-stragglers estimated during scheduling into
/// stragglers during the actual transmission").
#[derive(Debug, Clone)]
pub struct FlownPolicy {
    min_threshold: u32,
    max_threshold: u32,
    /// Exponential smoothing factor for bandwidth estimates.
    alpha: f64,
    smoothed_bw: Vec<f64>,
}

impl FlownPolicy {
    /// Creates a policy assigning thresholds in
    /// `[min_threshold, max_threshold]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_threshold > max_threshold`.
    pub fn new(min_threshold: u32, max_threshold: u32) -> Self {
        assert!(
            min_threshold <= max_threshold,
            "min threshold must not exceed max"
        );
        Self {
            min_threshold,
            max_threshold,
            alpha: 0.4,
            smoothed_bw: Vec::new(),
        }
    }
}

impl ThresholdPolicy for FlownPolicy {
    fn name(&self) -> String {
        "FLOWN".to_owned()
    }

    fn thresholds(&mut self, stats: &[WorkerNetStats]) -> Vec<u32> {
        if self.smoothed_bw.len() != stats.len() {
            self.smoothed_bw = stats.iter().map(|s| s.est_bandwidth_bps).collect();
        }
        for (sm, s) in self.smoothed_bw.iter_mut().zip(stats) {
            *sm = self.alpha * s.est_bandwidth_bps + (1.0 - self.alpha) * *sm;
        }
        let max_bw = self.smoothed_bw.iter().cloned().fold(1.0f64, f64::max);
        let max_contrib = stats
            .iter()
            .map(|s| s.grad_mean_abs)
            .fold(f64::MIN_POSITIVE, f64::max);
        stats
            .iter()
            .zip(&self.smoothed_bw)
            .map(|(s, &bw)| {
                // Normalized goodness in [0, 1]: fast link + large
                // gradients → small threshold (kept fresh).
                let goodness = 0.6 * (bw / max_bw) + 0.4 * (s.grad_mean_abs / max_contrib);
                let span = f64::from(self.max_threshold - self.min_threshold);
                let t = f64::from(self.max_threshold) - goodness * span;
                (t.round() as u32).clamp(self.min_threshold, self.max_threshold)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_names() {
        assert_eq!(FixedThreshold::bsp().name(), "BSP");
        assert_eq!(FixedThreshold::ssp(4).name(), "SSP-4");
        assert_eq!(FixedThreshold::asp().name(), "ASP");
    }

    #[test]
    fn asp_never_gates() {
        use crate::{gate, VersionVector};
        let mut v = VersionVector::new(2);
        v.record_push(0, 1_000_000);
        assert!(gate::may_proceed(&v, 0, FixedThreshold::asp().0));
    }

    #[test]
    fn fixed_is_uniform() {
        let mut p = FixedThreshold::ssp(7);
        assert_eq!(
            p.thresholds(&vec![WorkerNetStats::default(); 4]),
            vec![7; 4]
        );
    }

    #[test]
    fn flown_gives_slow_low_contribution_workers_more_slack() {
        let mut p = FlownPolicy::new(2, 20);
        let fast_big = WorkerNetStats {
            est_bandwidth_bps: 100e6,
            last_push_secs: 0.5,
            grad_mean_abs: 1.0,
        };
        let slow_small = WorkerNetStats {
            est_bandwidth_bps: 5e6,
            last_push_secs: 8.0,
            grad_mean_abs: 0.05,
        };
        let ts = p.thresholds(&[fast_big, slow_small]);
        assert!(
            ts[1] > ts[0],
            "slow/low-contribution worker should get a larger threshold: {ts:?}"
        );
        assert!(ts.iter().all(|&t| (2..=20).contains(&t)));
    }

    #[test]
    fn flown_smoothing_reacts_gradually() {
        let mut p = FlownPolicy::new(2, 20);
        let stats = |bw: f64| {
            vec![
                WorkerNetStats {
                    est_bandwidth_bps: bw,
                    ..WorkerNetStats::default()
                },
                WorkerNetStats {
                    est_bandwidth_bps: 100e6,
                    ..WorkerNetStats::default()
                },
            ]
        };
        let first = p.thresholds(&stats(100e6))[0];
        // Bandwidth collapses; threshold rises but not instantly to max.
        let after_one = p.thresholds(&stats(1e6))[0];
        assert!(after_one >= first);
        let mut last = after_one;
        for _ in 0..10 {
            last = p.thresholds(&stats(1e6))[0];
        }
        assert!(last >= after_one, "threshold should keep rising: {last}");
    }

    #[test]
    #[should_panic(expected = "min threshold")]
    fn inverted_bounds_panic() {
        let _ = FlownPolicy::new(10, 2);
    }
}
