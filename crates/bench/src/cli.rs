//! Argument parsing for the `rogctl` experiment runner.
//!
//! Hand-rolled (no CLI dependency): `--key value` and boolean `--flag`
//! pairs mapped onto an [`ExperimentConfig`].

use std::fmt;

use rog_compress::CodecChoice;
use rog_fault::FaultPlan;
use rog_net::{LossConfig, SharingMode};
use rog_trainer::{
    check_socket_compatible, Environment, ExperimentConfig, JoinOptions, ModelScale, ServeOptions,
    Strategy, WorkloadKind,
};

/// A parsed `rogctl` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CliRun {
    /// The experiment to run.
    pub config: ExperimentConfig,
    /// Write checkpoints CSV here.
    pub csv_out: Option<String>,
    /// Write run-metrics JSON here.
    pub json_out: Option<String>,
    /// Accepted-but-suspicious input, e.g. a shard-less
    /// `server-restart` fault-script line; the binary prints these to
    /// stderr before running.
    pub warnings: Vec<String>,
}

/// A parsed `rogctl` command (run by default, or a trace subcommand).
#[derive(Debug, Clone, PartialEq)]
pub enum CliCommand {
    /// Run one experiment and print/export its metrics.
    Run(CliRun),
    /// Run one experiment with the event journal enabled and write the
    /// JSONL trace to `out` (gzipped when the path ends in `.gz`).
    Trace {
        /// The traced run.
        run: CliRun,
        /// Journal output path.
        out: String,
    },
    /// Summarize a journal file into the Fig. 8-style composition table.
    TraceSummary {
        /// Journal path (`.jsonl` or `.jsonl.gz`).
        path: String,
    },
    /// Run the live parameter server over real sockets.
    Serve {
        /// The experiment (validated socket-compatible at parse time).
        run: CliRun,
        /// Listen address / pacing / join timeout.
        opts: ServeOptions,
    },
    /// Run one live worker over real sockets.
    Join {
        /// The experiment (validated socket-compatible at parse time).
        run: CliRun,
        /// Server address / per-iteration push cap.
        opts: JoinOptions,
    },
    /// Run a seeded fuzz campaign (or replay a `.repro` corpus)
    /// through the differential invariant harness.
    Fuzz(FuzzOptions),
}

/// Options for the `rogctl fuzz` campaign driver.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzOptions {
    /// Root generator seed.
    pub seed: u64,
    /// Scenarios to generate and check.
    pub count: u64,
    /// Duration ceiling passed to the generator (`None` keeps its
    /// default).
    pub max_duration: Option<f64>,
    /// Directory where minimal repros of failing scenarios are written.
    pub corpus: Option<String>,
    /// A `.repro` file or a directory of them to replay instead of
    /// generating scenarios.
    pub replay: Option<String>,
    /// Write the wall-clock-free campaign report (`BENCH_fuzz.json`
    /// shape) here.
    pub json_out: Option<String>,
    /// Widen the sync-model draw to the adaptive strategies
    /// (`--models all`); `false` keeps the legacy draw byte-identical.
    pub widened: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        Self {
            seed: 1,
            count: 50,
            max_duration: None,
            corpus: None,
            replay: None,
            json_out: None,
            widened: false,
        }
    }
}

/// CLI parse error with a message suitable for direct printing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
rogctl — run one ROG/baseline training experiment on the simulated cluster

USAGE:
  rogctl [--workload cruda|cruda-conv|crimp] [--env indoor|outdoor|stable]
         [--strategy bsp|asp|ssp:<t>|flown:<min>:<max>|dssp:<min>:<max>
                    |abs:<min>:<max>|rog:<t>|roga:<min>:<max>]
         [--duration <secs>] [--workers <n>] [--laptops <n>]
         [--batch-scale <x>] [--eval-every <iters>] [--seed <n>]
         [--scale paper|small] [--mac airtime|anomaly]
         [--pipeline] [--auto-threshold] [--micro] [--shards <n>]
         [--aggregators <n>] [--codec onebit|sparse|q2|q4|q8|auto]
         [--fault-plan <file>] [--fault-seed <n>]
         [--loss <rate>] [--loss-burst <rate>] [--loss-seed <n>]
         [--corrupt <rate>]
         [--csv <path>] [--json <path>]

Sharding: --shards <n> row-shards the parameter server across n
instances (ROG strategies only); --shards 1 is the default
single-server engine and produces bit-identical results to it.

Fleet topology: --aggregators <n> inserts n edge aggregators between
the workers and the parameter-server shards (ROG strategies only);
--aggregators 0 is the default flat topology and produces
bit-identical results to it. n must not exceed --workers.

Row codec: --codec selects the push/pull payload encoder (ROG
strategies only). onebit (default) is the paper's one-bit codec and
produces bit-identical results to pre-codec builds; sparse encodes
only the significant values as varint index gaps, falling back to
dense when that would cost more; q2/q4/q8 are QSGD-style stochastic
k-bit ladders; auto starts every link on onebit and re-selects per
link from the channel's loss/goodput EWMAs (each switch is journaled
as a codec_select event). topk keeps the top 10% values per row
(ablation comparator).

Fault injection: --fault-plan loads a script of
'offline <w> <start> <end>' / 'blackout <w> <start> <end>' /
'server-restart [<shard>] <start> <end>' /
'loss <link> <start> <end> <rate>' lines; --fault-seed generates a
deterministic churn plan instead (ignored if a plan file is given).
A shard-less server-restart line defaults to shard 0 with a warning.

Packet loss: --loss adds seeded i.i.d. per-chunk loss, --loss-burst
adds a Gilbert-Elliott bursty process with the given mean loss rate,
--corrupt flips delivered chunks to CRC failures; --loss-seed decouples
the loss process from the run seed (defaults to the run seed). Rates
are probabilities in [0, 1].

Subcommands:
  rogctl trace [run flags] --out <path[.gz]>
      Run with the deterministic event journal enabled and write it as
      JSONL (gzipped when the path ends in .gz). The journal for a
      (config, seed) pair is byte-identical across runs and compute
      thread counts.
  rogctl trace-summary <path[.jsonl|.jsonl.gz]>
      Replay a journal into the per-iteration time-composition table
      and per-category event counts.
  rogctl serve [run flags] [--listen <ip:port>] [--speedup <x>]
               [--join-timeout <secs>]
      Run the live parameter server over real sockets: listen for
      worker joins on --listen (default 127.0.0.1:7117), then train at
      --speedup virtual seconds per wall second (default 60). Every
      process must be launched with identical run flags. Sim-only knobs
      (--loss*, --corrupt, --fault-plan, --fault-seed, non-ROG
      strategies) are rejected: a real network supplies its own loss.
  rogctl join [run flags] [--connect <ip:port>] [--push-cap <rows>]
      Join a live server as one worker: real gradients, UDP row pushes,
      TCP control. --push-cap bounds rows pushed per iteration
      (default 512).
  rogctl fuzz [--seed <n>] [--count <n>] [--max-duration <secs>]
              [--models all|legacy]
              [--corpus <dir>] [--replay <file|dir>] [--json <path>]
      Generate --count seeded scenarios (random topology, sync model,
      faults, loss) and replay each through the differential invariant
      harness: thread counts {1, 2, 8} must agree bitwise, progress,
      byte conservation, journal/metrics reconciliation, the RSP
      staleness bound, and the shard-plane / aggregation-tree twins.
      Failing scenarios are shrunk to minimal repros and written to
      --corpus. --replay re-checks existing .repro files instead of
      generating. --json writes the wall-clock-free campaign report;
      two runs of the same campaign produce byte-identical reports.
      Exits non-zero when any scenario fails.
";

/// Parses a full `rogctl` command line (without the program name),
/// dispatching on the optional `trace` / `trace-summary` subcommand.
///
/// # Errors
///
/// Returns a printable [`CliError`] on unknown subcommands, unknown
/// flags or malformed values.
pub fn parse_command(args: &[String]) -> Result<CliCommand, CliError> {
    match args.first().map(String::as_str) {
        Some("trace") => {
            let mut out = None;
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                if a == "--out" {
                    out = Some(
                        it.next()
                            .ok_or_else(|| err("--out expects a path"))?
                            .clone(),
                    );
                } else {
                    rest.push(a.clone());
                }
            }
            let run = parse(&rest)?;
            Ok(CliCommand::Trace {
                run,
                out: out.unwrap_or_else(|| "trace.jsonl".into()),
            })
        }
        Some("trace-summary") => match args[1..] {
            [ref path] => Ok(CliCommand::TraceSummary { path: path.clone() }),
            _ => Err(err("usage: rogctl trace-summary <path>")),
        },
        Some("serve") => {
            let mut opts = ServeOptions::default();
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = || it.next().ok_or_else(|| err(format!("{a} expects a value")));
                match a.as_str() {
                    "--listen" => opts.listen = value()?.clone(),
                    "--speedup" => {
                        opts.speedup = value()?
                            .parse()
                            .map_err(|_| err("--speedup expects a number"))?;
                        // NaN also fails this check, not just <= 0.
                        let positive = opts.speedup.is_finite() && opts.speedup > 0.0;
                        if !positive {
                            return Err(err("--speedup must be positive"));
                        }
                    }
                    "--join-timeout" => {
                        opts.join_timeout_secs = value()?
                            .parse()
                            .map_err(|_| err("--join-timeout expects seconds"))?
                    }
                    _ => rest.push(a.clone()),
                }
            }
            let run = parse_socket_run(&rest)?;
            Ok(CliCommand::Serve { run, opts })
        }
        Some("join") => {
            let mut opts = JoinOptions::default();
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = || it.next().ok_or_else(|| err(format!("{a} expects a value")));
                match a.as_str() {
                    "--connect" => opts.connect = value()?.clone(),
                    "--push-cap" => {
                        opts.push_cap = value()?
                            .parse()
                            .map_err(|_| err("--push-cap expects a row count"))?;
                        if opts.push_cap == 0 {
                            return Err(err("--push-cap must be >= 1"));
                        }
                    }
                    _ => rest.push(a.clone()),
                }
            }
            let run = parse_socket_run(&rest)?;
            Ok(CliCommand::Join { run, opts })
        }
        Some("fuzz") => {
            let mut opts = FuzzOptions::default();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = || it.next().ok_or_else(|| err(format!("{a} expects a value")));
                match a.as_str() {
                    "--seed" => {
                        opts.seed = value()?
                            .parse()
                            .map_err(|_| err("--seed expects an integer"))?
                    }
                    "--count" => {
                        opts.count = value()?
                            .parse()
                            .map_err(|_| err("--count expects a scenario count"))?
                    }
                    "--max-duration" => {
                        let secs: f64 = value()?
                            .parse()
                            .map_err(|_| err("--max-duration expects seconds"))?;
                        if !(secs.is_finite() && secs > 0.0) {
                            return Err(err("--max-duration must be positive"));
                        }
                        opts.max_duration = Some(secs);
                    }
                    "--corpus" => opts.corpus = Some(value()?.clone()),
                    "--replay" => opts.replay = Some(value()?.clone()),
                    "--json" => opts.json_out = Some(value()?.clone()),
                    "--models" => {
                        opts.widened = match value()?.as_str() {
                            "all" => true,
                            "legacy" => false,
                            other => {
                                return Err(err(format!(
                                    "--models expects all|legacy, got '{other}'"
                                )))
                            }
                        }
                    }
                    "--help" | "-h" => return Err(err(USAGE)),
                    other => return Err(err(format!("unknown fuzz flag '{other}'\n\n{USAGE}"))),
                }
            }
            if opts.count == 0 && opts.replay.is_none() {
                return Err(err("--count must be >= 1 (or pass --replay)"));
            }
            Ok(CliCommand::Fuzz(opts))
        }
        _ => Ok(CliCommand::Run(parse(args)?)),
    }
}

/// Parses run flags for a socket-backend (`serve` / `join`) invocation
/// and rejects sim-only knobs with the transport-compatibility check.
fn parse_socket_run(args: &[String]) -> Result<CliRun, CliError> {
    let run = parse(args)?;
    check_socket_compatible(&run.config).map_err(err)?;
    Ok(run)
}

/// Parses run-mode CLI arguments (without the program name).
///
/// # Errors
///
/// Returns a printable [`CliError`] on unknown flags or malformed
/// values.
pub fn parse(args: &[String]) -> Result<CliRun, CliError> {
    let mut cfg = ExperimentConfig {
        duration_secs: 600.0,
        ..ExperimentConfig::default()
    };
    let mut csv_out = None;
    let mut json_out = None;
    let mut iid_loss: Option<f64> = None;
    let mut burst_loss: Option<f64> = None;
    let mut corrupt: Option<f64> = None;
    let mut loss_seed: Option<u64> = None;
    let mut warnings = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| err(format!("{flag} expects a value")))
        };
        match flag.as_str() {
            "--workload" => {
                cfg.workload = match value()?.as_str() {
                    "cruda" => WorkloadKind::Cruda,
                    "cruda-conv" => WorkloadKind::CrudaConv,
                    "crimp" => WorkloadKind::Crimp,
                    other => return Err(err(format!("unknown workload '{other}'"))),
                }
            }
            "--env" => {
                cfg.environment = match value()?.as_str() {
                    "indoor" => Environment::Indoor,
                    "outdoor" => Environment::Outdoor,
                    "stable" => Environment::Stable,
                    other => return Err(err(format!("unknown environment '{other}'"))),
                }
            }
            "--strategy" => cfg.strategy = parse_strategy(value()?)?,
            "--duration" => {
                cfg.duration_secs = value()?
                    .parse()
                    .map_err(|_| err("--duration expects seconds"))?
            }
            "--workers" => {
                cfg.n_workers = value()?
                    .parse()
                    .map_err(|_| err("--workers expects a count"))?
            }
            "--laptops" => {
                cfg.n_laptop_workers = value()?
                    .parse()
                    .map_err(|_| err("--laptops expects a count"))?
            }
            "--batch-scale" => {
                cfg.batch_scale = value()?
                    .parse()
                    .map_err(|_| err("--batch-scale expects a number"))?
            }
            "--eval-every" => {
                cfg.eval_every = value()?
                    .parse()
                    .map_err(|_| err("--eval-every expects an iteration count"))?
            }
            "--seed" => {
                cfg.seed = value()?
                    .parse()
                    .map_err(|_| err("--seed expects an integer"))?
            }
            "--scale" => {
                cfg.model_scale = match value()?.as_str() {
                    "paper" => ModelScale::Paper,
                    "small" => ModelScale::Small,
                    other => return Err(err(format!("unknown scale '{other}'"))),
                }
            }
            "--mac" => {
                cfg.mac_sharing = match value()?.as_str() {
                    "airtime" => SharingMode::AirtimeFair,
                    "anomaly" => SharingMode::ThroughputFair,
                    other => return Err(err(format!("unknown mac model '{other}'"))),
                }
            }
            "--pipeline" => cfg.pipeline = true,
            "--auto-threshold" => cfg.auto_threshold = true,
            "--micro" => cfg.record_micro = true,
            "--shards" => {
                cfg.n_shards = value()?
                    .parse()
                    .map_err(|_| err("--shards expects a count"))?;
                if cfg.n_shards == 0 {
                    return Err(err("--shards expects a count >= 1"));
                }
            }
            "--aggregators" => {
                cfg.n_aggregators = value()?
                    .parse()
                    .map_err(|_| err("--aggregators expects a count"))?;
            }
            "--codec" => {
                cfg.codec = value()?
                    .parse()
                    .map_err(|_| err("--codec expects onebit|sparse|q2|q4|q8|topk|auto"))?;
            }
            "--fault-plan" => {
                let path = value()?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| err(format!("cannot read fault plan '{path}': {e}")))?;
                let (plan, plan_warnings) = FaultPlan::parse_with_warnings(&text)
                    .map_err(|e| err(format!("fault plan '{path}': {e}")))?;
                warnings.extend(
                    plan_warnings
                        .into_iter()
                        .map(|w| format!("fault plan '{path}': {w}")),
                );
                cfg.fault_plan = Some(plan);
            }
            "--fault-seed" => {
                cfg.fault_seed = Some(
                    value()?
                        .parse()
                        .map_err(|_| err("--fault-seed expects an integer"))?,
                )
            }
            "--loss" => {
                iid_loss = Some(
                    value()?
                        .parse()
                        .map_err(|_| err("--loss expects a rate in [0, 1]"))?,
                )
            }
            "--loss-burst" => {
                burst_loss = Some(
                    value()?
                        .parse()
                        .map_err(|_| err("--loss-burst expects a rate in [0, 1]"))?,
                )
            }
            "--loss-seed" => {
                loss_seed = Some(
                    value()?
                        .parse()
                        .map_err(|_| err("--loss-seed expects an integer"))?,
                )
            }
            "--corrupt" => {
                corrupt = Some(
                    value()?
                        .parse()
                        .map_err(|_| err("--corrupt expects a rate in [0, 1]"))?,
                )
            }
            "--csv" => csv_out = Some(value()?.clone()),
            "--json" => json_out = Some(value()?.clone()),
            "--help" | "-h" => return Err(err(USAGE)),
            other => return Err(err(format!("unknown flag '{other}'\n\n{USAGE}"))),
        }
    }
    if iid_loss.is_some() || burst_loss.is_some() || corrupt.is_some() {
        for (flag, rate) in [
            ("--loss", iid_loss),
            ("--loss-burst", burst_loss),
            ("--corrupt", corrupt),
        ] {
            if let Some(r) = rate {
                if !(0.0..=1.0).contains(&r) {
                    return Err(err(format!("{flag} rate {r} out of [0, 1]")));
                }
            }
        }
        let seed = loss_seed.unwrap_or(cfg.seed);
        let mut lc = match burst_loss {
            Some(mean) => LossConfig::gilbert_elliott(seed, mean),
            None => LossConfig::off(),
        };
        lc.seed = seed;
        lc.iid_loss = iid_loss.unwrap_or(0.0);
        lc.corrupt = corrupt.unwrap_or(0.0);
        cfg.loss = Some(lc);
    } else if loss_seed.is_some() {
        return Err(err(
            "--loss-seed requires --loss, --loss-burst or --corrupt",
        ));
    }
    if cfg.n_aggregators > cfg.n_workers {
        return Err(err(format!(
            "--aggregators {} exceeds --workers {}",
            cfg.n_aggregators, cfg.n_workers
        )));
    }
    if cfg.auto_threshold && matches!(cfg.strategy, Strategy::RogAdaptive { .. }) {
        return Err(err(
            "--auto-threshold conflicts with roga:<min>:<max> (the adaptive bound is \
             already a threshold controller)",
        ));
    }
    if cfg.strategy.is_row_granular()
        || (!cfg.pipeline
            && !cfg.auto_threshold
            && cfg.n_shards <= 1
            && cfg.n_aggregators == 0
            && cfg.codec == CodecChoice::OneBit)
    {
        Ok(CliRun {
            config: cfg,
            csv_out,
            json_out,
            warnings,
        })
    } else {
        Err(err(
            "--pipeline/--auto-threshold/--shards/--aggregators/--codec apply to ROG \
             strategies only",
        ))
    }
}

fn parse_strategy(s: &str) -> Result<Strategy, CliError> {
    let parts: Vec<&str> = s.split(':').collect();
    match parts.as_slice() {
        ["bsp"] => Ok(Strategy::Bsp),
        ["asp"] => Ok(Strategy::Asp),
        ["ssp", t] => Ok(Strategy::Ssp {
            threshold: t.parse().map_err(|_| err("ssp:<t> expects an integer"))?,
        }),
        ["rog", t] => Ok(Strategy::Rog {
            threshold: t.parse().map_err(|_| err("rog:<t> expects an integer"))?,
        }),
        ["flown", lo, hi] => Ok(Strategy::Flown {
            min_threshold: lo.parse().map_err(|_| err("flown:<min>:<max>"))?,
            max_threshold: hi.parse().map_err(|_| err("flown:<min>:<max>"))?,
        }),
        ["dssp", lo, hi] => Ok(Strategy::Dssp {
            min_threshold: lo.parse().map_err(|_| err("dssp:<min>:<max>"))?,
            max_threshold: hi.parse().map_err(|_| err("dssp:<min>:<max>"))?,
        }),
        ["abs", lo, hi] => Ok(Strategy::Abs {
            min_threshold: lo.parse().map_err(|_| err("abs:<min>:<max>"))?,
            max_threshold: hi.parse().map_err(|_| err("abs:<min>:<max>"))?,
        }),
        ["roga", lo, hi] => {
            let min: u32 = lo.parse().map_err(|_| err("roga:<min>:<max>"))?;
            let max: u32 = hi.parse().map_err(|_| err("roga:<min>:<max>"))?;
            if min < 1 || min > max {
                return Err(err("roga:<min>:<max> expects 1 <= min <= max"));
            }
            Ok(Strategy::RogAdaptive {
                min_threshold: min,
                max_threshold: max,
            })
        }
        _ => Err(err(format!(
            "unknown strategy '{s}' (bsp | asp | ssp:<t> | flown:<min>:<max> | \
             dssp:<min>:<max> | abs:<min>:<max> | rog:<t> | roga:<min>:<max>)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_parse_from_empty() {
        let run = parse(&[]).expect("empty args are fine");
        assert_eq!(run.config.strategy, Strategy::Bsp);
        assert_eq!(run.config.duration_secs, 600.0);
        assert!(run.csv_out.is_none());
    }

    #[test]
    fn full_invocation_parses() {
        let run = parse(&args(
            "--workload crimp --env indoor --strategy rog:4 --duration 120 \
             --workers 6 --laptops 2 --batch-scale 2 --eval-every 10 --seed 9 \
             --scale small --mac anomaly --pipeline --auto-threshold --micro \
             --csv out.csv --json out.json",
        ))
        .expect("parses");
        let c = &run.config;
        assert_eq!(c.workload, WorkloadKind::Crimp);
        assert_eq!(c.environment, Environment::Indoor);
        assert_eq!(c.strategy, Strategy::Rog { threshold: 4 });
        assert_eq!(c.duration_secs, 120.0);
        assert_eq!(c.n_workers, 6);
        assert_eq!(c.n_laptop_workers, 2);
        assert_eq!(c.batch_scale, 2.0);
        assert_eq!(c.eval_every, 10);
        assert_eq!(c.seed, 9);
        assert_eq!(c.model_scale, ModelScale::Small);
        assert_eq!(c.mac_sharing, rog_net::SharingMode::ThroughputFair);
        assert!(c.pipeline && c.auto_threshold && c.record_micro);
        assert_eq!(run.csv_out.as_deref(), Some("out.csv"));
        assert_eq!(run.json_out.as_deref(), Some("out.json"));
    }

    #[test]
    fn strategy_variants_parse() {
        assert_eq!(parse_strategy("bsp").unwrap(), Strategy::Bsp);
        assert_eq!(parse_strategy("asp").unwrap(), Strategy::Asp);
        assert_eq!(
            parse_strategy("ssp:20").unwrap(),
            Strategy::Ssp { threshold: 20 }
        );
        assert_eq!(
            parse_strategy("flown:2:20").unwrap(),
            Strategy::Flown {
                min_threshold: 2,
                max_threshold: 20
            }
        );
        assert_eq!(
            parse_strategy("dssp:1:8").unwrap(),
            Strategy::Dssp {
                min_threshold: 1,
                max_threshold: 8
            }
        );
        assert_eq!(
            parse_strategy("abs:1:6").unwrap(),
            Strategy::Abs {
                min_threshold: 1,
                max_threshold: 6
            }
        );
        assert_eq!(
            parse_strategy("roga:1:8").unwrap(),
            Strategy::RogAdaptive {
                min_threshold: 1,
                max_threshold: 8
            }
        );
        assert!(parse_strategy("ssp").is_err());
        assert!(parse_strategy("nope:1").is_err());
        assert!(parse_strategy("roga:0:8").is_err());
        assert!(parse_strategy("roga:5:2").is_err());
    }

    #[test]
    fn adaptive_strategy_knobs_validate() {
        // The hybrid is row-granular: sharding and aggregators apply.
        let run = parse(&args("--strategy roga:1:8 --shards 2 --aggregators 1")).expect("parses");
        assert_eq!(run.config.n_shards, 2);
        // ...but stacking the stall-share controller on it is rejected.
        assert!(parse(&args("--strategy roga:1:8 --auto-threshold")).is_err());
        // Model-granular adaptive strategies still reject row-only knobs.
        assert!(parse(&args("--strategy dssp:1:8 --shards 2")).is_err());
        assert!(parse(&args("--strategy abs:1:6 --pipeline")).is_err());
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse(&args("--bogus 1")).is_err());
        assert!(parse(&args("--duration")).is_err());
        assert!(parse(&args("--duration banana")).is_err());
        assert!(parse(&args("--workload quake")).is_err());
    }

    #[test]
    fn extensions_require_rog() {
        assert!(parse(&args("--strategy bsp --pipeline")).is_err());
        assert!(parse(&args("--strategy rog:4 --pipeline")).is_ok());
        assert!(parse(&args("--strategy bsp --shards 4")).is_err());
        assert!(
            parse(&args("--strategy bsp --shards 1")).is_ok(),
            "one shard is the plain single-server engine"
        );
    }

    #[test]
    fn shards_flag_parses_into_the_config() {
        let run = parse(&args("--strategy rog:4 --shards 4")).expect("parses");
        assert_eq!(run.config.n_shards, 4);
        assert!(run.warnings.is_empty());
        assert_eq!(parse(&[]).expect("empty").config.n_shards, 1);
        assert!(parse(&args("--strategy rog:4 --shards 0")).is_err());
        assert!(parse(&args("--strategy rog:4 --shards banana")).is_err());
    }

    #[test]
    fn aggregators_flag_parses_into_the_config() {
        let run = parse(&args("--strategy rog:4 --workers 8 --aggregators 2")).expect("parses");
        assert_eq!(run.config.n_aggregators, 2);
        assert_eq!(parse(&[]).expect("empty").config.n_aggregators, 0);
        assert!(parse(&args("--strategy rog:4 --aggregators banana")).is_err());
        assert!(
            parse(&args("--strategy rog:4 --workers 2 --aggregators 3")).is_err(),
            "more aggregators than workers is rejected at parse time"
        );
        assert!(
            parse(&args("--strategy bsp --aggregators 2")).is_err(),
            "aggregators are a ROG extension"
        );
        assert!(
            parse(&args("--strategy bsp --aggregators 0")).is_ok(),
            "zero aggregators is the plain flat topology"
        );
    }

    #[test]
    fn codec_flag_parses_into_the_config() {
        for (arg, want) in [
            ("onebit", CodecChoice::OneBit),
            ("sparse", CodecChoice::Sparse),
            ("q2", CodecChoice::Quant { bits: 2 }),
            ("q4", CodecChoice::Quant { bits: 4 }),
            ("q8", CodecChoice::Quant { bits: 8 }),
            ("auto", CodecChoice::Auto),
        ] {
            let run = parse(&args(&format!("--strategy rog:4 --codec {arg}"))).expect("parses");
            assert_eq!(run.config.codec, want, "--codec {arg}");
        }
        assert_eq!(parse(&[]).expect("empty").config.codec, CodecChoice::OneBit);
        assert!(parse(&args("--strategy rog:4 --codec q3")).is_err());
        assert!(parse(&args("--strategy rog:4 --codec banana")).is_err());
        // The codec ladder is row-granular; baselines reject it...
        assert!(parse(&args("--strategy bsp --codec sparse")).is_err());
        // ...but the explicit default is harmlessly accepted anywhere.
        assert!(parse(&args("--strategy bsp --codec onebit")).is_ok());
        // The adaptive hybrid is row-granular, so it composes.
        assert!(parse(&args("--strategy roga:1:8 --codec auto")).is_ok());
    }

    #[test]
    fn socket_subcommands_reject_non_onebit_codecs() {
        let e = parse_command(&args("serve --strategy rog:4 --codec sparse")).unwrap_err();
        assert!(e.to_string().contains("--codec sparse"), "{e}");
        assert!(parse_command(&args("serve --strategy rog:4 --codec onebit")).is_ok());
    }

    #[test]
    fn fault_plan_file_parses_into_the_config() {
        let path = std::env::temp_dir().join("rogctl_cli_test_plan.txt");
        std::fs::write(&path, "offline 1 40 80\nserver-restart 200 210\n").expect("write plan");
        let run = parse(&args(&format!("--fault-plan {}", path.display()))).expect("parses");
        let plan = run.config.fault_plan.expect("plan loaded");
        assert_eq!(plan.windows().len(), 2);
        assert_eq!(
            plan.windows()[0].kind,
            rog_fault::FaultKind::WorkerOffline(1)
        );
        assert_eq!(
            run.warnings.len(),
            1,
            "shard-less server-restart carries a warning: {:?}",
            run.warnings
        );
        assert!(run.warnings[0].contains("defaults to shard 0"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_seed_sets_the_config_field() {
        let run = parse(&args("--fault-seed 7")).expect("parses");
        assert_eq!(run.config.fault_seed, Some(7));
        assert!(run.config.fault_plan.is_none());
        assert!(parse(&args("--fault-seed banana")).is_err());
    }

    #[test]
    fn loss_flags_build_a_loss_config() {
        let run = parse(&args("--loss 0.05 --corrupt 0.01 --seed 9")).expect("parses");
        let lc = run.config.loss.expect("loss configured");
        assert_eq!(lc.seed, 9, "defaults to the run seed");
        assert_eq!(lc.iid_loss, 0.05);
        assert_eq!(lc.corrupt, 0.01);
        assert!(lc.ge.is_none());

        let run = parse(&args("--loss-burst 0.1 --loss-seed 77")).expect("parses");
        let lc = run.config.loss.expect("loss configured");
        assert_eq!(lc.seed, 77);
        assert!(lc.ge.is_some(), "burst flag installs a GE chain");

        assert!(parse(&args("--loss 1.5")).is_err());
        assert!(parse(&args("--loss banana")).is_err());
        assert!(
            parse(&args("--loss-seed 3")).is_err(),
            "seed alone is useless"
        );
        assert!(parse(&[]).expect("empty").config.loss.is_none());
    }

    #[test]
    fn trace_subcommand_parses() {
        let cmd = parse_command(&args(
            "trace --strategy rog:4 --out t.jsonl.gz --duration 30",
        ))
        .expect("parses");
        let CliCommand::Trace { run, out } = cmd else {
            panic!("expected trace command, got {cmd:?}");
        };
        assert_eq!(run.config.strategy, Strategy::Rog { threshold: 4 });
        assert_eq!(run.config.duration_secs, 30.0);
        assert_eq!(out, "t.jsonl.gz");

        let cmd = parse_command(&args("trace")).expect("parses");
        assert!(matches!(cmd, CliCommand::Trace { ref out, .. } if out == "trace.jsonl"));
        assert!(parse_command(&args("trace --out")).is_err());
    }

    #[test]
    fn trace_summary_subcommand_parses() {
        let cmd = parse_command(&args("trace-summary t.jsonl")).expect("parses");
        assert_eq!(
            cmd,
            CliCommand::TraceSummary {
                path: "t.jsonl".into()
            }
        );
        assert!(parse_command(&args("trace-summary")).is_err());
        assert!(parse_command(&args("trace-summary a b")).is_err());
    }

    #[test]
    fn plain_args_parse_as_a_run_command() {
        let cmd = parse_command(&args("--strategy bsp")).expect("parses");
        assert!(matches!(cmd, CliCommand::Run(_)));
    }

    #[test]
    fn serve_subcommand_parses() {
        let cmd = parse_command(&args(
            "serve --strategy rog:4 --workers 2 --listen 0.0.0.0:9000 \
             --speedup 30 --join-timeout 15 --duration 60",
        ))
        .expect("parses");
        let CliCommand::Serve { run, opts } = cmd else {
            panic!("expected serve command, got {cmd:?}");
        };
        assert_eq!(run.config.strategy, Strategy::Rog { threshold: 4 });
        assert_eq!(run.config.n_workers, 2);
        assert_eq!(opts.listen, "0.0.0.0:9000");
        assert_eq!(opts.speedup, 30.0);
        assert_eq!(opts.join_timeout_secs, 15.0);

        let cmd = parse_command(&args("serve --strategy rog:4")).expect("defaults");
        let CliCommand::Serve { opts, .. } = cmd else {
            panic!("expected serve command");
        };
        assert_eq!(opts, ServeOptions::default());
    }

    #[test]
    fn join_subcommand_parses() {
        let cmd = parse_command(&args(
            "join --strategy rog:4 --connect 10.0.0.1:9000 --push-cap 64",
        ))
        .expect("parses");
        let CliCommand::Join { run, opts } = cmd else {
            panic!("expected join command, got {cmd:?}");
        };
        assert_eq!(run.config.strategy, Strategy::Rog { threshold: 4 });
        assert_eq!(opts.connect, "10.0.0.1:9000");
        assert_eq!(opts.push_cap, 64);
        assert!(parse_command(&args("join --strategy rog:4 --push-cap 0")).is_err());
        assert!(parse_command(&args("join --strategy rog:4 --connect")).is_err());
    }

    #[test]
    fn socket_subcommands_reject_sim_only_knobs() {
        let loss = parse_command(&args("serve --strategy rog:4 --loss 0.1")).unwrap_err();
        assert!(loss.to_string().contains("--loss"), "{loss}");
        assert!(loss.to_string().contains("real network"), "{loss}");
        let fault = parse_command(&args("join --strategy rog:4 --fault-seed 7")).unwrap_err();
        assert!(fault.to_string().contains("--fault-seed"), "{fault}");
        let bsp = parse_command(&args("serve --strategy bsp")).unwrap_err();
        assert!(bsp.to_string().contains("BSP"), "{bsp}");
        assert!(
            parse_command(&args("serve --strategy rog:4 --speedup 0")).is_err(),
            "zero speedup would divide wall pacing by zero"
        );
        assert!(parse_command(&args("serve --strategy rog:4 --speedup -3")).is_err());
    }

    #[test]
    fn fuzz_subcommand_parses() {
        let cmd = parse_command(&args(
            "fuzz --seed 7 --count 200 --max-duration 30 --corpus tests/corpus \
             --json BENCH_fuzz.json --models all",
        ))
        .expect("parses");
        let CliCommand::Fuzz(opts) = cmd else {
            panic!("expected fuzz command, got {cmd:?}");
        };
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.count, 200);
        assert_eq!(opts.max_duration, Some(30.0));
        assert_eq!(opts.corpus.as_deref(), Some("tests/corpus"));
        assert!(opts.replay.is_none());
        assert_eq!(opts.json_out.as_deref(), Some("BENCH_fuzz.json"));
        assert!(opts.widened);

        let cmd = parse_command(&args("fuzz")).expect("defaults");
        assert_eq!(cmd, CliCommand::Fuzz(FuzzOptions::default()));
        let cmd = parse_command(&args("fuzz --models legacy")).expect("parses");
        assert!(matches!(cmd, CliCommand::Fuzz(o) if !o.widened));
        assert!(parse_command(&args("fuzz --models everything")).is_err());

        let cmd = parse_command(&args("fuzz --replay tests/corpus --count 0")).expect("parses");
        assert!(matches!(cmd, CliCommand::Fuzz(o) if o.replay.is_some()));

        assert!(parse_command(&args("fuzz --count 0")).is_err());
        assert!(parse_command(&args("fuzz --seed banana")).is_err());
        assert!(parse_command(&args("fuzz --max-duration -3")).is_err());
        assert!(parse_command(&args("fuzz --strategy rog:4")).is_err());
    }

    #[test]
    fn fault_plan_errors_are_reported() {
        let missing = parse(&args("--fault-plan /nonexistent/rog_plan.txt")).unwrap_err();
        assert!(missing.to_string().contains("cannot read"), "{missing}");
        let path = std::env::temp_dir().join("rogctl_cli_test_bad_plan.txt");
        std::fs::write(&path, "frobnicate 3 4 5\n").expect("write plan");
        let bad = parse(&args(&format!("--fault-plan {}", path.display()))).unwrap_err();
        assert!(bad.to_string().contains("unknown directive"), "{bad}");
        std::fs::remove_file(&path).ok();
    }
}
