//! Experiment-runner helpers shared by the figure/table binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index). Binaries accept `--quick` to
//! run a shortened smoke version, print their results as text
//! tables/series, and write CSV files under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

use std::fs;
use std::path::{Path, PathBuf};

use rog_trainer::{ExperimentConfig, RunMetrics};

/// Whether `--quick` was passed (shortened smoke run).
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Duration helper: `full` seconds normally, `quick_secs` with
/// `--quick`.
pub fn duration(full: f64, quick_secs: f64) -> f64 {
    if quick() {
        quick_secs
    } else {
        full
    }
}

/// Runs several experiment configs concurrently (each run is
/// self-contained and deterministic, so threading does not affect
/// results).
pub fn run_all(configs: &[ExperimentConfig]) -> Vec<RunMetrics> {
    std::thread::scope(|s| {
        let handles: Vec<_> = configs
            .iter()
            .map(|cfg| s.spawn(move || cfg.options().run().metrics))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
}

/// The `results/` directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    dir.to_path_buf()
}

/// Writes a result artifact and reports its path.
pub fn write_artifact(name: &str, content: &str) {
    let path = results_dir().join(name);
    fs::write(&path, content).expect("write results file");
    println!("  -> wrote {}", path.display());
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats metric-vs-time series at fixed probe times, one row per
/// probe, one column per run (the textual form of the paper's accuracy
/// curves).
pub fn series_at_times(runs: &[RunMetrics], probes: &[f64]) -> String {
    let mut out = String::from("time_s");
    for r in runs {
        out.push(',');
        out.push_str(r.name.split(" / ").next().unwrap_or(&r.name));
    }
    out.push('\n');
    for &t in probes {
        out.push_str(&format!("{t:.0}"));
        for r in runs {
            match rog_trainer::report::metric_at_time(r, t) {
                Some(m) => out.push_str(&format!(",{m:.2}")),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Formats metric-vs-iteration series at fixed probe iterations.
pub fn series_at_iterations(runs: &[RunMetrics], probes: &[u64]) -> String {
    let mut out = String::from("iteration");
    for r in runs {
        out.push(',');
        out.push_str(r.name.split(" / ").next().unwrap_or(&r.name));
    }
    out.push('\n');
    for &it in probes {
        out.push_str(&format!("{it}"));
        for r in runs {
            match rog_trainer::report::metric_at_iteration(r, it as f64) {
                Some(m) => out.push_str(&format!(",{m:.2}")),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_honors_quick_flag() {
        // No --quick in the test harness args.
        assert_eq!(duration(100.0, 10.0), 100.0);
    }
}
