//! Table I: MTA values under different staleness thresholds — the
//! solution of `(1-P)^(S-1) = P`.

use rog_bench::{header, write_artifact};
use rog_core::mta::mta_fraction;

fn main() {
    header("Table I — MTA values under different thresholds");
    let paper = [
        (2u32, 0.5),
        (3, 0.38),
        (4, 0.32),
        (5, 0.28),
        (6, 0.25),
        (7, 0.22),
        (8, 0.2),
    ];
    println!(
        "{:<10} {:>10} {:>10}",
        "threshold", "MTA (ours)", "MTA (paper)"
    );
    let mut csv = String::from("threshold,mta_ours,mta_paper\n");
    for (s, p) in paper {
        let ours = mta_fraction(s);
        println!("{s:<10} {ours:>10.4} {p:>10.2}");
        csv.push_str(&format!("{s},{ours:.4},{p}\n"));
        assert!(
            (ours - p).abs() < 0.005,
            "threshold {s}: computed {ours} deviates from Table I's {p}"
        );
    }
    write_artifact("table1_mta.csv", &csv);
    println!("\nall values match Table I to the two decimals printed there.");
}
