//! Figure 6: CRUDA in the indoor environment (same four panels as
//! Fig. 1, milder instability), plus the Sec. II-D observation that BSP
//! stall indoors is comparable to the computation time.

use rog_bench::{duration, header, run_all, series_at_iterations, series_at_times, write_artifact};
use rog_trainer::report;
use rog_trainer::{Environment, ExperimentConfig, Strategy, WorkloadKind};

fn main() {
    let dur = duration(3600.0, 240.0);
    let strategies = [
        Strategy::Bsp,
        Strategy::Ssp { threshold: 4 },
        Strategy::Ssp { threshold: 20 },
        Strategy::Flown {
            min_threshold: 2,
            max_threshold: 20,
        },
        Strategy::Rog { threshold: 4 },
        Strategy::Rog { threshold: 20 },
    ];
    let configs: Vec<ExperimentConfig> = strategies
        .iter()
        .map(|&strategy| ExperimentConfig {
            workload: WorkloadKind::Cruda,
            environment: Environment::Indoor,
            strategy,
            duration_secs: dur,
            ..ExperimentConfig::default()
        })
        .collect();
    let runs = run_all(&configs);

    header("Fig. 6a — average time composition of a training iteration (s)");
    let comp = report::composition_table(&runs);
    print!("{comp}");
    write_artifact("fig6a_composition.csv", &comp);

    header("Fig. 6b — statistical efficiency (accuracy % vs iteration)");
    let max_iter = runs
        .iter()
        .flat_map(|r| r.checkpoints.last().map(|c| c.iter))
        .min()
        .unwrap_or(0);
    let iters: Vec<u64> = (1..=10)
        .map(|k| k * max_iter / 10)
        .filter(|&i| i > 0)
        .collect();
    let b = series_at_iterations(&runs, &iters);
    print!("{b}");
    write_artifact("fig6b_statistical_efficiency.csv", &b);

    header("Fig. 6c — accuracy % vs wall-clock time (s)");
    let probes: Vec<f64> = (1..=12).map(|k| dur * k as f64 / 12.0).collect();
    let c = series_at_times(&runs, &probes);
    print!("{c}");
    write_artifact("fig6c_accuracy_vs_time.csv", &c);

    header("Fig. 6d — energy (J) to reach accuracy targets");
    let mut d = String::from("target_acc");
    for r in &runs {
        d.push(',');
        d.push_str(r.name.split(" / ").next().unwrap_or(&r.name));
    }
    d.push('\n');
    let best_final = runs
        .iter()
        .flat_map(|r| r.checkpoints.last().map(|c| c.metric))
        .fold(f64::NEG_INFINITY, f64::max);
    for k in 0..6 {
        let target = best_final - 8.0 + k as f64 * 1.6;
        d.push_str(&format!("{target:.1}"));
        for r in &runs {
            match report::energy_to_reach(r, target) {
                Some(j) => d.push_str(&format!(",{j:.0}")),
                None => d.push_str(",-"),
            }
        }
        d.push('\n');
    }
    print!("{d}");
    write_artifact("fig6d_energy_to_accuracy.csv", &d);

    header("Sec. II-D cross-check (indoor BSP)");
    if let Some(bsp) = runs.iter().find(|r| r.name.starts_with("BSP")) {
        println!(
            "BSP indoors: compute {:.2}s, stall {:.2}s per iteration \
             (paper: stall 2.23s ≈ 102% of the 2.18s compute)",
            bsp.composition.compute, bsp.composition.stall
        );
    }
    let rog_stall: f64 = runs
        .iter()
        .filter(|r| r.name.starts_with("ROG"))
        .map(|r| r.composition.stall)
        .fold(f64::INFINITY, f64::min);
    let base_stall: f64 = runs
        .iter()
        .filter(|r| !r.name.starts_with("ROG"))
        .map(|r| r.composition.stall)
        .fold(f64::INFINITY, f64::min);
    println!(
        "stall per iteration: ROG {rog_stall:.2}s vs best baseline {base_stall:.2}s \
         (paper: ROG cuts indoor stall by 42.4–97.6%)"
    );
}
