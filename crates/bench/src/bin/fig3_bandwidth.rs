//! Figure 3: the instability of robotic IoT networks.
//!
//! Generates the calibrated indoor and outdoor bandwidth traces (5 min
//! at 0.1 s like the paper's iperf recording), prints their fluctuation
//! statistics — "a 40% fluctuation of bandwidth typically happens every
//! 1.2 s" — and dumps the raw series for plotting.

use rog_bench::{header, write_artifact};
use rog_net::{stats, ChannelProfile};

fn main() {
    header("Fig. 3 — bandwidth instability, indoors vs outdoors");
    println!(
        "{:<9} {:>10} {:>10} {:>10} {:>9} {:>9} {:>10} {:>7}",
        "env", "mean Mbps", "min Mbps", "max Mbps", "i20% (s)", "i40% (s)", "deep-fade", "CV"
    );
    for profile in [ChannelProfile::indoor(), ChannelProfile::outdoor()] {
        let trace = profile.generate(3, 300.0);
        let s = stats::summarize(&trace);
        println!(
            "{:<9} {:>10.1} {:>10.2} {:>10.1} {:>9.2} {:>9.2} {:>9.1}% {:>7.3}",
            profile.name,
            s.mean_bps / 1e6,
            s.min_bps / 1e6,
            s.max_bps / 1e6,
            s.interval_20pct,
            s.interval_40pct,
            100.0 * s.deep_fade_fraction,
            s.cv,
        );
        let mut csv = String::from("time_s,bandwidth_mbps\n");
        for (i, &v) in trace.samples().iter().enumerate() {
            csv.push_str(&format!("{:.1},{:.3}\n", i as f64 * trace.dt(), v / 1e6));
        }
        write_artifact(&format!("fig3_{}_trace.csv", profile.name), &csv);
    }
    println!(
        "\npaper Sec. II-B: ≥20% fluctuation every ~0.4 s, ≥40% every ~1.2 s;\n\
         outdoors additionally collapses toward 0 Mbit/s (no reflecting walls)."
    );
}
