//! Shard-scaling benchmark: runs the CRUDA-outdoor ROG workload with a
//! row-sharded parameter plane at 1, 2 and 4 shards through a clean /
//! shard-fault / bursty-loss scenario matrix and writes
//! `BENCH_shard.json`.
//!
//! Two claims are quantified:
//!
//! 1. **One shard is the old engine.** The `shards=1` clean run is
//!    byte-identical to the default (unsharded) config — the artifact
//!    records the comparison as `one_shard_identity`.
//! 2. **An outage stalls only the rows it homes.** The same shard-0
//!    outage window is injected at every shard count; at 1 shard it is
//!    a full-plane outage, at 4 shards it blocks only a quarter of the
//!    rows, so ROG stall residency at 4 shards must be strictly below
//!    the 1-shard run (`sharding_localizes_fault_stall`).
//!
//! Usage: `cargo run --release -p rog-bench --bin bench_shard
//!         [--quick] [--seed <n>]`
//!
//! The output contains no wall-clock timings — every field is a
//! deterministic function of the config and seeds, so CI can diff two
//! runs of the same invocation byte-for-byte as a reproducibility
//! check.

use rog_bench::{header, run_all};
use rog_fault::FaultPlan;
use rog_net::LossConfig;
use rog_trainer::{Environment, ExperimentConfig, RunMetrics, Strategy, WorkloadKind};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn arg_seed() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--seed expects an integer"))
        .unwrap_or(1)
}

/// The scenario matrix: (label, fault plan, loss model). The outage
/// window always targets shard 0, whatever the shard count — that is
/// the point of the comparison.
fn scenarios(seed: u64, dur: f64) -> Vec<(&'static str, Option<FaultPlan>, Option<LossConfig>)> {
    let outage = FaultPlan::new().server_restart_on(0, dur * 0.30, dur * 0.55);
    vec![
        ("clean", None, None),
        ("shard0-outage", Some(outage), None),
        ("ge-10", None, Some(LossConfig::gilbert_elliott(seed, 0.10))),
    ]
}

fn json_f64(x: f64) -> String {
    // `+ 0.0` folds IEEE −0.0 into +0.0 so artifacts never print "-0".
    let x = x + 0.0;
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

fn cell_json(scenario: &str, shards: usize, r: &RunMetrics) -> String {
    let mut s = String::from("    {\n");
    s.push_str(&format!("      \"scenario\": {scenario:?},\n"));
    s.push_str(&format!("      \"shards\": {shards},\n"));
    s.push_str(&format!("      \"name\": {:?},\n", r.name));
    s.push_str(&format!(
        "      \"mean_iterations\": {},\n",
        json_f64(r.mean_iterations)
    ));
    s.push_str(&format!(
        "      \"total_energy_j\": {},\n",
        json_f64(r.total_energy_j)
    ));
    s.push_str(&format!(
        "      \"useful_bytes\": {},\n",
        json_f64(r.useful_bytes)
    ));
    s.push_str(&format!(
        "      \"wasted_bytes\": {},\n",
        json_f64(r.wasted_bytes)
    ));
    s.push_str(&format!(
        "      \"lost_bytes\": {},\n",
        json_f64(r.lost_bytes)
    ));
    s.push_str(&format!(
        "      \"stall_secs\": {},\n",
        json_f64(r.stall_secs)
    ));
    let final_metric = r.checkpoints.last().map_or(f64::NAN, |c| c.metric);
    s.push_str(&format!(
        "      \"final_metric\": {},\n",
        json_f64(final_metric)
    ));
    s.push_str("      \"accuracy_vs_time\": [");
    let pts: Vec<String> = r
        .checkpoints
        .iter()
        .map(|c| format!("[{}, {}, {}]", json_f64(c.time), c.iter, json_f64(c.metric)))
        .collect();
    s.push_str(&pts.join(", "));
    s.push_str("]\n    }");
    s
}

/// Byte-level equality of everything the engine reports: if any of
/// these differ the runs were not the same computation.
fn identical(a: &RunMetrics, b: &RunMetrics) -> bool {
    a.checkpoints == b.checkpoints
        && a.mean_iterations == b.mean_iterations
        && a.total_energy_j == b.total_energy_j
        && a.useful_bytes == b.useful_bytes
        && a.wasted_bytes == b.wasted_bytes
        && a.stall_secs == b.stall_secs
        && a.final_model_divergence == b.final_model_divergence
}

fn main() {
    let quick = rog_bench::quick();
    let dur = if quick { 120.0 } else { 600.0 };
    let seed = arg_seed();
    let base = ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Outdoor,
        strategy: Strategy::Rog { threshold: 4 },
        duration_secs: dur,
        eval_every: 10,
        seed,
        ..ExperimentConfig::default()
    };

    header(&format!(
        "Shard scaling: CRUDA outdoor, {dur:.0} virtual s, seed {seed}, shards {SHARD_COUNTS:?}"
    ));

    let matrix = scenarios(seed, dur);
    let mut labels: Vec<(String, usize)> = Vec::new();
    let mut configs: Vec<ExperimentConfig> = Vec::new();
    for (scenario, plan, loss) in &matrix {
        for &shards in &SHARD_COUNTS {
            labels.push(((*scenario).to_owned(), shards));
            configs.push(ExperimentConfig {
                n_shards: shards,
                fault_plan: plan.clone(),
                loss: loss.clone(),
                ..base.clone()
            });
        }
    }
    // The identity control: the default config never mentions shards at
    // all, so comparing it against the explicit `shards=1` clean cell
    // demonstrates the sharded plane reduces to the old engine.
    configs.push(base.clone());
    let mut runs = run_all(&configs);
    let unsharded = runs.pop().expect("identity control run");
    let one_shard_clean = &runs[0];
    let one_shard_identity = identical(one_shard_clean, &unsharded);

    println!(
        "{:<14} {:>7} {:>8} {:>10} {:>12} {:>10}",
        "scenario", "shards", "iters", "stall(s)", "lost(B)", "metric"
    );
    for ((scenario, shards), r) in labels.iter().zip(&runs) {
        let final_metric = r.checkpoints.last().map_or(f64::NAN, |c| c.metric);
        println!(
            "{scenario:<14} {shards:>7} {:>8.1} {:>10.1} {:>12.0} {:>10.2}",
            r.mean_iterations,
            r.stall_secs + 0.0,
            r.lost_bytes,
            final_metric,
        );
    }

    let stall_at = |scenario: &str, shards: usize| -> f64 {
        labels
            .iter()
            .zip(&runs)
            .find(|((s, n), _)| s == scenario && *n == shards)
            .map(|(_, r)| r.stall_secs)
            .expect("cell exists")
    };
    let stall_1 = stall_at("shard0-outage", 1);
    let stall_4 = stall_at("shard0-outage", 4);
    let localized = stall_4 < stall_1;
    println!(
        "\nshard-0 outage stall residency: 1 shard {stall_1:.1}s vs 4 shards {stall_4:.1}s \
         ({})",
        if localized {
            "sharding localizes the outage"
        } else {
            "NOT localized — regression"
        }
    );
    println!(
        "one-shard identity vs unsharded default: {}",
        if one_shard_identity { "ok" } else { "MISMATCH" }
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"shard_scaling_cruda_outdoor\",\n");
    json.push_str(&format!("  \"virtual_duration_secs\": {dur},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!(
        "  \"one_shard_identity\": {one_shard_identity},\n"
    ));
    json.push_str(&format!(
        "  \"shard_fault_stall_secs\": {{\"1\": {}, \"4\": {}}},\n",
        json_f64(stall_1),
        json_f64(stall_4)
    ));
    json.push_str(&format!(
        "  \"sharding_localizes_fault_stall\": {localized},\n"
    ));
    json.push_str("  \"cells\": [\n");
    let rows: Vec<String> = labels
        .iter()
        .zip(&runs)
        .map(|((scenario, shards), r)| cell_json(scenario, *shards, r))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("  -> wrote BENCH_shard.json");

    assert!(
        one_shard_identity,
        "shards=1 must be byte-identical to the unsharded engine"
    );
    assert!(
        localized,
        "4-shard stall under a shard-0 outage must be below the 1-shard full-plane outage \
         ({stall_4:.1}s vs {stall_1:.1}s)"
    );
}
