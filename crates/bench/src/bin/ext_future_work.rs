//! Extension experiments: the paper's future-work items, implemented.
//!
//! * **Pipelining communication and computation** (Sec. VI-D, after
//!   Pipe-SGD): the worker keeps computing while its push/pull cycle
//!   runs concurrently, bounded by the staleness threshold.
//! * **Automatic threshold selection** (Sec. VI-C): a hysteresis
//!   controller widens the RSP threshold when the cluster stalls and
//!   narrows it when the channel is calm.
//!
//! Both run CRUDA outdoors against plain ROG-4.

use rog_bench::{duration, header, run_all, series_at_times, write_artifact};
use rog_trainer::{Environment, ExperimentConfig, Strategy, WorkloadKind};

fn main() {
    let dur = duration(3600.0, 240.0);
    let base = ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Outdoor,
        strategy: Strategy::Rog { threshold: 4 },
        duration_secs: dur,
        ..ExperimentConfig::default()
    };
    let configs = vec![
        base.clone(),
        ExperimentConfig {
            pipeline: true,
            ..base.clone()
        },
        ExperimentConfig {
            auto_threshold: true,
            ..base.clone()
        },
        ExperimentConfig {
            pipeline: true,
            auto_threshold: true,
            ..base
        },
    ];
    let runs = run_all(&configs);

    header("Future-work extensions — time composition per iteration (s)");
    let comp = rog_trainer::report::composition_table(&runs);
    print!("{comp}");
    write_artifact("ext_future_work_composition.csv", &comp);

    header("Future-work extensions — accuracy % vs wall-clock time (s)");
    let probes: Vec<f64> = (1..=8).map(|k| dur * k as f64 / 8.0).collect();
    let a = series_at_times(&runs, &probes);
    print!("{a}");
    write_artifact("ext_future_work_accuracy.csv", &a);

    header("Summary");
    for r in &runs {
        println!(
            "{:<16} iters {:>5.0}  total {:>5.2}s/iter  final {:>6.2}%",
            r.name.split(" / ").next().unwrap_or(&r.name),
            r.mean_iterations,
            r.composition.total(),
            r.checkpoints.last().map(|c| c.metric).unwrap_or(f64::NAN),
        );
    }
    println!(
        "\npipelining hides communication behind computation (iteration time\n\
         → max(compute, comm) instead of the sum); the auto controller\n\
         finds a threshold without hand-tuning."
    );
}
