//! Figure 7: CRIMP (implicit mapping and positioning) outdoors.
//!
//! Same four panels as Fig. 1 with trajectory error (lower is better)
//! as the metric and the smaller nice-slam-sized model (0.75 MB
//! compressed): time composition, error vs iteration, error vs
//! wall-clock, energy vs error.

use rog_bench::{duration, header, run_all, series_at_iterations, series_at_times, write_artifact};
use rog_trainer::report;
use rog_trainer::{Environment, ExperimentConfig, Strategy, WorkloadKind};

fn main() {
    let dur = duration(3600.0, 240.0);
    let strategies = [
        Strategy::Bsp,
        Strategy::Ssp { threshold: 4 },
        Strategy::Ssp { threshold: 20 },
        Strategy::Flown {
            min_threshold: 2,
            max_threshold: 20,
        },
        Strategy::Rog { threshold: 4 },
        Strategy::Rog { threshold: 20 },
    ];
    let configs: Vec<ExperimentConfig> = strategies
        .iter()
        .map(|&strategy| ExperimentConfig {
            workload: WorkloadKind::Crimp,
            environment: Environment::Outdoor,
            strategy,
            duration_secs: dur,
            ..ExperimentConfig::default()
        })
        .collect();
    let runs = run_all(&configs);

    header("Fig. 7a — average time composition of a training iteration (s)");
    let comp = report::composition_table(&runs);
    print!("{comp}");
    write_artifact("fig7a_composition.csv", &comp);

    header("Fig. 7b — statistical efficiency (trajectory error (m) vs iteration)");
    let max_iter = runs
        .iter()
        .flat_map(|r| r.checkpoints.last().map(|c| c.iter))
        .min()
        .unwrap_or(0);
    let iters: Vec<u64> = (1..=10)
        .map(|k| k * max_iter / 10)
        .filter(|&i| i > 0)
        .collect();
    let b = series_at_iterations(&runs, &iters);
    print!("{b}");
    write_artifact("fig7b_error_vs_iteration.csv", &b);

    header("Fig. 7c — trajectory error (m) vs wall-clock time (s)");
    let probes: Vec<f64> = (1..=12).map(|k| dur * k as f64 / 12.0).collect();
    let c = series_at_times(&runs, &probes);
    print!("{c}");
    write_artifact("fig7c_error_vs_time.csv", &c);

    header("Fig. 7d — energy (J) to reach trajectory-error targets");
    let best_final = runs
        .iter()
        .flat_map(|r| r.checkpoints.last().map(|c| c.metric))
        .fold(f64::INFINITY, f64::min);
    let mut d = String::from("target_error");
    for r in &runs {
        d.push(',');
        d.push_str(r.name.split(" / ").next().unwrap_or(&r.name));
    }
    d.push('\n');
    for k in 0..6 {
        let target = best_final + 0.1 + k as f64 * 0.15;
        d.push_str(&format!("{target:.2}"));
        for r in &runs {
            match report::energy_to_reach(r, target) {
                Some(j) => d.push_str(&format!(",{j:.0}")),
                None => d.push_str(",-"),
            }
        }
        d.push('\n');
    }
    print!("{d}");
    write_artifact("fig7d_energy_to_error.csv", &d);

    header("Headline numbers (paper Sec. VI-A, CRIMP)");
    let rog_best = runs
        .iter()
        .filter(|r| r.name.starts_with("ROG"))
        .flat_map(|r| report::metric_at_time(r, dur))
        .fold(f64::INFINITY, f64::min);
    let baseline_best = runs
        .iter()
        .filter(|r| !r.name.starts_with("ROG"))
        .flat_map(|r| report::metric_at_time(r, dur))
        .fold(f64::INFINITY, f64::min);
    println!(
        "trajectory error after {dur:.0}s: best ROG {rog_best:.3} m vs best baseline {baseline_best:.3} m \
         ({:.0}% reduction; paper reports 16–30% at 60 min)",
        100.0 * (1.0 - rog_best / baseline_best.max(1e-9))
    );
    if let Some(bsp) = runs.iter().find(|r| r.name.starts_with("BSP")) {
        println!(
            "BSP stall/communication: {:.2}s / {:.2}s per iteration \
             (paper: stall ≈ 60% of communication under BSP)",
            bsp.composition.stall, bsp.composition.communicate
        );
    }
}
