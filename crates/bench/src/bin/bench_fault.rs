//! Fault-matrix robustness benchmark: runs the CRUDA-outdoor workload
//! through a matrix of injected fault scenarios (fault-free baseline,
//! seeded worker churn, link blackouts, a server checkpoint/restart)
//! and writes `BENCH_fault.json` with accuracy-vs-virtual-time curves
//! plus stall/offline residency per scenario. A BSP-under-churn row
//! quantifies the paper's robustness argument: static-membership BSP
//! blocks for the whole outage, while ROG's dynamic membership keeps
//! the survivors training.
//!
//! Usage: `cargo run --release -p rog-bench --bin bench_fault
//!         [--quick] [--seed <n>]`
//!
//! The output contains no wall-clock timings — every field is a
//! deterministic function of the config and seeds, so CI can diff two
//! runs of the same invocation byte-for-byte as a reproducibility
//! check.

use rog_bench::{header, run_all};
use rog_fault::{ChurnProfile, FaultPlan};
use rog_trainer::{Environment, ExperimentConfig, RunMetrics, Strategy, WorkloadKind};

/// Churn profile tuned so even `--quick` runs see real departures
/// (default means target multi-hour traces).
fn churn_profile() -> ChurnProfile {
    ChurnProfile {
        mean_up_secs: 60.0,
        mean_down_secs: 20.0,
        min_up_secs: 15.0,
        min_down_secs: 8.0,
        keep_first_online: true,
    }
}

fn fault_seed() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--seed expects an integer"))
        .unwrap_or(1)
}

fn scenario_plans(seed: u64, n_workers: usize, dur: f64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::new()),
        (
            "churn",
            FaultPlan::seeded_churn(seed, n_workers, dur, &churn_profile()),
        ),
        (
            "blackout",
            FaultPlan::new()
                .link_blackout(1, 0.20 * dur, 0.20 * dur + 12.0)
                .link_blackout(2, 0.50 * dur, 0.50 * dur + 15.0)
                .link_blackout(3, 0.70 * dur, 0.70 * dur + 10.0),
        ),
        (
            "server-restart",
            FaultPlan::new().server_restart(0.40 * dur, 0.40 * dur + 8.0),
        ),
    ]
}

fn json_f64(x: f64) -> String {
    // `+ 0.0` folds IEEE −0.0 into +0.0 so artifacts never print "-0".
    let x = x + 0.0;
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

fn scenario_json(scenario: &str, r: &RunMetrics) -> String {
    let mut s = String::from("    {\n");
    s.push_str(&format!("      \"scenario\": {scenario:?},\n"));
    s.push_str(&format!("      \"name\": {:?},\n", r.name));
    s.push_str(&format!(
        "      \"mean_iterations\": {},\n",
        json_f64(r.mean_iterations)
    ));
    s.push_str(&format!(
        "      \"total_energy_j\": {},\n",
        json_f64(r.total_energy_j)
    ));
    s.push_str(&format!(
        "      \"useful_bytes\": {},\n",
        json_f64(r.useful_bytes)
    ));
    s.push_str(&format!(
        "      \"wasted_bytes\": {},\n",
        json_f64(r.wasted_bytes)
    ));
    s.push_str(&format!(
        "      \"stall_secs\": {},\n",
        json_f64(r.stall_secs)
    ));
    s.push_str(&format!(
        "      \"offline_secs\": {},\n",
        json_f64(r.offline_secs)
    ));
    let final_metric = r.checkpoints.last().map_or(f64::NAN, |c| c.metric);
    s.push_str(&format!(
        "      \"final_metric\": {},\n",
        json_f64(final_metric)
    ));
    s.push_str("      \"accuracy_vs_time\": [");
    let pts: Vec<String> = r
        .checkpoints
        .iter()
        .map(|c| format!("[{}, {}, {}]", json_f64(c.time), c.iter, json_f64(c.metric)))
        .collect();
    s.push_str(&pts.join(", "));
    s.push_str("]\n    }");
    s
}

fn main() {
    let quick = rog_bench::quick();
    let dur = if quick { 120.0 } else { 600.0 };
    let seed = fault_seed();
    let base = ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Outdoor,
        strategy: Strategy::Rog { threshold: 4 },
        duration_secs: dur,
        // Frequent checkpoints: quick runs complete only ~25
        // iterations, and the accuracy-vs-time curve is the point.
        eval_every: 10,
        ..ExperimentConfig::default()
    };

    header(&format!(
        "Fault matrix: CRUDA outdoor, {dur:.0} virtual s, fault seed {seed}"
    ));
    let plans = scenario_plans(seed, base.n_workers, dur);
    let mut configs: Vec<(String, ExperimentConfig)> = plans
        .iter()
        .map(|(scenario, plan)| {
            (
                (*scenario).to_owned(),
                ExperimentConfig {
                    fault_plan: Some(plan.clone()),
                    ..base.clone()
                },
            )
        })
        .collect();
    // The robustness contrast: BSP under the identical churn plan. Its
    // static membership means every departure blocks the whole cluster.
    configs.push((
        "bsp-churn".to_owned(),
        ExperimentConfig {
            strategy: Strategy::Bsp,
            fault_plan: Some(plans[1].1.clone()),
            ..base.clone()
        },
    ));

    let runs = run_all(
        &configs
            .iter()
            .map(|(_, c)| c.clone())
            .collect::<Vec<ExperimentConfig>>(),
    );

    println!(
        "{:<15} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "scenario", "iters", "stall(s)", "offline(s)", "metric", "wasted(B)"
    );
    for ((scenario, _), r) in configs.iter().zip(&runs) {
        let final_metric = r.checkpoints.last().map_or(f64::NAN, |c| c.metric);
        println!(
            "{scenario:<15} {:>8.1} {:>10.1} {:>10.1} {:>10.2} {:>12.0}",
            r.mean_iterations,
            r.stall_secs + 0.0,
            r.offline_secs + 0.0,
            final_metric,
            r.wasted_bytes
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"fault_matrix_cruda_outdoor\",\n");
    json.push_str(&format!("  \"virtual_duration_secs\": {dur},\n"));
    json.push_str(&format!("  \"fault_seed\": {seed},\n"));
    json.push_str("  \"scenarios\": [\n");
    let rows: Vec<String> = configs
        .iter()
        .zip(&runs)
        .map(|((scenario, _), r)| scenario_json(scenario, r))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_fault.json", &json).expect("write BENCH_fault.json");
    println!("  -> wrote BENCH_fault.json");
}
