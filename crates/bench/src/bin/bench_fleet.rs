//! Fleet-scale benchmark: runs the CRUDA-outdoor ROG workload at
//! hundreds of workers, flat and through an edge-aggregator tier, and
//! writes `BENCH_fleet.json`.
//!
//! Two claims are quantified:
//!
//! 1. **The engine sustains fleet-scale worker counts.** Every cell
//!    reports simulation progress as *sim-events per virtual second*
//!    and the peak heap footprint of the sharded version store — both
//!    deterministic functions of the config and seed, so the artifact
//!    carries no wall-clock numbers and CI can byte-diff two runs of
//!    the same invocation as a reproducibility check.
//! 2. **Aggregation compresses upstream traffic.** Hierarchical cells
//!    record merged vs raw row counts; the merge ratio must be ≤ 1.
//!
//! Every cell is run twice and the two outcomes are asserted
//! byte-identical (`double_run_identity`).
//!
//! Usage: `cargo run --release -p rog-bench --bin bench_fleet
//!         [--quick] [--seed <n>]`

use rog_bench::header;
use rog_trainer::{
    Environment, ExperimentConfig, FleetStats, RunMetrics, RunOutcome, Strategy, WorkloadKind,
};

const N_SHARDS: usize = 4;

fn arg_seed() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--seed expects an integer"))
        .unwrap_or(1)
}

fn json_f64(x: f64) -> String {
    // `+ 0.0` folds IEEE −0.0 into +0.0 so artifacts never print "-0".
    let x = x + 0.0;
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Byte-level equality of everything the engine reports: if any of
/// these differ the runs were not the same computation.
fn identical(a: &RunOutcome, b: &RunOutcome) -> bool {
    a.stats == b.stats
        && a.metrics.checkpoints == b.metrics.checkpoints
        && a.metrics.mean_iterations == b.metrics.mean_iterations
        && a.metrics.total_energy_j == b.metrics.total_energy_j
        && a.metrics.useful_bytes == b.metrics.useful_bytes
        && a.metrics.wasted_bytes == b.metrics.wasted_bytes
        && a.metrics.stall_secs == b.metrics.stall_secs
        && a.metrics.final_model_divergence == b.metrics.final_model_divergence
}

fn run_outcomes(configs: &[ExperimentConfig]) -> Vec<RunOutcome> {
    std::thread::scope(|s| {
        let handles: Vec<_> = configs
            .iter()
            .map(|cfg| s.spawn(move || cfg.options().run()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
}

fn cell_json(workers: usize, aggs: usize, dur: f64, m: &RunMetrics, st: &FleetStats) -> String {
    let mut s = String::from("    {\n");
    s.push_str(&format!("      \"workers\": {workers},\n"));
    s.push_str(&format!("      \"aggregators\": {aggs},\n"));
    s.push_str(&format!("      \"name\": {:?},\n", m.name));
    s.push_str(&format!("      \"sim_events\": {},\n", st.sim_events));
    s.push_str(&format!(
        "      \"sim_events_per_virtual_sec\": {},\n",
        json_f64(st.sim_events as f64 / dur)
    ));
    s.push_str(&format!(
        "      \"queue_scheduled\": {},\n",
        st.queue_scheduled
    ));
    s.push_str(&format!(
        "      \"peak_version_bytes\": {},\n",
        st.peak_version_bytes
    ));
    s.push_str(&format!("      \"agg_flushes\": {},\n", st.agg_flushes));
    s.push_str(&format!(
        "      \"agg_upstream_rows\": {},\n",
        st.agg_upstream_rows
    ));
    s.push_str(&format!("      \"agg_raw_rows\": {},\n", st.agg_raw_rows));
    s.push_str(&format!("      \"agg_pulls\": {},\n", st.agg_pulls));
    s.push_str(&format!(
        "      \"mean_iterations\": {},\n",
        json_f64(m.mean_iterations)
    ));
    s.push_str(&format!(
        "      \"stall_secs\": {}\n",
        json_f64(m.stall_secs)
    ));
    s.push_str("    }");
    s
}

fn main() {
    let quick = rog_bench::quick();
    let dur = if quick { 30.0 } else { 120.0 };
    let fleet_sizes: &[usize] = if quick { &[16, 64] } else { &[64, 256] };
    let agg_counts: &[usize] = &[0, 8];
    let seed = arg_seed();
    // Paper-scale dataset: a fleet larger than the Small dataset's 150
    // samples could not give every worker a non-empty data shard.
    let base = ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Outdoor,
        strategy: Strategy::Rog { threshold: 4 },
        model_scale: rog_trainer::ModelScale::Paper,
        n_shards: N_SHARDS,
        duration_secs: dur,
        eval_every: 20,
        seed,
        ..ExperimentConfig::default()
    };

    header(&format!(
        "Fleet scaling: CRUDA outdoor, {dur:.0} virtual s, seed {seed}, \
         workers {fleet_sizes:?}, shards {N_SHARDS}, aggregators {agg_counts:?}"
    ));

    let mut labels: Vec<(usize, usize)> = Vec::new();
    let mut configs: Vec<ExperimentConfig> = Vec::new();
    for &workers in fleet_sizes {
        for &aggs in agg_counts {
            labels.push((workers, aggs));
            // Every cell twice: the pair must be byte-identical.
            for _ in 0..2 {
                configs.push(ExperimentConfig {
                    n_workers: workers,
                    n_aggregators: aggs,
                    ..base.clone()
                });
            }
        }
    }
    let outcomes = run_outcomes(&configs);
    let mut cells: Vec<RunOutcome> = Vec::new();
    let mut double_run_identity = true;
    for pair in outcomes.chunks(2) {
        double_run_identity &= identical(&pair[0], &pair[1]);
        cells.push(pair[0].clone());
    }

    println!(
        "{:>8} {:>5} {:>12} {:>14} {:>12} {:>12} {:>8}",
        "workers", "aggs", "sim_events", "ev/virt_sec", "peak_ver_B", "agg_rows", "iters"
    );
    for ((workers, aggs), out) in labels.iter().zip(&cells) {
        let st = &out.stats;
        println!(
            "{workers:>8} {aggs:>5} {:>12} {:>14.0} {:>12} {:>12} {:>8.1}",
            st.sim_events,
            st.sim_events as f64 / dur,
            st.peak_version_bytes,
            st.agg_upstream_rows,
            out.metrics.mean_iterations,
        );
    }

    // Aggregation must never *expand* upstream traffic: merged rows are
    // a dedup of the raw member rows absorbed in each window.
    let merge_ok = cells
        .iter()
        .all(|o| o.stats.agg_upstream_rows <= o.stats.agg_raw_rows);
    println!(
        "\ndouble-run identity: {}",
        if double_run_identity {
            "ok"
        } else {
            "MISMATCH"
        }
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"fleet_scaling_cruda_outdoor\",\n");
    json.push_str(&format!("  \"virtual_duration_secs\": {dur},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"shards\": {N_SHARDS},\n"));
    json.push_str(&format!(
        "  \"double_run_identity\": {double_run_identity},\n"
    ));
    json.push_str(&format!("  \"merge_never_expands\": {merge_ok},\n"));
    json.push_str("  \"cells\": [\n");
    let rows: Vec<String> = labels
        .iter()
        .zip(&cells)
        .map(|((w, a), out)| cell_json(*w, *a, dur, &out.metrics, &out.stats))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("  -> wrote BENCH_fleet.json");

    assert!(
        double_run_identity,
        "every fleet cell must be byte-identical across two runs of the same config"
    );
    assert!(
        merge_ok,
        "aggregator merge windows must not forward more rows than they absorbed"
    );
}
