//! Loss-matrix robustness benchmark: runs the CRUDA-outdoor workload
//! through a matrix of packet-loss scenarios (loss-free baseline,
//! 5 % i.i.d. loss, 10 % and 20 % bursty Gilbert–Elliott loss) and
//! writes `BENCH_loss.json` with accuracy-vs-virtual-time curves plus
//! the channel's byte ledger (useful / wasted / lost / corrupt) and
//! stall residency per scenario. A BSP-under-loss row quantifies the
//! transport argument: reliable-only whole-model transfers block on
//! backed-off retransmits, while ROG's best-effort gradient rows
//! degrade gracefully inside the RSP staleness bound.
//!
//! The codec sub-matrix reruns the clean and 10 % bursty scenarios
//! under the sparse-delta, 4-bit and auto row codecs, so the artifact
//! carries bytes-on-wire and final-metric columns per codec. A traced
//! probe pair additionally pins the wire-level claim: the sparse
//! encoding ships strictly fewer payload bytes per pushed row than the
//! dense one-bit baseline (total bytes are throughput-confounded —
//! cheaper rows buy more iterations in the same virtual time).
//!
//! Usage: `cargo run --release -p rog-bench --bin bench_loss
//!         [--quick] [--seed <n>]`
//!
//! The output contains no wall-clock timings — every field is a
//! deterministic function of the config and seeds, so CI can diff two
//! runs of the same invocation byte-for-byte as a reproducibility
//! check.

use rog_bench::{header, run_all};
use rog_compress::CodecChoice;
use rog_net::LossConfig;
use rog_obs::Record;
use rog_trainer::{Environment, ExperimentConfig, RunMetrics, Strategy, WorkloadKind};

fn loss_seed() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--seed expects an integer"))
        .unwrap_or(1)
}

fn scenarios(seed: u64) -> Vec<(&'static str, Option<LossConfig>)> {
    vec![
        ("none", None),
        ("iid-5", Some(LossConfig::iid(seed, 0.05))),
        ("ge-10", Some(LossConfig::gilbert_elliott(seed, 0.10))),
        ("ge-20", Some(LossConfig::gilbert_elliott(seed, 0.20))),
    ]
}

fn json_f64(x: f64) -> String {
    // `+ 0.0` folds IEEE −0.0 into +0.0 so artifacts never print "-0".
    let x = x + 0.0;
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

fn scenario_json(scenario: &str, codec: &str, r: &RunMetrics) -> String {
    let mut s = String::from("    {\n");
    s.push_str(&format!("      \"scenario\": {scenario:?},\n"));
    s.push_str(&format!("      \"codec\": {codec:?},\n"));
    s.push_str(&format!("      \"name\": {:?},\n", r.name));
    s.push_str(&format!(
        "      \"mean_iterations\": {},\n",
        json_f64(r.mean_iterations)
    ));
    s.push_str(&format!(
        "      \"total_energy_j\": {},\n",
        json_f64(r.total_energy_j)
    ));
    s.push_str(&format!(
        "      \"useful_bytes\": {},\n",
        json_f64(r.useful_bytes)
    ));
    s.push_str(&format!(
        "      \"wasted_bytes\": {},\n",
        json_f64(r.wasted_bytes)
    ));
    s.push_str(&format!(
        "      \"lost_bytes\": {},\n",
        json_f64(r.lost_bytes)
    ));
    s.push_str(&format!(
        "      \"corrupt_bytes\": {},\n",
        json_f64(r.corrupt_bytes)
    ));
    s.push_str(&format!(
        "      \"stall_secs\": {},\n",
        json_f64(r.stall_secs)
    ));
    let final_metric = r.checkpoints.last().map_or(f64::NAN, |c| c.metric);
    s.push_str(&format!(
        "      \"final_metric\": {},\n",
        json_f64(final_metric)
    ));
    s.push_str("      \"accuracy_vs_time\": [");
    let pts: Vec<String> = r
        .checkpoints
        .iter()
        .map(|c| format!("[{}, {}, {}]", json_f64(c.time), c.iter, json_f64(c.metric)))
        .collect();
    s.push_str(&pts.join(", "));
    s.push_str("]\n    }");
    s
}

fn main() {
    let quick = rog_bench::quick();
    let dur = if quick { 120.0 } else { 600.0 };
    let seed = loss_seed();
    let base = ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Outdoor,
        strategy: Strategy::Rog { threshold: 4 },
        duration_secs: dur,
        // Frequent checkpoints: quick runs complete only ~25
        // iterations, and the accuracy-vs-time curve is the point.
        eval_every: 10,
        ..ExperimentConfig::default()
    };

    header(&format!(
        "Loss matrix: CRUDA outdoor, {dur:.0} virtual s, loss seed {seed}"
    ));
    let matrix = scenarios(seed);
    let mut configs: Vec<(String, ExperimentConfig)> = matrix
        .iter()
        .map(|(scenario, loss)| {
            (
                (*scenario).to_owned(),
                ExperimentConfig {
                    loss: loss.clone(),
                    ..base.clone()
                },
            )
        })
        .collect();
    // The transport contrast: BSP under the identical bursty loss. Its
    // reliable-only whole-model transfers block on every lost chunk.
    configs.push((
        "bsp-ge-10".to_owned(),
        ExperimentConfig {
            strategy: Strategy::Bsp,
            loss: Some(LossConfig::gilbert_elliott(seed, 0.10)),
            ..base.clone()
        },
    ));
    configs.push((
        "bsp-none".to_owned(),
        ExperimentConfig {
            strategy: Strategy::Bsp,
            ..base.clone()
        },
    ));
    // The codec sub-matrix: every non-default rung of the ladder on
    // the clean channel and under the 10 % bursty loss the transport
    // contrast already uses.
    for codec in [
        CodecChoice::Sparse,
        CodecChoice::Quant { bits: 4 },
        CodecChoice::Auto,
    ] {
        for (scenario, loss) in [
            ("none", None),
            ("ge-10", Some(LossConfig::gilbert_elliott(seed, 0.10))),
        ] {
            configs.push((
                format!("{}-{scenario}", codec.name()),
                ExperimentConfig {
                    codec,
                    loss,
                    ..base.clone()
                },
            ));
        }
    }

    let runs = run_all(
        &configs
            .iter()
            .map(|(_, c)| c.clone())
            .collect::<Vec<ExperimentConfig>>(),
    );

    println!(
        "{:<12} {:>7} {:>8} {:>10} {:>13} {:>12} {:>10}",
        "scenario", "codec", "iters", "stall(s)", "useful(B)", "lost(B)", "metric"
    );
    for ((scenario, cfg), r) in configs.iter().zip(&runs) {
        let final_metric = r.checkpoints.last().map_or(f64::NAN, |c| c.metric);
        println!(
            "{scenario:<12} {:>7} {:>8.1} {:>10.1} {:>13.0} {:>12.0} {:>10.2}",
            cfg.effective_codec().name(),
            r.mean_iterations,
            r.stall_secs + 0.0,
            r.useful_bytes,
            r.lost_bytes,
            final_metric,
        );
    }

    // Wire-level probe: two short traced runs pin "sparse < dense" on
    // the per-row push payload, the one number the codec actually
    // controls. (Comparing the matrix's total bytes would confound the
    // codec with the extra iterations its cheaper rows buy.)
    let per_row_push_bytes = |codec: CodecChoice| -> f64 {
        let out = ExperimentConfig {
            codec,
            duration_secs: 120.0,
            ..base.clone()
        }
        .options()
        .traced(true)
        .run();
        let jsonl = out.journal.expect("traced run").to_jsonl();
        let (mut bytes, mut rows) = (0.0, 0.0);
        for line in jsonl.lines().filter(|l| l.contains("\"ev\":\"push_end\"")) {
            let rec = Record::parse(line).expect("journal line parses");
            bytes += rec.num("bytes").expect("push_end has bytes");
            rows += rec.num("rows").expect("push_end has rows");
        }
        bytes / rows
    };
    let onebit_row = per_row_push_bytes(CodecChoice::OneBit);
    let sparse_row = per_row_push_bytes(CodecChoice::Sparse);
    assert!(
        sparse_row < onebit_row,
        "sparse rows must undercut the dense one-bit payload: {sparse_row} vs {onebit_row} B/row"
    );
    println!("push payload per row: onebit {onebit_row:.0} B, sparse {sparse_row:.0} B");

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"loss_matrix_cruda_outdoor\",\n");
    json.push_str(&format!("  \"virtual_duration_secs\": {dur},\n"));
    json.push_str(&format!("  \"loss_seed\": {seed},\n"));
    json.push_str("  \"scenarios\": [\n");
    let rows: Vec<String> = configs
        .iter()
        .zip(&runs)
        .map(|((scenario, cfg), r)| scenario_json(scenario, cfg.effective_codec().name(), r))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"push_payload_bytes_per_row\": {{\"onebit\": {}, \"sparse\": {}}}\n",
        json_f64(onebit_row),
        json_f64(sparse_row)
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_loss.json", &json).expect("write BENCH_loss.json");
    println!("  -> wrote BENCH_loss.json");
}
