//! Loss-matrix robustness benchmark: runs the CRUDA-outdoor workload
//! through a matrix of packet-loss scenarios (loss-free baseline,
//! 5 % i.i.d. loss, 10 % and 20 % bursty Gilbert–Elliott loss) and
//! writes `BENCH_loss.json` with accuracy-vs-virtual-time curves plus
//! the channel's byte ledger (useful / wasted / lost / corrupt) and
//! stall residency per scenario. A BSP-under-loss row quantifies the
//! transport argument: reliable-only whole-model transfers block on
//! backed-off retransmits, while ROG's best-effort gradient rows
//! degrade gracefully inside the RSP staleness bound.
//!
//! Usage: `cargo run --release -p rog-bench --bin bench_loss
//!         [--quick] [--seed <n>]`
//!
//! The output contains no wall-clock timings — every field is a
//! deterministic function of the config and seeds, so CI can diff two
//! runs of the same invocation byte-for-byte as a reproducibility
//! check.

use rog_bench::{header, run_all};
use rog_net::LossConfig;
use rog_trainer::{Environment, ExperimentConfig, RunMetrics, Strategy, WorkloadKind};

fn loss_seed() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--seed expects an integer"))
        .unwrap_or(1)
}

fn scenarios(seed: u64) -> Vec<(&'static str, Option<LossConfig>)> {
    vec![
        ("none", None),
        ("iid-5", Some(LossConfig::iid(seed, 0.05))),
        ("ge-10", Some(LossConfig::gilbert_elliott(seed, 0.10))),
        ("ge-20", Some(LossConfig::gilbert_elliott(seed, 0.20))),
    ]
}

fn json_f64(x: f64) -> String {
    // `+ 0.0` folds IEEE −0.0 into +0.0 so artifacts never print "-0".
    let x = x + 0.0;
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

fn scenario_json(scenario: &str, r: &RunMetrics) -> String {
    let mut s = String::from("    {\n");
    s.push_str(&format!("      \"scenario\": {scenario:?},\n"));
    s.push_str(&format!("      \"name\": {:?},\n", r.name));
    s.push_str(&format!(
        "      \"mean_iterations\": {},\n",
        json_f64(r.mean_iterations)
    ));
    s.push_str(&format!(
        "      \"total_energy_j\": {},\n",
        json_f64(r.total_energy_j)
    ));
    s.push_str(&format!(
        "      \"useful_bytes\": {},\n",
        json_f64(r.useful_bytes)
    ));
    s.push_str(&format!(
        "      \"wasted_bytes\": {},\n",
        json_f64(r.wasted_bytes)
    ));
    s.push_str(&format!(
        "      \"lost_bytes\": {},\n",
        json_f64(r.lost_bytes)
    ));
    s.push_str(&format!(
        "      \"corrupt_bytes\": {},\n",
        json_f64(r.corrupt_bytes)
    ));
    s.push_str(&format!(
        "      \"stall_secs\": {},\n",
        json_f64(r.stall_secs)
    ));
    let final_metric = r.checkpoints.last().map_or(f64::NAN, |c| c.metric);
    s.push_str(&format!(
        "      \"final_metric\": {},\n",
        json_f64(final_metric)
    ));
    s.push_str("      \"accuracy_vs_time\": [");
    let pts: Vec<String> = r
        .checkpoints
        .iter()
        .map(|c| format!("[{}, {}, {}]", json_f64(c.time), c.iter, json_f64(c.metric)))
        .collect();
    s.push_str(&pts.join(", "));
    s.push_str("]\n    }");
    s
}

fn main() {
    let quick = rog_bench::quick();
    let dur = if quick { 120.0 } else { 600.0 };
    let seed = loss_seed();
    let base = ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Outdoor,
        strategy: Strategy::Rog { threshold: 4 },
        duration_secs: dur,
        // Frequent checkpoints: quick runs complete only ~25
        // iterations, and the accuracy-vs-time curve is the point.
        eval_every: 10,
        ..ExperimentConfig::default()
    };

    header(&format!(
        "Loss matrix: CRUDA outdoor, {dur:.0} virtual s, loss seed {seed}"
    ));
    let matrix = scenarios(seed);
    let mut configs: Vec<(String, ExperimentConfig)> = matrix
        .iter()
        .map(|(scenario, loss)| {
            (
                (*scenario).to_owned(),
                ExperimentConfig {
                    loss: loss.clone(),
                    ..base.clone()
                },
            )
        })
        .collect();
    // The transport contrast: BSP under the identical bursty loss. Its
    // reliable-only whole-model transfers block on every lost chunk.
    configs.push((
        "bsp-ge-10".to_owned(),
        ExperimentConfig {
            strategy: Strategy::Bsp,
            loss: Some(LossConfig::gilbert_elliott(seed, 0.10)),
            ..base.clone()
        },
    ));
    configs.push((
        "bsp-none".to_owned(),
        ExperimentConfig {
            strategy: Strategy::Bsp,
            ..base.clone()
        },
    ));

    let runs = run_all(
        &configs
            .iter()
            .map(|(_, c)| c.clone())
            .collect::<Vec<ExperimentConfig>>(),
    );

    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "scenario", "iters", "stall(s)", "lost(B)", "corrupt(B)", "metric"
    );
    for ((scenario, _), r) in configs.iter().zip(&runs) {
        let final_metric = r.checkpoints.last().map_or(f64::NAN, |c| c.metric);
        println!(
            "{scenario:<12} {:>8.1} {:>10.1} {:>12.0} {:>12.0} {:>10.2}",
            r.mean_iterations,
            r.stall_secs + 0.0,
            r.lost_bytes,
            r.corrupt_bytes,
            final_metric,
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"loss_matrix_cruda_outdoor\",\n");
    json.push_str(&format!("  \"virtual_duration_secs\": {dur},\n"));
    json.push_str(&format!("  \"loss_seed\": {seed},\n"));
    json.push_str("  \"scenarios\": [\n");
    let rows: Vec<String> = configs
        .iter()
        .zip(&runs)
        .map(|((scenario, _), r)| scenario_json(scenario, r))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_loss.json", &json).expect("write BENCH_loss.json");
    println!("  -> wrote BENCH_loss.json");
}
