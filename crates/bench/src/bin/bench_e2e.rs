//! End-to-end wall-clock benchmark: times a fixed short fig1-style run
//! (CRUDA outdoor) for a few strategies and writes `BENCH_e2e.json`
//! with the median of N repetitions, so successive PRs can track the
//! perf trajectory of the whole simulator, not just the kernels.
//!
//! Usage: `cargo run --release -p rog-bench --bin bench_e2e [--quick]`
//!
//! Each run is fully deterministic, so besides timings the file also
//! records a determinism fingerprint (`mean_iterations`,
//! `total_energy_j`, `useful_bytes`) — if a future change moves those
//! numbers, it changed behaviour, not just speed.

use std::time::Instant;

use rog_bench::quick;
use rog_trainer::{Environment, ExperimentConfig, Strategy, WorkloadKind};

struct Entry {
    name: String,
    all_secs: Vec<f64>,
    mean_iterations: f64,
    total_energy_j: f64,
    useful_bytes: f64,
}

/// Median of a sample (mean of the two middle elements when even).
fn median(xs: &[f64]) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

fn main() {
    let (reps, dur) = if quick() {
        (3usize, 45.0)
    } else {
        (5usize, 120.0)
    };
    let strategies = [
        Strategy::Bsp,
        Strategy::Ssp { threshold: 4 },
        Strategy::Rog { threshold: 4 },
    ];
    println!("bench_e2e: {reps} reps of {dur:.0} virtual seconds, CRUDA outdoor");

    let entries: Vec<Entry> = strategies
        .iter()
        .map(|&strategy| {
            let cfg = ExperimentConfig {
                workload: WorkloadKind::Cruda,
                environment: Environment::Outdoor,
                strategy,
                duration_secs: dur,
                ..ExperimentConfig::default()
            };
            let mut all_secs = Vec::with_capacity(reps);
            let mut last = None;
            for _ in 0..reps {
                let start = Instant::now();
                let run = cfg.options().run().metrics;
                all_secs.push(start.elapsed().as_secs_f64());
                last = Some(run);
            }
            let run = last.expect("reps >= 1");
            println!(
                "  {:<24} median {:>8.3}s  (iters {:.1}, energy {:.0} J)",
                run.name,
                median(&all_secs),
                run.mean_iterations,
                run.total_energy_j
            );
            Entry {
                name: run.name.clone(),
                all_secs,
                mean_iterations: run.mean_iterations,
                total_energy_j: run.total_energy_j,
                useful_bytes: run.useful_bytes,
            }
        })
        .collect();

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"e2e_cruda_outdoor_short\",\n");
    json.push_str(&format!("  \"virtual_duration_secs\": {dur},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": {:?},\n", e.name));
        json.push_str(&format!(
            "      \"median_secs\": {},\n",
            json_f64(median(&e.all_secs))
        ));
        let all: Vec<String> = e.all_secs.iter().map(|&s| json_f64(s)).collect();
        json.push_str(&format!("      \"all_secs\": [{}],\n", all.join(", ")));
        json.push_str(&format!(
            "      \"mean_iterations\": {},\n",
            json_f64(e.mean_iterations)
        ));
        json.push_str(&format!(
            "      \"total_energy_j\": {},\n",
            json_f64(e.total_energy_j)
        ));
        json.push_str(&format!(
            "      \"useful_bytes\": {}\n",
            json_f64(e.useful_bytes)
        ));
        json.push_str(if i + 1 < entries.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_e2e.json", &json).expect("write BENCH_e2e.json");
    println!("  -> wrote BENCH_e2e.json");
}
