//! MAC-model ablation: airtime fairness vs the 802.11 rate anomaly.
//!
//! The simulator's default channel gives each station an equal airtime
//! share (each moves at its own PHY rate). Real 802.11 DCF instead
//! equalizes *throughput*, so one distant robot drags every
//! transmission down to its pace — making the straggler effect worse
//! for everyone. This ablation reruns BSP and ROG-4 outdoors under both
//! models to show the reproduction's conclusions do not depend on the
//! fairness interpretation (ROG's advantage grows under the anomaly,
//! because aligning transmission *times* is exactly what the anomaly
//! punishes baselines for not doing).

use rog_bench::{duration, header, run_all, write_artifact};
use rog_net::SharingMode;
use rog_trainer::{Environment, ExperimentConfig, RunMetrics, Strategy, WorkloadKind};

fn main() {
    let dur = duration(2400.0, 240.0);
    let mut runs: Vec<RunMetrics> = Vec::new();
    for (tag, sharing) in [
        ("airtime", SharingMode::AirtimeFair),
        ("anomaly", SharingMode::ThroughputFair),
    ] {
        let configs: Vec<ExperimentConfig> = [Strategy::Bsp, Strategy::Rog { threshold: 4 }]
            .iter()
            .map(|&strategy| ExperimentConfig {
                workload: WorkloadKind::Cruda,
                environment: Environment::Outdoor,
                strategy,
                duration_secs: dur,
                mac_sharing: sharing,
                ..ExperimentConfig::default()
            })
            .collect();
        let mut batch = run_all(&configs);
        for r in &mut batch {
            let base = r.name.split(" / ").next().unwrap_or(&r.name).to_owned();
            r.name = format!("{base}[{tag}]");
        }
        runs.extend(batch);
    }

    header("MAC ablation — time composition per iteration (s)");
    let comp = rog_trainer::report::composition_table(&runs);
    print!("{comp}");
    write_artifact("ablation_mac_composition.csv", &comp);

    header("Summary");
    let find = |name: &str| {
        runs.iter()
            .find(|r| r.name.starts_with(name))
            .expect("run exists")
    };
    let bsp_gain =
        find("BSP[anomaly]").composition.total() / find("BSP[airtime]").composition.total();
    let rog_gain =
        find("ROG-4[anomaly]").composition.total() / find("ROG-4[airtime]").composition.total();
    println!(
        "rate anomaly inflates BSP iterations {bsp_gain:.2}x and ROG-4 iterations {rog_gain:.2}x"
    );
    let speedup_air =
        find("BSP[airtime]").composition.total() / find("ROG-4[airtime]").composition.total();
    let speedup_anom =
        find("BSP[anomaly]").composition.total() / find("ROG-4[anomaly]").composition.total();
    println!("ROG-4 speedup over BSP: {speedup_air:.2}x (airtime) vs {speedup_anom:.2}x (anomaly)");
}
