//! Figure 8: micro-event analysis.
//!
//! Runs ROG-4 on one robot's perspective in the outdoor environment and
//! records, at every push of that robot, the instantaneous link
//! bandwidth, the fraction of rows it managed to transmit (transmission
//! rate), and how many iterations it lags the fastest worker
//! (staleness). The paper's reading: when bandwidth fluctuates, the
//! transmission rate tracks it immediately and staleness stays low; in
//! a long deep fade staleness accumulates; when bandwidth recovers the
//! robot catches up quickly because it only has to transmit partial
//! rows.

use rog_bench::{duration, header, write_artifact};
use rog_trainer::{Environment, ExperimentConfig, Strategy, WorkloadKind};

fn main() {
    let dur = duration(240.0, 120.0);
    let cfg = ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Outdoor,
        strategy: Strategy::Rog { threshold: 4 },
        duration_secs: dur,
        record_micro: true,
        ..ExperimentConfig::default()
    };
    let m = cfg.options().run().metrics;

    header("Fig. 8 — bandwidth vs ROG transmission rate vs staleness (worker 0)");
    println!(
        "{:>8} {:>12} {:>10} {:>9}",
        "time_s", "bw_mbps", "tx_rate_%", "staleness"
    );
    let mut csv = String::from("time_s,bandwidth_mbps,transmission_rate,staleness\n");
    for s in &m.micro {
        println!(
            "{:>8.1} {:>12.1} {:>10.1} {:>9}",
            s.time,
            s.bandwidth_bps / 1e6,
            100.0 * s.transmission_rate,
            s.staleness
        );
        csv.push_str(&format!(
            "{:.2},{:.3},{:.4},{}\n",
            s.time,
            s.bandwidth_bps / 1e6,
            s.transmission_rate,
            s.staleness
        ));
    }
    write_artifact("fig8_micro_event.csv", &csv);

    // Summary correlations for the narrative.
    let n = m.micro.len() as f64;
    if n > 4.0 {
        let mean_bw = m.micro.iter().map(|s| s.bandwidth_bps).sum::<f64>() / n;
        let mean_tx = m.micro.iter().map(|s| s.transmission_rate).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var_b = 0.0;
        let mut var_t = 0.0;
        for s in &m.micro {
            let db = s.bandwidth_bps - mean_bw;
            let dt = s.transmission_rate - mean_tx;
            cov += db * dt;
            var_b += db * db;
            var_t += dt * dt;
        }
        let corr = cov / (var_b.sqrt() * var_t.sqrt()).max(1e-12);
        let max_stale = m.micro.iter().map(|s| s.staleness).max().unwrap_or(0);
        println!(
            "\ncorrelation(bandwidth, transmission rate) = {corr:.2} \
             (positive: ROG adapts the rate to the link in real time)"
        );
        println!("max staleness observed: {max_stale} (bounded by the RSP threshold 4)");
    }
}
