//! Extension experiment: CRUDA with the ConvMLP architecture.
//!
//! The paper's recognition model is ConvMLP (Li et al.); the default
//! harness workload is a dense MLP for calibration speed. This binary
//! runs the ConvMLP variant (convolutional stages over 12×12 image
//! inputs with smooth class templates) under BSP / SSP-4 / ROG-4 /
//! ROG-20 on the outdoor channel, verifying ROG's gains carry over to
//! the convolutional architecture: rows are now filter banks (one
//! output channel per row), but RSP/ATP are architecture-agnostic.

use rog_bench::{duration, header, run_all, series_at_times, write_artifact};
use rog_trainer::{Environment, ExperimentConfig, Strategy, WorkloadKind};

fn main() {
    let dur = duration(3600.0, 240.0);
    let strategies = [
        Strategy::Bsp,
        Strategy::Ssp { threshold: 4 },
        Strategy::Rog { threshold: 4 },
        Strategy::Rog { threshold: 20 },
    ];
    let configs: Vec<ExperimentConfig> = strategies
        .iter()
        .map(|&strategy| ExperimentConfig {
            workload: WorkloadKind::CrudaConv,
            environment: Environment::Outdoor,
            strategy,
            duration_secs: dur,
            ..ExperimentConfig::default()
        })
        .collect();
    let runs = run_all(&configs);

    header("ConvMLP CRUDA — time composition per iteration (s)");
    let comp = rog_trainer::report::composition_table(&runs);
    print!("{comp}");
    write_artifact("ext_convmlp_composition.csv", &comp);

    header("ConvMLP CRUDA — accuracy % vs wall-clock time (s)");
    let probes: Vec<f64> = (1..=8).map(|k| dur * k as f64 / 8.0).collect();
    let a = series_at_times(&runs, &probes);
    print!("{a}");
    write_artifact("ext_convmlp_accuracy.csv", &a);

    header("Summary");
    for r in &runs {
        println!(
            "{:<8} iters {:>5.0}  stall {:>5.2}s/iter  final {:>6.2}%",
            r.name.split(" / ").next().unwrap_or(&r.name),
            r.mean_iterations,
            r.composition.stall,
            r.checkpoints.last().map(|c| c.metric).unwrap_or(f64::NAN),
        );
    }
}
