//! `rogctl` — run one configurable experiment from the command line.
//!
//! ```text
//! cargo run --release -p rog-bench --bin rogctl -- \
//!     --workload cruda --env outdoor --strategy rog:4 --duration 1200 \
//!     --csv run.csv --json run.json
//! ```
//!
//! Subcommands: `rogctl trace [run flags] --out run.jsonl.gz` writes
//! the deterministic event journal of a run; `rogctl trace-summary
//! run.jsonl.gz` replays a journal into the Fig. 8-style composition
//! table; `rogctl serve` / `rogctl join` run the same experiment over
//! real UDP/TCP sockets, one process per role.

use std::process::ExitCode;

use rog_bench::cli::{self, CliCommand, CliRun};
use rog_obs::{gzip_compress, gzip_decompress, TraceSummary};
use rog_trainer::{report, run_with_result, TransportChoice};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse_command(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        CliCommand::Run(run) => run_experiment(&run),
        CliCommand::Trace { run, out } => trace_experiment(&run, &out),
        CliCommand::TraceSummary { path } => summarize_trace(&path),
        CliCommand::Serve { run, opts } => live_experiment(&run, TransportChoice::Serve(opts)),
        CliCommand::Join { run, opts } => live_experiment(&run, TransportChoice::Join(opts)),
    }
}

fn warn(run: &CliRun) {
    for w in &run.warnings {
        eprintln!("warning: {w}");
    }
}

fn run_experiment(run: &CliRun) -> ExitCode {
    warn(run);
    println!(
        "running {} for {:.0}s ...",
        run.config.name(),
        run.config.duration_secs
    );
    let metrics = run.config.options().run().metrics;

    println!(
        "\n{}",
        report::composition_table(std::slice::from_ref(&metrics))
    );
    println!("{} over time:", metrics.metric_name);
    for c in &metrics.checkpoints {
        println!(
            "  iter {:>5}  t={:>8.1}s  {}={:>8.3}  energy={:>9.0} J",
            c.iter, c.time, metrics.metric_name, c.metric, c.energy_j
        );
    }
    println!(
        "\ntotal: {:.0} iterations/worker, {:.0} J, {:.1} MB useful / {:.1} MB wasted on the wire",
        metrics.mean_iterations,
        metrics.total_energy_j,
        metrics.useful_bytes / 1e6,
        metrics.wasted_bytes / 1e6
    );

    if let Some(path) = &run.csv_out {
        std::fs::write(
            path,
            report::checkpoints_csv(std::slice::from_ref(&metrics)),
        )
        .expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = &run.json_out {
        std::fs::write(path, report::runs_to_json(std::slice::from_ref(&metrics)))
            .expect("write json");
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn live_experiment(run: &CliRun, transport: TransportChoice) -> ExitCode {
    warn(run);
    let role = match &transport {
        TransportChoice::Serve(opts) => format!("serving {} on {}", run.config.name(), opts.listen),
        TransportChoice::Join(opts) => {
            format!("joining {} at {}", run.config.name(), opts.connect)
        }
        TransportChoice::Sim => unreachable!("live_experiment is only called for socket runs"),
    };
    println!("{role} ({:.0} virtual secs) ...", run.config.duration_secs);
    let outcome = match run_with_result(&run.config.options().transport(transport)) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = outcome.metrics;
    println!(
        "\n{}",
        report::composition_table(std::slice::from_ref(&metrics))
    );
    println!(
        "total: {:.0} iterations/worker, {} checkpoints, {:.1} MB useful / {:.1} MB wasted on the wire",
        metrics.mean_iterations,
        metrics.checkpoints.len(),
        metrics.useful_bytes / 1e6,
        metrics.wasted_bytes / 1e6
    );
    if let Some(path) = &run.csv_out {
        std::fs::write(
            path,
            report::checkpoints_csv(std::slice::from_ref(&metrics)),
        )
        .expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = &run.json_out {
        std::fs::write(path, report::runs_to_json(std::slice::from_ref(&metrics)))
            .expect("write json");
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn trace_experiment(run: &CliRun, out: &str) -> ExitCode {
    warn(run);
    println!(
        "tracing {} for {:.0}s ...",
        run.config.name(),
        run.config.duration_secs
    );
    let outcome = run.config.options().traced(true).run();
    let (metrics, journal) = (outcome.metrics, outcome.journal.expect("traced run"));
    let jsonl = journal.to_jsonl();
    let bytes = if out.ends_with(".gz") {
        gzip_compress(jsonl.as_bytes())
    } else {
        jsonl.into_bytes()
    };
    if let Err(e) = std::fs::write(out, &bytes) {
        eprintln!("cannot write '{out}': {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out}: {} events, {} bytes ({:.0} iterations/worker in {:.0}s)",
        journal.len(),
        bytes.len(),
        metrics.mean_iterations,
        metrics.duration
    );
    if let Some(path) = &run.json_out {
        std::fs::write(path, report::runs_to_json(std::slice::from_ref(&metrics)))
            .expect("write json");
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn summarize_trace(path: &str) -> ExitCode {
    let raw = match std::fs::read(path) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    // Gzip member magic, not the extension, decides: traces may be
    // renamed in flight.
    let text = if raw.starts_with(&[0x1f, 0x8b]) {
        match gzip_decompress(&raw) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("'{path}' is not a valid gzip file: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        raw
    };
    let Ok(text) = String::from_utf8(text) else {
        eprintln!("'{path}' is not UTF-8 JSONL");
        return ExitCode::FAILURE;
    };
    match TraceSummary::from_jsonl(&text) {
        Ok(summary) => {
            print!("{}", summary.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot parse '{path}': {e}");
            ExitCode::FAILURE
        }
    }
}
