//! `rogctl` — run one configurable experiment from the command line.
//!
//! ```text
//! cargo run --release -p rog-bench --bin rogctl -- \
//!     --workload cruda --env outdoor --strategy rog:4 --duration 1200 \
//!     --csv run.csv --json run.json
//! ```

use std::process::ExitCode;

use rog_bench::cli;
use rog_trainer::report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = match cli::parse(&args) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "running {} for {:.0}s ...",
        run.config.name(),
        run.config.duration_secs
    );
    let metrics = run.config.run();

    println!(
        "\n{}",
        report::composition_table(std::slice::from_ref(&metrics))
    );
    println!("{} over time:", metrics.metric_name);
    for c in &metrics.checkpoints {
        println!(
            "  iter {:>5}  t={:>8.1}s  {}={:>8.3}  energy={:>9.0} J",
            c.iter, c.time, metrics.metric_name, c.metric, c.energy_j
        );
    }
    println!(
        "\ntotal: {:.0} iterations/worker, {:.0} J, {:.1} MB useful / {:.1} MB wasted on the wire",
        metrics.mean_iterations,
        metrics.total_energy_j,
        metrics.useful_bytes / 1e6,
        metrics.wasted_bytes / 1e6
    );

    if let Some(path) = &run.csv_out {
        std::fs::write(
            path,
            report::checkpoints_csv(std::slice::from_ref(&metrics)),
        )
        .expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = &run.json_out {
        std::fs::write(path, report::runs_to_json(std::slice::from_ref(&metrics)))
            .expect("write json");
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
