//! `rogctl` — run one configurable experiment from the command line.
//!
//! ```text
//! cargo run --release -p rog-bench --bin rogctl -- \
//!     --workload cruda --env outdoor --strategy rog:4 --duration 1200 \
//!     --csv run.csv --json run.json
//! ```
//!
//! Subcommands: `rogctl trace [run flags] --out run.jsonl.gz` writes
//! the deterministic event journal of a run; `rogctl trace-summary
//! run.jsonl.gz` replays a journal into the Fig. 8-style composition
//! table; `rogctl serve` / `rogctl join` run the same experiment over
//! real UDP/TCP sockets, one process per role; `rogctl fuzz` drives a
//! seeded scenario campaign through the differential invariant
//! harness.

use std::path::Path;
use std::process::ExitCode;

use rog_bench::cli::{self, CliCommand, CliRun, FuzzOptions};
use rog_fuzz::{check_scenario, shrink, FuzzReport, Scenario, ScenarioGen, ScenarioRecord};
use rog_obs::{gzip_compress, gzip_decompress, TraceSummary};
use rog_trainer::{report, run_with_result, TransportChoice};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse_command(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        CliCommand::Run(run) => run_experiment(&run),
        CliCommand::Trace { run, out } => trace_experiment(&run, &out),
        CliCommand::TraceSummary { path } => summarize_trace(&path),
        CliCommand::Serve { run, opts } => live_experiment(&run, TransportChoice::Serve(opts)),
        CliCommand::Join { run, opts } => live_experiment(&run, TransportChoice::Join(opts)),
        CliCommand::Fuzz(opts) => fuzz_campaign(&opts),
    }
}

fn warn(run: &CliRun) {
    for w in &run.warnings {
        eprintln!("warning: {w}");
    }
}

fn run_experiment(run: &CliRun) -> ExitCode {
    warn(run);
    println!(
        "running {} for {:.0}s ...",
        run.config.name(),
        run.config.duration_secs
    );
    let metrics = run.config.options().run().metrics;

    println!(
        "\n{}",
        report::composition_table(std::slice::from_ref(&metrics))
    );
    println!("{} over time:", metrics.metric_name);
    for c in &metrics.checkpoints {
        println!(
            "  iter {:>5}  t={:>8.1}s  {}={:>8.3}  energy={:>9.0} J",
            c.iter, c.time, metrics.metric_name, c.metric, c.energy_j
        );
    }
    println!(
        "\ntotal: {:.0} iterations/worker, {:.0} J, {:.1} MB useful / {:.1} MB wasted on the wire",
        metrics.mean_iterations,
        metrics.total_energy_j,
        metrics.useful_bytes / 1e6,
        metrics.wasted_bytes / 1e6
    );

    if let Some(path) = &run.csv_out {
        std::fs::write(
            path,
            report::checkpoints_csv(std::slice::from_ref(&metrics)),
        )
        .expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = &run.json_out {
        std::fs::write(path, report::runs_to_json(std::slice::from_ref(&metrics)))
            .expect("write json");
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn live_experiment(run: &CliRun, transport: TransportChoice) -> ExitCode {
    warn(run);
    let role = match &transport {
        TransportChoice::Serve(opts) => format!("serving {} on {}", run.config.name(), opts.listen),
        TransportChoice::Join(opts) => {
            format!("joining {} at {}", run.config.name(), opts.connect)
        }
        TransportChoice::Sim => unreachable!("live_experiment is only called for socket runs"),
    };
    println!("{role} ({:.0} virtual secs) ...", run.config.duration_secs);
    let outcome = match run_with_result(&run.config.options().transport(transport)) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = outcome.metrics;
    println!(
        "\n{}",
        report::composition_table(std::slice::from_ref(&metrics))
    );
    println!(
        "total: {:.0} iterations/worker, {} checkpoints, {:.1} MB useful / {:.1} MB wasted on the wire",
        metrics.mean_iterations,
        metrics.checkpoints.len(),
        metrics.useful_bytes / 1e6,
        metrics.wasted_bytes / 1e6
    );
    if let Some(path) = &run.csv_out {
        std::fs::write(
            path,
            report::checkpoints_csv(std::slice::from_ref(&metrics)),
        )
        .expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = &run.json_out {
        std::fs::write(path, report::runs_to_json(std::slice::from_ref(&metrics)))
            .expect("write json");
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn trace_experiment(run: &CliRun, out: &str) -> ExitCode {
    warn(run);
    println!(
        "tracing {} for {:.0}s ...",
        run.config.name(),
        run.config.duration_secs
    );
    let outcome = run.config.options().traced(true).run();
    let (metrics, journal) = (outcome.metrics, outcome.journal.expect("traced run"));
    let jsonl = journal.to_jsonl();
    let bytes = if out.ends_with(".gz") {
        gzip_compress(jsonl.as_bytes())
    } else {
        jsonl.into_bytes()
    };
    if let Err(e) = std::fs::write(out, &bytes) {
        eprintln!("cannot write '{out}': {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out}: {} events, {} bytes ({:.0} iterations/worker in {:.0}s)",
        journal.len(),
        bytes.len(),
        metrics.mean_iterations,
        metrics.duration
    );
    if let Some(path) = &run.json_out {
        std::fs::write(path, report::runs_to_json(std::slice::from_ref(&metrics)))
            .expect("write json");
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// Differential checks the shrinker may spend per failing scenario.
const SHRINK_BUDGET: usize = 200;

fn fuzz_campaign(opts: &FuzzOptions) -> ExitCode {
    let mut report = match &opts.replay {
        Some(_) => FuzzReport::new(0, 0.0),
        None => {
            let mut gen = ScenarioGen::new(opts.seed).widened(opts.widened);
            if let Some(secs) = opts.max_duration {
                gen = gen.max_duration(secs);
            }
            FuzzReport::new(gen.seed(), gen.max_duration_secs())
        }
    };

    // (label, scenario) pairs to check: a replayed corpus or a fresh
    // generator sweep.
    let scenarios: Vec<(String, Scenario)> = match &opts.replay {
        Some(path) => match load_repros(Path::new(path)) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut gen = ScenarioGen::new(opts.seed).widened(opts.widened);
            if let Some(secs) = opts.max_duration {
                gen = gen.max_duration(secs);
            }
            (0..opts.count)
                .map(|i| {
                    let sc = gen.scenario(i);
                    (sc.label(), sc)
                })
                .collect()
        }
    };

    for (label, sc) in &scenarios {
        let outcome = check_scenario(sc);
        report.push(ScenarioRecord::new(
            label.clone(),
            sc.strategy.name(),
            &outcome,
        ));
        if outcome.passed() {
            continue;
        }
        println!("FAIL {label}");
        for v in &outcome.violations {
            println!("  {v}");
        }
        let shrunk = shrink(sc, SHRINK_BUDGET);
        println!(
            "  shrunk to {} fault lines in {} replays",
            shrunk.scenario.script_lines(),
            shrunk.replays
        );
        if let Some(dir) = &opts.corpus {
            let dir = Path::new(dir);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create corpus dir '{}': {e}", dir.display());
                return ExitCode::FAILURE;
            }
            let name = format!("seed{}-{}.repro", sc.gen_seed, sc.index);
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, shrunk.scenario.to_repro()) {
                eprintln!("cannot write repro '{}': {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("  wrote {}", path.display());
        } else {
            print!("{}", shrunk.scenario.to_repro());
        }
    }

    print!("{}", report.render());
    if let Some(path) = &opts.json_out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write '{path}': {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if report.failing() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Loads one `.repro` file, or every `*.repro` in a directory
/// (sorted by file name for a stable replay order).
fn load_repros(path: &Path) -> Result<Vec<(String, Scenario)>, String> {
    let mut files = Vec::new();
    if path.is_dir() {
        let entries = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read corpus dir '{}': {e}", path.display()))?;
        for entry in entries {
            let p = entry
                .map_err(|e| format!("cannot read corpus dir '{}': {e}", path.display()))?
                .path();
            if p.extension().is_some_and(|x| x == "repro") {
                files.push(p);
            }
        }
        files.sort();
        if files.is_empty() {
            return Err(format!("no .repro files in '{}'", path.display()));
        }
    } else {
        files.push(path.to_path_buf());
    }
    files
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p)
                .map_err(|e| format!("cannot read '{}': {e}", p.display()))?;
            let sc = Scenario::parse(&text).map_err(|e| format!("'{}': {e}", p.display()))?;
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.display().to_string());
            Ok((name, sc))
        })
        .collect()
}

fn summarize_trace(path: &str) -> ExitCode {
    let raw = match std::fs::read(path) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    // Gzip member magic, not the extension, decides: traces may be
    // renamed in flight.
    let text = if raw.starts_with(&[0x1f, 0x8b]) {
        match gzip_decompress(&raw) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("'{path}' is not a valid gzip file: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        raw
    };
    let Ok(text) = String::from_utf8(text) else {
        eprintln!("'{path}' is not UTF-8 JSONL");
        return ExitCode::FAILURE;
    };
    match TraceSummary::from_jsonl(&text) {
        Ok(summary) => {
            print!("{}", summary.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot parse '{path}': {e}");
            ExitCode::FAILURE
        }
    }
}
