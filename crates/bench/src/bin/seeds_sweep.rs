//! Multi-seed confidence for the headline comparison.
//!
//! Runs BSP, SSP-4 and ROG-4 on CRUDA outdoors under several seeds
//! (different channel realizations, data draws and jitter) and reports
//! mean ± std of throughput, stall and accuracy-at-time — the
//! robustness check a physical testbed cannot afford (paper runs each
//! configuration once).

use rog_bench::{duration, header, write_artifact};
use rog_trainer::{stats, Environment, ExperimentConfig, Strategy, WorkloadKind};

fn main() {
    let dur = duration(1800.0, 180.0);
    let seeds: Vec<u64> = (1..=5).map(|k| 0x5EED + k).collect();
    header(&format!(
        "Seed sweep — CRUDA outdoors, {} seeds, {:.0}s each",
        seeds.len(),
        dur
    ));
    let mut csv =
        String::from("system,iters_mean,iters_std,stall_mean,stall_std,acc_mean,acc_std\n");
    let mut rog_acc = f64::NAN;
    let mut base_acc = f64::NEG_INFINITY;
    for strategy in [
        Strategy::Bsp,
        Strategy::Ssp { threshold: 4 },
        Strategy::Rog { threshold: 4 },
        Strategy::Rog { threshold: 20 },
    ] {
        let cfg = ExperimentConfig {
            workload: WorkloadKind::Cruda,
            environment: Environment::Outdoor,
            strategy,
            duration_secs: dur,
            ..ExperimentConfig::default()
        };
        let runs = stats::run_seeds(&cfg, &seeds);
        let iters = stats::iterations(&runs);
        let stall = stats::stall(&runs);
        let acc = stats::metric_at_time(&runs, dur);
        println!(
            "{:<8} iterations {iters}   stall(s/iter) {stall}   accuracy@{dur:.0}s {acc}",
            strategy.name()
        );
        csv.push_str(&format!(
            "{},{:.2},{:.2},{:.3},{:.3},{:.2},{:.2}\n",
            strategy.name(),
            iters.mean,
            iters.std,
            stall.mean,
            stall.std,
            acc.mean,
            acc.std
        ));
        if strategy.name().starts_with("ROG") {
            if rog_acc.is_nan() || acc.mean > rog_acc {
                rog_acc = acc.mean;
            }
        } else if acc.mean > base_acc {
            base_acc = acc.mean;
        }
    }
    write_artifact("seeds_sweep.csv", &csv);
    println!(
        "\nacross seeds, best ROG beats the best baseline by {:+.2} accuracy \
         points on average",
        rog_acc - base_acc
    );
}
