//! Table III: power in different states, plus the derived observations
//! the paper makes from it (stall burns ~30 % of compute power; a
//! stalling robot is *not* a sleeping robot).

use rog_bench::{duration, header, write_artifact};
use rog_energy::PowerModel;
use rog_trainer::{Environment, ExperimentConfig, Strategy, WorkloadKind};

fn main() {
    header("Table III — power (W) in different states");
    let m = PowerModel::jetson_nx();
    println!("computation:   {:>6.2} W", m.compute_w);
    println!("communication: {:>6.2} W", m.communicate_w);
    println!("stall:         {:>6.2} W", m.stall_w);
    println!(
        "stall / computation = {:.0}% (paper: \"nearly 30%\", leakage current \
         keeps chips warm while waiting)",
        100.0 * m.stall_w / m.compute_w
    );
    write_artifact(
        "table3_power.csv",
        &format!(
            "state,power_w\ncomputation,{}\ncommunication,{}\nstall,{}\n",
            m.compute_w, m.communicate_w, m.stall_w
        ),
    );

    header("Derived: per-state energy share of one BSP outdoor run");
    let cfg = ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Outdoor,
        strategy: Strategy::Bsp,
        duration_secs: duration(1200.0, 180.0),
        ..ExperimentConfig::default()
    };
    let run = cfg.options().run().metrics;
    let c = run.composition;
    let total = c.total().max(1e-9);
    let e_compute = c.compute * m.compute_w;
    let e_comm = c.communicate * m.communicate_w;
    let e_stall = c.stall * m.stall_w;
    let e_total = e_compute + e_comm + e_stall;
    println!(
        "time share per iteration: compute {:.0}%, comm {:.0}%, stall {:.0}%",
        100.0 * c.compute / total,
        100.0 * c.communicate / total,
        100.0 * c.stall / total
    );
    println!(
        "energy share per iteration: compute {:.0}%, comm {:.0}%, stall {:.0}%",
        100.0 * e_compute / e_total,
        100.0 * e_comm / e_total,
        100.0 * e_stall / e_total
    );
    println!(
        "\nstall is a real energy cost: eliminating it is where ROG's \
         20.4–50.7% energy saving comes from."
    );
}
