//! Trace replay — the artifact's evaluation path.
//!
//! The paper's artifact replays real-time bandwidth recorded on the
//! moving robots (with `tc`) so results reproduce on stationary
//! devices. This binary does the same round trip in the simulator:
//! record the outdoor channel to CSV, load it back, and run BSP vs
//! ROG-4 on the *replayed* traces — verifying (a) the CSV path is
//! lossless (identical results to the generated-trace run) and (b) any
//! externally recorded trace in `time_s,value` form can drive the
//! whole evaluation.

use rog_bench::{duration, header, results_dir, run_all};
use rog_net::{io, ChannelProfile, Trace};
use rog_trainer::{Environment, ExperimentConfig, Strategy, WorkloadKind};

fn main() {
    let dur = duration(900.0, 180.0);
    let profile = ChannelProfile::outdoor();

    header("Recording traces to CSV");
    // Derive the trace seeds exactly as the cluster builder does for the
    // default experiment seed, so the generated-trace reference runs see
    // identical channels.
    let root = rog_tensor::rng::DetRng::new(ExperimentConfig::default().seed);
    let trace_len = dur.clamp(300.0, 1800.0);
    let capacity = profile.generate(root.fork(0x50).seed(), trace_len);
    let links: Vec<Trace> = (0..4)
        .map(|w| profile.generate_link(root.fork(0x60 + w as u64).seed(), trace_len))
        .collect();
    let dir = results_dir();
    io::save_trace(&capacity, dir.join("replay_capacity.csv")).expect("save capacity");
    for (w, l) in links.iter().enumerate() {
        io::save_trace(l, dir.join(format!("replay_link{w}.csv"))).expect("save link");
    }
    println!("  recorded 1 capacity + {} link traces", links.len());

    header("Replaying from CSV");
    let capacity_back = io::load_trace(dir.join("replay_capacity.csv")).expect("load capacity");
    let links_back: Vec<Trace> = (0..4)
        .map(|w| io::load_trace(dir.join(format!("replay_link{w}.csv"))).expect("load link"))
        .collect();

    let mk = |strategy, cap: Option<Trace>, links: Option<Vec<Trace>>| ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Outdoor,
        strategy,
        duration_secs: dur,
        capacity_trace: cap,
        link_traces: links,
        ..ExperimentConfig::default()
    };
    let configs = vec![
        mk(
            Strategy::Bsp,
            Some(capacity_back.clone()),
            Some(links_back.clone()),
        ),
        mk(
            Strategy::Rog { threshold: 4 },
            Some(capacity_back),
            Some(links_back),
        ),
        // Reference: the generated-trace run with the same seeds.
        mk(Strategy::Bsp, None, None),
        mk(Strategy::Rog { threshold: 4 }, None, None),
    ];
    let runs = run_all(&configs);

    header("Replay vs generated (identical traces → identical results)");
    for pair in [(0usize, 2usize), (1, 3)] {
        let (replay, gen) = (&runs[pair.0], &runs[pair.1]);
        let same =
            replay.checkpoints == gen.checkpoints && replay.mean_iterations == gen.mean_iterations;
        println!(
            "{:<8} replay {:>6.0} iters / generated {:>6.0} iters — {}",
            gen.name.split(" / ").next().unwrap_or(""),
            replay.mean_iterations,
            gen.mean_iterations,
            if same {
                "bit-identical ✓"
            } else {
                "DIFFERS ✗"
            }
        );
        assert!(same, "replayed run must match the generated run");
    }
}
