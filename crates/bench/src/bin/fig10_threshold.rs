//! Figure 10: ROG under a wider range of staleness thresholds
//! (4 / 20 / 30 / 40), CRUDA outdoors.
//!
//! The paper's reading: large thresholds buy early training speed
//! (higher throughput) but degrade late statistical efficiency, so the
//! final accuracy is slightly lower — the threshold trades training
//! speed against final quality.

use rog_bench::{duration, header, run_all, series_at_iterations, series_at_times, write_artifact};
use rog_trainer::{Environment, ExperimentConfig, Strategy, WorkloadKind};

fn main() {
    let dur = duration(7200.0, 240.0);
    let configs: Vec<ExperimentConfig> = [4u32, 20, 30, 40]
        .iter()
        .map(|&threshold| ExperimentConfig {
            workload: WorkloadKind::Cruda,
            environment: Environment::Outdoor,
            strategy: Strategy::Rog { threshold },
            duration_secs: dur,
            ..ExperimentConfig::default()
        })
        .collect();
    let runs = run_all(&configs);

    header("Fig. 10a — accuracy % vs wall-clock time (s)");
    let probes: Vec<f64> = (1..=12).map(|k| dur * k as f64 / 12.0).collect();
    let a = series_at_times(&runs, &probes);
    print!("{a}");
    write_artifact("fig10a_accuracy_vs_time.csv", &a);

    header("Fig. 10b — statistical efficiency (accuracy % vs iteration)");
    let max_iter = runs
        .iter()
        .flat_map(|r| r.checkpoints.last().map(|c| c.iter))
        .min()
        .unwrap_or(0);
    let iters: Vec<u64> = (1..=10)
        .map(|k| k * max_iter / 10)
        .filter(|&i| i > 0)
        .collect();
    let b = series_at_iterations(&runs, &iters);
    print!("{b}");
    write_artifact("fig10b_statistical_efficiency.csv", &b);

    header("Throughput vs final quality");
    for r in &runs {
        let last = r.checkpoints.last();
        println!(
            "{:<8} iterations {:>6.0}  final accuracy {:>6.2}%",
            r.name.split(" / ").next().unwrap_or(&r.name),
            r.mean_iterations,
            last.map(|c| c.metric).unwrap_or(f64::NAN),
        );
    }
    println!(
        "\npaper: thresholds 30/40 train faster early but end slightly below \
         ROG-4/20 — pick the threshold by whether speed or final quality \
         matters (automatic selection left as future work)."
    );
}
