//! Figure 1: CRUDA in the outdoor environment.
//!
//! Panels: (a) average time composition of a training iteration,
//! (b) statistical efficiency (accuracy vs iteration), (c) accuracy vs
//! wall-clock time, (d) energy consumption vs accuracy — for BSP, SSP-4,
//! SSP-20, FLOWN, ROG-4, ROG-20. Also prints the paper's headline
//! numbers: accuracy gain after fixed training time and energy saving to
//! reach a common accuracy.

use rog_bench::{duration, header, run_all, series_at_iterations, series_at_times, write_artifact};
use rog_trainer::report;
use rog_trainer::{Environment, ExperimentConfig, Strategy, WorkloadKind};

fn main() {
    let dur = duration(5400.0, 240.0);
    let strategies = [
        Strategy::Bsp,
        Strategy::Ssp { threshold: 4 },
        Strategy::Ssp { threshold: 20 },
        Strategy::Flown {
            min_threshold: 2,
            max_threshold: 20,
        },
        Strategy::Rog { threshold: 4 },
        Strategy::Rog { threshold: 20 },
    ];
    let configs: Vec<ExperimentConfig> = strategies
        .iter()
        .map(|&strategy| ExperimentConfig {
            workload: WorkloadKind::Cruda,
            environment: Environment::Outdoor,
            strategy,
            duration_secs: dur,
            ..ExperimentConfig::default()
        })
        .collect();
    let runs = run_all(&configs);

    header("Fig. 1a — average time composition of a training iteration (s)");
    let comp = report::composition_table(&runs);
    print!("{comp}");
    write_artifact("fig1a_composition.csv", &comp);

    header("Fig. 1b — statistical efficiency (accuracy % vs iteration)");
    let max_iter = runs
        .iter()
        .flat_map(|r| r.checkpoints.last().map(|c| c.iter))
        .min()
        .unwrap_or(0);
    let iters: Vec<u64> = (1..=10)
        .map(|k| k * max_iter / 10)
        .filter(|&i| i > 0)
        .collect();
    let b = series_at_iterations(&runs, &iters);
    print!("{b}");
    write_artifact("fig1b_statistical_efficiency.csv", &b);

    header("Fig. 1c — accuracy % vs wall-clock time (s)");
    let probes: Vec<f64> = (1..=12).map(|k| dur * k as f64 / 12.0).collect();
    let c = series_at_times(&runs, &probes);
    print!("{c}");
    write_artifact("fig1c_accuracy_vs_time.csv", &c);

    header("Fig. 1d — energy (J) to reach accuracy targets");
    let mut d = String::from("target_acc");
    for r in &runs {
        d.push(',');
        d.push_str(r.name.split(" / ").next().unwrap_or(&r.name));
    }
    d.push('\n');
    let best_final = runs
        .iter()
        .flat_map(|r| r.checkpoints.last().map(|c| c.metric))
        .fold(f64::NEG_INFINITY, f64::max);
    for k in 0..6 {
        let target = best_final - 8.0 + k as f64 * 1.6;
        d.push_str(&format!("{target:.1}"));
        for r in &runs {
            match report::energy_to_reach(r, target) {
                Some(j) => d.push_str(&format!(",{j:.0}")),
                None => d.push_str(",-"),
            }
        }
        d.push('\n');
    }
    print!("{d}");
    write_artifact("fig1d_energy_to_accuracy.csv", &d);

    header("Headline numbers (paper Sec. VI-A)");
    let rog_best = runs
        .iter()
        .filter(|r| r.name.starts_with("ROG"))
        .flat_map(|r| report::metric_at_time(r, dur))
        .fold(f64::NEG_INFINITY, f64::max);
    let baseline_best = runs
        .iter()
        .filter(|r| !r.name.starts_with("ROG"))
        .flat_map(|r| report::metric_at_time(r, dur))
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "accuracy after {dur:.0}s: best ROG {rog_best:.1}%, best baseline {baseline_best:.1}% \
         (gain {:+.1} pts; paper reports +4.9 to +6.5 pts outdoors at 60 min)",
        rog_best - baseline_best
    );
    let target = baseline_best.min(rog_best) - 0.5;
    let rog_energy = runs
        .iter()
        .filter(|r| r.name.starts_with("ROG"))
        .flat_map(|r| report::energy_to_reach(r, target))
        .fold(f64::INFINITY, f64::min);
    let base_energy = runs
        .iter()
        .filter(|r| !r.name.starts_with("ROG"))
        .flat_map(|r| report::energy_to_reach(r, target))
        .fold(f64::INFINITY, f64::min);
    if rog_energy.is_finite() && base_energy.is_finite() {
        println!(
            "energy to reach {target:.1}%: ROG {rog_energy:.0} J vs best baseline {base_energy:.0} J \
             ({:.1}% saving; paper reports 20.4–50.7%)",
            100.0 * (1.0 - rog_energy / base_energy)
        );
    }
    let rog_stall: f64 = runs
        .iter()
        .filter(|r| r.name.starts_with("ROG"))
        .map(|r| r.composition.stall)
        .fold(f64::INFINITY, f64::min);
    let base_stall: f64 = runs
        .iter()
        .filter(|r| !r.name.starts_with("ROG"))
        .map(|r| r.composition.stall)
        .fold(f64::INFINITY, f64::min);
    println!(
        "stall per iteration: ROG {rog_stall:.2}s vs best baseline {base_stall:.2}s \
         (paper: ROG cuts outdoor stall by 49.1–86.5%)"
    );
}
