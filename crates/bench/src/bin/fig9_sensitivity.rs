//! Figure 9: sensitivity to batch size and worker count.
//!
//! Left column: CRUDA outdoors with batch ×1 / ×2 / ×4 for BSP, SSP-4
//! and ROG-4 (FLOWN omitted, as in the paper). Right column: 4 / 6 / 8
//! workers. Panels: accuracy vs time, energy to reach a target, and
//! time composition.

use rog_bench::{duration, header, run_all, series_at_times, write_artifact};
use rog_trainer::report;
use rog_trainer::{Environment, ExperimentConfig, RunMetrics, Strategy, WorkloadKind};

fn strategies() -> [Strategy; 3] {
    [
        Strategy::Bsp,
        Strategy::Ssp { threshold: 4 },
        Strategy::Rog { threshold: 4 },
    ]
}

fn tagged(mut runs: Vec<RunMetrics>, tag: &str) -> Vec<RunMetrics> {
    for r in &mut runs {
        let base = r.name.split(" / ").next().unwrap_or(&r.name).to_owned();
        r.name = format!("{base}-{tag}");
    }
    runs
}

fn main() {
    let dur = duration(3600.0, 200.0);

    header("Fig. 9 left column — batch-size sensitivity (CRUDA outdoor)");
    let mut batch_runs: Vec<RunMetrics> = Vec::new();
    for &scale in &[1.0, 2.0, 4.0] {
        let configs: Vec<ExperimentConfig> = strategies()
            .iter()
            .map(|&strategy| ExperimentConfig {
                workload: WorkloadKind::Cruda,
                environment: Environment::Outdoor,
                strategy,
                batch_scale: scale,
                duration_secs: dur,
                ..ExperimentConfig::default()
            })
            .collect();
        batch_runs.extend(tagged(run_all(&configs), &format!("Bx{}", scale as u32)));
    }
    let probes: Vec<f64> = (1..=8).map(|k| dur * k as f64 / 8.0).collect();
    let a = series_at_times(&batch_runs, &probes);
    print!("{a}");
    write_artifact("fig9a_accuracy_batch.csv", &a);
    let comp = report::composition_table(&batch_runs);
    print!("\n{comp}");
    write_artifact("fig9e_composition_batch.csv", &comp);

    header("Fig. 9 right column — worker-count sensitivity (CRUDA outdoor)");
    let mut worker_runs: Vec<RunMetrics> = Vec::new();
    for &n in &[4usize, 6, 8] {
        let configs: Vec<ExperimentConfig> = strategies()
            .iter()
            .map(|&strategy| ExperimentConfig {
                workload: WorkloadKind::Cruda,
                environment: Environment::Outdoor,
                strategy,
                n_workers: n,
                duration_secs: dur,
                ..ExperimentConfig::default()
            })
            .collect();
        worker_runs.extend(tagged(run_all(&configs), &format!("Nx{n}")));
    }
    let b = series_at_times(&worker_runs, &probes);
    print!("{b}");
    write_artifact("fig9b_accuracy_workers.csv", &b);
    let comp = report::composition_table(&worker_runs);
    print!("\n{comp}");
    write_artifact("fig9f_composition_workers.csv", &comp);

    header("Fig. 9c/9d — energy to reach a common accuracy");
    let mut csv = String::from("run,energy_j\n");
    let all: Vec<&RunMetrics> = batch_runs.iter().chain(worker_runs.iter()).collect();
    let common_target = all
        .iter()
        .flat_map(|r| r.checkpoints.last().map(|c| c.metric))
        .fold(f64::INFINITY, f64::min)
        - 0.5;
    for r in &all {
        let e = report::energy_to_reach(r, common_target)
            .map(|j| format!("{j:.0}"))
            .unwrap_or_else(|| "-".into());
        println!("{:<14} energy to {common_target:.1}%: {e} J", r.name);
        csv.push_str(&format!("{},{e}\n", r.name));
    }
    write_artifact("fig9cd_energy.csv", &csv);

    println!(
        "\npaper: larger batches shrink the communication share and ROG's gain \
         (5.3% gain at ×2, 3.5% at ×4); more workers deepen the straggler \
         effect and ROG's energy saving grows (48.1% at 6, 55.1% at 8)."
    );
}
