//! Importance-metric ablation: what do ATP's two terms buy?
//!
//! Runs ROG-4 on CRUDA outdoors with the full metric
//! (`f1·magnitude + f2·staleness`), magnitude-only (`f2 = 0`),
//! staleness-only (`f1 = 0`), and neither (round-robin by row id).
//! The paper's claim (Sec. VI-A): prioritizing large-magnitude rows is
//! what keeps partial synchronization statistically efficient, while
//! the staleness term keeps stale pushed rows from tripping the RSP
//! gate.

use rog_bench::{duration, header, run_all, series_at_times, write_artifact};
use rog_trainer::report;
use rog_trainer::{Environment, ExperimentConfig, Strategy, WorkloadKind};

fn main() {
    let dur = duration(3600.0, 240.0);
    let variants: [(&str, (f64, f64)); 4] = [
        ("full", (1.0, 1.0)),
        ("magnitude-only", (1.0, 0.0)),
        ("staleness-only", (0.0, 1.0)),
        ("round-robin", (0.0, 0.0)),
    ];
    let configs: Vec<ExperimentConfig> = variants
        .iter()
        .map(|&(_, w)| ExperimentConfig {
            workload: WorkloadKind::Cruda,
            environment: Environment::Outdoor,
            strategy: Strategy::Rog { threshold: 4 },
            duration_secs: dur,
            importance_weights: Some(w),
            ..ExperimentConfig::default()
        })
        .collect();
    let mut runs = run_all(&configs);
    for (r, (name, _)) in runs.iter_mut().zip(&variants) {
        r.name = format!("ROG-4[{name}]");
    }

    header("Importance ablation — accuracy % vs wall-clock time (s)");
    let probes: Vec<f64> = (1..=8).map(|k| dur * k as f64 / 8.0).collect();
    let a = series_at_times(&runs, &probes);
    print!("{a}");
    write_artifact("ablation_importance.csv", &a);

    header("Summary");
    for r in &runs {
        println!(
            "{:<24} iters {:>5.0}  stall {:>5.2}s/iter  final {:>6.2}%  acc@{dur:.0}s {:>6.2}%",
            r.name,
            r.mean_iterations,
            r.composition.stall,
            r.checkpoints.last().map(|c| c.metric).unwrap_or(f64::NAN),
            report::metric_at_time(r, dur).unwrap_or(f64::NAN),
        );
    }
}
