//! Sync-model shootout: runs every synchronization strategy the
//! trainer knows — BSP, SSP, ASP, FLOWN, DSSP, ABS, static ROG and the
//! adaptive-bound ROG hybrid — through a clean / bursty-loss /
//! worker-churn / outdoor scenario matrix and writes `BENCH_sync.json`.
//!
//! The artifact ranks the models per scenario by mean iterations
//! completed, so a regression in any one model's throughput (or an
//! adaptation controller that stops adapting) shows up as a rank flip
//! in review.
//!
//! Usage: `cargo run --release -p rog-bench --bin bench_sync
//!         [--quick] [--seed <n>]`
//!
//! The output contains no wall-clock timings — every field is a
//! deterministic function of the config and seeds, so CI can diff two
//! runs of the same invocation byte-for-byte as a reproducibility
//! check (and does, across compute-thread counts).

use rog_bench::{header, run_all};
use rog_fault::FaultPlan;
use rog_net::LossConfig;
use rog_trainer::{Environment, ExperimentConfig, RunMetrics, Strategy, WorkloadKind};

/// The six-model spectrum plus the adaptive-bound hybrid. Bound ranges
/// are part of the run name (`DSSP-1..8`), so every row of the matrix
/// is distinguishable in the artifact.
const MODELS: [Strategy; 8] = [
    Strategy::Bsp,
    Strategy::Ssp { threshold: 4 },
    Strategy::Asp,
    Strategy::Flown {
        min_threshold: 2,
        max_threshold: 12,
    },
    Strategy::Dssp {
        min_threshold: 1,
        max_threshold: 8,
    },
    Strategy::Abs {
        min_threshold: 1,
        max_threshold: 8,
    },
    Strategy::Rog { threshold: 4 },
    Strategy::RogAdaptive {
        min_threshold: 1,
        max_threshold: 8,
    },
];

fn arg_seed() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--seed expects an integer"))
        .unwrap_or(1)
}

/// The scenario matrix: (label, environment, fault plan, loss model).
fn scenarios(
    seed: u64,
    dur: f64,
) -> Vec<(
    &'static str,
    Environment,
    Option<FaultPlan>,
    Option<LossConfig>,
)> {
    let churn = FaultPlan::new().worker_offline(1, dur * 0.30, dur * 0.55);
    vec![
        ("clean", Environment::Stable, None, None),
        (
            "ge-10",
            Environment::Stable,
            None,
            Some(LossConfig::gilbert_elliott(seed, 0.10)),
        ),
        ("churn", Environment::Stable, Some(churn), None),
        ("outdoor", Environment::Outdoor, None, None),
    ]
}

fn json_f64(x: f64) -> String {
    // `+ 0.0` folds IEEE −0.0 into +0.0 so artifacts never print "-0".
    let x = x + 0.0;
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

fn cell_json(scenario: &str, model: &str, r: &RunMetrics) -> String {
    let mut s = String::from("    {\n");
    s.push_str(&format!("      \"scenario\": {scenario:?},\n"));
    s.push_str(&format!("      \"model\": {model:?},\n"));
    s.push_str(&format!("      \"name\": {:?},\n", r.name));
    s.push_str(&format!(
        "      \"mean_iterations\": {},\n",
        json_f64(r.mean_iterations)
    ));
    s.push_str(&format!(
        "      \"total_energy_j\": {},\n",
        json_f64(r.total_energy_j)
    ));
    s.push_str(&format!(
        "      \"useful_bytes\": {},\n",
        json_f64(r.useful_bytes)
    ));
    s.push_str(&format!(
        "      \"wasted_bytes\": {},\n",
        json_f64(r.wasted_bytes)
    ));
    s.push_str(&format!(
        "      \"lost_bytes\": {},\n",
        json_f64(r.lost_bytes)
    ));
    s.push_str(&format!(
        "      \"stall_secs\": {},\n",
        json_f64(r.stall_secs)
    ));
    s.push_str(&format!(
        "      \"offline_secs\": {},\n",
        json_f64(r.offline_secs)
    ));
    let final_metric = r.checkpoints.last().map_or(f64::NAN, |c| c.metric);
    s.push_str(&format!(
        "      \"final_metric\": {}\n",
        json_f64(final_metric)
    ));
    s.push_str("    }");
    s
}

fn main() {
    let quick = rog_bench::quick();
    let dur = if quick { 120.0 } else { 600.0 };
    let seed = arg_seed();
    let base = ExperimentConfig {
        workload: WorkloadKind::Cruda,
        duration_secs: dur,
        eval_every: 10,
        seed,
        ..ExperimentConfig::default()
    };

    header(&format!(
        "Sync-model shootout: CRUDA, {dur:.0} virtual s, seed {seed}, {} models",
        MODELS.len()
    ));

    // Every (scenario, model) cell must carry a distinct run name:
    // adaptive models encode their bound ranges, so a DSSP-1..8 row can
    // never be mistaken for an ABS-1..8 one (or a second DSSP range).
    let names: Vec<String> = MODELS.iter().map(|m| m.name()).collect();
    let mut unique = names.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(
        unique.len(),
        MODELS.len(),
        "sync-model names must be distinct: {names:?}"
    );

    let matrix = scenarios(seed, dur);
    let mut labels: Vec<(String, String)> = Vec::new();
    let mut configs: Vec<ExperimentConfig> = Vec::new();
    for (scenario, env, plan, loss) in &matrix {
        for model in &MODELS {
            labels.push(((*scenario).to_owned(), model.name()));
            configs.push(ExperimentConfig {
                environment: *env,
                strategy: *model,
                fault_plan: plan.clone(),
                loss: loss.clone(),
                ..base.clone()
            });
        }
    }
    let runs = run_all(&configs);

    println!(
        "{:<10} {:<12} {:>8} {:>10} {:>12} {:>10}",
        "scenario", "model", "iters", "stall(s)", "lost(B)", "metric"
    );
    for ((scenario, model), r) in labels.iter().zip(&runs) {
        let final_metric = r.checkpoints.last().map_or(f64::NAN, |c| c.metric);
        println!(
            "{scenario:<10} {model:<12} {:>8.1} {:>10.1} {:>12.0} {:>10.2}",
            r.mean_iterations,
            r.stall_secs + 0.0,
            r.lost_bytes,
            final_metric,
        );
    }

    // Per-scenario throughput ranking (descending mean iterations; ties
    // broken by model order, which is deterministic).
    let mut rankings: Vec<(String, Vec<String>)> = Vec::new();
    for (scenario, _, _, _) in &matrix {
        let mut cells: Vec<(&String, f64)> = labels
            .iter()
            .zip(&runs)
            .filter(|((s, _), _)| s == scenario)
            .map(|((_, m), r)| (m, r.mean_iterations))
            .collect();
        cells.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite iteration counts"));
        rankings.push((
            (*scenario).to_owned(),
            cells.into_iter().map(|(m, _)| m.clone()).collect(),
        ));
    }
    for (scenario, order) in &rankings {
        println!("{scenario}: {}", order.join(" > "));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"sync_model_shootout_cruda\",\n");
    json.push_str(&format!("  \"virtual_duration_secs\": {dur},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!(
        "  \"models\": [{}],\n",
        names
            .iter()
            .map(|n| format!("{n:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"rankings\": {\n");
    let rank_rows: Vec<String> = rankings
        .iter()
        .map(|(scenario, order)| {
            format!(
                "    {scenario:?}: [{}]",
                order
                    .iter()
                    .map(|m| format!("{m:?}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
        .collect();
    json.push_str(&rank_rows.join(",\n"));
    json.push_str("\n  },\n");
    json.push_str("  \"cells\": [\n");
    let rows: Vec<String> = labels
        .iter()
        .zip(&runs)
        .map(|((scenario, model), r)| cell_json(scenario, model, r))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_sync.json", &json).expect("write BENCH_sync.json");
    println!("  -> wrote BENCH_sync.json");
}
