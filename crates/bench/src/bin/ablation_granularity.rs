//! Granularity ablation (paper Sec. III-A): elements vs rows vs layers.
//!
//! Reproduces the paper's argument for choosing rows quantitatively:
//!
//! * **management overhead** — index bytes that must accompany
//!   adaptively transmitted units (elements: one `int32` per `float32`,
//!   doubling traffic; rows: ~0.24 % of the model; layers: negligible);
//! * **transmission flexibility** — what happens when a speculative
//!   transmission is cut by the MTA-time deadline: with layer-sized
//!   units a cut wastes a large partial unit and delivers coarse
//!   subsets; with rows the waste is one row.
//!
//! The flexibility experiment pushes one compressed CRUDA model over the
//! outdoor channel with a range of deadlines, chunked at each
//! granularity, and reports delivered/wasted bytes.

use rog_bench::{header, write_artifact};
use rog_net::{Channel, ChannelProfile, FlowOutcome, FlowSpec};

/// ConvMLP-M shape from the paper: 16.95 M params, 33 307 rows, 226
/// layers, largest layer 1.18 M params.
const TOTAL_PARAMS: u64 = 16_950_000;
const N_ROWS: u64 = 33_307;
const N_LAYERS: u64 = 226;

fn main() {
    header("Management overhead (index bytes / payload bytes)");
    // One-bit compressed payload: 1 bit per parameter (+ scales, ignored
    // here for the cross-granularity comparison); int32 index per unit.
    let payload_bits = TOTAL_PARAMS; // 1 bit per param
    let payload_bytes = payload_bits / 8;
    let mut csv = String::from("granularity,units,index_bytes,payload_bytes,overhead\n");
    for (name, units) in [
        ("element", TOTAL_PARAMS),
        ("row", N_ROWS),
        ("layer", N_LAYERS),
    ] {
        let index_bytes = 4 * units;
        let overhead = index_bytes as f64 / (4 * TOTAL_PARAMS) as f64;
        println!(
            "{name:<8} units {units:>9}  index {index_bytes:>9} B  raw-model overhead {:.3}%",
            100.0 * overhead
        );
        csv.push_str(&format!(
            "{name},{units},{index_bytes},{payload_bytes},{overhead:.6}\n"
        ));
    }
    println!(
        "\npaper: element indexing doubles traffic; rows cost 0.24% of the\n\
         model; layers are cheap to index but inflexible to schedule."
    );
    write_artifact("ablation_granularity_overhead.csv", &csv);

    header("Transmission flexibility under deadline cuts (outdoor channel)");
    // Compressed model = 2.1 MB; chunk it at each granularity and cut
    // the flow at increasing deadlines.
    let model_bytes: u64 = 2_100_000;
    let profile = ChannelProfile::outdoor();
    let mut csv = String::from("granularity,deadline_s,useful_bytes,wasted_bytes\n");
    println!(
        "{:<9} {:>10} {:>14} {:>14}",
        "unit", "deadline", "useful bytes", "wasted bytes"
    );
    for (name, units, extra_index) in [
        ("element", 200_000u64, 2.0), // element indexing ~doubles bytes
        ("row", 33_307, 1.0024),
        ("layer", 226, 1.0),
    ] {
        // Simulated chunking: uniform units (a simplification; the
        // paper's largest layer alone is 1.18M params ≈ 7% of the model,
        // which the uneven-layer row below captures).
        let unit_bytes = ((model_bytes as f64 * extra_index) / units as f64).max(1.0) as u64;
        for deadline in [0.05f64, 0.1, 0.2, 0.4] {
            let mut ch = Channel::new(
                profile.generate(11, 30.0),
                vec![profile.generate_link(12, 30.0)],
            );
            let n_chunks = units.min(model_bytes) as usize;
            let id = ch.start_flow(
                0.0,
                FlowSpec::new(0, vec![unit_bytes; n_chunks]).with_deadline(deadline),
            );
            let evs = ch.advance_until(31.0);
            let (useful, wasted) = match evs.first() {
                Some(e) if e.id == id => match e.outcome {
                    FlowOutcome::Completed => (unit_bytes * n_chunks as u64, 0),
                    FlowOutcome::DeadlineReached { bytes_done, .. } => {
                        (bytes_done, ch.wasted_bytes() as u64)
                    }
                    FlowOutcome::Cancelled { .. } => unreachable!("nothing cancels this flow"),
                },
                _ => (0, 0),
            };
            println!("{name:<9} {deadline:>9.2}s {useful:>14} {wasted:>14}");
            csv.push_str(&format!("{name},{deadline},{useful},{wasted}\n"));
        }
    }
    write_artifact("ablation_granularity_flexibility.csv", &csv);

    // The single-large-layer case: cutting a 1.18M-param layer (≈147 KB
    // compressed, ≈7% of the model) mid-transfer wastes everything sent
    // of it.
    header("Worst case: the 1.18M-element layer as one unit");
    let big_layer_bytes = 1_180_000 / 8;
    let mut ch = Channel::new(
        profile.generate(13, 30.0),
        vec![profile.generate_link(14, 30.0)],
    );
    ch.start_flow(
        0.0,
        FlowSpec::new(0, vec![big_layer_bytes]).with_deadline(0.012),
    );
    let evs = ch.advance_until(31.0);
    if let Some(e) = evs.first() {
        if let FlowOutcome::DeadlineReached { bytes_done, .. } = e.outcome {
            println!(
                "deadline mid-layer: {bytes_done} useful bytes, {:.0} wasted \
                 (an entire partial layer is discarded)",
                ch.wasted_bytes()
            );
        } else {
            println!("layer completed before the deadline in this draw");
        }
    }
}
