//! Table II: the default experiment setup, reproduced from the
//! configuration the harness actually uses.

use rog_bench::header;
use rog_trainer::{Cluster, DeviceKind, ExperimentConfig};

fn main() {
    header("Table II — default setup");
    let cfg = ExperimentConfig::default();
    let cluster = Cluster::build(&cfg);
    let robot_batch = cluster
        .devices
        .iter()
        .find(|d| d.kind == DeviceKind::Robot)
        .map(|d| d.batch)
        .unwrap_or(0);
    let laptop_batch = cluster
        .devices
        .iter()
        .find(|d| d.kind == DeviceKind::Laptop)
        .map(|d| d.batch)
        .unwrap_or(0);
    println!("batch size (robot):            {robot_batch}   (paper: 24)");
    println!("batch size (laptop):           {laptop_batch}   (paper: 16)");
    println!(
        "learning rate:                 {}   (paper: 1e-6 on ConvMLP)",
        cluster.lr
    );
    println!(
        "compress+decompress time cost: {:.2} s (paper: 0.42–0.51 s)",
        cfg.codec_secs()
    );
    println!(
        "gradient compute (robot):      {:.2} s incl. codec (paper: 2.18 s)",
        cfg.base_compute_secs() + cfg.codec_secs()
    );
    println!(
        "compressed model size:         {:.2} MB (paper: 2.1 MB CRUDA)",
        cfg.compressed_bytes() as f64 / 1e6
    );
    println!(
        "workers:                       {} ({} robots + {} laptop)",
        cfg.n_workers,
        cfg.n_workers - cfg.n_laptop_workers,
        cfg.n_laptop_workers
    );
    println!(
        "checkpoint cadence:            every {} iterations (paper: 50)",
        cfg.eval_every
    );
}
