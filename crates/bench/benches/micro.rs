//! Criterion microbenches quantifying the costs the paper discusses:
//! compression throughput, importance ranking, MTA solving, row
//! scatter/gather, channel integration, and the management-overhead
//! ablation across granularities (element vs row vs layer, Sec. III-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rog_compress::{CompressedRow, ErrorFeedback, TopKCodec};
use rog_core::mta::mta_fraction;
use rog_core::{
    ImportanceMetric, ImportanceMode, RankScratch, RogWorker, RogWorkerConfig, RowId, RowPartition,
};
use rog_net::{Channel, ChannelProfile, FlowSpec, Trace};
use rog_tensor::rng::DetRng;
use rog_tensor::Matrix;

fn bench_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("compression");
    let mut rng = DetRng::new(1);
    // 16384 cols = 256 packed u64 words: makes the word-at-a-time
    // pack/unpack throughput visible above the per-call overhead.
    for &cols in &[64usize, 512, 4096, 16_384] {
        let row: Vec<f32> = (0..cols).map(|_| rng.normal() as f32).collect();
        g.bench_with_input(BenchmarkId::new("onebit_encode", cols), &row, |b, row| {
            b.iter(|| CompressedRow::encode(black_box(row)))
        });
        let code = CompressedRow::encode(&row);
        g.bench_with_input(BenchmarkId::new("onebit_decode", cols), &code, |b, code| {
            b.iter(|| black_box(code).decompress())
        });
        let mut ef = ErrorFeedback::new(&[cols]);
        g.bench_with_input(BenchmarkId::new("error_feedback", cols), &row, |b, row| {
            b.iter(|| ef.compress(0, black_box(row)))
        });
        let topk = TopKCodec::new(0.01);
        g.bench_with_input(BenchmarkId::new("topk_1pct", cols), &row, |b, row| {
            b.iter(|| topk.compress(black_box(row)))
        });
    }
    g.finish();
}

fn bench_importance(c: &mut Criterion) {
    let mut g = c.benchmark_group("importance_metric");
    let metric = ImportanceMetric::default();
    let mut rng = DetRng::new(2);
    for &rows in &[200usize, 2000, 33_307] {
        let mags: Vec<f32> = (0..rows).map(|_| rng.normal().abs() as f32).collect();
        let iters: Vec<u64> = (0..rows).map(|i| (i % 7) as u64).collect();
        g.bench_with_input(BenchmarkId::new("rank_worker_mode", rows), &rows, |b, _| {
            b.iter(|| metric.rank(ImportanceMode::Worker, black_box(&mags), black_box(&iters)))
        });
        // Allocation-free full ranking (what the engines run every push).
        let mut scratch = RankScratch::default();
        let mut out = Vec::new();
        g.bench_with_input(BenchmarkId::new("rank_into", rows), &rows, |b, _| {
            b.iter(|| {
                metric.rank_into(
                    ImportanceMode::Worker,
                    black_box(&mags),
                    black_box(&iters),
                    &mut scratch,
                    &mut out,
                );
                out.len()
            })
        });
        // Partial selection: only the k best rows fit the budget, so the
        // O(n + k log k) path skips sorting the ~33k-row tail.
        let k = (rows / 16).max(1);
        g.bench_with_input(BenchmarkId::new("rank_top_k_into", rows), &k, |b, &k| {
            b.iter(|| {
                metric.rank_top_k_into(
                    ImportanceMode::Worker,
                    black_box(&mags),
                    black_box(&iters),
                    k,
                    &mut scratch,
                    &mut out,
                );
                out.len()
            })
        });
    }
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    // The hot-path linear algebra of the batched dense backward: the
    // forward `acts · Wᵀ` (matmul_transb), the backward `dz · W`
    // (matmul), and the per-sample outer-product gradient accumulate.
    let mut g = c.benchmark_group("kernels");
    let mut rng = DetRng::new(4);
    for &(batch, n_in, n_out) in &[(32usize, 96usize, 64usize), (64, 256, 256)] {
        let label = format!("{batch}x{n_in}x{n_out}");
        let acts = Matrix::from_fn(batch, n_in, |_, _| rng.normal() as f32);
        let w = Matrix::from_fn(n_out, n_in, |_, _| rng.normal() as f32);
        let dz = Matrix::from_fn(batch, n_out, |_, _| rng.normal() as f32);
        g.bench_with_input(
            BenchmarkId::new("matmul_transb", &label),
            &(&acts, &w),
            |b, (a, w)| b.iter(|| black_box(*a).matmul_transb(black_box(w))),
        );
        g.bench_with_input(
            BenchmarkId::new("matmul", &label),
            &(&dz, &w),
            |b, (dz, w)| b.iter(|| black_box(*dz).matmul(black_box(w))),
        );
        let mut gw = Matrix::zeros(n_out, n_in);
        g.bench_with_input(
            BenchmarkId::new("add_outer_batch", &label),
            &(&dz, &acts),
            |b, (dz, acts)| {
                b.iter(|| {
                    for r in 0..batch {
                        gw.add_outer(black_box(dz.row(r)), black_box(acts.row(r)), 0.03125);
                    }
                    gw.row(0)[0]
                })
            },
        );
    }
    g.finish();
}

fn bench_mta(c: &mut Criterion) {
    c.bench_function("mta_fraction_threshold_8", |b| {
        b.iter(|| mta_fraction(black_box(8)))
    });
}

fn bench_row_plumbing(c: &mut Criterion) {
    let mut g = c.benchmark_group("row_plumbing");
    let params = vec![
        Matrix::zeros(96, 32),
        Matrix::zeros(1, 96),
        Matrix::zeros(64, 96),
        Matrix::zeros(1, 64),
        Matrix::zeros(20, 64),
        Matrix::zeros(1, 20),
    ];
    let partition = RowPartition::of_params(&params);
    g.bench_function("gather_all_rows", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..partition.n_rows() {
                acc += partition.row(black_box(&params), RowId(i))[0];
            }
            acc
        })
    });
    let mut worker = RogWorker::new(&params, RogWorkerConfig::new(4, 0.01));
    let grads: Vec<Matrix> = params
        .iter()
        .map(|m| Matrix::from_fn(m.rows(), m.cols(), |r, c| ((r + c) % 5) as f32 * 0.1))
        .collect();
    worker.accumulate(&grads);
    g.bench_function("plan_push_full_model", |b| {
        b.iter(|| worker.plan_push(black_box(3)))
    });
    g.finish();
}

fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel");
    let profile = ChannelProfile::outdoor();
    let capacity = profile.generate(7, 300.0);
    let links: Vec<Trace> = (0..4)
        .map(|w| profile.generate_link(8 + w, 300.0))
        .collect();
    g.bench_function("four_flows_one_second", |b| {
        b.iter(|| {
            let mut ch = Channel::new(capacity.clone(), links.clone());
            for w in 0..4 {
                ch.start_flow(0.0, FlowSpec::new(w, vec![50_000; 40]).with_deadline(0.8));
            }
            let mut events = 0;
            loop {
                let evs = ch.advance_until(1.0);
                if evs.is_empty() {
                    break;
                }
                events += evs.len();
            }
            events
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    // Fleet-scale event churn: a 256-worker run pushes and pops
    // millions of events, so heap growth and sift costs matter. The
    // capacity-hinted constructor pre-sizes the heap; the bench drives
    // a full push-then-drain cycle at N = 10^6 either way.
    use rog_sim::EventQueue;
    let mut g = c.benchmark_group("event_queue");
    const N: usize = 1_000_000;
    let times: Vec<f64> = {
        let mut rng = DetRng::new(9);
        (0..N).map(|_| rng.uniform() * 1e4).collect()
    };
    g.bench_function("push_pop_1M_with_capacity", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(N);
            for (i, &t) in times.iter().enumerate() {
                q.push(black_box(t), i as u64);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
    g.bench_function("push_pop_1M_unhinted", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(black_box(t), i as u64);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
    g.finish();
}

fn bench_wire_framing(c: &mut Criterion) {
    // The socket transport's per-datagram cost: seq+CRC32 framing on
    // encode, marker/CRC/length validation on decode, and the seq-window
    // dedup every accepted datagram runs. Row payloads are small (a few
    // hundred bytes), so per-frame overhead is the number that matters.
    use rog_net::wire::{decode_frame, encode_frame, FrameClass, FrameHeader};
    use rog_net::SeqWindow;
    let mut g = c.benchmark_group("wire_framing");
    let mut rng = DetRng::new(11);
    for &len in &[256usize, 4096, 60_000] {
        let payload: Vec<u8> = (0..len).map(|_| (rng.uniform() * 256.0) as u8).collect();
        let header = FrameHeader {
            seq: 42,
            class: FrameClass::BestEffort,
            attempt: 0,
            iter: 7,
        };
        g.bench_with_input(BenchmarkId::new("encode", len), &payload, |b, p| {
            b.iter(|| encode_frame(black_box(&header), black_box(p)))
        });
        let frame = encode_frame(&header, &payload);
        g.bench_with_input(BenchmarkId::new("decode", len), &frame, |b, f| {
            b.iter(|| decode_frame(black_box(f)).expect("valid frame"))
        });
    }
    // Dedup cost in the two regimes the receiver actually sees: the
    // in-order fast path (floor advance) and a lossy/reordered stream
    // that keeps a populated out-of-order set.
    g.bench_function("seq_window_in_order_4096", |b| {
        b.iter(|| {
            let mut w = SeqWindow::new();
            let mut accepted = 0u32;
            for seq in 0..4096u64 {
                accepted += w.accept(black_box(seq)) as u32;
            }
            accepted
        })
    });
    g.bench_function("seq_window_lossy_reordered_4096", |b| {
        b.iter(|| {
            let mut w = SeqWindow::new();
            let mut accepted = 0u32;
            // Every 8th datagram arrives late by 16; every 16th is lost.
            for seq in 0..4096u64 {
                if seq % 16 == 0 {
                    continue;
                }
                let s = if seq % 8 == 0 { seq + 16 } else { seq };
                accepted += w.accept(black_box(s)) as u32;
            }
            accepted
        })
    });
    g.finish();
}

fn bench_granularity_ablation(c: &mut Criterion) {
    // Sec. III-A: management overhead at element / row / layer
    // granularity. The benchmark measures ranking cost at each
    // granularity for the same 16.95M-element model; the wire-overhead
    // ratios are printed by the fig/table binaries.
    let mut g = c.benchmark_group("granularity_ablation");
    let metric = ImportanceMetric::default();
    let mut rng = DetRng::new(3);
    // Model of ~33k rows; element granularity would be 16.95M units
    // (benchmarked at 1/100 scale to keep runtime sane), layer
    // granularity is 226 units.
    for (name, units) in [
        ("layer_226", 226usize),
        ("row_33307", 33_307),
        ("element_169k_sample", 169_500),
    ] {
        let mags: Vec<f32> = (0..units).map(|_| rng.normal().abs() as f32).collect();
        let iters: Vec<u64> = (0..units).map(|i| (i % 5) as u64).collect();
        g.bench_function(name, |b| {
            b.iter(|| metric.rank(ImportanceMode::Worker, black_box(&mags), black_box(&iters)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_compression,
    bench_importance,
    bench_kernels,
    bench_mta,
    bench_row_plumbing,
    bench_channel,
    bench_event_queue,
    bench_wire_framing,
    bench_granularity_ablation
);
criterion_main!(benches);
