//! Pluggable transport plane for the ROG engines.
//!
//! ROG's traffic is two-class by design (paper Sec. III): best-effort
//! gradient rows that are allowed to age toward the staleness bound,
//! and reliable, acked resync / model transfers that must arrive. The
//! [`Transport`] trait captures exactly that split — a datagram-class
//! send for rows and a stream-class send for reliable messages, plus
//! link-level delivery estimates feeding the loss-rate/goodput EWMAs
//! the ATP planner already consumes.
//!
//! Two backends implement the trait:
//!
//! * [`SimTransport`] — a thin adapter over the deterministic
//!   [`rog_net::Channel`] / [`rog_net::ReliableTransfer`] path. The
//!   simulation engines keep calling the full channel surface through
//!   its inherent delegation methods, so a sim run is bit-identical to
//!   the pre-transport code; the trait impl adds message-level
//!   semantics on top (a completed flow loops its payload back to the
//!   local inbox, standing in for the remote endpoint the simulation
//!   does not materialize).
//! * [`SocketTransport`] — a real-network backend on blocking
//!   `std::net` sockets: UDP for the best-effort class (reusing the
//!   seq+CRC32 framing and [`rog_net::SeqWindow`] dedup from
//!   [`rog_net::wire`]) and TCP for the reliable class. The vendored
//!   dependency set has no async runtime, so the backend is
//!   thread-per-endpoint; the trait is backend-agnostic and an async
//!   (e.g. tokio) implementation could slot in without touching
//!   callers.
//!
//! [`proto`] defines the small length-prefixed control protocol the
//! live `rogctl serve`/`join` cluster speaks on top of the transport
//! (join/welcome handshake, staleness-gate probes, row pushes/pulls,
//! checkpoints, trace events, final-model handoff).
//!
//! # Determinism boundary
//!
//! The sim backend is bit-exact: golden traces and bench fingerprints
//! must not move when the engines run through it. The socket backend
//! is best-effort real I/O — wall-clock pacing, kernel buffers and
//! datagram loss make it non-deterministic by nature; its runs are
//! reconciled against sim runs statistically (composition within
//! tolerance), never byte-compared.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use rog_net::wire::FrameClass;

pub mod proto;
mod sim;
mod socket;

pub use sim::SimTransport;
pub use socket::{SocketByteCounters, SocketTransport};

/// Identifies the remote end of a lane.
///
/// For the sim backend this is the [`rog_net::LinkId`] the message
/// travels on; for the socket backend it indexes the registered peer
/// (a server numbers its workers `0..n`, a worker numbers the server
/// `0`).
pub type PeerId = usize;

/// Largest best-effort payload a single datagram may carry. Safely
/// under the 65,507-byte UDP maximum once the 32-byte wire framing is
/// added; row batches larger than this are split by the caller (see
/// [`proto::chunk_rows`]).
pub const MAX_DATAGRAM_PAYLOAD: usize = 60_000;

/// Link-level quality estimate for one peer, in the same units the
/// ATP planner consumes from the sim channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQuality {
    /// EWMA of the observed loss+corruption rate in `[0, 1]`
    /// (`0.0` before any observation — an unobserved link is assumed
    /// clean, matching [`rog_net::Channel::estimated_loss_rate`]).
    pub loss_rate: f64,
    /// Loss-discounted receive-throughput estimate in bytes/s.
    pub goodput_bps: f64,
}

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// An OS-level socket error (message carries the `io::Error` text).
    Io(String),
    /// The peer id has not been registered.
    UnknownPeer(PeerId),
    /// The peer is registered but its lane for this class is not
    /// connected (no UDP address / TCP stream yet, or already closed).
    NotConnected(PeerId),
    /// A best-effort payload exceeds [`MAX_DATAGRAM_PAYLOAD`].
    Oversize {
        /// Offending payload length.
        len: usize,
        /// The limit.
        max: usize,
    },
    /// A control-protocol message failed to decode.
    Proto(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "socket error: {e}"),
            TransportError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            TransportError::NotConnected(p) => write!(f, "peer {p} not connected"),
            TransportError::Oversize { len, max } => {
                write!(f, "payload of {len} bytes exceeds datagram limit {max}")
            }
            TransportError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

/// One message delivered to the local endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The peer the message arrived from.
    pub from: PeerId,
    /// Delivery class it traveled under.
    pub class: FrameClass,
    /// Training iteration stamped in the frame header.
    pub iter: u64,
    /// Verbatim payload.
    pub payload: Vec<u8>,
}

/// The two-class message transport the live cluster runs on.
///
/// `send` with [`FrameClass::BestEffort`] is datagram semantics: the
/// message may be lost, duplicated or reordered, and damage is
/// detected (CRC32) and dropped, never retransmitted — RSP's
/// staleness gate absorbs the gap. `send` with
/// [`FrameClass::Reliable`] is stream semantics: delivered exactly
/// once, in order, retransmitted until acked (TCP on the socket
/// backend, ack+backoff [`rog_net::ReliableTransfer`] rounds on the
/// sim backend).
pub trait Transport {
    /// Queues one message to `to` under `class`. Best-effort sends
    /// return once the datagram is handed to the lane; reliable sends
    /// return once the payload is accepted for guaranteed delivery.
    fn send(
        &mut self,
        to: PeerId,
        class: FrameClass,
        iter: u64,
        payload: &[u8],
    ) -> Result<(), TransportError>;

    /// Drives the transport for up to `budget` seconds — virtual
    /// seconds on the sim clock, wall seconds of socket polling — and
    /// returns every message delivered in that window (possibly none).
    fn poll(&mut self, budget: f64) -> Result<Vec<Delivery>, TransportError>;

    /// Current link-quality estimate toward `peer` (loss EWMA fed by
    /// link-level delivery reports, plus a goodput estimate).
    fn link_quality(&self, peer: PeerId) -> LinkQuality;

    /// Registered peers, ascending.
    fn peers(&self) -> Vec<PeerId>;
}
