//! The real-network backend: blocking `std::net` sockets, UDP for the
//! best-effort class and TCP for the reliable class.
//!
//! Best-effort datagrams reuse the exact wire codec from
//! [`rog_net::wire`] — `ROG\x02` marker, seq + class + attempt header,
//! CRC32, `\x03GOR` trailer — so a corrupted datagram is detected and
//! dropped, duplicates are absorbed by a per-peer bounded
//! [`rog_net::SeqWindow`], and sequence gaps feed the same
//! [`LossEwma`] estimator the sim channel uses for ATP's goodput
//! planning. Sequence numbers are allocated per peer and only on the
//! best-effort lane (the reliable lane's TCP stream supplies its own
//! ordering), so gap detection sees exactly the datagrams addressed to
//! this endpoint and nothing else.
//!
//! Reliable messages ride TCP as `u32` length-prefixed wire frames:
//! TCP's ack/retransmit machinery provides the delivery guarantee, and
//! the frame CRC stays as an end-to-end integrity check.
//!
//! The vendored dependency set has no async runtime; sockets are
//! driven by short blocking polls ([`SocketTransport::poll`] toggles
//! non-blocking mode for its read bursts). An async backend could
//! implement [`Transport`] without changing any caller.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

use rog_net::stats::LossEwma;
use rog_net::wire::{decode_frame, encode_frame, FrameClass, FrameHeader};
use rog_net::SeqWindow;

use crate::{Delivery, LinkQuality, PeerId, Transport, TransportError, MAX_DATAGRAM_PAYLOAD};

/// Largest length-prefixed TCP frame accepted (a paper-scale final
/// model is tens of MB of f32s; 256 MB bounds a hostile prefix).
const MAX_TCP_FRAME: usize = 256 << 20;

/// How many datagrams past a sequence hole may arrive before the hole
/// is written off as a permanent loss. Bounds per-peer dedup memory
/// (see [`SeqWindow::bounded`]) while tolerating any realistic
/// reordering depth on a datagram lane.
const SEQ_WINDOW_SPAN: u64 = 4096;

/// Byte-accounting snapshot in the sim channel's categories, so a live
/// run can fill the same `ByteAccount` the sim engines report.
///
/// UDP tells us what arrived, not what vanished in flight, so `lost`
/// is an estimate: sequence-gap count × the mean accepted datagram
/// size on that lane. `corrupt` counts CRC-dropped bytes actually
/// received; `wasted` counts deduplicated duplicates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SocketByteCounters {
    /// Payload bytes accepted and delivered upward.
    pub useful: f64,
    /// Payload bytes of duplicated datagrams absorbed by dedup.
    pub wasted: f64,
    /// Estimated bytes of datagrams that never arrived (gap count ×
    /// mean accepted size).
    pub lost: f64,
    /// Bytes of datagrams dropped by the CRC check.
    pub corrupt: f64,
}

#[derive(Debug)]
struct Peer {
    udp: Option<SocketAddr>,
    tcp: Option<TcpStream>,
    /// Buffered partial TCP frame.
    rbuf: Vec<u8>,
    /// Next outbound best-effort sequence number toward this peer.
    /// Per-peer and per-lane: reliable TCP frames never consume one,
    /// so the receiver's gap detection sees a dense sequence.
    next_seq_out: u32,
    window: SeqWindow,
    highest_seq: Option<u64>,
    loss: LossEwma,
    /// Accepted best-effort payload bytes. Kept separate from
    /// `tcp_bytes_in` so the mean-datagram-size loss estimate and the
    /// best-effort goodput never mix in multi-MB reliable frames.
    udp_bytes_in: u64,
    /// Payload bytes delivered over the reliable TCP lane.
    tcp_bytes_in: u64,
    datagrams_in: u64,
    gap_datagrams: u64,
    dup_bytes: u64,
    opened: Instant,
}

impl Peer {
    fn new() -> Self {
        Self {
            udp: None,
            tcp: None,
            rbuf: Vec::new(),
            next_seq_out: 0,
            window: SeqWindow::bounded(SEQ_WINDOW_SPAN),
            highest_seq: None,
            loss: LossEwma::new(LossEwma::DEFAULT_ALPHA),
            udp_bytes_in: 0,
            tcp_bytes_in: 0,
            datagrams_in: 0,
            gap_datagrams: 0,
            dup_bytes: 0,
            opened: Instant::now(),
        }
    }
}

/// [`Transport`] over real UDP/TCP sockets.
#[derive(Debug)]
pub struct SocketTransport {
    udp: UdpSocket,
    peers: BTreeMap<PeerId, Peer>,
    by_addr: HashMap<SocketAddr, PeerId>,
    inbox: VecDeque<Delivery>,
    crc_drop_bytes: u64,
    crc_drops: u64,
    /// Recent wire-hygiene drops `(peer, "crc" | "dup" | "proto")` for
    /// the caller's journal; bounded, drained via
    /// [`SocketTransport::take_wire_drops`].
    drop_log: Vec<(PeerId, &'static str)>,
    scratch: Vec<u8>,
}

/// Upper bound on buffered [`SocketTransport::take_wire_drops`]
/// entries between drains (a flooded lane must not grow memory).
const MAX_DROP_LOG: usize = 4096;

impl SocketTransport {
    /// Binds the best-effort UDP socket (`"127.0.0.1:0"` for an
    /// ephemeral localhost port).
    pub fn bind<A: ToSocketAddrs>(udp_addr: A) -> std::io::Result<Self> {
        let udp = UdpSocket::bind(udp_addr)?;
        Ok(Self {
            udp,
            peers: BTreeMap::new(),
            by_addr: HashMap::new(),
            inbox: VecDeque::new(),
            crc_drop_bytes: 0,
            crc_drops: 0,
            drop_log: Vec::new(),
            scratch: vec![0u8; 65_536],
        })
    }

    /// The local UDP address (communicated to peers in the handshake).
    pub fn local_udp_addr(&self) -> std::io::Result<SocketAddr> {
        self.udp.local_addr()
    }

    /// Registers `peer` with its lanes. Either lane may be absent and
    /// filled in later ([`SocketTransport::set_peer_udp`]). The TCP
    /// stream gets `TCP_NODELAY` — gate probes are latency-critical.
    pub fn register_peer(
        &mut self,
        peer: PeerId,
        udp: Option<SocketAddr>,
        tcp: Option<TcpStream>,
    ) -> Result<(), TransportError> {
        if let Some(ref t) = tcp {
            t.set_nodelay(true)?;
        }
        let entry = self.peers.entry(peer).or_insert_with(Peer::new);
        if let Some(addr) = udp {
            if let Some(old) = entry.udp.take() {
                self.by_addr.remove(&old);
            }
            entry.udp = Some(addr);
            self.by_addr.insert(addr, peer);
        }
        if tcp.is_some() {
            entry.tcp = tcp;
        }
        Ok(())
    }

    /// Sets (or replaces) the UDP address of an already registered peer.
    pub fn set_peer_udp(&mut self, peer: PeerId, addr: SocketAddr) -> Result<(), TransportError> {
        self.register_peer(peer, Some(addr), None)
    }

    /// True while the peer's reliable lane is open.
    pub fn tcp_connected(&self, peer: PeerId) -> bool {
        self.peers.get(&peer).is_some_and(|p| p.tcp.is_some())
    }

    /// Byte accounting across all peers (see [`SocketByteCounters`]).
    pub fn byte_counters(&self) -> SocketByteCounters {
        let mut c = SocketByteCounters {
            corrupt: self.crc_drop_bytes as f64,
            ..SocketByteCounters::default()
        };
        for p in self.peers.values() {
            c.useful += (p.udp_bytes_in + p.tcp_bytes_in) as f64;
            c.wasted += p.dup_bytes as f64;
            // The mean datagram size is a best-effort-lane statistic:
            // a multi-MB reliable TCP frame must not inflate it.
            let mean = if p.datagrams_in > 0 {
                p.udp_bytes_in as f64 / p.datagrams_in as f64
            } else {
                0.0
            };
            c.lost += p.gap_datagrams as f64 * mean;
        }
        c
    }

    /// Datagrams dropped by the CRC check so far.
    pub fn crc_drops(&self) -> u64 {
        self.crc_drops
    }

    /// Drains the buffered wire-hygiene drop log: one `(peer, kind)`
    /// entry per dropped datagram or quarantined stream, `kind` ∈
    /// {`"crc"`, `"dup"`, `"proto"`}.
    pub fn take_wire_drops(&mut self) -> Vec<(PeerId, &'static str)> {
        std::mem::take(&mut self.drop_log)
    }

    fn log_drop(&mut self, peer: PeerId, kind: &'static str) {
        if self.drop_log.len() < MAX_DROP_LOG {
            self.drop_log.push((peer, kind));
        }
    }

    fn handle_datagram(&mut self, n: usize, from: SocketAddr) {
        let Some(&peer_id) = self.by_addr.get(&from) else {
            // Unknown sender: drop. Membership is handshake-driven; a
            // stray datagram cannot inject state.
            return;
        };
        let buf = &self.scratch[..n];
        let frame = match decode_frame(buf) {
            Ok(f) => f,
            Err(_) => {
                self.crc_drops += 1;
                self.crc_drop_bytes += n as u64;
                self.log_drop(peer_id, "crc");
                if let Some(p) = self.peers.get_mut(&peer_id) {
                    // A damaged arrival is a bad delivery observation.
                    p.loss.observe(1, 1);
                }
                return;
            }
        };
        let p = self.peers.get_mut(&peer_id).expect("peer exists");
        let seq = u64::from(frame.header.seq);
        if !p.window.accept(seq) {
            p.dup_bytes += frame.payload.len() as u64;
            self.log_drop(peer_id, "dup");
            return;
        }
        // Sequence gaps are datagrams that (so far) never arrived:
        // feed them to the loss EWMA exactly as the sim channel feeds
        // per-flow delivery reports. Late reordered arrivals were
        // already counted lost; that pessimism decays with the EWMA.
        match p.highest_seq {
            Some(h) if seq > h => {
                let gap = (seq - h - 1) as usize;
                p.gap_datagrams += gap as u64;
                p.loss.observe(gap, gap + 1);
                p.highest_seq = Some(seq);
            }
            Some(_) => {
                // Reordered arrival inside the window: a good delivery.
                p.loss.observe(0, 1);
            }
            None => {
                p.loss.observe(0, 1);
                p.highest_seq = Some(seq);
            }
        }
        p.udp_bytes_in += frame.payload.len() as u64;
        p.datagrams_in += 1;
        self.inbox.push_back(Delivery {
            from: peer_id,
            class: frame.header.class,
            iter: frame.header.iter,
            payload: frame.payload,
        });
    }

    /// Drains every complete length-prefixed frame buffered for `peer`.
    ///
    /// Infallible by design: a stream that errors, closes, or sends a
    /// corrupt length prefix quarantines *that peer's* reliable lane
    /// (the stream is dropped, later sends report
    /// [`TransportError::NotConnected`]) — one bad worker must never
    /// take down the whole cluster's poll loop.
    fn drain_tcp(&mut self, peer_id: PeerId) {
        let Some(p) = self.peers.get_mut(&peer_id) else {
            return;
        };
        let Some(stream) = p.tcp.as_mut() else {
            return;
        };
        if stream.set_nonblocking(true).is_err() {
            p.tcp = None;
            return;
        }
        let mut tmp = [0u8; 65_536];
        let mut closed = false;
        loop {
            match stream.read(&mut tmp) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => p.rbuf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    closed = true;
                    let _ = e;
                    break;
                }
            }
        }
        if let Some(stream) = p.tcp.as_mut() {
            let _ = stream.set_nonblocking(false);
        }
        if closed {
            p.tcp = None;
        }
        // Extract complete frames.
        let mut off = 0usize;
        while p.rbuf.len() - off >= 4 {
            let len =
                u32::from_le_bytes(p.rbuf[off..off + 4].try_into().expect("4 bytes")) as usize;
            if len > MAX_TCP_FRAME {
                // Corrupt or hostile prefix: the stream is unusable
                // from here on; quarantine it and keep the run alive.
                p.tcp = None;
                p.rbuf.clear();
                self.log_drop(peer_id, "proto");
                return;
            }
            if p.rbuf.len() - off - 4 < len {
                break;
            }
            let frame_bytes = &p.rbuf[off + 4..off + 4 + len];
            match decode_frame(frame_bytes) {
                Ok(frame) => {
                    p.tcp_bytes_in += frame.payload.len() as u64;
                    self.inbox.push_back(Delivery {
                        from: peer_id,
                        class: frame.header.class,
                        iter: frame.header.iter,
                        payload: frame.payload,
                    });
                }
                Err(_) => {
                    self.crc_drops += 1;
                    self.crc_drop_bytes += len as u64;
                }
            }
            off += 4 + len;
        }
        if off > 0 {
            p.rbuf.drain(..off);
        }
    }
}

impl Transport for SocketTransport {
    fn send(
        &mut self,
        to: PeerId,
        class: FrameClass,
        iter: u64,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        let p = self
            .peers
            .get_mut(&to)
            .ok_or(TransportError::UnknownPeer(to))?;
        match class {
            FrameClass::BestEffort => {
                // Validate before allocating a sequence number: a
                // rejected send must not leave a phantom gap for the
                // receiver to count as loss.
                if payload.len() > MAX_DATAGRAM_PAYLOAD {
                    return Err(TransportError::Oversize {
                        len: payload.len(),
                        max: MAX_DATAGRAM_PAYLOAD,
                    });
                }
                let addr = p.udp.ok_or(TransportError::NotConnected(to))?;
                let seq = p.next_seq_out;
                p.next_seq_out = p.next_seq_out.wrapping_add(1);
                let header = FrameHeader {
                    seq,
                    class,
                    attempt: 1,
                    iter,
                };
                let frame = encode_frame(&header, payload);
                self.udp.send_to(&frame, addr)?;
            }
            FrameClass::Reliable => {
                // TCP already guarantees ordered exactly-once bytes;
                // the wire seq is unused on this lane (and must not
                // consume a best-effort number — the receiver's UDP
                // gap detection would read it as loss).
                let header = FrameHeader {
                    seq: 0,
                    class,
                    attempt: 1,
                    iter,
                };
                let frame = encode_frame(&header, payload);
                let stream = p.tcp.as_mut().ok_or(TransportError::NotConnected(to))?;
                let len = frame.len() as u32;
                let res = stream
                    .write_all(&len.to_le_bytes())
                    .and_then(|()| stream.write_all(&frame));
                if let Err(e) = res {
                    p.tcp = None;
                    return Err(e.into());
                }
            }
        }
        Ok(())
    }

    fn poll(&mut self, budget: f64) -> Result<Vec<Delivery>, TransportError> {
        let deadline = Instant::now() + Duration::from_secs_f64(budget.clamp(0.0, 3600.0));
        let peer_ids: Vec<PeerId> = self.peers.keys().copied().collect();
        loop {
            // Best-effort lane: block briefly so idle polls don't spin.
            let remaining = deadline.saturating_duration_since(Instant::now());
            let wait = remaining.min(Duration::from_millis(2));
            self.udp
                .set_read_timeout(Some(wait.max(Duration::from_micros(500))))?;
            match self.udp.recv_from(&mut self.scratch) {
                Ok((n, from)) => self.handle_datagram(n, from),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
            // Reliable lanes. A broken stream quarantines that peer
            // inside `drain_tcp`; only the shared UDP socket erring
            // (above) fails the poll.
            for &id in &peer_ids {
                self.drain_tcp(id);
            }
            if Instant::now() >= deadline || !self.inbox.is_empty() {
                break;
            }
        }
        Ok(self.inbox.drain(..).collect())
    }

    fn link_quality(&self, peer: PeerId) -> LinkQuality {
        match self.peers.get(&peer) {
            Some(p) => {
                let secs = p.opened.elapsed().as_secs_f64().max(1e-3);
                // Goodput tracks the best-effort lane only: it is the
                // budgeting signal for row pushes, and the reliable
                // lane's throughput is governed by TCP itself. Mixing
                // in a burst of multi-MB model transfers would make
                // the planner overestimate datagram capacity.
                LinkQuality {
                    loss_rate: p.loss.rate(),
                    goodput_bps: p.udp_bytes_in as f64 / secs,
                }
            }
            None => LinkQuality {
                loss_rate: 0.0,
                goodput_bps: 0.0,
            },
        }
    }

    fn peers(&self) -> Vec<PeerId> {
        self.peers.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A connected endpoint pair on localhost: a(0)↔b(0).
    fn pair() -> (SocketTransport, SocketTransport) {
        let mut a = SocketTransport::bind("127.0.0.1:0").unwrap();
        let mut b = SocketTransport::bind("127.0.0.1:0").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let t_b = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (t_a, _) = listener.accept().unwrap();
        a.register_peer(0, Some(b.local_udp_addr().unwrap()), Some(t_a))
            .unwrap();
        b.register_peer(0, Some(a.local_udp_addr().unwrap()), Some(t_b))
            .unwrap();
        (a, b)
    }

    fn poll_until(t: &mut SocketTransport, want: usize) -> Vec<Delivery> {
        let mut got = Vec::new();
        for _ in 0..200 {
            got.extend(t.poll(0.02).unwrap());
            if got.len() >= want {
                break;
            }
        }
        got
    }

    #[test]
    fn udp_best_effort_delivers_on_loopback() {
        let (mut a, mut b) = pair();
        a.send(0, FrameClass::BestEffort, 4, b"row-payload")
            .unwrap();
        let got = poll_until(&mut b, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, b"row-payload");
        assert_eq!(got[0].class, FrameClass::BestEffort);
        assert_eq!(got[0].iter, 4);
        assert_eq!(got[0].from, 0);
    }

    #[test]
    fn tcp_reliable_delivers_large_payloads() {
        let (mut a, mut b) = pair();
        // Far larger than any datagram: must stream over TCP.
        let big = vec![0xABu8; 1 << 20];
        a.send(0, FrameClass::Reliable, 9, &big).unwrap();
        let got = poll_until(&mut b, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload.len(), big.len());
        assert_eq!(got[0].class, FrameClass::Reliable);
    }

    #[test]
    fn oversize_datagram_is_rejected() {
        let (mut a, _b) = pair();
        let err = a
            .send(
                0,
                FrameClass::BestEffort,
                0,
                &vec![0u8; MAX_DATAGRAM_PAYLOAD + 1],
            )
            .unwrap_err();
        assert!(matches!(err, TransportError::Oversize { .. }));
    }

    #[test]
    fn duplicate_datagrams_are_deduped() {
        let (a, mut b) = pair();
        // Inject the same encoded frame twice from a's UDP address is
        // not possible from outside; emulate a duplicating network by
        // sending the frame twice through a raw socket bound to a's
        // port... instead, craft the duplicate at the frame layer: two
        // sends with a forced identical seq via a fresh transport
        // whose counter we reset by rebuilding it.
        let header = FrameHeader {
            seq: 7,
            class: FrameClass::BestEffort,
            attempt: 1,
            iter: 3,
        };
        let frame = encode_frame(&header, b"dup");
        let raw = &a.udp;
        let to = b.local_udp_addr().unwrap();
        raw.send_to(&frame, to).unwrap();
        raw.send_to(&frame, to).unwrap();
        let got = poll_until(&mut b, 2);
        assert_eq!(got.len(), 1, "second copy must be absorbed by dedup");
        assert!(b.byte_counters().wasted > 0.0);
    }

    #[test]
    fn corrupt_datagrams_are_dropped_and_counted() {
        let (a, mut b) = pair();
        let header = FrameHeader {
            seq: 0,
            class: FrameClass::BestEffort,
            attempt: 1,
            iter: 0,
        };
        let mut frame = encode_frame(&header, b"payload");
        let mid = frame.len() / 2;
        frame[mid] ^= 0xFF;
        a.udp.send_to(&frame, b.local_udp_addr().unwrap()).unwrap();
        let got = poll_until(&mut b, 1);
        assert!(got.is_empty(), "corrupt frame must not be delivered");
        assert_eq!(b.crc_drops(), 1);
        assert!(b.byte_counters().corrupt > 0.0);
        assert!(b.link_quality(0).loss_rate > 0.0);
    }

    #[test]
    fn sequence_gaps_feed_the_loss_ewma() {
        let (a, mut b) = pair();
        let to = b.local_udp_addr().unwrap();
        // Send seq 0 then skip ahead to seq 10: nine datagrams "lost".
        for seq in [0u32, 10] {
            let frame = encode_frame(
                &FrameHeader {
                    seq,
                    class: FrameClass::BestEffort,
                    attempt: 1,
                    iter: 0,
                },
                b"x",
            );
            a.udp.send_to(&frame, to).unwrap();
        }
        let got = poll_until(&mut b, 2);
        assert_eq!(got.len(), 2);
        // The first (clean) datagram seeds the EWMA at 0.0, the gap
        // observation blends in at alpha=0.2: 0.2 * 9/10 = 0.18.
        assert!(
            b.link_quality(0).loss_rate > 0.15,
            "gap must register as loss, got {}",
            b.link_quality(0).loss_rate
        );
        assert!(b.byte_counters().lost > 0.0);
    }

    #[test]
    fn reliable_sends_do_not_create_phantom_udp_gaps() {
        let (mut a, mut b) = pair();
        // Interleave reliable control traffic with best-effort rows —
        // the shape of every live iteration (Trace/Sync on TCP between
        // row datagrams). None of the TCP sends may burn a UDP seq.
        for i in 0..3u64 {
            a.send(0, FrameClass::Reliable, i, b"control").unwrap();
            a.send(0, FrameClass::BestEffort, i, b"row").unwrap();
        }
        let got = poll_until(&mut b, 6);
        assert_eq!(got.len(), 6);
        assert_eq!(
            b.link_quality(0).loss_rate,
            0.0,
            "reliable frames must not register as best-effort loss"
        );
        assert_eq!(b.byte_counters().lost, 0.0);
    }

    #[test]
    fn seqs_are_allocated_per_peer() {
        // One sender, two receivers: frames sent to one peer must not
        // look like losses to the other.
        let mut s = SocketTransport::bind("127.0.0.1:0").unwrap();
        let mut b = SocketTransport::bind("127.0.0.1:0").unwrap();
        let mut c = SocketTransport::bind("127.0.0.1:0").unwrap();
        let s_addr = s.local_udp_addr().unwrap();
        s.register_peer(0, Some(b.local_udp_addr().unwrap()), None)
            .unwrap();
        s.register_peer(1, Some(c.local_udp_addr().unwrap()), None)
            .unwrap();
        b.register_peer(0, Some(s_addr), None).unwrap();
        c.register_peer(0, Some(s_addr), None).unwrap();
        for i in 0..4u64 {
            s.send(0, FrameClass::BestEffort, i, b"to-b").unwrap();
            s.send(1, FrameClass::BestEffort, i, b"to-c").unwrap();
        }
        assert_eq!(poll_until(&mut b, 4).len(), 4);
        assert_eq!(poll_until(&mut c, 4).len(), 4);
        for t in [&b, &c] {
            assert_eq!(t.link_quality(0).loss_rate, 0.0);
            assert_eq!(t.byte_counters().lost, 0.0);
        }
    }

    #[test]
    fn oversize_send_does_not_burn_a_seq() {
        let (mut a, mut b) = pair();
        a.send(0, FrameClass::BestEffort, 0, b"first").unwrap();
        let err = a
            .send(
                0,
                FrameClass::BestEffort,
                0,
                &vec![0u8; MAX_DATAGRAM_PAYLOAD + 1],
            )
            .unwrap_err();
        assert!(matches!(err, TransportError::Oversize { .. }));
        a.send(0, FrameClass::BestEffort, 0, b"second").unwrap();
        let got = poll_until(&mut b, 2);
        assert_eq!(got.len(), 2);
        assert_eq!(
            b.link_quality(0).loss_rate,
            0.0,
            "a rejected send must not leave a gap the receiver counts as loss"
        );
        assert_eq!(b.byte_counters().lost, 0.0);
    }

    #[test]
    fn tcp_bytes_do_not_skew_the_datagram_loss_estimate() {
        let (mut a, mut b) = pair();
        // A multi-MB reliable frame lands first...
        let big = vec![0x5Au8; 2 << 20];
        a.send(0, FrameClass::Reliable, 0, &big).unwrap();
        let got = poll_until(&mut b, 1);
        assert_eq!(got.len(), 1);
        // ...then tiny datagrams with a real gap of 9.
        let to = b.local_udp_addr().unwrap();
        for seq in [0u32, 10] {
            let frame = encode_frame(
                &FrameHeader {
                    seq,
                    class: FrameClass::BestEffort,
                    attempt: 1,
                    iter: 0,
                },
                b"x",
            );
            a.udp.send_to(&frame, to).unwrap();
        }
        let got = poll_until(&mut b, 2);
        assert_eq!(got.len(), 2);
        let c = b.byte_counters();
        // 9 lost datagrams × 1-byte mean payload: the estimate must be
        // bytes, not megabytes.
        assert!(
            c.lost > 0.0 && c.lost < 1_000.0,
            "lost estimate skewed by the TCP lane: {}",
            c.lost
        );
        assert!(
            c.useful >= big.len() as f64,
            "reliable payload still counts as useful"
        );
    }

    #[test]
    fn corrupt_tcp_length_prefix_quarantines_the_peer() {
        let mut b = SocketTransport::bind("127.0.0.1:0").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut raw = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (t_b, _) = listener.accept().unwrap();
        b.register_peer(0, None, Some(t_b)).unwrap();
        use std::io::Write as _;
        raw.write_all(&[0xFF; 8]).unwrap();
        raw.flush().unwrap();
        // The poll itself must survive; only the stream is condemned.
        for _ in 0..10 {
            assert!(b.poll(0.01).unwrap().is_empty());
            if !b.tcp_connected(0) {
                break;
            }
        }
        assert!(!b.tcp_connected(0), "hostile stream must be quarantined");
        assert!(
            b.take_wire_drops()
                .iter()
                .any(|&(p, k)| p == 0 && k == "proto"),
            "quarantine must be journaled"
        );
    }

    #[test]
    fn unknown_peer_and_disconnected_lane_error_clearly() {
        let mut t = SocketTransport::bind("127.0.0.1:0").unwrap();
        assert!(matches!(
            t.send(3, FrameClass::BestEffort, 0, b"x"),
            Err(TransportError::UnknownPeer(3))
        ));
        t.register_peer(3, None, None).unwrap();
        assert!(matches!(
            t.send(3, FrameClass::Reliable, 0, b"x"),
            Err(TransportError::NotConnected(3))
        ));
    }
}
