//! The deterministic simulation backend: a thin adapter over
//! [`rog_net::Channel`].
//!
//! Two layers share this struct:
//!
//! * The **simulation engines** keep driving the channel exactly as
//!   before through the inherent delegation methods ([`SimTransport::start_flow`],
//!   [`SimTransport::advance_until`], …). Every method forwards
//!   verbatim, so engine behavior — and therefore golden traces and
//!   bench fingerprints — is bit-identical to the pre-transport code.
//! * The **[`Transport`] trait impl** adds message-level semantics for
//!   code written against the pluggable interface: a `send` starts a
//!   one-chunk flow on the peer's link, and when the flow completes
//!   with the chunk intact, the payload is looped back into the local
//!   inbox (the simulation has no remote process; loopback stands in
//!   for the receiving endpoint). Best-effort damage is dropped — the
//!   channel's own per-link loss EWMA records it — while reliable
//!   messages are retransmitted until they land (the ack timeout is
//!   collapsed to the flow boundary), mirroring what
//!   [`rog_net::ReliableTransfer`] rounds achieve on the engines.

use std::collections::{BTreeMap, VecDeque};

use rog_net::wire::{message_overhead, FrameClass};
use rog_net::{
    Channel, DeliveryReport, FlowEvent, FlowId, FlowOutcome, FlowSpec, LinkId, LossModel,
    SharingMode,
};

use crate::{Delivery, LinkQuality, PeerId, Transport, TransportError};

/// Virtual-clock time in seconds (alias of the channel's notion).
type Time = f64;

/// How many times the sim backend retransmits a reliable message
/// before giving up (matches the reliable engines' practical bound; a
/// loss model pathological enough to defeat 12 attempts is a test
/// configuration error, not a runtime condition).
const MAX_RELIABLE_ATTEMPTS: u8 = 12;

#[derive(Debug)]
struct Pending {
    link: LinkId,
    class: FrameClass,
    iter: u64,
    payload: Vec<u8>,
    attempt: u8,
}

/// Deterministic [`Transport`] backend wrapping the sim [`Channel`].
#[derive(Debug)]
pub struct SimTransport {
    channel: Channel,
    pending: BTreeMap<FlowId, Pending>,
    inbox: VecDeque<Delivery>,
}

impl SimTransport {
    /// Wraps a fully configured channel.
    pub fn new(channel: Channel) -> Self {
        Self {
            channel,
            pending: BTreeMap::new(),
            inbox: VecDeque::new(),
        }
    }

    /// The wrapped channel (escape hatch for diagnostics and tests).
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Mutable access to the wrapped channel.
    pub fn channel_mut(&mut self) -> &mut Channel {
        &mut self.channel
    }

    // ------------------------------------------------------------------
    // Verbatim delegation of the channel surface the engines drive.
    // Each forward is a pure passthrough: no reordering, no extra state,
    // no arithmetic — the bit-identity guarantee rests on that.
    // ------------------------------------------------------------------

    /// See [`Channel::set_loss_model`].
    pub fn set_loss_model(&mut self, model: Option<LossModel>) {
        self.channel.set_loss_model(model);
    }

    /// See [`Channel::loss_enabled`].
    pub fn loss_enabled(&self) -> bool {
        self.channel.loss_enabled()
    }

    /// See [`Channel::sharing`].
    pub fn sharing(&self) -> SharingMode {
        self.channel.sharing()
    }

    /// See [`Channel::now`].
    pub fn now(&self) -> Time {
        self.channel.now()
    }

    /// See [`Channel::active_flows`].
    pub fn active_flows(&self) -> usize {
        self.channel.active_flows()
    }

    /// See [`Channel::useful_bytes`].
    pub fn useful_bytes(&self) -> f64 {
        self.channel.useful_bytes()
    }

    /// See [`Channel::wasted_bytes`].
    pub fn wasted_bytes(&self) -> f64 {
        self.channel.wasted_bytes()
    }

    /// See [`Channel::lost_bytes`].
    pub fn lost_bytes(&self) -> f64 {
        self.channel.lost_bytes()
    }

    /// See [`Channel::corrupt_bytes`].
    pub fn corrupt_bytes(&self) -> f64 {
        self.channel.corrupt_bytes()
    }

    /// See [`Channel::duplicated_bytes`].
    pub fn duplicated_bytes(&self) -> f64 {
        self.channel.duplicated_bytes()
    }

    /// See [`Channel::offered_bytes`].
    pub fn offered_bytes(&self) -> f64 {
        self.channel.offered_bytes()
    }

    /// See [`Channel::byte_conservation_error`].
    pub fn byte_conservation_error(&self) -> f64 {
        self.channel.byte_conservation_error()
    }

    /// See [`Channel::take_report`].
    pub fn take_report(&mut self, id: FlowId) -> Option<DeliveryReport> {
        self.channel.take_report(id)
    }

    /// See [`Channel::estimated_loss_rate`].
    pub fn estimated_loss_rate(&self, link: LinkId) -> f64 {
        self.channel.estimated_loss_rate(link)
    }

    /// See [`Channel::estimated_goodput_rate`].
    pub fn estimated_goodput_rate(&self, link: LinkId) -> f64 {
        self.channel.estimated_goodput_rate(link)
    }

    /// See [`Channel::link_rate_bps`].
    pub fn link_rate_bps(&self, link: LinkId) -> f64 {
        self.channel.link_rate_bps(link)
    }

    /// See [`Channel::estimated_rate`].
    pub fn estimated_rate(&self, link: LinkId) -> f64 {
        self.channel.estimated_rate(link)
    }

    /// See [`Channel::start_flow`].
    pub fn start_flow(&mut self, start: Time, spec: FlowSpec) -> FlowId {
        self.channel.start_flow(start, spec)
    }

    /// See [`Channel::flow_age`].
    pub fn flow_age(&self, id: FlowId) -> Option<Time> {
        self.channel.flow_age(id)
    }

    /// See [`Channel::cancel_flow`].
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<FlowEvent> {
        self.channel.cancel_flow(id)
    }

    /// See [`Channel::advance_until`].
    pub fn advance_until(&mut self, t: Time) -> Vec<FlowEvent> {
        self.channel.advance_until(t)
    }

    // ------------------------------------------------------------------
    // Trait-level message machinery.
    // ------------------------------------------------------------------

    /// Messages accepted but not yet resolved (in-flight flows).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn launch(
        &mut self,
        link: LinkId,
        class: FrameClass,
        iter: u64,
        payload: Vec<u8>,
        attempt: u8,
    ) {
        let bytes = message_overhead() + payload.len() as u64;
        let spec = FlowSpec::new(link, vec![bytes]);
        let id = self.channel.start_flow(self.channel.now(), spec);
        self.pending.insert(
            id,
            Pending {
                link,
                class,
                iter,
                payload,
                attempt,
            },
        );
    }

    fn resolve(&mut self, ev: FlowEvent) {
        let Some(p) = self.pending.remove(&ev.id) else {
            // An engine-level flow (started via `start_flow` directly)
            // surfacing through the trait poll: not ours to interpret.
            return;
        };
        let intact = match ev.outcome {
            FlowOutcome::Completed => self
                .channel
                .take_report(ev.id)
                .is_none_or(|r| r.all_intact()),
            FlowOutcome::DeadlineReached { .. } | FlowOutcome::Cancelled { .. } => false,
        };
        if intact {
            self.inbox.push_back(Delivery {
                from: p.link,
                class: p.class,
                iter: p.iter,
                payload: p.payload,
            });
        } else if p.class == FrameClass::Reliable && p.attempt < MAX_RELIABLE_ATTEMPTS {
            // Ack timeout + retransmit, collapsed to the flow boundary:
            // the backoff delay is burned by the next poll's horizon.
            self.launch(p.link, p.class, p.iter, p.payload, p.attempt + 1);
        }
        // Best-effort damage is dropped silently; the channel already
        // fed the per-link loss EWMA from the delivery report.
    }
}

impl Transport for SimTransport {
    fn send(
        &mut self,
        to: PeerId,
        class: FrameClass,
        iter: u64,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        self.launch(to, class, iter, payload.to_vec(), 1);
        Ok(())
    }

    fn poll(&mut self, budget: f64) -> Result<Vec<Delivery>, TransportError> {
        let target = self.channel.now() + budget.max(0.0);
        // Reliable retransmits may need several flow generations within
        // one poll window; keep advancing until the horizon is reached.
        loop {
            let evs = self.channel.advance_until(target);
            if evs.is_empty() {
                break;
            }
            for ev in evs {
                self.resolve(ev);
            }
            if self.channel.now() >= target && self.channel.active_flows() == 0 {
                break;
            }
            if self.channel.now() >= target {
                break;
            }
        }
        Ok(self.inbox.drain(..).collect())
    }

    fn link_quality(&self, peer: PeerId) -> LinkQuality {
        LinkQuality {
            loss_rate: self.channel.estimated_loss_rate(peer),
            goodput_bps: self.channel.estimated_goodput_rate(peer),
        }
    }

    fn peers(&self) -> Vec<PeerId> {
        // The sim channel addresses lanes by link id; links are dense.
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rog_net::{LossConfig, Trace};

    fn clean_transport() -> SimTransport {
        let capacity = Trace::constant(8_000_000.0); // 1 MB/s
        let links = vec![Trace::constant(1.0), Trace::constant(1.0)];
        SimTransport::new(Channel::new(capacity, links))
    }

    fn lossy_transport(loss: f64, seed: u64) -> SimTransport {
        let mut t = clean_transport();
        t.set_loss_model(Some(LossModel::build(
            &LossConfig::iid(seed, loss),
            2,
            600.0,
        )));
        t
    }

    #[test]
    fn best_effort_loops_back_on_a_clean_channel() {
        let mut t = clean_transport();
        t.send(0, FrameClass::BestEffort, 7, b"rows").unwrap();
        t.send(1, FrameClass::BestEffort, 7, b"more").unwrap();
        let got = t.poll(5.0).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].from, 0);
        assert_eq!(got[0].iter, 7);
        assert_eq!(got[0].payload, b"rows");
        assert_eq!(got[1].class, FrameClass::BestEffort);
    }

    #[test]
    fn reliable_survives_heavy_loss() {
        let mut t = lossy_transport(0.6, 42);
        for i in 0..10 {
            t.send(0, FrameClass::Reliable, i, &[i as u8]).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..50 {
            got.extend(t.poll(10.0).unwrap());
            if got.len() == 10 {
                break;
            }
        }
        assert_eq!(got.len(), 10, "reliable class must deliver everything");
    }

    #[test]
    fn best_effort_loss_feeds_the_link_quality_ewma() {
        let mut t = lossy_transport(0.5, 7);
        for i in 0..200 {
            t.send(0, FrameClass::BestEffort, i, &[0u8; 64]).unwrap();
            let _ = t.poll(1.0).unwrap();
        }
        let q = t.link_quality(0);
        assert!(
            q.loss_rate > 0.1,
            "loss EWMA should have observed drops, got {}",
            q.loss_rate
        );
        assert!(q.goodput_bps >= 0.0);
    }

    #[test]
    fn delegation_preserves_channel_accounting() {
        let mut t = clean_transport();
        let id = t.start_flow(0.0, FlowSpec::new(0, vec![1000; 4]));
        let evs = t.advance_until(30.0);
        assert!(evs.iter().any(|e| e.id == id));
        assert!(t.useful_bytes() > 0.0);
        assert_eq!(t.active_flows(), 0);
        assert!(t.byte_conservation_error().abs() < 1e-9);
    }

    #[test]
    fn ge_burst_loss_still_converges_for_reliable() {
        let mut t = clean_transport();
        t.set_loss_model(Some(LossModel::build(
            &LossConfig::gilbert_elliott(9, 0.3),
            2,
            600.0,
        )));
        t.send(1, FrameClass::Reliable, 3, b"model-chunk").unwrap();
        let mut got = Vec::new();
        for _ in 0..50 {
            got.extend(t.poll(5.0).unwrap());
            if !got.is_empty() {
                break;
            }
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, b"model-chunk");
    }
}
