//! The live-cluster control protocol `rogctl serve`/`join` speak on
//! top of a [`crate::Transport`].
//!
//! Hand-rolled, length-delimited binary codec (tag byte, LE scalars,
//! length-prefixed sequences). Like the wire-frame decoder, decoding
//! is **total**: any byte string — truncated, corrupt, adversarial —
//! returns a typed [`ProtoError`], never a panic, and every sequence
//! length is bounded before allocation so a hostile header cannot
//! balloon memory.
//!
//! Message ↔ class mapping (see the crate docs for the class split):
//!
//! * Best-effort datagrams: [`Msg::PushRows`], [`Msg::PullReq`],
//!   [`Msg::PullRows`], [`Msg::PullDone`] — gradient/parameter rows
//!   whose loss RSP's staleness gate absorbs.
//! * Reliable stream: everything else — membership handshake, gate
//!   probes, checkpoints, trace events, the final model handoff.

use crate::PeerId;

/// One parameter row on the wire: row id + dense f32 payload.
pub type Row = (u32, Vec<f32>);

/// Decode failure reasons. All total — see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Buffer ended before the announced content.
    Truncated,
    /// Unknown message or trace-event tag.
    BadTag(u8),
    /// A declared sequence length exceeds the protocol bound.
    TooLarge(u64),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// Trailing bytes after a complete message.
    TrailingBytes,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "message truncated"),
            ProtoError::BadTag(t) => write!(f, "unknown tag {t}"),
            ProtoError::TooLarge(n) => write!(f, "declared length {n} exceeds protocol bound"),
            ProtoError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

/// Most rows any single message may carry (a full paper-scale model is
/// ~33 k rows; 1 M leaves two orders of magnitude headroom).
const MAX_ROWS: u64 = 1 << 20;
/// Widest row payload accepted (f32 count).
const MAX_ROW_WIDTH: u64 = 1 << 20;
/// Longest string field accepted.
const MAX_STR: u64 = 4096;
/// Largest flattened final-model parameter vector (f32 count).
const MAX_PARAMS: u64 = 1 << 28;

/// Timeline/journal event a worker reports to the server, stamped with
/// the worker's virtual clock. The server folds these into the shared
/// journal and per-device timelines, which is what makes the live
/// run's `TraceSummary` reconcile with a sim run of the same scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEv {
    /// Device state change; index into `rog-obs`'s `STATE_NAMES`
    /// (compute=0, communicate=1, stall=2, idle=3, offline=4).
    State(u8),
    /// Iteration `iter` started computing.
    IterBegin(u64),
    /// Iteration `iter` finished (update applied).
    IterEnd(u64),
    /// Blocked at the staleness gate before `iter`; global min was `min`.
    GateEnter {
        /// Iteration about to start.
        iter: u64,
        /// Global minimum row version at block time.
        min: u64,
    },
    /// Released from the gate after `waited` virtual seconds.
    GateExit {
        /// Iteration about to start.
        iter: u64,
        /// Virtual seconds spent blocked.
        waited: f64,
    },
    /// Push for `iter` finished: `rows` rows, `bytes` payload bytes.
    PushEnd {
        /// Iteration pushed.
        iter: u64,
        /// Rows pushed.
        rows: u32,
        /// Payload bytes pushed.
        bytes: u64,
    },
    /// The worker's timeline closed (end of its run).
    Close,
}

/// A control-protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker → server, first message on the TCP stream: request to
    /// join. `cfg_name` is the worker's `ExperimentConfig::name()`,
    /// checked against the server's so both sides provably run the
    /// same scenario; `udp` is the worker's best-effort datagram
    /// address.
    Join {
        /// The worker's experiment-config display name.
        cfg_name: String,
        /// The worker's UDP address (`ip:port`).
        udp: String,
    },
    /// Server → worker: admission. Carries everything the worker needs
    /// that is not derivable from its own config.
    Welcome {
        /// Assigned worker index.
        worker: u32,
        /// Cluster size.
        n_workers: u32,
        /// RSP staleness threshold.
        threshold: u32,
        /// Virtual seconds per wall second (compute pacing).
        speedup: f64,
        /// Virtual run duration in seconds.
        duration: f64,
        /// The server's UDP address for best-effort traffic.
        udp: String,
    },
    /// Server → workers: all members joined, start training now (the
    /// receipt instant is the worker's virtual-clock epoch).
    Start,
    /// Worker → server: staleness-gate probe before starting `iter`.
    Sync {
        /// Probing worker.
        worker: u32,
        /// Iteration it wants to start.
        iter: u64,
    },
    /// Server → worker: gate probe answer.
    MinVersion {
        /// Current global minimum row version.
        min: u64,
    },
    /// Worker → server (best-effort): a batch of pushed gradient rows.
    PushRows {
        /// Pushing worker.
        worker: u32,
        /// Iteration the rows belong to.
        iter: u64,
        /// Row payloads.
        rows: Vec<Row>,
    },
    /// Worker → server (best-effort): request fresh rows.
    PullReq {
        /// Pulling worker.
        worker: u32,
        /// Iteration the pull serves.
        iter: u64,
    },
    /// Server → worker (best-effort): a batch of fresh parameter rows.
    PullRows {
        /// Row payloads.
        rows: Vec<Row>,
    },
    /// Server → worker (best-effort): pull finished.
    PullDone {
        /// Iteration the pull served.
        iter: u64,
        /// Global minimum row version at send time (piggybacked gate
        /// info, saving the worker a Sync round-trip).
        min: u64,
        /// Total rows sent for this pull (lets the receiver detect
        /// best-effort gaps).
        sent: u32,
    },
    /// Worker → server: evaluated a checkpoint.
    Checkpoint {
        /// Evaluating worker.
        worker: u32,
        /// Iteration evaluated.
        iter: u64,
        /// Virtual time of the evaluation.
        time: f64,
        /// Metric value.
        metric: f64,
    },
    /// Worker → server: one timeline/journal event.
    Trace {
        /// Reporting worker.
        worker: u32,
        /// Virtual timestamp.
        t: f64,
        /// The event.
        ev: TraceEv,
    },
    /// Server → workers: run duration reached, finish up and report.
    Done,
    /// Worker → server: final model parameters, flattened in
    /// `Mlp::params()` matrix order (for the divergence diagnostic).
    FinalModel {
        /// Reporting worker.
        worker: u32,
        /// Iterations the worker completed.
        iters: u64,
        /// Flattened parameters.
        params: Vec<f32>,
    },
    /// Worker → server: clean goodbye; the TCP stream closes after.
    Bye {
        /// Departing worker.
        worker: u32,
    },
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(tag: u8) -> Self {
        Self { buf: vec![tag] }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn f32s(&mut self, vs: &[f32]) {
        self.u32(vs.len() as u32);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn rows(&mut self, rows: &[Row]) {
        self.u32(rows.len() as u32);
        for (id, payload) in rows {
            self.u32(*id);
            self.f32s(payload);
        }
    }
}

struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.i.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.b.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.b[self.i..end];
        self.i = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn len(&mut self, max: u64) -> Result<usize, ProtoError> {
        let n = u64::from(self.u32()?);
        if n > max {
            return Err(ProtoError::TooLarge(n));
        }
        Ok(n as usize)
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let n = self.len(MAX_STR)?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn f32s(&mut self, max: u64) -> Result<Vec<f32>, ProtoError> {
        let n = self.len(max)?;
        // Bounds-check the whole payload before allocating.
        let raw = self.take(n.checked_mul(4).ok_or(ProtoError::Truncated)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
            .collect())
    }

    fn rows(&mut self) -> Result<Vec<Row>, ProtoError> {
        let n = self.len(MAX_ROWS)?;
        let mut rows = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let id = self.u32()?;
            let payload = self.f32s(MAX_ROW_WIDTH)?;
            rows.push((id, payload));
        }
        Ok(rows)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.i == self.b.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

impl TraceEv {
    fn encode(&self, w: &mut Writer) {
        match self {
            TraceEv::State(s) => {
                w.u8(0);
                w.u8(*s);
            }
            TraceEv::IterBegin(iter) => {
                w.u8(1);
                w.u64(*iter);
            }
            TraceEv::IterEnd(iter) => {
                w.u8(2);
                w.u64(*iter);
            }
            TraceEv::GateEnter { iter, min } => {
                w.u8(3);
                w.u64(*iter);
                w.u64(*min);
            }
            TraceEv::GateExit { iter, waited } => {
                w.u8(4);
                w.u64(*iter);
                w.f64(*waited);
            }
            TraceEv::PushEnd { iter, rows, bytes } => {
                w.u8(5);
                w.u64(*iter);
                w.u32(*rows);
                w.u64(*bytes);
            }
            TraceEv::Close => w.u8(6),
        }
    }

    fn decode(r: &mut Reader) -> Result<TraceEv, ProtoError> {
        Ok(match r.u8()? {
            0 => TraceEv::State(r.u8()?),
            1 => TraceEv::IterBegin(r.u64()?),
            2 => TraceEv::IterEnd(r.u64()?),
            3 => TraceEv::GateEnter {
                iter: r.u64()?,
                min: r.u64()?,
            },
            4 => TraceEv::GateExit {
                iter: r.u64()?,
                waited: r.f64()?,
            },
            5 => TraceEv::PushEnd {
                iter: r.u64()?,
                rows: r.u32()?,
                bytes: r.u64()?,
            },
            6 => TraceEv::Close,
            t => return Err(ProtoError::BadTag(t)),
        })
    }
}

impl Msg {
    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w;
        match self {
            Msg::Join { cfg_name, udp } => {
                w = Writer::new(1);
                w.str(cfg_name);
                w.str(udp);
            }
            Msg::Welcome {
                worker,
                n_workers,
                threshold,
                speedup,
                duration,
                udp,
            } => {
                w = Writer::new(2);
                w.u32(*worker);
                w.u32(*n_workers);
                w.u32(*threshold);
                w.f64(*speedup);
                w.f64(*duration);
                w.str(udp);
            }
            Msg::Start => w = Writer::new(3),
            Msg::Sync { worker, iter } => {
                w = Writer::new(4);
                w.u32(*worker);
                w.u64(*iter);
            }
            Msg::MinVersion { min } => {
                w = Writer::new(5);
                w.u64(*min);
            }
            Msg::PushRows { worker, iter, rows } => {
                w = Writer::new(6);
                w.u32(*worker);
                w.u64(*iter);
                w.rows(rows);
            }
            Msg::PullReq { worker, iter } => {
                w = Writer::new(7);
                w.u32(*worker);
                w.u64(*iter);
            }
            Msg::PullRows { rows } => {
                w = Writer::new(8);
                w.rows(rows);
            }
            Msg::PullDone { iter, min, sent } => {
                w = Writer::new(9);
                w.u64(*iter);
                w.u64(*min);
                w.u32(*sent);
            }
            Msg::Checkpoint {
                worker,
                iter,
                time,
                metric,
            } => {
                w = Writer::new(10);
                w.u32(*worker);
                w.u64(*iter);
                w.f64(*time);
                w.f64(*metric);
            }
            Msg::Trace { worker, t, ev } => {
                w = Writer::new(11);
                w.u32(*worker);
                w.f64(*t);
                ev.encode(&mut w);
            }
            Msg::Done => w = Writer::new(12),
            Msg::FinalModel {
                worker,
                iters,
                params,
            } => {
                w = Writer::new(13);
                w.u32(*worker);
                w.u64(*iters);
                w.u32(params.len() as u32);
                for p in params {
                    w.buf.extend_from_slice(&p.to_le_bytes());
                }
            }
            Msg::Bye { worker } => {
                w = Writer::new(14);
                w.u32(*worker);
            }
        }
        w.buf
    }

    /// Deserializes one message; total over arbitrary input.
    pub fn decode(buf: &[u8]) -> Result<Msg, ProtoError> {
        let mut r = Reader { b: buf, i: 0 };
        let msg = match r.u8()? {
            1 => Msg::Join {
                cfg_name: r.str()?,
                udp: r.str()?,
            },
            2 => Msg::Welcome {
                worker: r.u32()?,
                n_workers: r.u32()?,
                threshold: r.u32()?,
                speedup: r.f64()?,
                duration: r.f64()?,
                udp: r.str()?,
            },
            3 => Msg::Start,
            4 => Msg::Sync {
                worker: r.u32()?,
                iter: r.u64()?,
            },
            5 => Msg::MinVersion { min: r.u64()? },
            6 => Msg::PushRows {
                worker: r.u32()?,
                iter: r.u64()?,
                rows: r.rows()?,
            },
            7 => Msg::PullReq {
                worker: r.u32()?,
                iter: r.u64()?,
            },
            8 => Msg::PullRows { rows: r.rows()? },
            9 => Msg::PullDone {
                iter: r.u64()?,
                min: r.u64()?,
                sent: r.u32()?,
            },
            10 => Msg::Checkpoint {
                worker: r.u32()?,
                iter: r.u64()?,
                time: r.f64()?,
                metric: r.f64()?,
            },
            11 => Msg::Trace {
                worker: r.u32()?,
                t: r.f64()?,
                ev: TraceEv::decode(&mut r)?,
            },
            12 => Msg::Done,
            13 => Msg::FinalModel {
                worker: r.u32()?,
                iters: r.u64()?,
                params: r.f32s(MAX_PARAMS)?,
            },
            14 => Msg::Bye { worker: r.u32()? },
            t => return Err(ProtoError::BadTag(t)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Splits `rows` into batches whose encoded [`Msg::PushRows`] /
/// [`Msg::PullRows`] payloads each fit one best-effort datagram
/// (`max_payload` bytes; pass [`crate::MAX_DATAGRAM_PAYLOAD`]). A single row
/// wider than the budget gets a batch of its own — the transport will
/// reject it with a clear `Oversize` error rather than silently
/// truncating.
pub fn chunk_rows(rows: Vec<Row>, max_payload: usize) -> Vec<Vec<Row>> {
    // Fixed per-message overhead: tag + worker + iter + row count.
    const MSG_HEAD: usize = 1 + 4 + 8 + 4;
    let mut out: Vec<Vec<Row>> = Vec::new();
    let mut cur: Vec<Row> = Vec::new();
    let mut cur_bytes = MSG_HEAD;
    for row in rows {
        let row_bytes = 4 + 4 + 4 * row.1.len();
        if !cur.is_empty() && cur_bytes + row_bytes > max_payload {
            out.push(std::mem::take(&mut cur));
            cur_bytes = MSG_HEAD;
        }
        cur_bytes += row_bytes;
        cur.push(row);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Sanity guard used by the live driver: true when `peer` is a
/// plausible worker index for an `n_workers` cluster.
pub fn valid_worker(peer: PeerId, n_workers: usize) -> bool {
    peer < n_workers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Msg) {
        let enc = m.encode();
        assert_eq!(Msg::decode(&enc).expect("decode"), m);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Msg::Join {
            cfg_name: "rog-t4".into(),
            udp: "127.0.0.1:9001".into(),
        });
        roundtrip(Msg::Welcome {
            worker: 2,
            n_workers: 4,
            threshold: 4,
            speedup: 30.0,
            duration: 600.0,
            udp: "127.0.0.1:9000".into(),
        });
        roundtrip(Msg::Start);
        roundtrip(Msg::Sync { worker: 1, iter: 9 });
        roundtrip(Msg::MinVersion { min: 7 });
        roundtrip(Msg::PushRows {
            worker: 0,
            iter: 3,
            rows: vec![(5, vec![1.0, -2.5]), (9, vec![])],
        });
        roundtrip(Msg::PullReq { worker: 3, iter: 8 });
        roundtrip(Msg::PullRows {
            rows: vec![(0, vec![0.25; 16])],
        });
        roundtrip(Msg::PullDone {
            iter: 8,
            min: 5,
            sent: 12,
        });
        roundtrip(Msg::Checkpoint {
            worker: 1,
            iter: 50,
            time: 108.5,
            metric: 61.2,
        });
        for ev in [
            TraceEv::State(2),
            TraceEv::IterBegin(4),
            TraceEv::IterEnd(4),
            TraceEv::GateEnter { iter: 4, min: 1 },
            TraceEv::GateExit {
                iter: 4,
                waited: 0.5,
            },
            TraceEv::PushEnd {
                iter: 4,
                rows: 10,
                bytes: 4096,
            },
            TraceEv::Close,
        ] {
            roundtrip(Msg::Trace {
                worker: 2,
                t: 12.75,
                ev,
            });
        }
        roundtrip(Msg::Done);
        roundtrip(Msg::FinalModel {
            worker: 0,
            iters: 120,
            params: vec![0.5, -0.5, 3.25],
        });
        roundtrip(Msg::Bye { worker: 0 });
    }

    #[test]
    fn decode_is_total_on_junk() {
        assert_eq!(Msg::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(Msg::decode(&[99]), Err(ProtoError::BadTag(99)));
        // Truncated mid-field.
        let mut enc = Msg::Sync { worker: 1, iter: 2 }.encode();
        enc.truncate(enc.len() - 3);
        assert_eq!(Msg::decode(&enc), Err(ProtoError::Truncated));
        // Trailing garbage.
        let mut enc = Msg::Done.encode();
        enc.push(0);
        assert_eq!(Msg::decode(&enc), Err(ProtoError::TrailingBytes));
        // Hostile length header cannot balloon memory.
        let mut hostile = vec![8u8]; // PullRows
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Msg::decode(&hostile),
            Err(ProtoError::TooLarge(u64::from(u32::MAX)))
        );
    }

    #[test]
    fn chunking_respects_the_datagram_budget() {
        let rows: Vec<Row> = (0..100).map(|i| (i, vec![0.0f32; 400])).collect();
        let batches = chunk_rows(rows.clone(), 4000);
        assert!(batches.len() > 1);
        let mut seen = 0;
        for b in &batches {
            let msg = Msg::PushRows {
                worker: 0,
                iter: 1,
                rows: b.clone(),
            };
            assert!(msg.encode().len() <= 4000, "batch overflows budget");
            seen += b.len();
        }
        assert_eq!(seen, rows.len(), "no row dropped or duplicated");
    }

    #[test]
    fn oversized_single_row_gets_its_own_batch() {
        let rows = vec![(0u32, vec![0.0f32; 5000]), (1, vec![0.0f32; 2])];
        let batches = chunk_rows(rows, 4000);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 1);
    }

    #[test]
    fn worker_bound_check() {
        assert!(valid_worker(0, 2));
        assert!(!valid_worker(2, 2));
    }
}
