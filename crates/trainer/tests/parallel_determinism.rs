//! The compute plane must be invisible: a run with the plane forced to
//! one thread is bit-identical to the same run with several threads,
//! for both workloads and for all synchronization strategies — results
//! depend only on the seed, never on the host's parallelism.

use rog_trainer::compute;
use rog_trainer::{Environment, ExperimentConfig, ModelScale, RunMetrics, Strategy, WorkloadKind};

fn cfg(workload: WorkloadKind, strategy: Strategy, pipeline: bool) -> ExperimentConfig {
    ExperimentConfig {
        workload,
        environment: Environment::Outdoor,
        strategy,
        model_scale: ModelScale::Small,
        n_workers: 3,
        n_laptop_workers: 0,
        duration_secs: 45.0,
        eval_every: 5,
        seed: 7,
        pipeline,
        ..ExperimentConfig::default()
    }
}

fn run_with_threads(cfg: &ExperimentConfig, threads: usize) -> RunMetrics {
    compute::set_thread_override(Some(threads));
    let m = cfg.options().run().metrics;
    compute::set_thread_override(None);
    m
}

fn assert_identical(a: &RunMetrics, b: &RunMetrics, what: &str) {
    assert_eq!(a.checkpoints, b.checkpoints, "checkpoints differ: {what}");
    assert_eq!(
        a.mean_iterations, b.mean_iterations,
        "iterations differ: {what}"
    );
    assert_eq!(a.total_energy_j, b.total_energy_j, "energy differs: {what}");
    assert_eq!(
        a.final_model_divergence, b.final_model_divergence,
        "divergence differs: {what}"
    );
    assert_eq!(a.useful_bytes, b.useful_bytes, "bytes differ: {what}");
}

#[test]
fn parallel_plane_is_bit_identical_to_serial() {
    let strategies = [
        Strategy::Bsp,
        Strategy::Ssp { threshold: 4 },
        Strategy::Rog { threshold: 4 },
    ];
    for workload in [WorkloadKind::Cruda, WorkloadKind::Crimp] {
        for strategy in strategies {
            let c = cfg(workload, strategy, false);
            let serial = run_with_threads(&c, 1);
            let parallel = run_with_threads(&c, 4);
            assert_identical(&serial, &parallel, &serial.name);
        }
    }
}

#[test]
fn pipelined_rog_is_bit_identical_to_serial() {
    // Pipeline mode overlaps pulls with in-flight computes, exercising
    // the prefetch-invalidation path.
    let c = cfg(WorkloadKind::Cruda, Strategy::Rog { threshold: 4 }, true);
    let serial = run_with_threads(&c, 1);
    let parallel = run_with_threads(&c, 4);
    assert_identical(&serial, &parallel, &serial.name);
}
