//! Live multi-process training over real sockets: the driver behind
//! `rogctl serve` / `rogctl join`.
//!
//! One process runs [`serve`] (the ROG parameter server), `N` processes
//! run [`join`] (one worker each). The cluster speaks the
//! [`rog_transport::proto`] control protocol over a
//! [`SocketTransport`]: gradient rows ride best-effort UDP datagrams
//! (CRC-checked, seq-deduped, loss absorbed by the RSP gate), while
//! membership, gate probes, checkpoints and the final-model handoff
//! ride reliable TCP.
//!
//! # Virtual clock
//!
//! The sim engines run on a virtual clock; a live run maps it to wall
//! time through `speedup` (virtual seconds per wall second). Workers
//! pace each iteration by sleeping `compute_secs / speedup` wall
//! seconds, so a paper-scale `duration_secs = 3600` run finishes in an
//! hour at `speedup = 1` or a minute at `speedup = 60`. All protocol
//! timestamps are virtual (wall elapsed since `Start` × speedup).
//!
//! # Reconciliation
//!
//! Workers stream their timeline transitions ([`TraceEv`]) to the
//! server, which rebuilds per-worker [`Timeline`]s and a journal with
//! the same dedup rule the sim engines use. The server's
//! `RunMetrics::composition` and its journal therefore agree bitwise
//! by construction, and both are comparable (within pacing tolerance)
//! to a sim run of the same config — see
//! `tests/transport_reconciliation.rs`.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::{Duration, Instant};

use rog_core::{ImportanceMetric, RogServer, RogWorker, RogWorkerConfig, RowId};
use rog_models::Workload;
use rog_obs::{obs, EventKind, Journal};
use rog_sim::{DeviceState, Timeline};
use rog_tensor::rng::DetRng;
use rog_transport::proto::{chunk_rows, Msg, Row, TraceEv};
use rog_transport::{
    Delivery, FrameClass, SocketTransport, Transport, TransportError, MAX_DATAGRAM_PAYLOAD,
};

use crate::cluster::{Cluster, DeviceKind};
use crate::config::{ExperimentConfig, Strategy};
use crate::engine::common::relative_model_divergence_flat;
use crate::metrics::{ByteAccount, MetricsCollector};
use crate::run::{FleetStats, RunOutcome};

/// How a live [`serve`] run is launched.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// TCP listen address for worker joins (e.g. `"127.0.0.1:7117"`).
    pub listen: String,
    /// Virtual seconds per wall second (both sides must agree; the
    /// server's value is authoritative and shipped in `Welcome`).
    pub speedup: f64,
    /// Wall-clock seconds to wait for all workers to join.
    pub join_timeout_secs: f64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:7117".to_owned(),
            speedup: 60.0,
            join_timeout_secs: 120.0,
        }
    }
}

/// How a live [`join`] run is launched.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinOptions {
    /// The server's TCP address.
    pub connect: String,
    /// Upper bound on rows pushed per iteration. `plan_push` orders
    /// mandatory / stalest rows first, so a prefix cap preserves the
    /// RSP bound while bounding datagram traffic. `usize::MAX` pushes
    /// the full plan.
    pub push_cap: usize,
}

impl Default for JoinOptions {
    fn default() -> Self {
        Self {
            connect: "127.0.0.1:7117".to_owned(),
            push_cap: 512,
        }
    }
}

/// Checks a config is runnable on the socket transport, returning a
/// clear error naming the first sim-only knob found.
///
/// Loss injection, fault plans and recorded channel traces live inside
/// the deterministic sim channel; a real network supplies its own
/// loss, so carrying them over would silently mean nothing.
pub fn check_socket_compatible(cfg: &ExperimentConfig) -> Result<(), String> {
    if !matches!(cfg.strategy, Strategy::Rog { .. }) {
        return Err(format!(
            "the socket transport runs the ROG row engine only; strategy {} is sim-only \
             (drop --strategy or choose rog)",
            cfg.strategy.name()
        ));
    }
    if cfg.codec != rog_compress::CodecChoice::OneBit {
        return Err(format!(
            "--codec {} is sim-only for now; the live wire protocol frames one-bit rows \
             (drop --codec or run the sim backend)",
            cfg.codec.name()
        ));
    }
    let sim_only: [(&str, bool); 5] = [
        ("--loss (packet-loss injection)", cfg.loss.is_some()),
        ("--fault-plan (fault injection)", cfg.fault_plan.is_some()),
        ("--fault-seed (seeded churn)", cfg.fault_seed.is_some()),
        ("capacity trace replay", cfg.capacity_trace.is_some()),
        ("link trace replay", cfg.link_traces.is_some()),
    ];
    for (what, set) in sim_only {
        if set {
            return Err(format!(
                "{what} only exists inside the simulated channel; the socket transport \
                 rides a real network that supplies its own loss — remove it or run the \
                 sim backend"
            ));
        }
    }
    Ok(())
}

/// Which class each control message travels under.
fn class_of(msg: &Msg) -> FrameClass {
    match msg {
        Msg::PushRows { .. }
        | Msg::PullReq { .. }
        | Msg::PullRows { .. }
        | Msg::PullDone { .. } => FrameClass::BestEffort,
        _ => FrameClass::Reliable,
    }
}

fn send_msg(
    t: &mut SocketTransport,
    peer: usize,
    iter: u64,
    msg: &Msg,
) -> Result<(), TransportError> {
    t.send(peer, class_of(msg), iter, &msg.encode())
}

/// Writes one reliable frame straight onto a handshake stream (before
/// the stream is handed to the transport).
fn write_handshake(stream: &mut TcpStream, msg: &Msg) -> Result<(), String> {
    let frame = rog_net::wire::encode_frame(
        &rog_net::wire::FrameHeader {
            seq: 0,
            class: FrameClass::Reliable,
            attempt: 1,
            iter: 0,
        },
        &msg.encode(),
    );
    let len = frame.len() as u32;
    stream
        .write_all(&len.to_le_bytes())
        .and_then(|()| stream.write_all(&frame))
        .map_err(|e| format!("handshake write failed: {e}"))
}

/// Reads one length-prefixed frame straight off a handshake stream.
fn read_handshake(stream: &mut TcpStream, timeout: Duration) -> Result<Msg, String> {
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut len_buf = [0u8; 4];
    stream
        .read_exact(&mut len_buf)
        .map_err(|e| format!("handshake read failed: {e}"))?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > 1 << 20 {
        return Err(format!("handshake frame of {len} bytes is not plausible"));
    }
    let mut buf = vec![0u8; len];
    stream
        .read_exact(&mut buf)
        .map_err(|e| format!("handshake read failed: {e}"))?;
    let frame =
        rog_net::wire::decode_frame(&buf).map_err(|e| format!("bad handshake frame: {e}"))?;
    Msg::decode(&frame.payload).map_err(|e| format!("bad handshake message: {e}"))
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolves to nothing"))
}

/// Runs the join handshake on one accepted connection, returning the
/// worker's resolved UDP address and the stream on success.
///
/// A failure here condemns only this connection — the caller rejects
/// it and keeps listening. Port scanners, health checks, and workers
/// launched with mismatched flags must not abort the whole cluster.
fn admit_worker(
    stream: &mut TcpStream,
    peer_addr: SocketAddr,
    expect_name: &str,
    welcome: &Msg,
) -> Result<SocketAddr, String> {
    stream.set_nonblocking(false).map_err(|e| e.to_string())?;
    let msg = read_handshake(stream, Duration::from_secs(10))?;
    let Msg::Join { cfg_name, udp } = msg else {
        return Err(format!("{peer_addr} opened with {msg:?}, expected Join"));
    };
    if cfg_name != expect_name {
        // Best effort: tell the worker why before dropping it.
        let _ = write_handshake(stream, &Msg::Bye { worker: u32::MAX });
        return Err(format!(
            "config mismatch: server runs \"{expect_name}\", worker {peer_addr} runs \
             \"{cfg_name}\" — every process must be launched with identical flags"
        ));
    }
    let mut worker_udp = resolve(&udp)?;
    if worker_udp.ip().is_unspecified() {
        worker_udp.set_ip(peer_addr.ip());
    }
    write_handshake(stream, welcome)?;
    Ok(worker_udp)
}

fn to_row_ids(rows: &[Row]) -> Vec<(RowId, Vec<f32>)> {
    rows.iter()
        .map(|(id, v)| (RowId(*id as usize), v.clone()))
        .collect()
}

fn from_row_ids(rows: Vec<(RowId, Vec<f32>)>) -> Vec<Row> {
    rows.into_iter().map(|(id, v)| (id.0 as u32, v)).collect()
}

fn importance_for(cfg: &ExperimentConfig) -> ImportanceMetric {
    match cfg.importance_weights {
        Some((f1, f2)) => ImportanceMetric::new(rog_core::ImportanceWeights { f1, f2 }),
        None => ImportanceMetric::default(),
    }
}

/// Per-worker bookkeeping on the server.
struct Member {
    timeline: Timeline,
    closed: bool,
    iters: u64,
    final_params: Option<Vec<f32>>,
    said_bye: bool,
}

/// Runs the live parameter server: accepts `cfg.n_workers` joins,
/// coordinates the run, and assembles the cluster-wide
/// [`RunOutcome`] from streamed worker telemetry.
///
/// Blocks until the run completes (roughly `duration_secs / speedup`
/// wall seconds after the last worker joins) or errors.
pub fn serve(cfg: &ExperimentConfig, opts: &ServeOptions) -> Result<RunOutcome, String> {
    check_socket_compatible(cfg)?;
    if !(opts.speedup.is_finite() && opts.speedup > 0.0) {
        return Err(format!("speedup must be positive, got {}", opts.speedup));
    }
    let Strategy::Rog { threshold } = cfg.strategy else {
        unreachable!("checked above");
    };
    let n = cfg.n_workers;
    let cluster = Cluster::build(cfg);
    let mut server = RogServer::new(
        cluster.init_model.params(),
        n,
        threshold,
        importance_for(cfg),
    );

    let listen_addr = resolve(&opts.listen)?;
    let listener = TcpListener::bind(listen_addr)
        .map_err(|e| format!("cannot listen on {listen_addr}: {e}"))?;
    let mut transport = SocketTransport::bind(SocketAddr::new(listen_addr.ip(), 0))
        .map_err(|e| format!("cannot bind UDP: {e}"))?;
    let server_udp = transport
        .local_udp_addr()
        .map_err(|e| e.to_string())?
        .to_string();

    let mut journal = Journal::new(cfg.trace);
    obs!(
        journal,
        0.0,
        EventKind::Meta {
            name: cfg.name(),
            seed: cfg.seed,
        }
    );

    // Membership: admit n workers, in accept order. The listener is
    // non-blocking so the join timeout is a hard deadline even when no
    // connection ever arrives. A connection that fails the handshake
    // (stray client, torn stream, mismatched config) is rejected and
    // its slot stays open; only the deadline aborts the run.
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    let join_deadline = Instant::now() + Duration::from_secs_f64(opts.join_timeout_secs);
    let expect_name = cfg.name();
    let mut members: Vec<Member> = Vec::with_capacity(n);
    while members.len() < n {
        let w = members.len();
        let (mut stream, peer_addr) = loop {
            match listener.accept() {
                Ok(conn) => break conn,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() > join_deadline {
                        return Err(format!("only {w} of {n} workers joined before the timeout"));
                    }
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        };
        let welcome = Msg::Welcome {
            worker: w as u32,
            n_workers: n as u32,
            threshold,
            speedup: opts.speedup,
            duration: cfg.duration_secs,
            udp: server_udp.clone(),
        };
        let worker_udp = match admit_worker(&mut stream, peer_addr, &expect_name, &welcome) {
            Ok(addr) => addr,
            Err(reason) => {
                eprintln!("rejecting connection from {peer_addr}: {reason}");
                continue;
            }
        };
        if let Err(e) = transport.register_peer(w, Some(worker_udp), Some(stream)) {
            eprintln!("rejecting connection from {peer_addr}: {e}");
            continue;
        }
        obs!(journal, 0.0, EventKind::PeerUp { w: w as u32 });
        members.push(Member {
            timeline: Timeline::new(),
            closed: false,
            iters: 0,
            final_params: None,
            said_bye: false,
        });
    }

    for w in 0..n {
        send_msg(&mut transport, w, 0, &Msg::Start).map_err(|e| e.to_string())?;
    }

    let mut collector = MetricsCollector::new(
        cfg.name(),
        cluster.workload.metric_name().to_owned(),
        cluster.workload.metric_higher_better(),
        n,
    );
    let mut stats = FleetStats::default();
    let epoch = Instant::now();
    let duration = cfg.duration_secs;
    let vnow = |epoch: Instant| (epoch.elapsed().as_secs_f64() * opts.speedup).min(duration);
    let mut done_sent = false;
    // After Done, wait at most this long for final models and byes.
    let mut grace_deadline: Option<Instant> = None;

    loop {
        let now = vnow(epoch);
        if !done_sent && now >= duration {
            for w in 0..n {
                let _ = send_msg(&mut transport, w, 0, &Msg::Done);
            }
            done_sent = true;
            grace_deadline = Some(Instant::now() + Duration::from_secs(30));
        }
        if done_sent {
            let all_in = members
                .iter()
                .all(|m| m.final_params.is_some() && m.said_bye);
            let expired = grace_deadline.is_some_and(|d| Instant::now() > d);
            if all_in || expired {
                break;
            }
        }

        let deliveries = transport.poll(0.05).map_err(|e| e.to_string())?;
        for Delivery { from, payload, .. } in deliveries {
            stats.sim_events += 1;
            let msg = match Msg::decode(&payload) {
                Ok(m) => m,
                Err(_) => continue, // hostile or torn datagram: drop
            };
            match msg {
                Msg::Sync { worker, iter } => {
                    let _ = (worker, iter);
                    let min = server.versions().global_min();
                    let _ = send_msg(&mut transport, from, iter, &Msg::MinVersion { min });
                }
                Msg::PushRows { worker, iter, rows } if worker as usize == from => {
                    server.on_push(from, iter, &to_row_ids(&rows));
                    stats.peak_version_bytes = stats
                        .peak_version_bytes
                        .max(server.versions().memory_bytes() as u64);
                }
                Msg::PullReq { worker, iter } => {
                    if worker as usize != from {
                        continue;
                    }
                    let plan = server.plan_pull(from);
                    let fresh = server.commit_pull(from, &plan);
                    let sent = fresh.len() as u32;
                    for batch in chunk_rows(from_row_ids(fresh), MAX_DATAGRAM_PAYLOAD) {
                        let _ =
                            send_msg(&mut transport, from, iter, &Msg::PullRows { rows: batch });
                    }
                    let min = server.versions().global_min();
                    let _ = send_msg(
                        &mut transport,
                        from,
                        iter,
                        &Msg::PullDone { iter, min, sent },
                    );
                }
                Msg::Checkpoint {
                    worker,
                    iter,
                    time,
                    metric,
                } if worker as usize == from => {
                    collector.record_eval(from, iter, time, metric);
                }
                Msg::Trace { worker, t, ev } => {
                    if worker as usize != from {
                        continue;
                    }
                    let m = &mut members[from];
                    match ev {
                        TraceEv::State(s) => {
                            if let Some(&state) = DeviceState::ALL.get(s as usize) {
                                if !m.closed && m.timeline.set_state(t, state) {
                                    obs!(
                                        journal,
                                        t,
                                        EventKind::State {
                                            w: worker,
                                            state: state.name(),
                                        }
                                    );
                                }
                            }
                        }
                        TraceEv::IterBegin(iter) => {
                            obs!(journal, t, EventKind::IterBegin { w: worker, iter });
                        }
                        TraceEv::IterEnd(iter) => {
                            collector.record_iteration(from);
                            obs!(journal, t, EventKind::IterEnd { w: worker, iter });
                        }
                        TraceEv::GateEnter { iter, min } => {
                            obs!(
                                journal,
                                t,
                                EventKind::GateEnter {
                                    w: worker,
                                    iter,
                                    min,
                                    lead: iter.saturating_sub(min),
                                    row: -1,
                                }
                            );
                        }
                        TraceEv::GateExit { iter, waited } => {
                            obs!(
                                journal,
                                t,
                                EventKind::GateExit {
                                    w: worker,
                                    iter,
                                    waited
                                }
                            );
                        }
                        TraceEv::PushEnd { iter, rows, bytes } => {
                            obs!(
                                journal,
                                t,
                                EventKind::PushEnd {
                                    w: worker,
                                    iter,
                                    rows,
                                    bytes,
                                }
                            );
                        }
                        TraceEv::Close => {
                            if !m.closed && m.timeline.current_state().is_some() {
                                m.timeline.close(t);
                                obs!(journal, t, EventKind::Close { w: worker });
                            }
                            m.closed = true;
                        }
                    }
                }
                Msg::FinalModel {
                    worker,
                    iters,
                    params,
                } if worker as usize == from => {
                    members[from].iters = iters;
                    members[from].final_params = Some(params);
                }
                Msg::Bye { worker } if worker as usize == from => {
                    members[from].said_bye = true;
                    obs!(journal, vnow(epoch), EventKind::PeerDown { w: worker });
                }
                // Server-bound only; anything else is a protocol error
                // from a confused peer — ignore rather than crash the run.
                _ => {}
            }
        }
        for (peer, kind) in transport.take_wire_drops() {
            obs!(
                journal,
                vnow(epoch),
                EventKind::WireDrop {
                    w: peer as u32,
                    kind,
                }
            );
        }
    }

    // Close any timeline a worker never closed itself (crash, timeout).
    for (w, m) in members.iter_mut().enumerate() {
        if !m.closed && m.timeline.current_state().is_some() {
            let t_close = duration.max(m.timeline.end_time());
            m.timeline.close(t_close);
            obs!(journal, t_close, EventKind::Close { w: w as u32 });
        }
    }
    obs!(
        journal,
        duration,
        EventKind::RunEnd {
            iters: collector.total_iterations(),
            duration,
        }
    );

    let finals: Vec<&[f32]> = members
        .iter()
        .filter_map(|m| m.final_params.as_deref())
        .collect();
    let divergence = relative_model_divergence_flat(&finals);
    let timelines: Vec<Timeline> = members.iter().map(|m| m.timeline.clone()).collect();
    let robot_mask: Vec<bool> = cluster
        .devices
        .iter()
        .map(|d| d.kind == DeviceKind::Robot)
        .collect();
    let counters = transport.byte_counters();
    let bytes = ByteAccount {
        useful: counters.useful,
        wasted: counters.wasted,
        lost: counters.lost,
        corrupt: counters.corrupt,
    };
    let metrics = collector.finish(&timelines, &robot_mask, duration, bytes, divergence);
    Ok(RunOutcome {
        metrics,
        journal: cfg.trace.then_some(journal),
        stats,
    })
}

/// Worker-side state for one live run.
struct LiveWorker {
    w: usize,
    transport: SocketTransport,
    pending: Vec<Msg>,
    speedup: f64,
    duration: f64,
    epoch: Instant,
    done: bool,
    timeline: Timeline,
    journal: Journal,
}

impl LiveWorker {
    fn now(&self) -> f64 {
        (self.epoch.elapsed().as_secs_f64() * self.speedup).min(self.duration)
    }

    fn send(&mut self, msg: &Msg, iter: u64) {
        let _ = send_msg(&mut self.transport, 0, iter, msg);
    }

    fn trace(&mut self, ev: TraceEv) {
        let t = self.now();
        self.send(
            &Msg::Trace {
                worker: self.w as u32,
                t,
                ev,
            },
            0,
        );
    }

    /// Polls briefly, stashing messages and latching `Done`.
    fn pump(&mut self, budget: f64) {
        if let Ok(batch) = self.transport.poll(budget) {
            for d in batch {
                if let Ok(m) = Msg::decode(&d.payload) {
                    if matches!(m, Msg::Done) {
                        self.done = true;
                    } else {
                        self.pending.push(m);
                    }
                }
            }
        }
    }

    /// Marks the device state locally and streams it to the server.
    fn set_state(&mut self, state: DeviceState) {
        let t = self.now();
        if self.timeline.set_state(t, state) {
            obs!(
                self.journal,
                t,
                EventKind::State {
                    w: self.w as u32,
                    state: state.name(),
                }
            );
            let idx = DeviceState::ALL
                .iter()
                .position(|&s| s == state)
                .expect("state in ALL") as u8;
            self.trace(TraceEv::State(idx));
        }
    }
}

/// Runs one live worker: joins the server at `opts.connect`, trains
/// the configured workload for real (gradients, pushes, pulls), and
/// returns this worker's own [`RunOutcome`] perspective.
///
/// The worker index is assigned by the server at join time.
pub fn join(cfg: &ExperimentConfig, opts: &JoinOptions) -> Result<RunOutcome, String> {
    check_socket_compatible(cfg)?;
    let server_addr = resolve(&opts.connect)?;
    // Workers routinely launch before the server has bound its port, so
    // connection-refused is retried for a few seconds rather than fatal.
    let connect_deadline = Instant::now() + Duration::from_secs(10);
    let mut stream = loop {
        match TcpStream::connect(server_addr) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() > connect_deadline {
                    return Err(format!("cannot connect to {server_addr}: {e}"));
                }
                thread::sleep(Duration::from_millis(50));
            }
        }
    };
    let mut transport = SocketTransport::bind(SocketAddr::new(
        stream.local_addr().map_err(|e| e.to_string())?.ip(),
        0,
    ))
    .map_err(|e| format!("cannot bind UDP: {e}"))?;
    let udp = transport
        .local_udp_addr()
        .map_err(|e| e.to_string())?
        .to_string();
    write_handshake(
        &mut stream,
        &Msg::Join {
            cfg_name: cfg.name(),
            udp,
        },
    )?;
    let welcome = read_handshake(&mut stream, Duration::from_secs(120))?;
    let Msg::Welcome {
        worker,
        n_workers,
        threshold,
        speedup,
        duration,
        udp: server_udp,
    } = welcome
    else {
        return Err(format!("server replied {welcome:?}, expected Welcome"));
    };
    if n_workers as usize != cfg.n_workers {
        return Err(format!(
            "server expects {n_workers} workers, local config says {} — launch both \
             sides with identical flags",
            cfg.n_workers
        ));
    }
    let w = worker as usize;
    let mut server_udp = resolve(&server_udp)?;
    if server_udp.ip().is_unspecified() {
        server_udp.set_ip(server_addr.ip());
    }
    transport
        .register_peer(0, Some(server_udp), Some(stream))
        .map_err(|e| e.to_string())?;

    // Local replica: same deterministic cluster build as the server.
    let cluster = Cluster::build(cfg);
    let mut model = cluster.init_model.clone();
    let mut wcfg = RogWorkerConfig::new(threshold, cluster.lr);
    if cfg.momentum > 0.0 {
        wcfg = wcfg.with_momentum(cfg.momentum);
    }
    wcfg.importance = importance_for(cfg);
    let mut rog = RogWorker::new(model.params(), wcfg);
    let mut batch_rng = DetRng::new(cfg.seed).fork(0x100 + w as u64);
    let mut jitter_rng = DetRng::new(cfg.seed).fork(0x200 + w as u64);

    let mut journal = Journal::new(cfg.trace);
    obs!(
        journal,
        0.0,
        EventKind::Meta {
            name: cfg.name(),
            seed: cfg.seed,
        }
    );

    // Wait for Start.
    let mut lw = LiveWorker {
        w,
        transport,
        pending: Vec::new(),
        speedup,
        duration,
        epoch: Instant::now(),
        done: false,
        timeline: Timeline::new(),
        journal,
    };
    let start_deadline = Instant::now() + Duration::from_secs(180);
    'wait: loop {
        if Instant::now() > start_deadline {
            return Err("server never sent Start".into());
        }
        if let Ok(batch) = lw.transport.poll(0.1) {
            for d in batch {
                if matches!(Msg::decode(&d.payload), Ok(Msg::Start)) {
                    break 'wait;
                }
            }
        }
    }
    lw.epoch = Instant::now();

    let mut collector = MetricsCollector::new(
        cfg.name(),
        cluster.workload.metric_name().to_owned(),
        cluster.workload.metric_higher_better(),
        1,
    );
    let mut known_min: u64 = 0;
    let mut iter: u64 = 0;
    let base = cfg.base_compute_secs() * cfg.batch_scale;

    while !lw.done && lw.now() < lw.duration {
        iter += 1;

        // RSP gate: iteration `iter` may start iff it is within
        // `threshold` of the slowest row anywhere in the cluster.
        if iter > known_min + u64::from(threshold) {
            let t_enter = lw.now();
            lw.set_state(DeviceState::Stall);
            lw.trace(TraceEv::GateEnter {
                iter,
                min: known_min,
            });
            obs!(
                lw.journal,
                t_enter,
                EventKind::GateEnter {
                    w: w as u32,
                    iter,
                    min: known_min,
                    lead: iter.saturating_sub(known_min),
                    row: -1,
                }
            );
            while !lw.done && iter > known_min + u64::from(threshold) && lw.now() < lw.duration {
                lw.send(
                    &Msg::Sync {
                        worker: w as u32,
                        iter,
                    },
                    iter,
                );
                lw.pump(0.05);
                for m in lw.pending.drain(..) {
                    if let Msg::MinVersion { min } = m {
                        known_min = known_min.max(min);
                    }
                }
            }
            let waited = lw.now() - t_enter;
            lw.trace(TraceEv::GateExit { iter, waited });
            obs!(
                lw.journal,
                lw.now(),
                EventKind::GateExit {
                    w: w as u32,
                    iter,
                    waited,
                }
            );
            if lw.done || lw.now() >= lw.duration {
                break;
            }
        }

        // Compute: real gradients, paced to the virtual clock.
        lw.set_state(DeviceState::Compute);
        lw.trace(TraceEv::IterBegin(iter));
        obs!(
            lw.journal,
            lw.now(),
            EventKind::IterBegin { w: w as u32, iter }
        );
        let compute_start = Instant::now();
        let shard = &cluster.workload.shards()[w];
        let batch = cluster.devices[w].batch;
        let idxs = shard.sample_batch(batch, &mut batch_rng);
        let (grads, _mean_abs) = crate::compute::run_job(&model, shard, &idxs);
        let jitter = jitter_rng.normal_with(0.0, 0.02 * base);
        let compute_secs = (base + cfg.codec_secs() + jitter).max(0.05);
        // The paced budget covers the real gradient computation too:
        // sleep only the remainder, so the virtual compute span equals
        // `compute_secs` whether the real math was fast or slow.
        let sleep_end = compute_start + Duration::from_secs_f64(compute_secs / speedup);
        while Instant::now() < sleep_end {
            lw.pump(0.01);
        }

        // Push: importance-ranked rows, best-effort datagrams.
        lw.set_state(DeviceState::Communicate);
        rog.accumulate(&grads);
        let mut plan = rog.plan_push(iter);
        plan.truncate(opts.push_cap);
        let rows = rog.commit_push(&plan, iter);
        let n_rows = rows.len() as u32;
        let payload_bytes: u64 = rows.iter().map(|(_, v)| 4 + 4 * v.len() as u64).sum();
        for batch in chunk_rows(from_row_ids(rows), MAX_DATAGRAM_PAYLOAD) {
            lw.send(
                &Msg::PushRows {
                    worker: w as u32,
                    iter,
                    rows: batch,
                },
                iter,
            );
        }
        lw.trace(TraceEv::PushEnd {
            iter,
            rows: n_rows,
            bytes: payload_bytes,
        });
        obs!(
            lw.journal,
            lw.now(),
            EventKind::PushEnd {
                w: w as u32,
                iter,
                rows: n_rows,
                bytes: payload_bytes,
            }
        );

        // Pull: fresh rows until PullDone (or a wall timeout — a lost
        // datagram must not stall the run; RSP absorbs the gap).
        lw.send(
            &Msg::PullReq {
                worker: w as u32,
                iter,
            },
            iter,
        );
        let pull_deadline = Instant::now() + Duration::from_secs(2);
        let mut pulled = false;
        while !pulled && Instant::now() < pull_deadline {
            lw.pump(0.05);
            for m in lw.pending.drain(..) {
                match m {
                    Msg::PullRows { rows } => {
                        rog.apply_pulled(model.params_mut(), &to_row_ids(&rows));
                    }
                    Msg::PullDone { min, .. } => {
                        known_min = known_min.max(min);
                        pulled = true;
                    }
                    Msg::MinVersion { min } => known_min = known_min.max(min),
                    _ => {}
                }
            }
        }

        lw.trace(TraceEv::IterEnd(iter));
        obs!(
            lw.journal,
            lw.now(),
            EventKind::IterEnd { w: w as u32, iter }
        );
        collector.record_iteration(0);
        if iter.is_multiple_of(cfg.eval_every) {
            let metric = cluster.workload.test_metric(&model);
            let t = lw.now();
            collector.record_eval(0, iter, t, metric);
            lw.send(
                &Msg::Checkpoint {
                    worker: w as u32,
                    iter,
                    time: t,
                    metric,
                },
                iter,
            );
        }
        lw.pump(0.0);
    }

    // Finish: close the timeline, hand the final model over, leave.
    let t_close = lw.now().max(lw.timeline.end_time());
    if lw.timeline.current_state().is_some() {
        lw.timeline.close(t_close);
        obs!(lw.journal, t_close, EventKind::Close { w: w as u32 });
    }
    lw.trace(TraceEv::Close);
    obs!(
        lw.journal,
        lw.duration,
        EventKind::RunEnd {
            iters: iter,
            duration: lw.duration,
        }
    );
    let flat: Vec<f32> = model
        .params()
        .iter()
        .flat_map(|m| m.as_slice().iter().copied())
        .collect();
    lw.send(
        &Msg::FinalModel {
            worker: w as u32,
            iters: iter,
            params: flat,
        },
        iter,
    );
    lw.send(&Msg::Bye { worker: w as u32 }, iter);
    // Let the reliable sends flush before dropping the stream.
    lw.pump(0.2);

    let counters = lw.transport.byte_counters();
    let bytes = ByteAccount {
        useful: counters.useful,
        wasted: counters.wasted,
        lost: counters.lost,
        corrupt: counters.corrupt,
    };
    let robot = cluster.devices[w].kind == DeviceKind::Robot;
    let metrics = collector.finish(&[lw.timeline.clone()], &[robot], lw.duration, bytes, 0.0);
    Ok(RunOutcome {
        metrics,
        journal: cfg.trace.then_some(lw.journal),
        stats: FleetStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Environment, ModelScale};
    use rog_fault::FaultPlan;
    use rog_net::LossConfig;

    fn rog_cfg() -> ExperimentConfig {
        ExperimentConfig {
            strategy: Strategy::Rog { threshold: 4 },
            model_scale: ModelScale::Small,
            environment: Environment::Stable,
            n_workers: 2,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn socket_compat_accepts_a_plain_rog_config() {
        assert_eq!(check_socket_compatible(&rog_cfg()), Ok(()));
    }

    #[test]
    fn socket_compat_rejects_loss_injection() {
        let cfg = ExperimentConfig {
            loss: Some(LossConfig::iid(1, 0.1)),
            ..rog_cfg()
        };
        let err = check_socket_compatible(&cfg).unwrap_err();
        assert!(err.contains("--loss"), "{err}");
        assert!(err.contains("real network"), "{err}");
    }

    #[test]
    fn socket_compat_rejects_fault_plans_and_seeds() {
        let cfg = ExperimentConfig {
            fault_plan: Some(FaultPlan::default()),
            ..rog_cfg()
        };
        assert!(check_socket_compatible(&cfg)
            .unwrap_err()
            .contains("--fault-plan"));
        let cfg = ExperimentConfig {
            fault_seed: Some(7),
            ..rog_cfg()
        };
        assert!(check_socket_compatible(&cfg)
            .unwrap_err()
            .contains("--fault-seed"));
    }

    #[test]
    fn socket_compat_rejects_non_onebit_codecs() {
        let cfg = ExperimentConfig {
            codec: rog_compress::CodecChoice::Sparse,
            ..rog_cfg()
        };
        let err = check_socket_compatible(&cfg).unwrap_err();
        assert!(err.contains("--codec sparse"), "{err}");
    }

    #[test]
    fn socket_compat_rejects_model_granularity_baselines() {
        let cfg = ExperimentConfig {
            strategy: Strategy::Bsp,
            ..rog_cfg()
        };
        let err = check_socket_compatible(&cfg).unwrap_err();
        assert!(err.contains("BSP"), "{err}");
    }

    #[test]
    fn message_class_split_matches_the_paper() {
        // Rows are best-effort; control and membership are reliable.
        assert_eq!(
            class_of(&Msg::PushRows {
                worker: 0,
                iter: 1,
                rows: vec![]
            }),
            FrameClass::BestEffort
        );
        assert_eq!(class_of(&Msg::Start), FrameClass::Reliable);
        assert_eq!(
            class_of(&Msg::FinalModel {
                worker: 0,
                iters: 0,
                params: vec![]
            }),
            FrameClass::Reliable
        );
    }
}
