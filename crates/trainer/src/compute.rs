//! Deterministic parallel compute plane.
//!
//! Gradient draws that are *logically concurrent in virtual time* —
//! several workers sitting in the `Compute` state, each with a pending
//! `ComputeDone` timer in the event queue — are mutually independent:
//! every draw consumes only its own worker's batch-RNG stream and reads
//! a model that is frozen until its event fires. The plane batches those
//! draws onto a scoped thread pool; the engine applies the results at
//! the exact `(time, seq)` queue positions the serial engine would have
//! used. Each individual draw's float operations still run on a single
//! thread in program order, so every metric, checkpoint and CSV stays
//! bit-identical to a fully serial run regardless of thread count.
//!
//! The one wrinkle is pipeline mode, where a pull can mutate a worker's
//! model *while* its compute timer is outstanding. [`PendingDraw`]
//! handles this: the pre-sampled batch indices stay valid (sampling
//! consumes exactly the RNG the serial engine would have), but the
//! cached gradients are dropped and recomputed against the updated
//! model when the event fires.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use rog_models::{Dataset, GradSet, Mlp};

use crate::engine::common::{EngineCtx, Ev};

/// Process-wide thread-count override (0 = automatic). Lets tests and
/// benchmark harnesses force a width without plumbing configuration.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the number of compute threads for subsequently built planes.
///
/// `None` restores automatic selection. Thread count never affects
/// results — that is the plane's contract — only wall-clock speed, so
/// leaving an override in place cannot perturb concurrent runs.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// One gradient draw: a frozen model, the worker's data shard, and
/// batch indices pre-sampled from the worker's RNG stream.
pub struct DrawJob<'a> {
    /// Model to differentiate against.
    pub model: &'a Mlp,
    /// The worker's data shard.
    pub shard: &'a Dataset,
    /// Pre-sampled batch indices.
    pub idxs: &'a [usize],
}

/// Runs one draw, returning the gradient set and its global mean
/// absolute value.
pub fn run_job(model: &Mlp, shard: &Dataset, idxs: &[usize]) -> (GradSet, f32) {
    let mut grads = model.zero_grads();
    let mean_abs = run_job_into(model, shard, idxs, &mut grads);
    (grads, mean_abs)
}

/// Runs one draw into a recycled parameter-shaped buffer (zeroed
/// first), returning the global mean absolute gradient value.
pub fn run_job_into(model: &Mlp, shard: &Dataset, idxs: &[usize], grads: &mut GradSet) -> f32 {
    model.loss_and_grad_into(shard, idxs, grads);
    let n: usize = grads.iter().map(|g| g.len()).sum();
    let sum: f32 = grads.iter().map(|g| g.mean_abs() * g.len() as f32).sum();
    if n > 0 {
        sum / n as f32
    } else {
        0.0
    }
}

/// A fixed-width pool of scoped threads for batched gradient draws.
#[derive(Debug, Clone, Copy)]
pub struct ComputePlane {
    threads: usize,
}

impl ComputePlane {
    /// Picks a width: the [`set_thread_override`] value if set, else the
    /// `ROG_COMPUTE_THREADS` environment variable, else the host's
    /// available parallelism.
    pub fn auto() -> Self {
        let over = THREAD_OVERRIDE.load(Ordering::SeqCst);
        let threads = if over > 0 {
            over
        } else if let Some(n) = std::env::var("ROG_COMPUTE_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            n
        } else {
            thread::available_parallelism().map_or(1, |n| n.get())
        };
        Self { threads }
    }

    /// The number of threads the plane will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes all jobs, returning results in job order.
    ///
    /// Single-thread planes (and single jobs) run inline; otherwise jobs
    /// are split into contiguous chunks across scoped threads and the
    /// per-chunk results concatenated back in order. Either way, result
    /// `i` is bitwise identical to running job `i` alone: jobs share no
    /// mutable state and each one's float operations happen on exactly
    /// one thread.
    pub fn execute(&self, jobs: &[DrawJob<'_>]) -> Vec<(GradSet, f32)> {
        let mut bufs: Vec<GradSet> = jobs.iter().map(|j| j.model.zero_grads()).collect();
        let means = self.execute_into(jobs, &mut bufs);
        bufs.into_iter().zip(means).collect()
    }

    /// Like [`ComputePlane::execute`], but writes each job's gradients
    /// into the caller-provided buffer of the same index (recycled
    /// across draws by the engines), returning the mean `|g|` values in
    /// job order.
    ///
    /// # Panics
    ///
    /// Panics if `bufs.len() != jobs.len()`.
    pub fn execute_into(&self, jobs: &[DrawJob<'_>], bufs: &mut [GradSet]) -> Vec<f32> {
        assert_eq!(jobs.len(), bufs.len(), "one buffer per job");
        let threads = self.threads.min(jobs.len());
        if threads <= 1 {
            return jobs
                .iter()
                .zip(bufs)
                .map(|(j, b)| run_job_into(j.model, j.shard, j.idxs, b))
                .collect();
        }
        let chunk = jobs.len().div_ceil(threads);
        let mut out = Vec::with_capacity(jobs.len());
        thread::scope(|s| {
            let handles: Vec<_> = jobs
                .chunks(chunk)
                .zip(bufs.chunks_mut(chunk))
                .map(|(jc, bc)| {
                    s.spawn(move || {
                        jc.iter()
                            .zip(bc)
                            .map(|(j, b)| run_job_into(j.model, j.shard, j.idxs, b))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("compute-plane job panicked"));
            }
        });
        out
    }
}

/// A prefetched draw for a worker with a pending `ComputeDone` event.
pub struct PendingDraw {
    /// Batch indices drawn from the worker's RNG stream. Always valid
    /// once sampled: sampling consumes exactly the RNG the serial engine
    /// would have consumed at event time.
    pub idxs: Vec<usize>,
    /// Cached gradients and mean `|g|`, valid only against the model the
    /// draw ran on. `None` after a model update invalidated it.
    pub result: Option<(GradSet, f32)>,
}

/// Prefetches draws for every worker with a pending `ComputeDone` event.
///
/// Batch indices are sampled serially (ascending worker id; each worker
/// has at most one pending timer and an independent RNG stream, so early
/// sampling is stream-for-stream identical to sampling at event time).
/// When the plane has more than one thread and at least two draws lack a
/// cached result, the gradient computations run batched on the plane.
pub fn prefetch_draws<'m>(
    ctx: &mut EngineCtx,
    pending: &mut [Option<PendingDraw>],
    model_of: impl Fn(usize) -> &'m Mlp,
) {
    let mut due: Vec<usize> = ctx
        .queue
        .iter()
        .filter_map(|(_, ev)| match *ev {
            Ev::ComputeDone(w) => Some(w),
            Ev::NetRetry(_) => None,
        })
        .collect();
    due.sort_unstable();
    due.dedup();
    for &w in &due {
        if pending[w].is_none() {
            let idxs = ctx.sample_batch_idxs(w);
            pending[w] = Some(PendingDraw { idxs, result: None });
        }
    }
    if ctx.plane.threads() <= 1 {
        return;
    }
    let todo: Vec<usize> = due
        .into_iter()
        .filter(|&w| pending[w].as_ref().is_some_and(|p| p.result.is_none()))
        .collect();
    if todo.len() < 2 {
        return;
    }
    let mut bufs: Vec<GradSet> = todo
        .iter()
        .map(|&w| ctx.take_grad_buf(|| model_of(w).zero_grads()))
        .collect();
    let jobs: Vec<(usize, &Mlp, &[usize])> = todo
        .iter()
        .map(|&w| {
            let idxs = pending[w].as_ref().expect("sampled above").idxs.as_slice();
            (w, model_of(w), idxs)
        })
        .collect();
    let means = ctx.draw_grads_batch_into(&jobs, &mut bufs);
    drop(jobs);
    for ((w, grads), mean) in todo.into_iter().zip(bufs).zip(means) {
        pending[w].as_mut().expect("sampled above").result = Some((grads, mean));
    }
}

/// Consumes a worker's prefetched draw when its `ComputeDone` fires,
/// recomputing serially when the cache is missing or was invalidated by
/// a model change since the prefetch.
pub fn take_draw(
    ctx: &mut EngineCtx,
    pending: &mut Option<PendingDraw>,
    worker: usize,
    model: &Mlp,
) -> (GradSet, f32) {
    match pending.take() {
        Some(PendingDraw {
            result: Some(r), ..
        }) => r,
        Some(PendingDraw { idxs, result: None }) => ctx.grads_for_pooled(worker, model, &idxs),
        None => {
            let idxs = ctx.sample_batch_idxs(worker);
            ctx.grads_for_pooled(worker, model, &idxs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Environment, ExperimentConfig, ModelScale, Strategy};
    use rog_models::Workload;

    fn ctx() -> EngineCtx {
        EngineCtx::new(&ExperimentConfig {
            model_scale: ModelScale::Small,
            n_workers: 3,
            duration_secs: 30.0,
            environment: Environment::Stable,
            strategy: Strategy::Bsp,
            ..ExperimentConfig::default()
        })
    }

    #[test]
    fn plane_results_match_serial_per_job() {
        let c = ctx();
        let model = c.cluster.init_model.clone();
        let shard = &c.cluster.workload.shards()[0];
        let idxs_a: Vec<usize> = (0..8).collect();
        let idxs_b: Vec<usize> = (4..12).collect();
        let jobs = [
            DrawJob {
                model: &model,
                shard,
                idxs: &idxs_a,
            },
            DrawJob {
                model: &model,
                shard,
                idxs: &idxs_b,
            },
        ];
        let serial = ComputePlane { threads: 1 }.execute(&jobs);
        let parallel = ComputePlane { threads: 4 }.execute(&jobs);
        assert_eq!(serial.len(), parallel.len());
        for ((ga, ma), (gb, mb)) in serial.iter().zip(&parallel) {
            assert_eq!(ma.to_bits(), mb.to_bits());
            for (a, b) in ga.iter().zip(gb) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
        }
    }

    #[test]
    fn prefetch_then_take_matches_direct_draw() {
        // Two contexts with the same seed: one draws directly, the other
        // goes through prefetch + take. Streams must stay identical.
        let mut direct = ctx();
        let mut planed = ctx();
        planed.plane = ComputePlane { threads: 4 };
        let model = direct.cluster.init_model.clone();
        for w in 0..3 {
            direct.start_compute(w, 0.0);
            planed.start_compute(w, 0.0);
        }
        let mut pending: Vec<Option<PendingDraw>> = (0..3).map(|_| None).collect();
        prefetch_draws(&mut planed, &mut pending, |_| &model);
        for (w, slot) in pending.iter_mut().enumerate() {
            let (gd, md) = direct.draw_grads(w, &model);
            let (gp, mp) = take_draw(&mut planed, slot, w, &model);
            assert_eq!(md.to_bits(), mp.to_bits());
            for (a, b) in gd.iter().zip(&gp) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
        }
    }

    #[test]
    fn invalidated_result_recomputes_from_same_idxs() {
        let mut c = ctx();
        let model = c.cluster.init_model.clone();
        c.start_compute(0, 0.0);
        c.start_compute(1, 0.0);
        let mut pending: Vec<Option<PendingDraw>> = (0..3).map(|_| None).collect();
        prefetch_draws(&mut c, &mut pending, |_| &model);
        let idxs_before = pending[0].as_ref().unwrap().idxs.clone();
        // Simulate a pipeline pull invalidating worker 0's cache.
        pending[0].as_mut().unwrap().result = None;
        assert_eq!(pending[0].as_ref().unwrap().idxs, idxs_before);
        let (g, m) = take_draw(&mut c, &mut pending[0], 0, &model);
        let expected = run_job(&model, &c.cluster.workload.shards()[0], &idxs_before);
        assert_eq!(m.to_bits(), expected.1.to_bits());
        for (a, b) in g.iter().zip(&expected.0) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn override_controls_plane_width() {
        set_thread_override(Some(3));
        assert_eq!(ComputePlane::auto().threads(), 3);
        set_thread_override(None);
        assert!(ComputePlane::auto().threads() >= 1);
    }
}
