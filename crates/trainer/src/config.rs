//! Experiment configuration.

use rog_compress::CodecChoice;
use rog_fault::{ChurnProfile, FaultPlan};
use rog_net::{ChannelProfile, LossConfig, LossModel, SharingMode, Trace};

/// Which workload to train (paper Sec. VI, "Experiment Scenarios").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Coordinated robotic unsupervised domain adaptation (dense MLP).
    Cruda,
    /// CRUDA with the ConvMLP architecture on image inputs — the model
    /// family of the paper's recognition network.
    CrudaConv,
    /// Coordinated robotic implicit mapping and positioning.
    Crimp,
}

/// Wireless environment (paper Sec. VI, "Experiment Environments").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Environment {
    /// Laboratory with desks/separators: moderate instability.
    Indoor,
    /// Campus garden with trees/bushes: severe instability, deep fades.
    Outdoor,
    /// Idealized flat channel (ablation/testing only).
    Stable,
}

impl Environment {
    /// The channel profile of this environment.
    pub fn profile(&self) -> ChannelProfile {
        match self {
            Environment::Indoor => ChannelProfile::indoor(),
            Environment::Outdoor => ChannelProfile::outdoor(),
            Environment::Stable => ChannelProfile::stable(100e6),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Environment::Indoor => "indoor",
            Environment::Outdoor => "outdoor",
            Environment::Stable => "stable",
        }
    }
}

/// Synchronization strategy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Bulk synchronous parallel: a barrier every iteration.
    Bsp,
    /// Stale synchronous parallel with a fixed threshold.
    Ssp {
        /// The staleness threshold.
        threshold: u32,
    },
    /// Fully asynchronous parallel: no gate at all (unbounded
    /// staleness; the asynchronous end of the baseline spectrum).
    Asp,
    /// FLOWN-style dynamic per-worker thresholds (model granularity).
    Flown {
        /// Smallest assignable threshold.
        min_threshold: u32,
        /// Largest assignable threshold.
        max_threshold: u32,
    },
    /// Dynamic SSP (arxiv 1908.11848): per-worker SSP thresholds
    /// re-derived at runtime from iteration-rate EWMAs (model
    /// granularity).
    Dssp {
        /// Smallest assignable threshold.
        min_threshold: u32,
        /// Largest assignable threshold.
        max_threshold: u32,
    },
    /// Adaptive Bounded Staleness (arxiv 2301.08895): one uniform bound
    /// widened/narrowed on communication-round stall accounting (model
    /// granularity).
    Abs {
        /// Smallest assignable bound.
        min_threshold: u32,
        /// Largest assignable bound.
        max_threshold: u32,
    },
    /// ROG: row-granulated RSP + ATP.
    Rog {
        /// The RSP staleness threshold.
        threshold: u32,
    },
    /// Adaptive-bound RSP hybrid: the ROG row engine with the staleness
    /// bound driven at runtime by the per-link loss-rate/goodput EWMAs.
    RogAdaptive {
        /// Smallest assignable bound (also the starting bound).
        min_threshold: u32,
        /// Largest assignable bound.
        max_threshold: u32,
    },
}

impl Strategy {
    /// Display name matching the paper's figure legends. Adaptive
    /// models encode their bound ranges (`DSSP-1..8`) so run names,
    /// journal headers, and bench JSON rows stay unique across
    /// differently-bounded instances of the same model.
    pub fn name(&self) -> String {
        match self {
            Strategy::Bsp => "BSP".to_owned(),
            Strategy::Ssp { threshold } => format!("SSP-{threshold}"),
            Strategy::Asp => "ASP".to_owned(),
            Strategy::Flown { .. } => "FLOWN".to_owned(),
            Strategy::Dssp {
                min_threshold,
                max_threshold,
            } => format!("DSSP-{min_threshold}..{max_threshold}"),
            Strategy::Abs {
                min_threshold,
                max_threshold,
            } => format!("ABS-{min_threshold}..{max_threshold}"),
            Strategy::Rog { threshold } => format!("ROG-{threshold}"),
            Strategy::RogAdaptive {
                min_threshold,
                max_threshold,
            } => format!("ROGA-{min_threshold}..{max_threshold}"),
        }
    }

    /// Whether this strategy runs the row-granular engine (ROG and the
    /// adaptive-bound hybrid) rather than a model-granularity baseline.
    pub fn is_row_granular(&self) -> bool {
        matches!(self, Strategy::Rog { .. } | Strategy::RogAdaptive { .. })
    }
}

/// Problem size: the evaluation-scale specs or tiny test-scale specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelScale {
    /// Evaluation scale (used by the experiment binaries).
    Paper,
    /// Tiny scale for unit/integration tests.
    Small,
}

/// Full description of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Workload to train.
    pub workload: WorkloadKind,
    /// Wireless environment.
    pub environment: Environment,
    /// Synchronization strategy.
    pub strategy: Strategy,
    /// Problem size.
    pub model_scale: ModelScale,
    /// Number of training workers (the parameter server is an extra
    /// device). The paper's default team is 4 workers: 3 robots and one
    /// laptop; see [`crate::Cluster`].
    pub n_workers: usize,
    /// How many of the workers are (slower) laptops; the rest are
    /// robots. Batches are scaled by dynamic batching (Table II).
    pub n_laptop_workers: usize,
    /// Multiplier on every device's batch size (Fig. 9 sweeps ×2, ×4).
    pub batch_scale: f64,
    /// Virtual wall-clock budget in seconds.
    pub duration_secs: f64,
    /// Checkpoint (evaluate) every this many iterations per worker.
    pub eval_every: u64,
    /// Root random seed; every run with the same config is
    /// bit-reproducible.
    pub seed: u64,
    /// Momentum coefficient (0 = plain SGD).
    pub momentum: f32,
    /// Learning-rate override (default: the workload's suggestion).
    pub lr_override: Option<f32>,
    /// Record per-push micro-events on worker 0 (Fig. 8).
    pub record_micro: bool,
    /// Target compressed model size in bytes on the wire; the synthetic
    /// model's rows are scaled so its compressed size matches the
    /// paper's transmission volume (default: 2.1 MB for CRUDA, 0.75 MB
    /// for CRIMP).
    pub compressed_bytes_target: Option<u64>,
    /// Mean per-iteration gradient-computation seconds on a robot at
    /// batch scale 1 (default: per workload, Table II / Sec. II-D).
    pub compute_secs_override: Option<f64>,
    /// ATP importance-metric coefficients `(f1, f2)` override (ROG only;
    /// used by the importance ablation).
    pub importance_weights: Option<(f64, f64)>,
    /// Pipeline communication and computation (ROG only): the paper's
    /// future-work extension (Sec. VI-D, after Pipe-SGD). The worker
    /// keeps computing while its push/pull cycle runs concurrently,
    /// bounded so computation never runs more than the staleness
    /// threshold ahead of the last applied pull.
    pub pipeline: bool,
    /// Adapt the ROG staleness threshold online (paper future work,
    /// Sec. VI-C): raise it when the cluster stalls, lower it when the
    /// channel is calm, trading early speed against late statistical
    /// efficiency automatically.
    pub auto_threshold: bool,
    /// MAC sharing model for the wireless channel (airtime fairness by
    /// default; throughput fairness models the 802.11 rate anomaly).
    pub mac_sharing: SharingMode,
    /// Replay a recorded total-capacity trace instead of generating one
    /// (the artifact's `tc`-replay path; see `rog_net::io`).
    pub capacity_trace: Option<Trace>,
    /// Replay recorded per-link quality traces (values in `(0, 1]`),
    /// cycled if fewer traces than workers are given.
    pub link_traces: Option<Vec<Trace>>,
    /// Explicit fault-injection plan (worker churn, link blackouts,
    /// server restarts), scheduled on the virtual clock. An empty plan
    /// is bit-identical to `None`.
    pub fault_plan: Option<FaultPlan>,
    /// Generate a seeded churn plan ([`FaultPlan::seeded_churn`] with
    /// the default [`ChurnProfile`]) when no explicit `fault_plan` is
    /// given. Ignored if `fault_plan` is set.
    pub fault_seed: Option<u64>,
    /// Packet-loss model for the wireless channel (Gilbert–Elliott
    /// burst loss, i.i.d. loss/corruption/duplication/reordering; see
    /// [`LossConfig`]). `None` — and an all-zero config — leave every
    /// chunk intact and are bit-identical to a loss-free build.
    pub loss: Option<LossConfig>,
    /// Record a deterministic event journal (`rog_obs`) during the
    /// run. Tracing never feeds back into the simulation: metrics are
    /// bit-identical with tracing on or off.
    pub trace: bool,
    /// Number of parameter-server shards for the row engine (ROG
    /// strategies only; model-granularity baselines always use one
    /// server). Rows are partitioned contiguously across shards, each
    /// worker↔shard pair gets its own link, and the RSP gate blocks
    /// per shard. `1` (the default) is byte-identical to the unsharded
    /// engine. `0` is treated as `1`.
    pub n_shards: usize,
    /// Number of edge aggregators between the workers and the
    /// parameter-server shards (ROG strategies only). Workers are
    /// grouped contiguously under aggregators; each aggregator merges
    /// its members' row pushes (summing gradient contributions,
    /// max-ing versions) before forwarding upstream. `0` (the
    /// default) is the flat topology, byte-identical to the
    /// pre-aggregator engine.
    pub n_aggregators: usize,
    /// Row codec for the push/pull payloads (ROG strategies only; the
    /// model-granularity baselines always ship the dense one-bit
    /// model). [`CodecChoice::Auto`] starts every link on one-bit and
    /// re-selects per link from the channel's loss/goodput EWMAs. The
    /// default, [`CodecChoice::OneBit`], is byte-identical to the
    /// pre-codec engine.
    pub codec: CodecChoice,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            workload: WorkloadKind::Cruda,
            environment: Environment::Outdoor,
            strategy: Strategy::Bsp,
            model_scale: ModelScale::Paper,
            n_workers: 4,
            n_laptop_workers: 1,
            batch_scale: 1.0,
            duration_secs: 3600.0,
            eval_every: 50,
            seed: 0x0611,
            momentum: 0.0,
            lr_override: None,
            record_micro: false,
            compressed_bytes_target: None,
            compute_secs_override: None,
            importance_weights: None,
            pipeline: false,
            auto_threshold: false,
            mac_sharing: SharingMode::AirtimeFair,
            capacity_trace: None,
            link_traces: None,
            fault_plan: None,
            fault_seed: None,
            loss: None,
            trace: false,
            n_shards: 1,
            n_aggregators: 0,
            codec: CodecChoice::OneBit,
        }
    }
}

impl ExperimentConfig {
    /// Display name of the run ("ROG-4 / cruda / outdoor").
    pub fn name(&self) -> String {
        let faulty = self.fault_plan.as_ref().is_some_and(|p| !p.is_empty())
            || (self.fault_plan.is_none() && self.fault_seed.is_some());
        format!(
            "{}{}{}{}{}{}{} / {} / {}",
            self.strategy.name(),
            match (self.pipeline, self.auto_threshold) {
                (true, true) => "+pipe+auto",
                (true, false) => "+pipe",
                (false, true) => "+auto",
                (false, false) => "",
            },
            if self.effective_shards() > 1 {
                format!("+shard{}", self.effective_shards())
            } else {
                String::new()
            },
            if self.effective_aggregators() > 0 {
                format!("+agg{}", self.effective_aggregators())
            } else {
                String::new()
            },
            if self.effective_codec() != CodecChoice::OneBit {
                format!("+{}", self.effective_codec().name())
            } else {
                String::new()
            },
            if faulty { "+faults" } else { "" },
            if self.loss_active() { "+loss" } else { "" },
            match self.workload {
                WorkloadKind::Cruda => "cruda",
                WorkloadKind::CrudaConv => "cruda-conv",
                WorkloadKind::Crimp => "crimp",
            },
            self.environment.name()
        )
    }

    /// The shard count this run actually uses: `n_shards`, floored at
    /// one, for the ROG row engine; always one for the
    /// model-granularity baselines (they move whole models; there is
    /// nothing to shard).
    pub fn effective_shards(&self) -> usize {
        if self.strategy.is_row_granular() {
            self.n_shards.max(1)
        } else {
            1
        }
    }

    /// The edge-aggregator count this run actually uses: `n_aggregators`
    /// for the ROG row engine (`0` = flat worker→server topology);
    /// always `0` for the model-granularity baselines.
    pub fn effective_aggregators(&self) -> usize {
        if self.strategy.is_row_granular() {
            self.n_aggregators
        } else {
            0
        }
    }

    /// The row codec this run actually uses: `codec` for the ROG row
    /// engine; always the dense one-bit codec for the model-granularity
    /// baselines (they ship whole models; the codec ladder is a
    /// row-granular feature).
    pub fn effective_codec(&self) -> CodecChoice {
        if self.strategy.is_row_granular() {
            self.codec
        } else {
            CodecChoice::OneBit
        }
    }

    /// True when this run can actually lose, corrupt, duplicate, or
    /// reorder chunks: a non-off [`LossConfig`], or scripted loss
    /// windows in the fault plan.
    pub fn loss_active(&self) -> bool {
        self.loss.as_ref().is_some_and(|l| !l.is_off())
            || self
                .fault_plan
                .as_ref()
                .is_some_and(|p| p.loss_windows().iter().any(|w| w.rate > 0.0))
    }

    /// Builds the channel's [`LossModel`] for this run, folding the
    /// fault plan's scripted loss windows into it. `None` when nothing
    /// can harm a chunk — the engines then leave the channel exactly as
    /// a pre-loss-model build would, preserving byte-identity.
    pub fn resolved_loss_model(&self, plan: Option<&FaultPlan>) -> Option<LossModel> {
        if !self.loss_active() {
            return None;
        }
        let cfg = self.loss.clone().unwrap_or_else(LossConfig::off);
        let shards = self.effective_shards();
        let mut model = LossModel::build(&cfg, self.n_workers * shards, self.duration_secs);
        if let Some(plan) = plan {
            for w in plan.loss_windows() {
                // A scripted loss window hits the worker's radio, so it
                // covers every shard link of that worker. With one
                // shard this is exactly the pre-shard single link.
                for s in 0..shards {
                    model.add_window(
                        rog_net::shard_link(w.link, shards, s),
                        w.start,
                        w.end,
                        w.rate,
                    );
                }
            }
        }
        Some(model)
    }

    /// The fault plan this run executes: the explicit plan when set,
    /// else a seeded churn plan when `fault_seed` is given, else `None`.
    pub fn resolved_fault_plan(&self) -> Option<FaultPlan> {
        if let Some(plan) = &self.fault_plan {
            return Some(plan.clone());
        }
        self.fault_seed.map(|seed| {
            FaultPlan::seeded_churn(
                seed,
                self.n_workers,
                self.duration_secs,
                &ChurnProfile::default(),
            )
        })
    }

    /// Gradient-computation seconds on a robot at batch scale 1,
    /// excluding the (de)compression cost.
    ///
    /// Sec. II-D: a Jetson Xavier NX computes CRUDA gradients in 2.18 s
    /// including the 0.42–0.51 s codec cost. CRIMP's model is smaller and
    /// computes faster (Fig. 7a).
    pub fn base_compute_secs(&self) -> f64 {
        self.compute_secs_override.unwrap_or(match self.workload {
            WorkloadKind::Cruda | WorkloadKind::CrudaConv => 1.71,
            WorkloadKind::Crimp => 0.95,
        })
    }

    /// Compression + decompression seconds per iteration (Table II).
    pub fn codec_secs(&self) -> f64 {
        match self.workload {
            WorkloadKind::Cruda | WorkloadKind::CrudaConv => 0.47,
            WorkloadKind::Crimp => 0.35,
        }
    }

    /// Target compressed model size on the wire (paper Sec. I: 2.1 MB
    /// and 0.75 MB for the two paradigms).
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes_target.unwrap_or(match self.workload {
            WorkloadKind::Cruda | WorkloadKind::CrudaConv => 2_100_000,
            WorkloadKind::Crimp => 750_000,
        })
    }

    /// Wraps this config in a [`crate::RunOptions`] builder — the
    /// single entry point for running experiments. `cfg.options()
    /// .run()` replaces the deprecated `run()`/`run_traced()` pair.
    pub fn options(&self) -> crate::RunOptions {
        crate::RunOptions::new(self.clone())
    }

    /// Runs the experiment and discards any journal.
    #[deprecated(since = "0.5.0", note = "use `options().run().metrics` / `run_with`")]
    pub fn run(&self) -> crate::RunMetrics {
        crate::engine::run(self)
    }

    /// Runs the experiment with the event journal forced on,
    /// returning the journal alongside the metrics.
    #[deprecated(
        since = "0.5.0",
        note = "use `options().traced(true).run()` / `run_with`"
    )]
    pub fn run_traced(&self) -> (crate::RunMetrics, rog_obs::Journal) {
        let cfg = ExperimentConfig {
            trace: true,
            ..self.clone()
        };
        crate::engine::run_traced(&cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_figure_legends() {
        assert_eq!(Strategy::Bsp.name(), "BSP");
        assert_eq!(Strategy::Ssp { threshold: 20 }.name(), "SSP-20");
        assert_eq!(
            Strategy::Flown {
                min_threshold: 2,
                max_threshold: 20
            }
            .name(),
            "FLOWN"
        );
        assert_eq!(Strategy::Rog { threshold: 4 }.name(), "ROG-4");
    }

    #[test]
    fn adaptive_names_encode_bound_ranges() {
        assert_eq!(
            Strategy::Dssp {
                min_threshold: 1,
                max_threshold: 8
            }
            .name(),
            "DSSP-1..8"
        );
        assert_eq!(
            Strategy::Abs {
                min_threshold: 2,
                max_threshold: 6
            }
            .name(),
            "ABS-2..6"
        );
        assert_eq!(
            Strategy::RogAdaptive {
                min_threshold: 1,
                max_threshold: 8
            }
            .name(),
            "ROGA-1..8"
        );
    }

    #[test]
    fn row_granularity_classifies_every_strategy() {
        assert!(Strategy::Rog { threshold: 4 }.is_row_granular());
        assert!(Strategy::RogAdaptive {
            min_threshold: 1,
            max_threshold: 8
        }
        .is_row_granular());
        for s in [
            Strategy::Bsp,
            Strategy::Ssp { threshold: 4 },
            Strategy::Asp,
            Strategy::Flown {
                min_threshold: 2,
                max_threshold: 12,
            },
            Strategy::Dssp {
                min_threshold: 1,
                max_threshold: 8,
            },
            Strategy::Abs {
                min_threshold: 1,
                max_threshold: 8,
            },
        ] {
            assert!(!s.is_row_granular(), "{} is model-granular", s.name());
        }
        // Row-only knobs follow the classification: the hybrid shards,
        // the model-granular adaptives do not.
        let roga = ExperimentConfig {
            strategy: Strategy::RogAdaptive {
                min_threshold: 1,
                max_threshold: 8,
            },
            n_shards: 3,
            n_aggregators: 1,
            ..ExperimentConfig::default()
        };
        assert_eq!(roga.effective_shards(), 3);
        assert_eq!(roga.effective_aggregators(), 1);
        let dssp = ExperimentConfig {
            strategy: Strategy::Dssp {
                min_threshold: 1,
                max_threshold: 8,
            },
            n_shards: 3,
            n_aggregators: 1,
            ..ExperimentConfig::default()
        };
        assert_eq!(dssp.effective_shards(), 1);
        assert_eq!(dssp.effective_aggregators(), 0);
    }

    #[test]
    fn defaults_follow_the_paper() {
        let c = ExperimentConfig::default();
        assert_eq!(c.n_workers, 4);
        assert_eq!(c.eval_every, 50);
        assert_eq!(c.compressed_bytes(), 2_100_000);
        // Total compute incl. codec ≈ 2.18 s (Sec. II-D).
        assert!((c.base_compute_secs() + c.codec_secs() - 2.18).abs() < 1e-9);
    }

    #[test]
    fn fault_naming_and_resolution() {
        let plain = ExperimentConfig::default();
        assert!(!plain.name().contains("+faults"));
        assert!(plain.resolved_fault_plan().is_none());

        // An explicitly empty plan behaves exactly like no plan.
        let empty = ExperimentConfig {
            fault_plan: Some(FaultPlan::new()),
            ..ExperimentConfig::default()
        };
        assert!(!empty.name().contains("+faults"));
        assert_eq!(empty.resolved_fault_plan(), Some(FaultPlan::new()));

        let seeded = ExperimentConfig {
            fault_seed: Some(7),
            ..ExperimentConfig::default()
        };
        assert!(seeded.name().contains("+faults"));
        let plan = seeded.resolved_fault_plan().expect("seeded plan");
        assert!(!plan.is_empty());
        assert_eq!(plan, seeded.resolved_fault_plan().expect("deterministic"));

        // An explicit plan wins over the seed.
        let both = ExperimentConfig {
            fault_plan: Some(FaultPlan::new().worker_offline(1, 5.0, 10.0)),
            fault_seed: Some(7),
            ..ExperimentConfig::default()
        };
        assert_eq!(
            both.resolved_fault_plan()
                .expect("explicit")
                .windows()
                .len(),
            1
        );
    }

    #[test]
    fn loss_naming_and_resolution() {
        let plain = ExperimentConfig::default();
        assert!(!plain.name().contains("+loss"));
        assert!(!plain.loss_active());
        assert!(plain.resolved_loss_model(None).is_none());

        // An all-zero config is explicitly inert.
        let off = ExperimentConfig {
            loss: Some(LossConfig::off()),
            ..ExperimentConfig::default()
        };
        assert!(!off.name().contains("+loss"));
        assert!(off.resolved_loss_model(None).is_none());

        let lossy = ExperimentConfig {
            loss: Some(LossConfig::gilbert_elliott(9, 0.1)),
            ..ExperimentConfig::default()
        };
        assert!(lossy.name().contains("+loss"));
        assert!(lossy.resolved_loss_model(None).is_some());

        // Scripted loss windows activate the model even with no config.
        let windows = ExperimentConfig {
            fault_plan: Some(FaultPlan::new().link_loss(1, 10.0, 20.0, 0.4)),
            ..ExperimentConfig::default()
        };
        assert!(windows.name().contains("+faults"));
        assert!(windows.name().contains("+loss"));
        let mut model = windows
            .resolved_loss_model(windows.resolved_fault_plan().as_ref())
            .expect("windows force a model");
        assert_eq!(model.loss_prob(1, 15.0), 0.4);
        assert_eq!(model.loss_prob(1, 25.0), 0.0);
    }

    #[test]
    fn aggregator_naming_and_resolution() {
        let flat = ExperimentConfig {
            strategy: Strategy::Rog { threshold: 4 },
            ..ExperimentConfig::default()
        };
        assert_eq!(flat.effective_aggregators(), 0);
        assert!(!flat.name().contains("+agg"));

        let hier = ExperimentConfig {
            strategy: Strategy::Rog { threshold: 4 },
            n_aggregators: 2,
            ..ExperimentConfig::default()
        };
        assert_eq!(hier.effective_aggregators(), 2);
        assert!(hier.name().contains("+agg2"), "{}", hier.name());

        // Baselines move whole models; there is nothing to aggregate.
        let baseline = ExperimentConfig {
            strategy: Strategy::Bsp,
            n_aggregators: 2,
            ..ExperimentConfig::default()
        };
        assert_eq!(baseline.effective_aggregators(), 0);
        assert!(!baseline.name().contains("+agg"));
    }

    #[test]
    fn codec_naming_and_resolution() {
        let rog = ExperimentConfig {
            strategy: Strategy::Rog { threshold: 4 },
            ..ExperimentConfig::default()
        };
        // The one-bit default leaves run names byte-identical to the
        // pre-codec builds.
        assert_eq!(rog.effective_codec(), CodecChoice::OneBit);
        assert!(!rog.name().contains("+onebit"), "{}", rog.name());

        let sparse = ExperimentConfig {
            strategy: Strategy::Rog { threshold: 4 },
            codec: CodecChoice::Sparse,
            ..ExperimentConfig::default()
        };
        assert_eq!(sparse.effective_codec(), CodecChoice::Sparse);
        assert!(sparse.name().contains("+sparse"), "{}", sparse.name());

        let quant = ExperimentConfig {
            strategy: Strategy::RogAdaptive {
                min_threshold: 1,
                max_threshold: 8,
            },
            codec: CodecChoice::Quant { bits: 4 },
            ..ExperimentConfig::default()
        };
        assert!(quant.name().contains("+q4"), "{}", quant.name());

        // Baselines ship whole models: the codec knob is inert there.
        let bsp = ExperimentConfig {
            codec: CodecChoice::Sparse,
            ..ExperimentConfig::default()
        };
        assert_eq!(bsp.effective_codec(), CodecChoice::OneBit);
        assert!(!bsp.name().contains("+sparse"), "{}", bsp.name());
    }

    #[test]
    fn crimp_is_smaller_and_faster() {
        let c = ExperimentConfig {
            workload: WorkloadKind::Crimp,
            ..ExperimentConfig::default()
        };
        assert!(c.compressed_bytes() < 1_000_000);
        assert!(c.base_compute_secs() < 1.71);
    }
}
