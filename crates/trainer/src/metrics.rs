//! Run measurements: checkpoints, time composition, energy, micro-events.

use std::collections::BTreeMap;

use rog_energy::PowerModel;
use rog_sim::{DeviceState, Time, Timeline};
use serde::{Deserialize, Serialize};

/// One evaluation checkpoint (paper: every 50 iterations, averaged over
/// workers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Iteration index (per worker).
    pub iter: u64,
    /// Mean virtual time at which workers reached this iteration.
    pub time: Time,
    /// Mean metric (accuracy % or trajectory error) across workers.
    pub metric: f64,
    /// Cluster energy consumed by then, in joules.
    pub energy_j: f64,
}

/// Average per-iteration time composition (Figs. 1a / 6a / 7a).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeComposition {
    /// Seconds computing (incl. codec).
    pub compute: f64,
    /// Seconds transmitting/receiving.
    pub communicate: f64,
    /// Seconds stalled at gates.
    pub stall: f64,
    /// Seconds powered off / out of range (fault injection; 0 for
    /// fault-free runs).
    pub offline: f64,
}

impl TimeComposition {
    /// Total seconds per iteration.
    pub fn total(&self) -> f64 {
        self.compute + self.communicate + self.stall + self.offline
    }
}

/// One Fig. 8 micro-event sample, recorded at each push of the observed
/// worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroSample {
    /// Virtual time of the push.
    pub time: Time,
    /// The observed worker's instantaneous link bandwidth (bit/s).
    pub bandwidth_bps: f64,
    /// Fraction of this worker's rows transmitted in the push.
    pub transmission_rate: f64,
    /// Iterations the worker lags behind the fastest worker.
    pub staleness: u64,
}

/// Everything measured in one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Display name ("ROG-4 / cruda / outdoor").
    pub name: String,
    /// Metric display name ("accuracy %" / "trajectory error (m)").
    pub metric_name: String,
    /// Whether larger metric values are better.
    pub metric_higher_better: bool,
    /// Evaluation checkpoints in iteration order.
    pub checkpoints: Vec<Checkpoint>,
    /// Average per-iteration time composition.
    pub composition: TimeComposition,
    /// Iterations completed, averaged over workers.
    pub mean_iterations: f64,
    /// Virtual run duration in seconds.
    pub duration: Time,
    /// Total cluster energy in joules (robot workers).
    pub total_energy_j: f64,
    /// Micro-event samples (empty unless `record_micro`).
    pub micro: Vec<MicroSample>,
    /// Useful payload bytes delivered over the channel.
    pub useful_bytes: f64,
    /// Bytes wasted on deadline-cut partial rows and fault-cancelled
    /// transfers.
    pub wasted_bytes: f64,
    /// Bytes of chunks the loss model dropped in flight (0 for
    /// loss-free runs).
    pub lost_bytes: f64,
    /// Bytes of chunks that arrived but failed their CRC check (0 for
    /// loss-free runs).
    pub corrupt_bytes: f64,
    /// Cluster-total seconds spent stalled at gates (summed over
    /// workers, not per-iteration) — the blocking a fault matrix is
    /// judged on.
    pub stall_secs: f64,
    /// Cluster-total seconds workers spent offline (fault injection).
    pub offline_secs: f64,
    /// Maximum pairwise L2 distance between worker models at the end of
    /// the run, relative to the mean model norm — the realized
    /// divergence RSP/SSP bound (0 for BSP-like lockstep, small for
    /// bounded staleness).
    pub final_model_divergence: f64,
}

/// Channel byte accounting handed to [`MetricsCollector::finish`]:
/// each class from the channel's conservation identity
/// `useful + wasted + lost + corrupt == offered`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ByteAccount {
    /// Useful payload bytes delivered (complete, intact chunks).
    pub useful: f64,
    /// Bytes wasted on deadline cuts and cancelled transfers.
    pub wasted: f64,
    /// Bytes dropped in flight by the loss model.
    pub lost: f64,
    /// Bytes delivered but damaged (CRC failure).
    pub corrupt: f64,
}

/// Collects per-worker events during a run and assembles [`RunMetrics`].
#[derive(Debug)]
pub struct MetricsCollector {
    name: String,
    metric_name: String,
    metric_higher_better: bool,
    power: PowerModel,
    /// Checkpoint samples: iter → (time, metric) per worker.
    samples: BTreeMap<u64, Vec<(Time, f64)>>,
    /// Completed iterations per worker.
    iterations: Vec<u64>,
    micro: Vec<MicroSample>,
}

impl MetricsCollector {
    /// Creates a collector for `n_workers`.
    pub fn new(
        name: String,
        metric_name: String,
        metric_higher_better: bool,
        n_workers: usize,
    ) -> Self {
        Self {
            name,
            metric_name,
            metric_higher_better,
            power: PowerModel::jetson_nx(),
            samples: BTreeMap::new(),
            iterations: vec![0; n_workers],
            micro: Vec::new(),
        }
    }

    /// Records a worker's evaluation at a checkpoint.
    pub fn record_eval(&mut self, worker: usize, iter: u64, time: Time, metric: f64) {
        let _ = worker;
        self.samples.entry(iter).or_default().push((time, metric));
    }

    /// Records that a worker completed an iteration.
    pub fn record_iteration(&mut self, worker: usize) {
        self.iterations[worker] += 1;
    }

    /// Records a micro-event sample.
    pub fn record_micro(&mut self, sample: MicroSample) {
        self.micro.push(sample);
    }

    /// Iterations completed so far, summed over workers — the divisor
    /// the per-iteration composition uses.
    pub fn total_iterations(&self) -> u64 {
        self.iterations.iter().sum()
    }

    /// Assembles the final metrics from the closed per-worker timelines.
    ///
    /// `robot_mask[w]` selects which workers count toward the energy
    /// figure (the paper measures robots); `final_model_divergence` is
    /// the engine-computed relative divergence between worker models.
    pub fn finish(
        self,
        timelines: &[Timeline],
        robot_mask: &[bool],
        duration: Time,
        bytes: ByteAccount,
        final_model_divergence: f64,
    ) -> RunMetrics {
        let robot_tls: Vec<Timeline> = timelines
            .iter()
            .zip(robot_mask)
            .filter(|(_, &r)| r)
            .map(|(t, _)| t.clone())
            .collect();
        let total_energy_j = self.power.cluster_energy_until(&robot_tls, duration);

        // Under ASP-like strategies a straggler can drag the *mean* time
        // of an early checkpoint past that of a later one (later
        // checkpoints only average the workers that got there). Energy
        // "consumed by then" is cumulative, so integrate up to the
        // furthest checkpoint time seen so far.
        let mut energy_frontier: Time = 0.0;
        let mut checkpoints: Vec<Checkpoint> = Vec::with_capacity(self.samples.len());
        for (&iter, pts) in &self.samples {
            let n = pts.len() as f64;
            let time = pts.iter().map(|(t, _)| t).sum::<f64>() / n;
            let metric = pts.iter().map(|(_, m)| m).sum::<f64>() / n;
            energy_frontier = energy_frontier.max(time);
            let energy_j = self.power.cluster_energy_until(&robot_tls, energy_frontier);
            checkpoints.push(Checkpoint {
                iter,
                time,
                metric,
                energy_j,
            });
        }

        let total_iters: u64 = self.iterations.iter().sum();
        let mean_iterations = total_iters as f64 / self.iterations.len() as f64;
        let composition = if total_iters == 0 {
            TimeComposition::default()
        } else {
            let sum = |s: DeviceState| {
                (timelines.iter().map(|t| t.time_in(s)).sum::<f64>() / total_iters as f64).max(0.0)
            };
            TimeComposition {
                compute: sum(DeviceState::Compute),
                communicate: sum(DeviceState::Communicate),
                stall: sum(DeviceState::Stall),
                offline: sum(DeviceState::Offline),
            }
        };
        let residency = |s: DeviceState| timelines.iter().map(|t| t.time_in(s)).sum::<f64>();
        let stall_secs = residency(DeviceState::Stall);
        let offline_secs = residency(DeviceState::Offline);

        RunMetrics {
            name: self.name,
            metric_name: self.metric_name,
            metric_higher_better: self.metric_higher_better,
            checkpoints,
            composition,
            mean_iterations,
            duration,
            total_energy_j,
            micro: self.micro,
            useful_bytes: bytes.useful,
            wasted_bytes: bytes.wasted,
            lost_bytes: bytes.lost,
            corrupt_bytes: bytes.corrupt,
            stall_secs,
            offline_secs,
            final_model_divergence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector() -> MetricsCollector {
        MetricsCollector::new("test".into(), "accuracy %".into(), true, 2)
    }

    fn timeline(compute: f64, stall: f64) -> Timeline {
        let mut tl = Timeline::new();
        tl.set_state(0.0, DeviceState::Compute);
        tl.set_state(compute, DeviceState::Stall);
        tl.close(compute + stall);
        tl
    }

    #[test]
    fn checkpoints_average_across_workers() {
        let mut c = collector();
        c.record_eval(0, 50, 10.0, 60.0);
        c.record_eval(1, 50, 12.0, 64.0);
        c.record_iteration(0);
        c.record_iteration(1);
        let tls = [timeline(5.0, 1.0), timeline(5.0, 3.0)];
        let m = c.finish(&tls, &[true, true], 20.0, ByteAccount::default(), 0.0);
        assert_eq!(m.checkpoints.len(), 1);
        let ck = m.checkpoints[0];
        assert_eq!(ck.iter, 50);
        assert!((ck.time - 11.0).abs() < 1e-9);
        assert!((ck.metric - 62.0).abs() < 1e-9);
        assert!(ck.energy_j > 0.0);
    }

    #[test]
    fn composition_divides_by_total_iterations() {
        let mut c = collector();
        for _ in 0..5 {
            c.record_iteration(0);
            c.record_iteration(1);
        }
        let tls = [timeline(10.0, 2.0), timeline(10.0, 4.0)];
        let m = c.finish(&tls, &[true, true], 20.0, ByteAccount::default(), 0.0);
        // 20 s compute over 10 iterations → 2 s/iter.
        assert!((m.composition.compute - 2.0).abs() < 1e-9);
        assert!((m.composition.stall - 0.6).abs() < 1e-9);
        assert_eq!(m.mean_iterations, 5.0);
    }

    #[test]
    fn energy_counts_only_robots() {
        let mut c = collector();
        c.record_iteration(0);
        let tls = [timeline(10.0, 0.0), timeline(10.0, 0.0)];
        let both = c.finish(&tls, &[true, true], 10.0, ByteAccount::default(), 0.0);
        let mut c = collector();
        c.record_iteration(0);
        let one = c.finish(&tls, &[true, false], 10.0, ByteAccount::default(), 0.0);
        assert!((both.total_energy_j - 2.0 * one.total_energy_j).abs() < 1e-6);
    }

    #[test]
    fn empty_run_has_zero_composition() {
        let c = collector();
        let tls = [Timeline::new(), Timeline::new()];
        let m = c.finish(&tls, &[true, true], 0.0, ByteAccount::default(), 0.0);
        assert_eq!(m.composition.total(), 0.0);
        assert!(m.checkpoints.is_empty());
    }
}
