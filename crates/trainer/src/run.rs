//! The run API: a builder ([`RunOptions`]) over
//! [`ExperimentConfig`] and a single entry point ([`run_with`])
//! returning a [`RunOutcome`].
//!
//! Historically experiments were launched through two ad-hoc methods,
//! `ExperimentConfig::run()` and `run_traced()`, whose return types
//! diverged as features grew. This module replaces both: every launch
//! path — benches, `rogctl`, examples, tests — goes through
//! `cfg.options()…run()` (or the free function [`run_with`]), and the
//! outcome always carries the metrics plus an optional journal.
//!
//! The builder only *wraps* the config; running with default options
//! is bit-identical to the old `run()` path.

use crate::config::ExperimentConfig;
use crate::metrics::RunMetrics;
use rog_obs::Journal;

/// Engine-level scale counters, reported on every [`RunOutcome`].
///
/// These are *measurements of the simulation machinery itself* —
/// deterministic across hosts and thread counts, and deliberately kept
/// out of [`RunMetrics`] so the serialized metrics stay byte-identical
/// to earlier releases. The model-granularity baselines report all
/// zeros; only the ROG row engine instruments them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Events dispatched by the engine's event loop (flow completions,
    /// fault edges, queue pops) — a wall-clock-free progress measure.
    pub sim_events: u64,
    /// Events ever pushed onto the simulation queue.
    pub queue_scheduled: u64,
    /// Peak estimated heap footprint of the sharded version store, in
    /// bytes, sampled after every push.
    pub peak_version_bytes: u64,
    /// Aggregator merge windows flushed upstream (0 in flat topology).
    pub agg_flushes: u64,
    /// Distinct rows forwarded upstream across all flushes.
    pub agg_upstream_rows: u64,
    /// Raw member rows absorbed into merge windows before dedup.
    pub agg_raw_rows: u64,
    /// Member pulls fanned out through aggregators.
    pub agg_pulls: u64,
}

/// Everything a run produces: the measurement bundle plus, when
/// tracing was requested, the event journal.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Checkpoints, time composition, byte/energy accounting.
    pub metrics: RunMetrics,
    /// The event journal — `Some` iff the run was traced.
    pub journal: Option<Journal>,
    /// Engine-level scale counters (always present; zero for the
    /// model-granularity baselines).
    pub stats: FleetStats,
}

/// Builder describing how to launch an experiment.
///
/// Construct via [`ExperimentConfig::options`] or [`RunOptions::new`],
/// tweak with the chained setters, then call [`RunOptions::run`].
///
/// ```
/// use rog_trainer::{ExperimentConfig, Strategy};
///
/// let cfg = ExperimentConfig {
///     strategy: Strategy::Rog { threshold: 4 },
///     n_workers: 2,
///     duration_secs: 60.0,
///     eval_every: 10,
///     ..ExperimentConfig::default()
/// };
/// let outcome = cfg.options().traced(true).run();
/// assert!(outcome.journal.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct RunOptions {
    cfg: ExperimentConfig,
    traced: bool,
    transport: TransportChoice,
}

/// Which transport plane a run executes on.
///
/// The default, [`TransportChoice::Sim`], is the deterministic
/// discrete-event simulation — bit-reproducible, no sockets. The two
/// socket variants launch one role of a live multi-process cluster
/// over real UDP/TCP (see [`crate::live`]); they are inherently
/// non-deterministic and reconciled against sim runs statistically.
#[derive(Debug, Clone, Default)]
pub enum TransportChoice {
    /// In-process deterministic simulation (the default).
    #[default]
    Sim,
    /// Live parameter server: listen for workers, coordinate the run.
    Serve(crate::live::ServeOptions),
    /// Live worker: join a server and train for real.
    Join(crate::live::JoinOptions),
}

impl RunOptions {
    /// Wraps a config with default launch options (`traced` follows
    /// the config's own `trace` flag).
    pub fn new(cfg: ExperimentConfig) -> Self {
        let traced = cfg.trace;
        Self {
            cfg,
            traced,
            transport: TransportChoice::Sim,
        }
    }

    /// Requests (or suppresses) the event journal in the outcome.
    pub fn traced(mut self, traced: bool) -> Self {
        self.traced = traced;
        self
    }

    /// Selects the transport plane (default: the deterministic sim).
    pub fn transport(mut self, transport: TransportChoice) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the number of parameter-server shards (ROG only; 1 is the
    /// single-server engine, bit-identical to pre-shard behavior).
    pub fn shards(mut self, n_shards: usize) -> Self {
        self.cfg.n_shards = n_shards;
        self
    }

    /// Sets the fleet size (number of workers).
    pub fn workers(mut self, n_workers: usize) -> Self {
        self.cfg.n_workers = n_workers;
        self
    }

    /// Sets the number of edge aggregators between workers and the
    /// parameter-server shards (ROG only; 0 is the flat topology,
    /// bit-identical to pre-aggregator behavior).
    pub fn aggregators(mut self, n_aggregators: usize) -> Self {
        self.cfg.n_aggregators = n_aggregators;
        self
    }

    /// Selects the row codec for push/pull payloads (ROG only;
    /// [`rog_compress::CodecChoice::OneBit`], the default, is
    /// bit-identical to pre-codec behavior).
    pub fn codec(mut self, codec: rog_compress::CodecChoice) -> Self {
        self.cfg.codec = codec;
        self
    }

    /// Overrides the experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Overrides the simulated duration (seconds).
    pub fn duration_secs(mut self, secs: f64) -> Self {
        self.cfg.duration_secs = secs;
        self
    }

    /// The wrapped config.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// Mutable access to the wrapped config, for fields without a
    /// dedicated setter.
    pub fn config_mut(&mut self) -> &mut ExperimentConfig {
        &mut self.cfg
    }

    /// Runs the experiment. Equivalent to [`run_with`]`(&self)`.
    ///
    /// # Panics
    ///
    /// Panics if a socket transport was selected and the live run
    /// fails (bad address, config mismatch, join timeout); use
    /// [`run_with_result`] to handle those errors.
    pub fn run(&self) -> RunOutcome {
        run_with(self)
    }

    /// Like [`RunOptions::run`] but surfaces live-transport failures
    /// as `Err` instead of panicking. Sim runs cannot fail.
    pub fn run_result(&self) -> Result<RunOutcome, String> {
        run_with_result(self)
    }
}

/// Runs an experiment described by `options` and returns its
/// [`RunOutcome`].
///
/// This is the single launch path: an untraced run executes the exact
/// engine the deprecated `ExperimentConfig::run()` invoked, and a
/// traced run the exact `run_traced()` path, so outcomes are
/// bit-identical to the legacy API.
pub fn run_with(options: &RunOptions) -> RunOutcome {
    run_with_result(options).unwrap_or_else(|e| panic!("live run failed: {e}"))
}

/// [`run_with`] with live-transport errors surfaced as `Err`. The sim
/// path is infallible; only `Serve`/`Join` can return `Err`.
pub fn run_with_result(options: &RunOptions) -> Result<RunOutcome, String> {
    match &options.transport {
        TransportChoice::Sim => Ok(run_sim(options)),
        TransportChoice::Serve(sopts) => {
            let cfg = ExperimentConfig {
                trace: options.traced,
                ..options.cfg.clone()
            };
            crate::live::serve(&cfg, sopts)
        }
        TransportChoice::Join(jopts) => {
            let cfg = ExperimentConfig {
                trace: options.traced,
                ..options.cfg.clone()
            };
            crate::live::join(&cfg, jopts)
        }
    }
}

fn run_sim(options: &RunOptions) -> RunOutcome {
    if options.traced {
        let cfg = ExperimentConfig {
            trace: true,
            ..options.cfg.clone()
        };
        let (metrics, journal, stats) = crate::engine::run_full(&cfg);
        RunOutcome {
            metrics,
            journal: Some(journal),
            stats,
        }
    } else {
        let cfg = ExperimentConfig {
            trace: false,
            ..options.cfg.clone()
        };
        let (metrics, _, stats) = crate::engine::run_full(&cfg);
        RunOutcome {
            metrics,
            journal: None,
            stats,
        }
    }
}

/// Compiled only under `--cfg rog_exercise_deprecated`: keeps the
/// deprecated `run()`/`run_traced()` shims themselves lint-clean (CI
/// runs clippy once with the cfg so the shim path stays `-D warnings`
/// compatible without every normal build tripping over the deprecation).
#[cfg(all(test, rog_exercise_deprecated))]
mod shim_exercise {
    use super::*;
    use crate::config::Strategy;

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_run() {
        let cfg = ExperimentConfig {
            strategy: Strategy::Rog { threshold: 4 },
            model_scale: crate::config::ModelScale::Small,
            n_workers: 2,
            duration_secs: 30.0,
            eval_every: 5,
            ..ExperimentConfig::default()
        };
        let metrics = cfg.run();
        let (traced_metrics, journal) = cfg.run_traced();
        assert_eq!(format!("{metrics:?}"), format!("{traced_metrics:?}"));
        assert!(journal.recorded() > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            strategy: Strategy::Rog { threshold: 4 },
            model_scale: crate::config::ModelScale::Small,
            n_workers: 2,
            duration_secs: 60.0,
            eval_every: 5,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn untraced_outcome_has_no_journal() {
        let out = tiny().options().run();
        assert!(out.journal.is_none());
        assert!(!out.metrics.checkpoints.is_empty());
    }

    #[test]
    fn traced_outcome_carries_a_journal() {
        let out = tiny().options().traced(true).run();
        let journal = out.journal.expect("traced run must return a journal");
        assert!(journal.recorded() > 0);
    }

    #[test]
    #[allow(deprecated)]
    fn run_with_matches_the_legacy_entry_points() {
        let cfg = tiny();
        let legacy = cfg.run();
        let new = cfg.options().run();
        assert_eq!(format!("{legacy:?}"), format!("{:?}", new.metrics));

        let (legacy_m, legacy_j) = cfg.run_traced();
        let traced = cfg.options().traced(true).run();
        assert_eq!(format!("{legacy_m:?}"), format!("{:?}", traced.metrics));
        assert_eq!(legacy_j.to_jsonl(), traced.journal.unwrap().to_jsonl());
    }

    #[test]
    fn builder_setters_reach_the_config() {
        let opts = tiny()
            .options()
            .shards(4)
            .seed(7)
            .duration_secs(12.0)
            .workers(6)
            .aggregators(3)
            .codec(rog_compress::CodecChoice::Sparse);
        assert_eq!(opts.config().n_shards, 4);
        assert_eq!(opts.config().seed, 7);
        assert!((opts.config().duration_secs - 12.0).abs() < 1e-12);
        assert_eq!(opts.config().n_workers, 6);
        assert_eq!(opts.config().n_aggregators, 3);
        assert_eq!(opts.config().codec, rog_compress::CodecChoice::Sparse);
    }

    #[test]
    fn flat_rog_run_reports_fleet_stats_without_aggregator_traffic() {
        let out = tiny().options().run();
        assert!(out.stats.sim_events > 0);
        assert!(out.stats.queue_scheduled > 0);
        assert!(out.stats.peak_version_bytes > 0);
        assert_eq!(out.stats.agg_flushes, 0);
        assert_eq!(out.stats.agg_raw_rows, 0);
        assert_eq!(out.stats.agg_pulls, 0);
    }

    #[test]
    fn hierarchical_run_reports_aggregator_traffic() {
        let out = tiny().options().aggregators(1).run();
        assert!(out.stats.agg_flushes > 0);
        assert!(out.stats.agg_raw_rows >= out.stats.agg_upstream_rows);
        assert!(out.stats.agg_pulls > 0);
    }
}
