//! End-to-end distributed-training harness.
//!
//! This crate assembles everything: it builds a simulated robot cluster
//! (workload shards, per-device compute model, shared wireless channel),
//! runs a synchronization strategy over it with an event-driven engine,
//! and records the measurements the paper reports — metric-vs-iteration
//! (statistical efficiency), metric-vs-wall-clock, per-iteration time
//! composition (compute / communicate / stall) and energy.
//!
//! Two engines share the substrate:
//!
//! * [`engine::model`] drives the model-granularity baselines (BSP, SSP,
//!   FLOWN): whole-model pushes and pulls, SSP gates with per-worker
//!   thresholds from a [`rog_sync::ThresholdPolicy`].
//! * [`engine::row`] drives ROG: per-row speculative transmission with
//!   MTA continuation, the shared MTA-time budget, importance-ordered
//!   rows and the RSP gate, via [`rog_core::RogWorker`] /
//!   [`rog_core::RogServer`].
//!
//! "Tens of lines of code to apply" (paper Sec. I): running a full
//! experiment is a config plus one call:
//!
//! ```
//! use rog_trainer::{Environment, ExperimentConfig, ModelScale, Strategy, WorkloadKind};
//!
//! let outcome = ExperimentConfig {
//!     workload: WorkloadKind::Cruda,
//!     environment: Environment::Stable,
//!     strategy: Strategy::Rog { threshold: 4 },
//!     model_scale: ModelScale::Small,
//!     n_workers: 2,
//!     duration_secs: 60.0,
//!     eval_every: 10,
//!     ..ExperimentConfig::default()
//! }
//! .options()
//! .run();
//! assert!(!outcome.metrics.checkpoints.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
pub mod compute;
mod config;
pub mod engine;
pub mod live;
mod metrics;
pub mod report;
mod run;
pub mod stats;

pub use cluster::{BuiltWorkload, Cluster, Device, DeviceKind};
pub use config::{Environment, ExperimentConfig, ModelScale, Strategy, WorkloadKind};
pub use live::{check_socket_compatible, JoinOptions, ServeOptions};
pub use metrics::{ByteAccount, Checkpoint, MicroSample, RunMetrics, TimeComposition};
pub use run::{run_with, run_with_result, FleetStats, RunOptions, RunOutcome, TransportChoice};
