//! Derived comparisons: metric-at-time, energy-to-reach, summary tables,
//! and JSON persistence of run metrics (the machine-readable artifact
//! the `results/` CSVs are derived from).

use crate::metrics::{Checkpoint, RunMetrics};

/// Serializes runs to pretty JSON.
///
/// # Panics
///
/// Panics only if serialization fails, which cannot happen for these
/// plain data types.
pub fn runs_to_json(runs: &[RunMetrics]) -> String {
    serde_json::to_string_pretty(runs).expect("RunMetrics serializes")
}

/// Parses runs back from JSON.
///
/// # Errors
///
/// Returns the underlying `serde_json` error on malformed input.
pub fn runs_from_json(json: &str) -> Result<Vec<RunMetrics>, serde_json::Error> {
    serde_json::from_str(json)
}

/// Linearly interpolated metric at wall-clock time `t` (clamped to the
/// observed range). Returns `None` if the run has no checkpoints.
pub fn metric_at_time(run: &RunMetrics, t: f64) -> Option<f64> {
    interpolate(&run.checkpoints, |c| c.time, |c| c.metric, t)
}

/// Linearly interpolated metric at iteration `iter`.
pub fn metric_at_iteration(run: &RunMetrics, iter: f64) -> Option<f64> {
    interpolate(&run.checkpoints, |c| c.iter as f64, |c| c.metric, iter)
}

/// Energy (J) the run needed to first reach `target` metric, linearly
/// interpolated between checkpoints. `None` if the target was never
/// reached.
pub fn energy_to_reach(run: &RunMetrics, target: f64) -> Option<f64> {
    first_crossing(
        &run.checkpoints,
        |c| c.metric,
        |c| c.energy_j,
        target,
        run.metric_higher_better,
    )
}

/// Wall-clock seconds to first reach `target` metric.
pub fn time_to_reach(run: &RunMetrics, target: f64) -> Option<f64> {
    first_crossing(
        &run.checkpoints,
        |c| c.metric,
        |c| c.time,
        target,
        run.metric_higher_better,
    )
}

fn interpolate(
    cks: &[Checkpoint],
    x: impl Fn(&Checkpoint) -> f64,
    y: impl Fn(&Checkpoint) -> f64,
    at: f64,
) -> Option<f64> {
    if cks.is_empty() {
        return None;
    }
    if at <= x(&cks[0]) {
        return Some(y(&cks[0]));
    }
    for w in cks.windows(2) {
        let (x0, x1) = (x(&w[0]), x(&w[1]));
        if at <= x1 {
            let f = if x1 > x0 { (at - x0) / (x1 - x0) } else { 0.0 };
            return Some(y(&w[0]) + f * (y(&w[1]) - y(&w[0])));
        }
    }
    Some(y(cks.last().expect("non-empty")))
}

fn first_crossing(
    cks: &[Checkpoint],
    metric: impl Fn(&Checkpoint) -> f64,
    cost: impl Fn(&Checkpoint) -> f64,
    target: f64,
    higher_better: bool,
) -> Option<f64> {
    let reached = |m: f64| {
        if higher_better {
            m >= target
        } else {
            m <= target
        }
    };
    if cks.is_empty() {
        return None;
    }
    if reached(metric(&cks[0])) {
        return Some(cost(&cks[0]));
    }
    for w in cks.windows(2) {
        let (m0, m1) = (metric(&w[0]), metric(&w[1]));
        if reached(m1) {
            let f = if (m1 - m0).abs() > 1e-12 {
                ((target - m0) / (m1 - m0)).clamp(0.0, 1.0)
            } else {
                1.0
            };
            return Some(cost(&w[0]) + f * (cost(&w[1]) - cost(&w[0])));
        }
    }
    None
}

/// Formats a per-run time-composition table (Figs. 1a / 6a / 7a).
pub fn composition_table(runs: &[RunMetrics]) -> String {
    let mut out =
        String::from("system        compute(s)  comm(s)  stall(s)  offline(s)  total(s)  iters\n");
    for r in runs {
        let c = r.composition;
        out.push_str(&format!(
            "{:<12}  {:>10.2}  {:>7.2}  {:>8.2}  {:>10.2}  {:>8.2}  {:>5.0}\n",
            r.name.split(" / ").next().unwrap_or(&r.name),
            c.compute,
            c.communicate,
            c.stall,
            c.offline,
            c.total(),
            r.mean_iterations,
        ));
    }
    out
}

/// Formats checkpoints as CSV (`system,iter,time_s,metric,energy_j`).
pub fn checkpoints_csv(runs: &[RunMetrics]) -> String {
    let mut out = String::from("system,iter,time_s,metric,energy_j\n");
    for r in runs {
        let name = r.name.split(" / ").next().unwrap_or(&r.name).to_owned();
        for c in &r.checkpoints {
            out.push_str(&format!(
                "{},{},{:.1},{:.4},{:.0}\n",
                name, c.iter, c.time, c.metric, c.energy_j
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TimeComposition;

    fn run_with(cks: Vec<Checkpoint>, higher: bool) -> RunMetrics {
        RunMetrics {
            name: "X / cruda / outdoor".into(),
            metric_name: "accuracy %".into(),
            metric_higher_better: higher,
            checkpoints: cks,
            composition: TimeComposition {
                compute: 2.0,
                communicate: 1.0,
                stall: 0.5,
                offline: 0.0,
            },
            mean_iterations: 100.0,
            duration: 1000.0,
            total_energy_j: 5000.0,
            micro: vec![],
            useful_bytes: 0.0,
            wasted_bytes: 0.0,
            lost_bytes: 0.0,
            corrupt_bytes: 0.0,
            stall_secs: 50.0,
            offline_secs: 0.0,
            final_model_divergence: 0.0,
        }
    }

    fn ck(iter: u64, time: f64, metric: f64, energy: f64) -> Checkpoint {
        Checkpoint {
            iter,
            time,
            metric,
            energy_j: energy,
        }
    }

    #[test]
    fn metric_interpolates_between_checkpoints() {
        let r = run_with(
            vec![ck(50, 100.0, 60.0, 1000.0), ck(100, 200.0, 70.0, 2000.0)],
            true,
        );
        assert_eq!(metric_at_time(&r, 150.0), Some(65.0));
        assert_eq!(metric_at_time(&r, 50.0), Some(60.0)); // clamp below
        assert_eq!(metric_at_time(&r, 500.0), Some(70.0)); // clamp above
        assert_eq!(metric_at_iteration(&r, 75.0), Some(65.0));
    }

    #[test]
    fn energy_to_reach_interpolates_crossing() {
        let r = run_with(
            vec![ck(50, 100.0, 60.0, 1000.0), ck(100, 200.0, 70.0, 2000.0)],
            true,
        );
        assert_eq!(energy_to_reach(&r, 65.0), Some(1500.0));
        assert_eq!(energy_to_reach(&r, 60.0), Some(1000.0));
        assert_eq!(energy_to_reach(&r, 80.0), None);
    }

    #[test]
    fn lower_is_better_metrics_cross_downward() {
        let r = run_with(
            vec![ck(50, 100.0, 2.0, 1000.0), ck(100, 200.0, 1.0, 2000.0)],
            false,
        );
        assert_eq!(energy_to_reach(&r, 1.5), Some(1500.0));
        assert_eq!(time_to_reach(&r, 1.0), Some(200.0));
        assert_eq!(energy_to_reach(&r, 0.5), None);
    }

    #[test]
    fn tables_render_rows() {
        let r = run_with(vec![ck(50, 100.0, 60.0, 1000.0)], true);
        let t = composition_table(std::slice::from_ref(&r));
        assert!(t.contains('X'));
        let csv = checkpoints_csv(&[r]);
        assert!(csv.lines().count() == 2);
        assert!(csv.contains("X,50,100.0"));
    }

    #[test]
    fn json_round_trip_preserves_runs() {
        let r = run_with(vec![ck(50, 100.0, 60.0, 1000.0)], true);
        let json = runs_to_json(std::slice::from_ref(&r));
        let back = runs_from_json(&json).expect("parses");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].checkpoints, r.checkpoints);
        assert_eq!(back[0].name, r.name);
        assert_eq!(back[0].composition, r.composition);
        assert!(runs_from_json("{broken").is_err());
    }

    #[test]
    fn empty_run_yields_none() {
        let r = run_with(vec![], true);
        assert_eq!(metric_at_time(&r, 10.0), None);
        assert_eq!(energy_to_reach(&r, 1.0), None);
    }
}
