//! Multi-seed aggregation: mean ± std over repeated runs.
//!
//! The paper reports single runs per configuration (a real robot team is
//! expensive); the simulator is not, so headline comparisons can carry
//! confidence. Every run is deterministic per seed — a sweep is exactly
//! reproducible.

use crate::config::ExperimentConfig;
use crate::metrics::RunMetrics;
use crate::report;

/// Sample mean and (population) standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Number of samples.
    pub n: usize,
}

impl Aggregate {
    /// Aggregates an iterator of samples (NaNs are skipped).
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let xs: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        let n = xs.len();
        if n == 0 {
            return Self {
                mean: f64::NAN,
                std: f64::NAN,
                n: 0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Self {
            mean,
            std: var.sqrt(),
            n,
        }
    }
}

impl std::fmt::Display for Aggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2} (n={})", self.mean, self.std, self.n)
    }
}

/// Runs the same config under each seed (sequentially; each run is
/// already deterministic).
pub fn run_seeds(cfg: &ExperimentConfig, seeds: &[u64]) -> Vec<RunMetrics> {
    seeds
        .iter()
        .map(|&seed| {
            ExperimentConfig {
                seed,
                ..cfg.clone()
            }
            .options()
            .run()
            .metrics
        })
        .collect()
}

/// Mean ± std of the metric at wall-clock time `t` across runs.
pub fn metric_at_time(runs: &[RunMetrics], t: f64) -> Aggregate {
    Aggregate::of(runs.iter().filter_map(|r| report::metric_at_time(r, t)))
}

/// Mean ± std of completed iterations per worker.
pub fn iterations(runs: &[RunMetrics]) -> Aggregate {
    Aggregate::of(runs.iter().map(|r| r.mean_iterations))
}

/// Mean ± std of per-iteration stall seconds.
pub fn stall(runs: &[RunMetrics]) -> Aggregate {
    Aggregate::of(runs.iter().map(|r| r.composition.stall))
}

/// Mean ± std of energy (J) to reach `target`; runs that never reach it
/// are skipped (their count shows in `n`).
pub fn energy_to_reach(runs: &[RunMetrics], target: f64) -> Aggregate {
    Aggregate::of(
        runs.iter()
            .filter_map(|r| report::energy_to_reach(r, target)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Environment, ModelScale, Strategy, WorkloadKind};

    #[test]
    fn aggregate_math() {
        let a = Aggregate::of([1.0, 2.0, 3.0]);
        assert_eq!(a.n, 3);
        assert!((a.mean - 2.0).abs() < 1e-12);
        assert!((a.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(format!("{a}"), "2.00 ± 0.82 (n=3)");
    }

    #[test]
    fn aggregate_skips_nan_and_handles_empty() {
        let a = Aggregate::of([1.0, f64::NAN, 3.0]);
        assert_eq!(a.n, 2);
        assert_eq!(a.mean, 2.0);
        let e = Aggregate::of(std::iter::empty());
        assert_eq!(e.n, 0);
        assert!(e.mean.is_nan());
    }

    #[test]
    fn seed_sweep_produces_distinct_deterministic_runs() {
        let cfg = ExperimentConfig {
            workload: WorkloadKind::Cruda,
            environment: Environment::Stable,
            strategy: Strategy::Rog { threshold: 4 },
            model_scale: ModelScale::Small,
            n_workers: 2,
            duration_secs: 60.0,
            eval_every: 5,
            ..ExperimentConfig::default()
        };
        let runs = run_seeds(&cfg, &[1, 2]);
        assert_eq!(runs.len(), 2);
        assert_ne!(runs[0].checkpoints, runs[1].checkpoints);
        let again = run_seeds(&cfg, &[1]);
        assert_eq!(runs[0].checkpoints, again[0].checkpoints);
        let it = iterations(&runs);
        assert_eq!(it.n, 2);
        assert!(it.mean > 0.0);
    }
}
