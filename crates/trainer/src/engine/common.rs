//! Plumbing shared by the model- and row-granularity engines.

use rog_fault::{FaultClock, FaultEvent};
use rog_models::{GradSet, Mlp, Workload};
use rog_obs::{obs, EventKind, Journal};
use rog_sim::{DeviceState, EventQueue, Time, Timeline};
use rog_tensor::rng::DetRng;

use crate::cluster::{Cluster, DeviceKind};
use crate::compute::{run_job, run_job_into, ComputePlane, DrawJob};
use crate::config::ExperimentConfig;
use crate::metrics::{ByteAccount, MetricsCollector, RunMetrics};

/// Queue events (flow events come from the channel directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// A worker finished computing gradients for its current iteration.
    ComputeDone(usize),
    /// A reliable-class retransmit backoff expired for a worker: the
    /// engine should resend whatever chunks are still outstanding on
    /// that worker's transfer.
    NetRetry(usize),
}

/// Substrate shared by both engines.
#[derive(Debug)]
pub struct EngineCtx {
    /// The run configuration.
    pub cfg: ExperimentConfig,
    /// The simulated cluster (devices, channel, workload).
    pub cluster: Cluster,
    /// Deterministic event queue.
    pub queue: EventQueue<Ev>,
    /// Per-worker state timelines.
    pub timelines: Vec<Timeline>,
    /// Metrics collector.
    pub collector: MetricsCollector,
    /// Thread pool for batched gradient draws.
    pub plane: ComputePlane,
    /// Scheduled fault injections ([`crate::config::ExperimentConfig::resolved_fault_plan`]);
    /// empty when the run has no plan, which costs nothing on the hot
    /// path (`next_fault_time` is `None` and the event loop never sees
    /// a fault).
    pub faults: FaultClock,
    /// Workers currently powered off / out of range.
    pub offline: Vec<bool>,
    /// Workers whose link is blacked out (device up, radio dead).
    pub link_down: Vec<bool>,
    /// Per-shard parameter-server outage flags (checkpoint/restart).
    /// Length is [`ExperimentConfig::effective_shards`]; unsharded runs
    /// have a single entry.
    pub server_down: Vec<bool>,
    /// Deterministic event journal ([`rog_obs`]); disabled unless
    /// `cfg.trace` is set, and compiled out under the `obs-off`
    /// feature. Recording never feeds back into the simulation.
    pub journal: Journal,
    /// Recycled gradient-set buffers (all shaped like the model), so
    /// steady-state draws allocate nothing. Zeroed contents never affect
    /// results: every draw overwrites its buffer from zero.
    grad_pool: Vec<GradSet>,
    batch_rngs: Vec<DetRng>,
    jitter_rngs: Vec<DetRng>,
}

impl EngineCtx {
    /// Builds the substrate for a config.
    pub fn new(cfg: &ExperimentConfig) -> Self {
        let mut cluster = Cluster::build(cfg);
        let root = DetRng::new(cfg.seed);
        let n = cfg.n_workers;
        let collector = MetricsCollector::new(
            cfg.name(),
            cluster.workload.metric_name().to_owned(),
            cluster.workload.metric_higher_better(),
            n,
        );
        let plan = cfg.resolved_fault_plan();
        if let Some(model) = cfg.resolved_loss_model(plan.as_ref()) {
            cluster.transport.set_loss_model(Some(model));
        }
        let shards = cfg.effective_shards();
        let faults = match plan {
            Some(plan) => {
                if let Some(max_w) = plan.max_worker() {
                    assert!(
                        max_w < n,
                        "fault plan targets worker {max_w} but the run has {n} workers"
                    );
                }
                if let Some(max_s) = plan.max_shard() {
                    assert!(
                        max_s < shards,
                        "fault plan targets shard {max_s} but the run has {shards} shards"
                    );
                }
                if let Some(max_a) = plan.max_aggregator() {
                    let aggs = cfg.effective_aggregators();
                    assert!(
                        max_a < aggs,
                        "fault plan targets aggregator {max_a} but the run has {aggs} aggregators"
                    );
                }
                plan.schedule()
            }
            None => FaultClock::default(),
        };
        let mut journal = Journal::new(cfg.trace);
        obs!(
            journal,
            0.0,
            EventKind::Meta {
                name: cfg.name(),
                seed: cfg.seed,
            }
        );
        Self {
            cfg: cfg.clone(),
            cluster,
            // A fleet-scale run schedules O(workers) compute timers and
            // retry backoffs up front; sizing the heap once avoids its
            // cold-start doubling reallocations. Capacity never affects
            // pop order, so this is behavior-neutral.
            queue: EventQueue::with_capacity(2 * n + 16),
            timelines: vec![Timeline::new(); n],
            collector,
            plane: ComputePlane::auto(),
            faults,
            offline: vec![false; n],
            link_down: vec![false; n],
            server_down: vec![false; shards],
            journal,
            grad_pool: Vec::new(),
            batch_rngs: (0..n).map(|w| root.fork(0x100 + w as u64)).collect(),
            jitter_rngs: (0..n).map(|w| root.fork(0x200 + w as u64)).collect(),
        }
    }

    /// The virtual time budget.
    pub fn duration(&self) -> Time {
        self.cfg.duration_secs
    }

    /// Virtual time of the next scheduled fault, if any. `None` for a
    /// fault-free run, keeping the event-loop horizon untouched.
    pub fn next_fault_time(&self) -> Option<Time> {
        self.faults.next_time()
    }

    /// Consumes every fault due at or before `now`, in schedule order
    /// (recoveries before failures at the same instant).
    pub fn pop_due_faults(&mut self, now: Time) -> Vec<FaultEvent> {
        self.faults.pop_due(now)
    }

    /// Whether any parameter-server shard is currently down.
    pub fn any_server_down(&self) -> bool {
        self.server_down.iter().any(|&d| d)
    }

    /// Draws this iteration's gradient-computation duration for a worker
    /// (base compute scaled by batch, plus codec cost, plus ~2 % jitter).
    pub fn compute_secs(&mut self, worker: usize) -> Time {
        let base = self.cfg.base_compute_secs() * self.cfg.batch_scale;
        let jitter = self.jitter_rngs[worker].normal_with(0.0, 0.02 * base);
        (base + self.cfg.codec_secs() + jitter).max(0.05)
    }

    /// Marks a worker's state at time `t`, journalling the transition
    /// when the state actually changed (so a journal replay can
    /// reconstruct the timeline span-for-span).
    pub fn set_state(&mut self, worker: usize, t: Time, state: DeviceState) {
        if self.timelines[worker].set_state(t, state) {
            obs!(
                self.journal,
                t,
                EventKind::State {
                    w: worker as u32,
                    state: state.name(),
                }
            );
        }
    }

    /// Schedules the start of a worker's next compute phase at `t`.
    pub fn start_compute(&mut self, worker: usize, t: Time) {
        self.set_state(worker, t, DeviceState::Compute);
        let dt = self.compute_secs(worker);
        self.queue.push(t + dt, Ev::ComputeDone(worker));
    }

    /// Samples the batch indices for a worker's next gradient draw.
    ///
    /// Consumes exactly the RNG the serial engine would consume at event
    /// time, so prefetching a sample early cannot perturb any stream
    /// (each worker has its own independent stream).
    pub fn sample_batch_idxs(&mut self, worker: usize) -> Vec<usize> {
        let shard = &self.cluster.workload.shards()[worker];
        let batch = self.cluster.devices[worker].batch;
        shard.sample_batch(batch, &mut self.batch_rngs[worker])
    }

    /// Computes gradients for pre-sampled batch indices on `model`.
    ///
    /// Returns the gradient set and its global mean absolute value.
    pub fn grads_for(&self, worker: usize, model: &Mlp, idxs: &[usize]) -> (GradSet, f32) {
        run_job(model, &self.cluster.workload.shards()[worker], idxs)
    }

    /// Like [`EngineCtx::grads_for`], but draws the gradient buffer from
    /// the recycle pool instead of allocating one.
    pub fn grads_for_pooled(
        &mut self,
        worker: usize,
        model: &Mlp,
        idxs: &[usize],
    ) -> (GradSet, f32) {
        let mut grads = self.take_grad_buf(|| model.zero_grads());
        let shard = &self.cluster.workload.shards()[worker];
        let mean_abs = run_job_into(model, shard, idxs, &mut grads);
        (grads, mean_abs)
    }

    /// Pops a recycled gradient buffer, or builds a fresh one.
    pub fn take_grad_buf(&mut self, fresh: impl FnOnce() -> GradSet) -> GradSet {
        self.grad_pool.pop().unwrap_or_else(fresh)
    }

    /// Returns a consumed gradient set to the recycle pool.
    pub fn recycle_grads(&mut self, grads: GradSet) {
        self.grad_pool.push(grads);
    }

    /// Computes real gradients for a worker's batch on `model`.
    ///
    /// Returns the gradient set and its global mean absolute value.
    pub fn draw_grads(&mut self, worker: usize, model: &Mlp) -> (GradSet, f32) {
        let idxs = self.sample_batch_idxs(worker);
        self.grads_for(worker, model, &idxs)
    }

    /// Runs a batch of `(worker, model, idxs)` draws on the compute
    /// plane, returning results in job order.
    pub fn draw_grads_batch(&self, jobs: &[(usize, &Mlp, &[usize])]) -> Vec<(GradSet, f32)> {
        let jobs = self.draw_jobs(jobs);
        self.plane.execute(&jobs)
    }

    /// Like [`EngineCtx::draw_grads_batch`], but writes gradients into
    /// the caller's recycled buffers (one per job) and returns only the
    /// mean `|g|` values.
    pub fn draw_grads_batch_into(
        &self,
        jobs: &[(usize, &Mlp, &[usize])],
        bufs: &mut [GradSet],
    ) -> Vec<f32> {
        let jobs = self.draw_jobs(jobs);
        self.plane.execute_into(&jobs, bufs)
    }

    fn draw_jobs<'a>(&'a self, jobs: &[(usize, &'a Mlp, &'a [usize])]) -> Vec<DrawJob<'a>> {
        let shards = self.cluster.workload.shards();
        jobs.iter()
            .map(|&(w, model, idxs)| DrawJob {
                model,
                shard: &shards[w],
                idxs,
            })
            .collect()
    }

    /// Evaluates and records a checkpoint if `iter` is on the cadence.
    pub fn maybe_eval(&mut self, worker: usize, iter: u64, t: Time, model: &Mlp) {
        if iter > 0 && iter.is_multiple_of(self.cfg.eval_every) {
            let metric = self.cluster.workload.test_metric(model);
            self.collector.record_eval(worker, iter, t, metric);
        }
    }

    /// Closes timelines and assembles the final metrics.
    ///
    /// `models` are the workers' final model parameters, used to compute
    /// the realized divergence diagnostic.
    pub fn finish(self, models: &[&Mlp]) -> RunMetrics {
        self.finish_traced(models).0
    }

    /// Like [`EngineCtx::finish`], but also returns the event journal
    /// (with the per-worker `close` markers and the `run_end` footer a
    /// replay needs appended).
    pub fn finish_traced(mut self, models: &[&Mlp]) -> (RunMetrics, Journal) {
        let divergence = relative_model_divergence(models);
        let duration = self.cfg.duration_secs;
        for (w, tl) in self.timelines.iter_mut().enumerate() {
            // Devices that never changed state past the end stay as-is;
            // close every open span at the budget boundary.
            if tl.current_state().is_some() {
                let t_close = duration.max(tl.end_time());
                tl.close(t_close);
                obs!(self.journal, t_close, EventKind::Close { w: w as u32 });
            }
        }
        obs!(
            self.journal,
            duration,
            EventKind::RunEnd {
                iters: self.collector.total_iterations(),
                duration,
            }
        );
        let robot_mask: Vec<bool> = self
            .cluster
            .devices
            .iter()
            .map(|d| d.kind == DeviceKind::Robot)
            .collect();
        let bytes = ByteAccount {
            useful: self.cluster.transport.useful_bytes(),
            wasted: self.cluster.transport.wasted_bytes(),
            lost: self.cluster.transport.lost_bytes(),
            corrupt: self.cluster.transport.corrupt_bytes(),
        };
        #[cfg(debug_assertions)]
        {
            // Invariant watchdog: every offered byte must be classified as
            // exactly one of useful / wasted / lost / corrupt.
            let err = self.cluster.transport.byte_conservation_error();
            let offered = self.cluster.transport.offered_bytes().abs();
            assert!(
                err <= 1e-6 * offered.max(1.0),
                "byte conservation violated: residual {err} of {offered} offered"
            );
        }
        let metrics =
            self.collector
                .finish(&self.timelines, &robot_mask, duration, bytes, divergence);
        (metrics, self.journal)
    }
}

/// Maximum pairwise L2 distance between models, relative to the mean
/// parameter norm (0 if fewer than two models).
pub fn relative_model_divergence(models: &[&Mlp]) -> f64 {
    if models.len() < 2 {
        return 0.0;
    }
    let norm: f64 = models
        .iter()
        .map(|m| {
            m.params()
                .iter()
                .map(|p| f64::from(p.frobenius_norm()).powi(2))
                .sum::<f64>()
                .sqrt()
        })
        .sum::<f64>()
        / models.len() as f64;
    let mut max_d = 0.0f64;
    for i in 0..models.len() {
        for j in (i + 1)..models.len() {
            let d: f64 = models[i]
                .params()
                .iter()
                .zip(models[j].params())
                .map(|(a, b)| {
                    a.as_slice()
                        .iter()
                        .zip(b.as_slice())
                        .map(|(x, y)| f64::from(x - y).powi(2))
                        .sum::<f64>()
                })
                .sum::<f64>()
                .sqrt();
            max_d = max_d.max(d);
        }
    }
    max_d / norm.max(1e-12)
}

/// [`relative_model_divergence`] on already-flattened parameter
/// vectors (the live cluster ships models as flat `f32` slices).
/// Mathematically identical: L2 over the concatenation equals L2 over
/// the per-matrix decomposition.
pub fn relative_model_divergence_flat(models: &[&[f32]]) -> f64 {
    if models.len() < 2 {
        return 0.0;
    }
    let norm: f64 = models
        .iter()
        .map(|m| m.iter().map(|&p| f64::from(p).powi(2)).sum::<f64>().sqrt())
        .sum::<f64>()
        / models.len() as f64;
    let mut max_d = 0.0f64;
    for i in 0..models.len() {
        for j in (i + 1)..models.len() {
            let d: f64 = models[i]
                .iter()
                .zip(models[j].iter())
                .map(|(&x, &y)| f64::from(x - y).powi(2))
                .sum::<f64>()
                .sqrt();
            max_d = max_d.max(d);
        }
    }
    max_d / norm.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Environment, ModelScale, Strategy};

    fn ctx() -> EngineCtx {
        EngineCtx::new(&ExperimentConfig {
            model_scale: ModelScale::Small,
            n_workers: 2,
            duration_secs: 30.0,
            environment: Environment::Stable,
            strategy: Strategy::Bsp,
            eval_every: 5,
            ..ExperimentConfig::default()
        })
    }

    #[test]
    fn compute_secs_is_near_base_plus_codec() {
        let mut c = ctx();
        let want = c.cfg.base_compute_secs() + c.cfg.codec_secs();
        for _ in 0..20 {
            let t = c.compute_secs(0);
            assert!((t - want).abs() < 0.3 * want, "draw {t} vs {want}");
        }
    }

    #[test]
    fn draw_grads_matches_model_shapes() {
        let mut c = ctx();
        let model = c.cluster.init_model.clone();
        let (grads, mean_abs) = c.draw_grads(0, &model);
        assert_eq!(grads.len(), model.params().len());
        assert!(mean_abs > 0.0);
    }

    #[test]
    fn checkpoints_only_on_cadence() {
        let mut c = ctx();
        let model = c.cluster.init_model.clone();
        c.maybe_eval(0, 3, 1.0, &model); // off-cadence
        c.maybe_eval(0, 5, 2.0, &model); // on-cadence
        c.start_compute(0, 0.0);
        c.collector.record_iteration(0);
        let m = c.finish(&[]);
        assert_eq!(m.checkpoints.len(), 1);
        assert_eq!(m.checkpoints[0].iter, 5);
    }
}
